// The shard RPC substrate: one narrow, synchronous call — "rank this
// slice of this graph's answers" — behind an abstract Transport, so the
// router never knows whether a shard is a function call away or a
// socket away. The in-process backend below owns N full api::Server
// instances (each with its own canonical reliability cache, so the
// cache keyspace is partitioned exactly like the answers) and is
// fault-injectable: tests flip a shard into a failing state and assert
// the router surfaces a typed error instead of a silent partial
// answer. A socket backend slots in later by serializing ShardQuery /
// ShardReply; nothing above this header changes.

#ifndef BIORANK_SHARD_TRANSPORT_H_
#define BIORANK_SHARD_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/server.h"
#include "core/query_graph.h"
#include "serve/ranking_service.h"
#include "util/status.h"

namespace biorank::shard {

/// One shard RPC: rank `answers` (the shard's slice of `graph->answers`)
/// and return the slice's top `options.top_k`. The graph is borrowed for
/// the duration of the call — the in-process backend reads it in place;
/// a serializing backend would ship it (or, once shards hold resident
/// replicas, just the query id). The serving knobs ride in one
/// api::QueryOptions block (the same shape every other caller speaks),
/// so new knobs — deadlines, modes — reach shards without a transport
/// schema change. Today shards serve top_k blocking rankings; `mode`,
/// `seed`, and the deadline fields are carried for the router (which
/// enforces the deadline at scatter time) rather than interpreted here.
struct ShardQuery {
  const QueryGraph* graph = nullptr;
  std::vector<NodeId> answers;
  api::QueryOptions options;
  /// Index of the parent span in options.trace that shard-side spans
  /// attach under (the router's scatter span). Trace context crosses
  /// the transport seam explicitly because the call usually lands on a
  /// different thread than the one that opened the parent. -1 roots.
  int trace_parent = -1;
};

/// A shard's answer: its slice's top-k in serve::RanksBefore order,
/// every candidate carrying the deterministic lower/upper bounds the
/// router's merge cutoff runs on, plus the shard's scheduler counters.
struct ShardReply {
  std::vector<serve::RankedCandidate> top;
  serve::RequestStats stats;
};

/// The substrate interface. Implementations must tolerate concurrent
/// Call()s to the same and to different shards: the router scatters one
/// query's shard calls in parallel, and concurrent router queries
/// overlap freely.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual uint32_t shard_count() const = 0;

  /// Executes `query` on `shard`. Any error return means the shard
  /// produced no usable answer; the router fails the whole query rather
  /// than return a silently incomplete merge.
  virtual Result<ShardReply> Call(uint32_t shard, const ShardQuery& query) = 0;
};

/// N api::Server instances behind the Transport interface — the
/// single-process stand-in for a sharded deployment. Every shard is
/// built from the same ServerOptions (same universe seed, same
/// canonical MC seed), which is what makes the merged ranking
/// bit-identical to an unsharded server's.
class InProcessTransport : public Transport {
 public:
  /// Builds `num_shards` servers from `options`. num_shards < 1 is
  /// clamped to 1.
  explicit InProcessTransport(uint32_t num_shards,
                              api::ServerOptions options = {});

  uint32_t shard_count() const override;
  Result<ShardReply> Call(uint32_t shard, const ShardQuery& query) override;

  /// The shard's server — shard 0 doubles as the router's front-door
  /// materializer in single-process deployments, and tests reach in to
  /// inspect per-shard cache state.
  api::Server& server(uint32_t shard);

  /// Fault injection: until cleared, every Call to `shard` fails with
  /// `fault` without touching the server. Status::OK() clears. Safe to
  /// flip concurrently with in-flight calls.
  void InjectFault(uint32_t shard, Status fault);

  /// Calls attempted against `shard` (including faulted ones).
  uint64_t calls(uint32_t shard) const;

 private:
  std::vector<std::unique_ptr<api::Server>> servers_;
  std::unique_ptr<std::atomic<uint64_t>[]> calls_;
  mutable std::mutex faults_mu_;
  std::unordered_map<uint32_t, Status> faults_;
};

}  // namespace biorank::shard

#endif  // BIORANK_SHARD_TRANSPORT_H_
