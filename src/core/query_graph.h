// Query graph = entity graph + designated query source node + answer
// entity set (the object of Definition 2.2's exploratory query), plus
// builders for the paper's two Figure 4 example topologies.

#ifndef BIORANK_CORE_QUERY_GRAPH_H_
#define BIORANK_CORE_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "core/graph.h"
#include "util/status.h"

namespace biorank {

/// The paper's probabilistic query graph (Definition 2.3): a probabilistic
/// entity graph together with the query node `source` and the answer set.
///
/// Conventions:
///  - `source` is the synthetic query node the mediator creates; its
///    presence probability is 1.
///  - `answers` lists distinct alive node ids; relevance functions assign
///    each of them a score and the result is ranked (Definition 2.4).
struct QueryGraph {
  ProbabilisticEntityGraph graph;
  NodeId source = kInvalidNode;
  std::vector<NodeId> answers;

  /// Checks structural invariants: source valid, answers valid, distinct,
  /// and not equal to the source.
  Status Validate() const;
};

/// Convenience builder for hand-constructed graphs in tests, examples, and
/// the canonical Figure 4 topologies.
///
///   QueryGraphBuilder b;
///   auto s = b.Source();
///   auto m = b.Node(1.0, "m");
///   b.Edge(s, m, 0.5);
///   QueryGraph g = std::move(b).Build({m});
class QueryGraphBuilder {
 public:
  QueryGraphBuilder();

  /// The query node (created at construction, p = 1).
  NodeId Source() const { return source_; }

  /// Adds a node with presence probability `p`.
  NodeId Node(double p, std::string label = "", std::string entity_set = "");

  /// Adds an edge with presence probability `q`. Dies on invalid endpoints
  /// (builder misuse is a programming error in tests, not a runtime state).
  EdgeId Edge(NodeId from, NodeId to, double q);

  /// Finalizes with the given answer set.
  QueryGraph Build(std::vector<NodeId> answers) &&;

 private:
  QueryGraph query_graph_;
  NodeId source_;
};

/// The two canonical example topologies of Figure 4, used across tests and
/// the `bench_fig4_topologies` harness.

/// Figure 4a: serial-parallel graph. s -(0.5)-> m, then two parallel
/// certain 2-edge paths m -> a -> u and m -> b -> u. All node probabilities
/// are 1. Known scores at the single answer u: reliability 0.5,
/// propagation 0.75, diffusion 1/9, InEdge 2, PathCount 2.
QueryGraph MakeFig4aSerialParallel();

/// Figure 4b: Wheatstone bridge. Edges s->a, s->b, a->b (bridge), a->u,
/// b->u, each with probability 0.5; node probabilities 1. Known scores at
/// u: reliability 15/32 = 0.46875, propagation 0.484375, InEdge 2,
/// PathCount 3.
QueryGraph MakeFig4bWheatstoneBridge();

}  // namespace biorank

#endif  // BIORANK_CORE_QUERY_GRAPH_H_
