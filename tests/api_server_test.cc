#include "api/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "api/query.h"
#include "core/query_graph.h"

namespace biorank::api {
namespace {

/// One shared server for the read-only tests (one world, one cache).
Server& SharedServer() {
  static Server* server = new Server();
  return *server;
}

std::string WellStudiedSymbol(const Server& server, int index) {
  const ProteinUniverse& universe = server.universe();
  return universe.protein(universe.well_studied()[static_cast<size_t>(index)])
      .gene_symbol;
}

TEST(ApiServerTest, QueryReturnsTypedRankedResponse) {
  Server& server = SharedServer();
  Result<QueryResponse> response =
      server.Query(MakeProteinFunctionRequest(WellStudiedSymbol(server, 0), 5));
  ASSERT_TRUE(response.ok()) << response.status();
  const QueryResponse& r = response.value();
  EXPECT_GT(r.result.query_graph.graph.num_nodes(), 0);
  EXPECT_EQ(r.result.matched_proteins, 1);
  ASSERT_EQ(r.top.size(), 5u);
  for (size_t i = 0; i < r.top.size(); ++i) {
    const RankedAnswer& answer = r.top[i];
    EXPECT_FALSE(answer.label.empty());
    EXPECT_GE(answer.reliability, answer.lower - 1e-15);
    EXPECT_LE(answer.reliability, answer.upper + 1e-15);
    if (i > 0) {
      EXPECT_GE(r.top[i - 1].reliability, answer.reliability);
    }
  }
  EXPECT_GT(r.stats.candidates, 0);
  EXPECT_GE(r.timing.total_s, r.timing.rank_s);
  EXPECT_GT(r.timing.integrate_s, 0.0);
}

TEST(ApiServerTest, RepeatedQueryRidesTheSharedCache) {
  Server& server = SharedServer();
  QueryRequest request =
      MakeProteinFunctionRequest(WellStudiedSymbol(server, 1), 5);
  Result<QueryResponse> first = server.Query(request);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<QueryResponse> second = server.Query(request);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.value().stats.cache_misses, 0);
  EXPECT_EQ(RankingFingerprint(second.value()), RankingFingerprint(first.value()));
}

TEST(ApiServerTest, TopKSemantics) {
  Server& server = SharedServer();
  const std::string symbol = WellStudiedSymbol(server, 2);
  Result<QueryResponse> all = server.Query(MakeProteinFunctionRequest(symbol));
  ASSERT_TRUE(all.ok()) << all.status();
  size_t answers = all.value().result.query_graph.answers.size();
  ASSERT_GT(answers, 0u);
  EXPECT_EQ(all.value().top.size(), answers);

  // k beyond the answer count clamps; negative k ranks all.
  Result<QueryResponse> huge = server.Query(
      MakeProteinFunctionRequest(symbol, static_cast<int>(answers) + 1000));
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(RankingFingerprint(huge.value()), RankingFingerprint(all.value()));
  Result<QueryResponse> negative =
      server.Query(MakeProteinFunctionRequest(symbol, -7));
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(RankingFingerprint(negative.value()), RankingFingerprint(all.value()));
}

TEST(ApiServerTest, GraphOnlyRequestSkipsRanking) {
  Server& server = SharedServer();
  QueryRequest request = MakeProteinFunctionRequest(WellStudiedSymbol(server, 3));
  request.options.rank = false;
  Result<QueryResponse> response = server.Query(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response.value().result.query_graph.answers.empty());
  EXPECT_TRUE(response.value().top.empty());
  EXPECT_EQ(response.value().stats.candidates, 0);
  EXPECT_EQ(response.value().timing.rank_s, 0.0);
}

TEST(ApiServerTest, ErrorStatusesPropagateThroughTheFacade) {
  Server& server = SharedServer();
  EXPECT_EQ(server.Query(MakeProteinFunctionRequest("NO_SUCH_GENE"))
                .status()
                .code(),
            StatusCode::kNotFound);
  QueryRequest wrong_shape = MakeProteinFunctionRequest("x");
  wrong_shape.query.entity_set = "Pfam";
  EXPECT_EQ(server.Query(wrong_shape).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ApiServerTest, ForeignSeedNeverTouchesTheSharedCache) {
  // A request pinning a foreign MC seed is served by a request-private
  // service: the shared cache must see no new entries and no lookups.
  Server server;
  QueryRequest request =
      MakeProteinFunctionRequest(WellStudiedSymbol(server, 0), 5);
  Result<QueryResponse> shared = server.Query(request);
  ASSERT_TRUE(shared.ok()) << shared.status();
  serve::CacheStats before = server.Stats().cache;
  request.options.seed = 0xfeedface;
  Result<QueryResponse> foreign = server.Query(request);
  ASSERT_TRUE(foreign.ok()) << foreign.status();
  serve::CacheStats after = server.Stats().cache;
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_EQ(after.hits + after.misses, before.hits + before.misses);
  // This workload resolves exactly (no MC residues), so the values are
  // seed-independent — the rankings must agree.
  EXPECT_EQ(RankingFingerprint(foreign.value()), RankingFingerprint(shared.value()));
}

TEST(ApiServerTest, RunBatchMatchesSerialExecutionBitForBit) {
  const int n = 6;
  Server batch_server;
  Server serial_server;
  std::vector<QueryRequest> batch;
  for (int i = 0; i < n; ++i) {
    // Duplicates on purpose: batched requests may share cache keys.
    batch.push_back(
        MakeProteinFunctionRequest(WellStudiedSymbol(batch_server, i % 4), 10));
  }
  Result<std::vector<QueryResponse>> fanned = batch_server.RunBatch(batch);
  ASSERT_TRUE(fanned.ok()) << fanned.status();
  ASSERT_EQ(fanned.value().size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Result<QueryResponse> serial = serial_server.Query(batch[i]);
    ASSERT_TRUE(serial.ok()) << serial.status();
    EXPECT_EQ(RankingFingerprint(fanned.value()[i]), RankingFingerprint(serial.value()))
        << "batched request " << i << " diverged from serial execution";
  }
  ServerStats stats = batch_server.Stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_requests, static_cast<uint64_t>(n));
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(n));

  // A failing request fails the batch with the first (lowest-index)
  // error; an empty batch is a no-op.
  batch[2] = MakeProteinFunctionRequest("NO_SUCH_GENE");
  batch[4].query.entity_set = "Pfam";
  EXPECT_EQ(batch_server.RunBatch(batch).status().code(),
            StatusCode::kNotFound);
  // Accounting stays reconciled on a partial batch: the four requests
  // that were served still count, the two failures do not.
  stats = batch_server.Stats();
  EXPECT_EQ(stats.batch_requests, static_cast<uint64_t>(n) + 4);
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(n) + 4);
  Result<std::vector<QueryResponse>> empty = batch_server.RunBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(ApiServerTest, RankGraphServesCallerProvidedGraphs) {
  Server& server = SharedServer();
  QueryGraph bridge = MakeFig4bWheatstoneBridge();
  Result<QueryResponse> response = server.RankGraph(bridge, 1);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response.value().top.size(), 1u);
  EXPECT_GT(response.value().top[0].reliability, 0.0);
  EXPECT_LE(response.value().top[0].reliability, 1.0);
  // result stays empty: the caller owns the graph.
  EXPECT_EQ(response.value().result.query_graph.graph.num_nodes(), 0);
}

TEST(ApiServerTest, SessionLifecycle) {
  Server server;
  const std::string symbol = WellStudiedSymbol(server, 0);
  Result<SessionInfo> opened =
      server.OpenSession(MakeProteinFunctionRequest(symbol));
  ASSERT_TRUE(opened.ok()) << opened.status();
  const SessionInfo& info = opened.value();
  EXPECT_GT(info.id, 0u);
  EXPECT_GT(info.answers, 0);
  EXPECT_EQ(info.matched_proteins, 1);
  EXPECT_EQ(static_cast<int>(info.go_node.size()), info.answers);
  EXPECT_EQ(server.session_count(), 1u);

  // A session query matches the one-shot answer for the same symbol.
  Result<QueryResponse> live = server.QuerySession(info.id, 10);
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_EQ(live.value().top.size(), 10u);
  EXPECT_FALSE(live.value().top[0].label.empty());
  EXPECT_EQ(live.value().result.matched_proteins, 1);
  Result<QueryResponse> oneshot =
      server.Query(MakeProteinFunctionRequest(symbol, 10));
  ASSERT_TRUE(oneshot.ok());
  EXPECT_EQ(RankingFingerprint(live.value()), RankingFingerprint(oneshot.value()));

  // Apply a schema-validated delta; the incremental ranking must equal a
  // from-scratch rebuild of the snapshot on a cache-off reference.
  ingest::EvidenceDelta delta;
  delta.revise_source_priors.push_back({"AmiGO", 0.9});
  Result<ingest::ApplyReport> applied = server.ApplyDelta(info.id, delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_GT(applied.value().dirty_answers, 0);
  Result<QueryResponse> after = server.QuerySession(info.id, 10);
  ASSERT_TRUE(after.ok()) << after.status();
  Result<QueryGraph> snapshot = server.SessionSnapshot(info.id);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ServerOptions reference_options;
  reference_options.ranking.enable_cache = false;
  reference_options.ranking.num_threads = 1;
  Server reference(reference_options);
  Result<QueryResponse> rebuilt = reference.RankGraph(snapshot.value(), 10);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(RankingFingerprint(after.value()), RankingFingerprint(rebuilt.value()));

  // An invalid delta is rejected by the schema metrics; nothing changes.
  ingest::EvidenceDelta unknown;
  unknown.revise_source_priors.push_back({"NoSuchSource", 0.9});
  EXPECT_EQ(server.ApplyDelta(info.id, unknown).status().code(),
            StatusCode::kNotFound);

  // Close; the handle goes stale everywhere and is never reused.
  ASSERT_TRUE(server.CloseSession(info.id).ok());
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.QuerySession(info.id, 5).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.ApplyDelta(info.id, delta).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.CloseSession(info.id).code(), StatusCode::kNotFound);
  Result<SessionInfo> reopened =
      server.OpenSession(MakeProteinFunctionRequest(symbol));
  ASSERT_TRUE(reopened.ok());
  EXPECT_NE(reopened.value().id, info.id);
}

TEST(ApiServerTest, SessionRejectsForeignSeed) {
  Server server;
  QueryRequest request = MakeProteinFunctionRequest(WellStudiedSymbol(server, 0));
  request.options.seed = 7;
  EXPECT_EQ(server.OpenSession(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ApiServerTest, IdleSessionsAreEvicted) {
  ServerOptions options;
  options.session_idle_ops = 3;
  Server server(options);
  const std::string symbol = WellStudiedSymbol(server, 0);
  Result<SessionInfo> idle =
      server.OpenSession(MakeProteinFunctionRequest(symbol));
  ASSERT_TRUE(idle.ok()) << idle.status();

  // Burn server operations without touching the session; the next
  // OpenSession sweeps it out.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Query(MakeProteinFunctionRequest(symbol, 3)).ok());
  }
  Result<SessionInfo> fresh =
      server.OpenSession(MakeProteinFunctionRequest(symbol));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_EQ(server.QuerySession(idle.value().id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.Stats().sessions_evicted, 1u);

  // A session kept busy is not evicted: every touch resets its clock.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.QuerySession(fresh.value().id, 3).ok());
  }
  EXPECT_EQ(server.EvictIdleSessions(options.session_idle_ops), 0u);
  EXPECT_EQ(server.session_count(), 1u);

  // The manual sweep with a zero-idle threshold evicts immediately once
  // later operations age the session.
  ASSERT_TRUE(server.Query(MakeProteinFunctionRequest(symbol, 3)).ok());
  ASSERT_TRUE(server.Query(MakeProteinFunctionRequest(symbol, 3)).ok());
  EXPECT_EQ(server.EvictIdleSessions(1), 1u);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(ApiServerTest, StatsCountServedTraffic) {
  Server server;
  const std::string symbol = WellStudiedSymbol(server, 1);
  ASSERT_TRUE(server.Query(MakeProteinFunctionRequest(symbol, 5)).ok());
  ASSERT_TRUE(server
                  .RunBatch({MakeProteinFunctionRequest(symbol, 5),
                             MakeProteinFunctionRequest(symbol, 5)})
                  .ok());
  Result<SessionInfo> session =
      server.OpenSession(MakeProteinFunctionRequest(symbol));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server.QuerySession(session.value().id, 5).ok());
  ASSERT_TRUE(server.CloseSession(session.value().id).ok());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.queries, 3u);  // One direct + two batched.
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_requests, 2u);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.session_queries, 1u);
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_GT(stats.cache.entries, 0u);
  // The cache snapshot invariant the hammer test also asserts.
  EXPECT_EQ(stats.cache.insertions - stats.cache.evictions -
                stats.cache.invalidations,
            stats.cache.entries);
}

}  // namespace
}  // namespace biorank::api
