// Small sample-statistics helpers: mean, stddev, percentiles,
// Pearson correlation.

#ifndef BIORANK_UTIL_STATS_H_
#define BIORANK_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace biorank {

/// Descriptive statistics of a sample, as reported in the paper's
/// experiment figures (mean, standard deviation, 95% confidence interval).
struct SampleStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;      ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double ci95_half_width = 0.0;  ///< Half-width of the normal-approx 95% CI.
};

/// Computes descriptive statistics over `values`. Empty input yields a
/// zero-initialized result with count == 0.
SampleStats ComputeStats(const std::vector<double>& values);

/// Arithmetic mean; 0.0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0.0 for size < 2.
double StdDev(const std::vector<double>& values);

/// The p-th percentile (p in [0,100]) using linear interpolation between
/// order statistics. Input need not be sorted. Empty input returns 0.0.
double Percentile(std::vector<double> values, double p);

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0.0 if either sample has zero variance or sizes mismatch.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Welford online accumulator, for streaming statistics without storing
/// the whole sample (used by long benchmark loops).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Sample variance (n-1); 0.0 for count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace biorank

#endif  // BIORANK_UTIL_STATS_H_
