#include "sources/source_registry.h"

namespace biorank {

SourceRegistry::SourceRegistry(const ProteinUniverse& universe,
                               const SourceRegistryOptions& options)
    : universe_(universe),
      entrez_protein_(universe),
      ncbi_blast_(universe, options.evidence, options.blast),
      entrez_gene_(universe, options.evidence, options.entrez_gene),
      amigo_(universe, options.evidence, options.amigo),
      pfam_(universe, options.evidence),
      tigrfam_(universe, options.evidence),
      pirsf_(universe, options.evidence),
      superfamily_(universe, options.evidence),
      cdd_(universe, options.evidence),
      uniprot_(universe, options.evidence),
      pdb_(universe, options.evidence) {}

std::vector<const DataSource*> SourceRegistry::AllSources() const {
  return {&amigo_,   &ncbi_blast_, &cdd_,     &entrez_gene_,
          &entrez_protein_, &pdb_,  &pfam_,    &pirsf_,
          &uniprot_, &superfamily_, &tigrfam_};
}

}  // namespace biorank
