// Builders for the paper's evaluation scenarios (Tables 1-3):
// reference proteins, their queries, and gold answer sets.

#ifndef BIORANK_DATAGEN_SCENARIO_H_
#define BIORANK_DATAGEN_SCENARIO_H_

#include <string>
#include <vector>

#include "datagen/protein_universe.h"

namespace biorank {

/// The paper's three evaluation scenarios (Section 4).
enum class ScenarioId {
  kScenario1WellKnown,    ///< Well-known functions, well-studied proteins.
  kScenario2LessKnown,    ///< Recently published functions, well-studied.
  kScenario3Hypothetical, ///< Unknown functions, hypothetical proteins.
};

const char* ScenarioName(ScenarioId id);

/// One query of a scenario: the protein to look up and the functions the
/// gold standard marks relevant among the returned answers.
struct ScenarioCase {
  int protein_index = 0;
  std::string gene_symbol;
  /// GO term indices (into the universe's ontology) that count as
  /// relevant when scoring the ranking.
  std::vector<int> gold_functions;
};

/// Derives the scenario's query set from the universe's designated
/// proteins:
///   scenario 1 -> all well-studied proteins, gold = curated functions;
///   scenario 2 -> the well-studied proteins that carry recent functions,
///                 gold = those recent functions only;
///   scenario 3 -> all hypothetical proteins, gold = expert functions.
std::vector<ScenarioCase> BuildScenarioCases(const ProteinUniverse& universe,
                                             ScenarioId id);

}  // namespace biorank

#endif  // BIORANK_DATAGEN_SCENARIO_H_
