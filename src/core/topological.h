// Deterministic baseline scores used in the paper's comparisons:
// in-edge count ("InEdge") and source-to-answer path count ("PathC").

#ifndef BIORANK_CORE_TOPOLOGICAL_H_
#define BIORANK_CORE_TOPOLOGICAL_H_

#include <vector>

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// InEdge (Section 3.4; "cardinality" in Lacroix et al.): the relevance of
/// a node is its number of incoming edges. Ignores all probabilities and
/// all structure beyond the node's immediate neighbourhood. Returns the
/// in-degree of every node, indexed by NodeId.
Result<std::vector<double>> InEdgeScores(const QueryGraph& query_graph);

/// PathCount (Section 3.5): the relevance of a node is the number of
/// distinct directed paths from the query node to it. Only defined on
/// graphs whose source-reachable region is acyclic — cycles would make
/// path counts infinite, so they fail with FailedPrecondition (the paper
/// restricts PathCount to workflow-type DAGs for the same reason).
/// Counts are returned as doubles (they can be astronomically large).
Result<std::vector<double>> PathCountScores(const QueryGraph& query_graph);

}  // namespace biorank

#endif  // BIORANK_CORE_TOPOLOGICAL_H_
