#include "core/reliability_bounds.h"

#include <vector>

#include "core/explanation.h"
#include "core/graph_algo.h"
#include "core/propagation.h"
#include "core/reliability_exact.h"

namespace biorank {

Result<ReliabilityBounds> BoundReliability(
    const QueryGraph& query_graph, NodeId target,
    const ReliabilityBoundsOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (!query_graph.graph.IsValidNode(target)) {
    return Status::InvalidArgument("bounds: invalid target");
  }
  if (options.max_paths < 1) {
    return Status::InvalidArgument("bounds: max_paths must be >= 1");
  }

  ReliabilityBounds bounds;

  // Upper bound: propagation dominates reliability on every graph.
  Result<IterativeScores> propagation = Propagate(query_graph);
  if (!propagation.ok()) return propagation.status();
  bounds.upper = std::min(1.0, propagation.value().scores[target]);

  // Lower bound: exact reliability of the union of the k strongest
  // paths. Connectivity within the sub-event implies connectivity in the
  // full graph, so this never overestimates.
  ExplanationOptions explain;
  explain.max_paths = options.max_paths;
  Result<std::vector<EvidencePath>> paths =
      ExplainAnswer(query_graph, target, explain);
  if (!paths.ok()) return paths.status();
  bounds.paths_used = static_cast<int>(paths.value().size());
  if (paths.value().empty()) {
    bounds.lower = 0.0;
    bounds.upper = 0.0;  // Unreachable: reliability is exactly 0.
    return bounds;
  }

  std::vector<bool> keep(query_graph.graph.node_capacity(), false);
  for (const EvidencePath& path : paths.value()) {
    for (NodeId node : path.nodes) keep[node] = true;
  }
  // Build the union subgraph, keeping only edges on some chosen path.
  std::vector<bool> keep_edge(query_graph.graph.edge_capacity(), false);
  for (const EvidencePath& path : paths.value()) {
    for (EdgeId e : path.edges) keep_edge[e] = true;
  }
  QueryGraph sub;
  std::vector<NodeId> mapping(query_graph.graph.node_capacity(),
                              kInvalidNode);
  for (NodeId i = 0; i < query_graph.graph.node_capacity(); ++i) {
    if (!query_graph.graph.IsValidNode(i) || !keep[i]) continue;
    const GraphNode& node = query_graph.graph.node(i);
    mapping[i] = sub.graph.AddNode(node.p, node.label, node.entity_set);
  }
  for (EdgeId e = 0; e < query_graph.graph.edge_capacity(); ++e) {
    if (!query_graph.graph.IsValidEdge(e) || !keep_edge[e]) continue;
    const GraphEdge& edge = query_graph.graph.edge(e);
    sub.graph.AddEdge(mapping[edge.from], mapping[edge.to], edge.q).value();
  }
  sub.source = mapping[query_graph.source];
  sub.answers = {mapping[target]};

  Result<double> exact = ExactReliabilityFactoring(sub, sub.answers[0]);
  if (!exact.ok()) return exact.status();
  bounds.lower = exact.value();
  if (bounds.lower > bounds.upper) bounds.upper = bounds.lower;  // Rounding.
  return bounds;
}

}  // namespace biorank
