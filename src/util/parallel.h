// Fixed thread pool with deterministic ParallelFor / ParallelReduce
// sharding. The Monte Carlo engines (Algorithm 3.1, adaptive top-k) and
// the repeated-experiment harness fan their embarrassingly parallel trial
// batches out through this pool; results are bit-identical for a fixed
// seed regardless of thread count because work is split into fixed shards
// whose RNG streams depend only on (seed, shard index).

#ifndef BIORANK_UTIL_PARALLEL_H_
#define BIORANK_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace biorank {

/// A fixed pool of worker threads executing sharded loops.
///
/// Design notes:
///  - The calling thread always participates in shard execution, so a pool
///    constructed with `worker_count` workers provides `worker_count + 1`
///    way parallelism. `ThreadPool(0)` is a valid, fully inline pool.
///  - Shards are claimed dynamically (atomic counter), so imbalanced
///    shards still load-balance; determinism must come from the shards
///    themselves, not from which thread runs them.
///  - Nested calls are safe: a `ParallelFor` issued from inside a shard of
///    the same pool runs inline on the current thread instead of
///    deadlocking on the pool's own workers.
///  - The first exception thrown by any shard is captured, remaining
///    unclaimed shards are abandoned, and the exception is rethrown on the
///    calling thread once in-flight shards drain.
class ThreadPool {
 public:
  /// `fn(slot, shard)`: `slot` identifies the executing thread within this
  /// call, in `[0, slot_count())`, for indexing per-thread scratch;
  /// `shard` is the loop index in `[0, shard_count)`.
  using ShardFn = std::function<void(int slot, int64_t shard)>;

  static constexpr int kUnlimitedParallelism =
      std::numeric_limits<int>::max();

  /// Spawns `worker_count` workers (>= 0). The caller participates in
  /// every loop, so total parallelism is `worker_count + 1`.
  explicit ThreadPool(int worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Distinct `slot` values `fn` may observe: one per worker + the caller.
  int slot_count() const { return worker_count() + 1; }

  /// Runs `fn(slot, shard)` for every shard in `[0, shard_count)` and
  /// blocks until all complete. `max_parallelism` caps the number of
  /// threads (caller included) executing shards, so one pool can emulate
  /// any smaller thread count. Zero and negative shard counts return
  /// immediately. Rethrows the first shard exception.
  void ParallelFor(int64_t shard_count, const ShardFn& fn,
                   int max_parallelism = kUnlimitedParallelism);

  /// Maps every shard to a `T` and combines the results **in shard order**
  /// (`acc = combine(acc, map(shard))` for shard = 0, 1, ...), so the
  /// reduction is deterministic even for non-commutative combines.
  /// `map(slot, shard)` runs in parallel; `combine` runs on the caller.
  template <typename T, typename MapFn, typename CombineFn>
  T ParallelReduce(int64_t shard_count, T init, MapFn map, CombineFn combine,
                   int max_parallelism = kUnlimitedParallelism) {
    if (shard_count <= 0) return init;
    std::vector<T> partials(static_cast<size_t>(shard_count));
    ParallelFor(
        shard_count,
        [&](int slot, int64_t shard) {
          partials[static_cast<size_t>(shard)] = map(slot, shard);
        },
        max_parallelism);
    T acc = std::move(init);
    for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
    return acc;
  }

  /// True when the current thread is executing a shard of this pool
  /// (worker or participating caller); such threads run nested loops
  /// inline.
  bool InShard() const;

  /// Parallelism used when callers do not specify one: the
  /// `BIORANK_THREADS` environment variable if set to a positive integer,
  /// otherwise `std::thread::hardware_concurrency()` (at least 1).
  static int DefaultThreadCount();

  /// Process-wide shared pool with `DefaultThreadCount() - 1` workers.
  static ThreadPool& Global();

 private:
  void WorkerLoop(int slot);
  /// Claims and runs shards of job `generation` until none remain (or a
  /// newer job replaced it — a late-waking worker must not execute a job
  /// it was never admitted to).
  void RunShards(int slot, uint64_t generation);
  void RecordError(std::exception_ptr error);

  std::vector<std::thread> workers_;

  /// Serializes external ParallelFor calls so at most one job is live.
  std::mutex call_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  uint64_t generation_ = 0;   ///< Bumped per job; workers track it.
  const ShardFn* job_ = nullptr;
  int64_t shard_count_ = 0;
  int64_t next_shard_ = 0;    ///< Next unclaimed shard (guarded by mu_).
  int worker_limit_ = 0;      ///< Workers allowed to join the current job.
  int joined_workers_ = 0;    ///< Workers that joined the current job.
  int active_ = 0;            ///< Threads currently inside RunShards.
  std::exception_ptr first_error_;
};

}  // namespace biorank

#endif  // BIORANK_UTIL_PARALLEL_H_
