#include "datagen/scenario.h"

namespace biorank {

const char* ScenarioName(ScenarioId id) {
  switch (id) {
    case ScenarioId::kScenario1WellKnown:
      return "Scenario 1: well-known functions, well-studied proteins";
    case ScenarioId::kScenario2LessKnown:
      return "Scenario 2: less-known functions, well-studied proteins";
    case ScenarioId::kScenario3Hypothetical:
      return "Scenario 3: unknown functions, less-studied proteins";
  }
  return "?";
}

std::vector<ScenarioCase> BuildScenarioCases(const ProteinUniverse& universe,
                                             ScenarioId id) {
  std::vector<ScenarioCase> cases;
  switch (id) {
    case ScenarioId::kScenario1WellKnown:
      for (int index : universe.well_studied()) {
        const Protein& protein = universe.protein(index);
        cases.push_back(
            {index, protein.gene_symbol, protein.curated_functions});
      }
      break;
    case ScenarioId::kScenario2LessKnown:
      for (int index : universe.well_studied()) {
        const Protein& protein = universe.protein(index);
        if (protein.recent_functions.empty()) continue;
        cases.push_back(
            {index, protein.gene_symbol, protein.recent_functions});
      }
      break;
    case ScenarioId::kScenario3Hypothetical:
      for (int index : universe.hypothetical()) {
        const Protein& protein = universe.protein(index);
        cases.push_back(
            {index, protein.gene_symbol, protein.expert_functions});
      }
      break;
  }
  return cases;
}

}  // namespace biorank
