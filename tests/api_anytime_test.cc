// The anytime serving contract end to end: a kAnytime ranking with no
// budget returns the pure bounds-only answer (zero exact/MC spend),
// repeated Refine increments land bit-identically on the blocking
// answer at any thread count with the cache on or off, deadlines come
// back as typed kDeadlineExceeded rejections with no partial answer,
// and the refinement ledger survives cancellation and a concurrent
// Refine/ApplyDelta hammer (run under TSan via the concurrency label).
//
// The MC-heavy rankings enter through RankGraph(graph, options) on
// random layered DAGs: the protein universe's per-answer residues
// reduce to single paths, so its bounds always collapse and a
// front-door Query never leaves open brackets. The deadline/admission
// tests use Query, where the integration phase is part of the story.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/query.h"
#include "api/server.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank::api {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

std::string WellStudiedSymbol(const Server& server, int index) {
  const ProteinUniverse& universe = server.universe();
  return universe.protein(universe.well_studied()[static_cast<size_t>(index)])
      .gene_symbol;
}

/// Server options that force Monte Carlo on every survivor (factoring
/// disabled), so refinement has real incremental work to do.
ServerOptions McForcedOptions(int num_threads, bool enable_cache) {
  ServerOptions options;
  options.ranking.num_threads = num_threads;
  options.ranking.enable_cache = enable_cache;
  options.ranking.exact_max_edges = 0;
  return options;
}

/// A layered random DAG whose answers carry genuinely open bounds
/// (multiple source paths, so k-best-paths lower < propagation upper).
QueryGraph McGraph(uint64_t seed) {
  Rng rng(seed);
  testing::RandomDagOptions options;
  options.layers = 3;
  options.nodes_per_layer = 5;
  options.answers = 8;
  return testing::MakeRandomLayeredDag(rng, options);
}

/// A workload big enough that converging it takes milliseconds, not
/// microseconds — the deadline-bounded test needs convergence to be
/// reliably out of reach of a sub-millisecond budget.
QueryGraph BigMcGraph(uint64_t seed) {
  Rng rng(seed);
  testing::RandomDagOptions options;
  options.layers = 4;
  options.nodes_per_layer = 6;
  options.answers = 12;
  return testing::MakeRandomLayeredDag(rng, options);
}

QueryOptions AnytimeOptions(int k) {
  QueryOptions options;
  options.top_k = k;
  options.mode = QueryMode::kAnytime;
  return options;
}

QueryOptions BlockingOptions(int k) {
  QueryOptions options;
  options.top_k = k;
  return options;
}

/// Drives `handle` to convergence in fixed-budget increments and
/// returns the final response. Fails the test if the ledger never
/// settles.
QueryResponse RefineToConvergence(Server& server, QueryResponse first,
                                  int64_t budget) {
  QueryResponse current = std::move(first);
  int increments = 0;
  while (current.refinement.valid()) {
    QueryOptions step;
    step.mc_trial_budget = budget;
    Result<QueryResponse> next = server.Refine(current.refinement, step);
    EXPECT_TRUE(next.ok()) << next.status();
    if (!next.ok()) break;
    current = std::move(next).value();
    if (++increments > 1000) {
      ADD_FAILURE() << "refinement never converged";
      break;
    }
  }
  EXPECT_TRUE(current.completeness.complete);
  return current;
}

TEST(ApiAnytimeTest, ZeroBudgetReturnsPureBoundsOnlyRanking) {
  Server server(McForcedOptions(1, true));
  QueryGraph graph = McGraph(7);
  Result<QueryResponse> response = server.RankGraph(graph, AnytimeOptions(0));
  ASSERT_TRUE(response.ok()) << response.status();
  const QueryResponse& r = response.value();

  // Nothing past phase 5 ran: no factoring, no MC trials, only the
  // deterministic bound classification.
  EXPECT_EQ(r.stats.exact, 0);
  EXPECT_EQ(r.stats.monte_carlo, 0);
  EXPECT_EQ(r.stats.mc_trials, 0);
  EXPECT_GT(r.stats.candidates, 0);
  EXPECT_FALSE(r.top.empty());
  for (size_t i = 0; i < r.top.size(); ++i) {
    EXPECT_GE(r.top[i].upper + 1e-15, r.top[i].lower);
    if (i > 0) {
      EXPECT_GE(r.top[i - 1].reliability + 1e-15, r.top[i].reliability);
    }
  }

  // With factoring disabled the multi-path answers are still open, so
  // the response carries a live refinement handle and says so.
  EXPECT_GT(r.completeness.refining, 0);
  EXPECT_GT(r.completeness.widest_bracket, 0.0);
  EXPECT_FALSE(r.completeness.complete);
  EXPECT_TRUE(r.refinement.valid());
  EXPECT_EQ(server.refinement_count(), 1u);
  EXPECT_EQ(server.Stats().refinements_started, 1u);
  ASSERT_TRUE(server.CancelRefinement(r.refinement).ok());
}

TEST(ApiAnytimeTest, RefinedRankingIsBitIdenticalToBlockingAtAnyThreadCount) {
  QueryGraph graph = McGraph(11);
  for (int num_threads : {1, 4}) {
    for (bool enable_cache : {true, false}) {
      SCOPED_TRACE("num_threads=" + std::to_string(num_threads) +
                   " cache=" + std::to_string(enable_cache));
      Server blocking(McForcedOptions(num_threads, enable_cache));
      Server anytime(McForcedOptions(num_threads, enable_cache));

      Result<QueryResponse> reference =
          blocking.RankGraph(graph, BlockingOptions(5));
      ASSERT_TRUE(reference.ok()) << reference.status();
      EXPECT_GT(reference.value().stats.monte_carlo, 0)
          << "workload never exercised the MC path";

      Result<QueryResponse> first = anytime.RankGraph(graph, AnytimeOptions(5));
      ASSERT_TRUE(first.ok()) << first.status();
      EXPECT_EQ(first.value().stats.mc_trials, 0);
      QueryResponse final_response =
          RefineToConvergence(anytime, std::move(first).value(), 1024);
      EXPECT_EQ(RankingFingerprint(final_response),
                RankingFingerprint(reference.value()));
      EXPECT_FALSE(final_response.refinement.valid());
      EXPECT_EQ(anytime.refinement_count(), 0u);
      EXPECT_EQ(anytime.Stats().refinements_completed, 1u);
    }
  }
}

TEST(ApiAnytimeTest, RefineWithoutBudgetFinishesTheJob) {
  Server server(McForcedOptions(1, true));
  Server blocking(McForcedOptions(1, true));
  QueryGraph graph = McGraph(23);
  Result<QueryResponse> first = server.RankGraph(graph, AnytimeOptions(0));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first.value().refinement.valid());

  // No budget, no deadline: one Refine call runs to convergence.
  Result<QueryResponse> refined = server.Refine(first.value().refinement);
  ASSERT_TRUE(refined.ok()) << refined.status();
  EXPECT_TRUE(refined.value().completeness.complete);
  EXPECT_FALSE(refined.value().refinement.valid());
  EXPECT_GT(refined.value().stats.mc_trials, 0);

  Result<QueryResponse> reference = blocking.RankGraph(graph, BlockingOptions(0));
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(RankingFingerprint(refined.value()),
            RankingFingerprint(reference.value()));
}

TEST(ApiAnytimeTest, ForeignSeedAnytimeStaysOffTheSharedCache) {
  Server server(McForcedOptions(1, true));
  QueryGraph graph = McGraph(31);
  QueryOptions options = AnytimeOptions(5);
  options.seed = 0xfeedface;
  serve::CacheStats before = server.Stats().cache;
  Result<QueryResponse> first = server.RankGraph(graph, options);
  ASSERT_TRUE(first.ok()) << first.status();
  QueryResponse final_response =
      RefineToConvergence(server, std::move(first).value(), 4096);
  serve::CacheStats after = server.Stats().cache;
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_EQ(after.hits + after.misses, before.hits + before.misses);
  EXPECT_EQ(final_response.completeness.refining, 0);
}

TEST(ApiAnytimeTest, CancelAndStaleHandleSemantics) {
  Server server(McForcedOptions(1, true));
  QueryGraph graph = McGraph(37);
  Result<QueryResponse> open = server.RankGraph(graph, AnytimeOptions(0));
  ASSERT_TRUE(open.ok()) << open.status();
  RefinementHandle handle = open.value().refinement;
  ASSERT_TRUE(handle.valid());

  // Cancel is idempotent; a cancelled handle answers kCancelled (the
  // caller learns it raced a cancel, not that the id never existed).
  ASSERT_TRUE(server.CancelRefinement(handle).ok());
  EXPECT_EQ(server.refinement_count(), 0u);
  EXPECT_TRUE(server.CancelRefinement(handle).ok());
  EXPECT_EQ(server.Refine(handle).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(server.Stats().refinements_cancelled, 1u);

  // A handle the server never issued is NotFound, as is the invalid
  // (zero) handle.
  EXPECT_EQ(server.Refine(RefinementHandle{9999}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.CancelRefinement(RefinementHandle{9999}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.Refine(RefinementHandle{}).status().code(),
            StatusCode::kNotFound);
}

TEST(ApiAnytimeTest, ExpiredDeadlineIsATypedRejectionWithNoPartialAnswer) {
  Server server;
  QueryRequest request =
      MakeProteinFunctionRequest(WellStudiedSymbol(server, 0), 5);
  request.options.mode = QueryMode::kAnytime;
  request.options.deadline = Clock::now() - milliseconds(1);
  Result<QueryResponse> response = server.Query(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.admission.rejected_deadline, 1u);
  EXPECT_EQ(server.refinement_count(), 0u);

  // The per-request budget spells the same deadline relative to the
  // request's own start: a budget below the clock resolution has
  // always expired by the time admission looks at it.
  QueryRequest budgeted =
      MakeProteinFunctionRequest(WellStudiedSymbol(server, 0), 5);
  budgeted.options.mode = QueryMode::kAnytime;
  budgeted.options.budget_s = 1e-12;
  EXPECT_EQ(server.Query(budgeted).status().code(),
            StatusCode::kDeadlineExceeded);

  // RankGraph sits behind the same admission gate.
  QueryGraph graph = McGraph(41);
  QueryOptions late = AnytimeOptions(5);
  late.deadline = Clock::now() - milliseconds(1);
  EXPECT_EQ(server.RankGraph(graph, late).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.Stats().admission.rejected_deadline, 3u);
  EXPECT_EQ(server.refinement_count(), 0u);
}

TEST(ApiAnytimeTest, DeadlineBoundedQueryStillRegistersARefinableHandle) {
  // A deadline long enough to admit but far too short to converge: the
  // response is a usable partial ranking plus a live handle, and
  // finishing the job later still lands on the blocking answer.
  Server server(McForcedOptions(1, true));
  QueryGraph graph = BigMcGraph(43);
  QueryOptions options = AnytimeOptions(0);
  options.budget_s = 5e-4;
  options.mc_trial_budget = 256;
  Result<QueryResponse> first = server.RankGraph(graph, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first.value().refinement.valid())
      << "half a millisecond somehow converged the whole MC workload";
  QueryResponse finished = std::move(first).value();
  if (finished.refinement.valid()) {
    Result<QueryResponse> rest = server.Refine(finished.refinement);
    ASSERT_TRUE(rest.ok()) << rest.status();
    finished = std::move(rest).value();
  }
  EXPECT_TRUE(finished.completeness.complete);

  Server blocking(McForcedOptions(1, true));
  Result<QueryResponse> reference = blocking.RankGraph(graph, BlockingOptions(0));
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(RankingFingerprint(finished),
            RankingFingerprint(reference.value()));
}

TEST(ApiAnytimeTest, ConcurrentRefineAndDeltaHammer) {
  // Refine on one ledger entry from several threads while evidence
  // deltas invalidate cache entries underneath: the ledger's per-handle
  // tallies must keep the final ranking bit-identical to blocking, and
  // nothing may race (run under TSan via the concurrency label).
  Server server(McForcedOptions(2, true));
  const std::string delta_symbol = WellStudiedSymbol(server, 4);
  Result<SessionInfo> session =
      server.OpenSession(MakeProteinFunctionRequest(delta_symbol));
  ASSERT_TRUE(session.ok()) << session.status();

  QueryGraph graph = BigMcGraph(53);
  Result<QueryResponse> first = server.RankGraph(graph, AnytimeOptions(0));
  ASSERT_TRUE(first.ok()) << first.status();
  RefinementHandle handle = first.value().refinement;
  ASSERT_TRUE(handle.valid());

  std::atomic<bool> converged{false};
  std::mutex final_mu;
  QueryResponse final_response;
  std::vector<std::thread> refiners;
  for (int t = 0; t < 3; ++t) {
    refiners.emplace_back([&server, &converged, &final_mu, &final_response,
                           handle] {
      for (int i = 0; i < 400 && !converged.load(); ++i) {
        QueryOptions step;
        step.mc_trial_budget = 512;
        Result<QueryResponse> refined = server.Refine(handle, step);
        if (!refined.ok()) {
          // A sibling won the last increment and the ledger entry is
          // gone — the only acceptable way to lose.
          EXPECT_EQ(refined.status().code(), StatusCode::kNotFound)
              << refined.status();
          break;
        }
        if (refined.value().completeness.complete) {
          std::lock_guard<std::mutex> lock(final_mu);
          final_response = std::move(refined).value();
          converged.store(true);
        }
      }
    });
  }
  std::thread mutator([&server, &session] {
    for (int i = 0; i < 20; ++i) {
      ingest::EvidenceDelta delta;
      delta.revise_source_priors.push_back(
          {"AmiGO", 0.8 + 0.01 * (i % 10)});
      Result<ingest::ApplyReport> applied =
          server.ApplyDelta(session.value().id, delta);
      EXPECT_TRUE(applied.ok()) << applied.status();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : refiners) t.join();
  mutator.join();
  EXPECT_TRUE(converged.load());
  EXPECT_EQ(server.refinement_count(), 0u);

  // The concurrently refined ranking equals the blocking answer on a
  // fresh cache-off single-thread reference.
  Server reference(McForcedOptions(1, false));
  Result<QueryResponse> blocking = reference.RankGraph(graph, BlockingOptions(0));
  ASSERT_TRUE(blocking.ok()) << blocking.status();
  EXPECT_EQ(RankingFingerprint(final_response),
            RankingFingerprint(blocking.value()));
}

}  // namespace
}  // namespace biorank::api
