// Request tracing: span nesting via the thread-local binding, explicit
// cross-thread parent attach, the slow-query ring buffer, and — the
// load-bearing contract — zero perturbation: tracing on vs. off is
// bit-identical for every ranking. Runs under the concurrency ctest
// label (concurrent span writers hammer one Trace).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "api/query.h"
#include "api/server.h"
#include "core/query_graph.h"
#include "obs/export.h"

namespace biorank {
namespace {

TEST(ObsTraceTest, SpanScopeNestsUnderThreadBinding) {
  obs::Trace trace(7);
  EXPECT_EQ(trace.id(), 7u);
  {
    obs::SpanScope root(&trace, "root");
    EXPECT_EQ(obs::CurrentTrace(), &trace);
    EXPECT_EQ(obs::CurrentSpanIndex(), root.index());
    {
      obs::SpanScope child(&trace, "child");
      obs::SpanScope grand(&trace, "grand");
      grand.Counter("k", 3);
    }
    // The nested scopes unwound; a new scope is root's child again.
    obs::SpanScope sibling(&trace, "sibling");
  }
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  std::vector<obs::Span> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "grand");
  EXPECT_EQ(spans[2].parent, 1);
  ASSERT_EQ(spans[2].counters.size(), 1u);
  EXPECT_EQ(spans[2].counters[0].first, "k");
  EXPECT_EQ(spans[2].counters[0].second, 3);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, 0);
  for (const obs::Span& span : spans) {
    EXPECT_GT(span.duration_ns, 0u) << span.name;
  }
}

TEST(ObsTraceTest, NullTraceScopeIsANoOp) {
  obs::SpanScope scope(nullptr, "nothing");
  scope.Counter("k", 1);
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  scope.End();  // Idempotent on a no-op scope.
}

TEST(ObsTraceTest, ExplicitParentAttachesAcrossThreads) {
  obs::Trace trace;
  obs::SpanScope root(&trace, "root");
  std::thread worker([&trace, parent = root.index()] {
    // A pool thread has no binding for this trace; the seam passes the
    // parent index explicitly and the scope binds from there.
    EXPECT_EQ(obs::CurrentTrace(), nullptr);
    obs::SpanScope rpc(&trace, "shard.rpc", parent);
    obs::SpanScope inner(&trace, "inner");  // nests via the new binding
    EXPECT_EQ(inner.index(), 2);
  });
  worker.join();
  root.End();
  std::vector<obs::Span> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "shard.rpc");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, 1);
}

TEST(ObsTraceTest, ForeignTraceRootsInsteadOfNesting) {
  obs::Trace a;
  obs::Trace b;
  obs::SpanScope in_a(&a, "a.root");
  obs::SpanScope in_b(&b, "b.root");  // different trace: roots, not nests
  in_b.End();
  in_a.End();
  EXPECT_EQ(b.Spans()[0].parent, -1);
  // After both scopes closed, the binding is fully unwound.
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
}

TEST(ObsTraceTest, ConcurrentSpanWritersLoseNothing) {
  obs::Trace trace;
  obs::SpanScope root(&trace, "root");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&trace, parent = root.index()] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::SpanScope span(&trace, "work", parent);
        span.Counter("i", i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  root.End();
  std::vector<obs::Span> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u + kThreads * kSpansPerThread);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent, 0);
  }
}

TEST(ObsSlowQueryLogTest, ThresholdFiltersAndRingEvicts) {
  obs::SlowQueryLog log(/*capacity=*/2, /*threshold_s=*/0.01);
  obs::Trace fast(1);
  EXPECT_FALSE(log.Offer("Query", fast, 0.005));
  for (uint64_t id = 2; id <= 4; ++id) {
    obs::Trace slow(id);
    obs::SpanScope root(&slow, "api.query");
    root.End();
    EXPECT_TRUE(log.Offer("Query", slow, 0.02));
  }
  EXPECT_EQ(log.offered(), 4u);
  EXPECT_EQ(log.captured(), 3u);
  std::vector<obs::CapturedTrace> captured = log.Snapshot();
  ASSERT_EQ(captured.size(), 2u);  // oldest (id 2) evicted
  EXPECT_EQ(captured[0].id, 3u);
  EXPECT_EQ(captured[1].id, 4u);
  EXPECT_EQ(captured[1].entry_point, "Query");
  ASSERT_EQ(captured[1].spans.size(), 1u);
}

TEST(ObsSlowQueryLogTest, ZeroThresholdDisablesCapture) {
  obs::SlowQueryLog log(/*capacity=*/4, /*threshold_s=*/0.0);
  obs::Trace trace;
  EXPECT_FALSE(log.Offer("Query", trace, 1e9));
  EXPECT_EQ(log.offered(), 0u);
  EXPECT_EQ(log.size(), 0u);
}

/// One server per suite: MC forced on every survivor (exact factoring
/// off) so traces exercise the serve.mc_shards fan-out, and a
/// threshold low enough that every request is "slow".
api::Server& TracedServer() {
  static api::Server* server = [] {
    api::ServerOptions options;
    options.ranking.exact_max_edges = 0;
    options.obs.slow_query_threshold_s = 1e-12;
    options.obs.slow_trace_capacity = 8;
    return new api::Server(options);
  }();
  return *server;
}

TEST(ObsTracingIntegrationTest, TracingOnVsOffIsBitIdentical) {
  api::Server& server = TracedServer();
  const QueryGraph bridge = MakeFig4bWheatstoneBridge();
  api::QueryOptions untraced;
  // Two untraced passes first (cold then cached), then a traced pass:
  // the fingerprints must all agree bit for bit.
  api::Result<api::QueryResponse> cold = server.RankGraph(bridge, untraced);
  ASSERT_TRUE(cold.ok()) << cold.status();
  api::Result<api::QueryResponse> warm = server.RankGraph(bridge, untraced);
  ASSERT_TRUE(warm.ok()) << warm.status();
  obs::Trace trace(99);
  api::QueryOptions traced = untraced;
  traced.trace = &trace;
  api::Result<api::QueryResponse> with = server.RankGraph(bridge, traced);
  ASSERT_TRUE(with.ok()) << with.status();
  EXPECT_EQ(api::RankingFingerprint(cold.value()),
            api::RankingFingerprint(warm.value()));
  EXPECT_EQ(api::RankingFingerprint(cold.value()),
            api::RankingFingerprint(with.value()));
  EXPECT_GT(trace.SpanCount(), 0u);
}

TEST(ObsTracingIntegrationTest, SlowQueryCaptureHasNestedSpanTree) {
  api::Server& server = TracedServer();
  // A fresh irreducible graph (not in the cache yet) so the capture
  // shows real MC work, served with no caller trace: the server's own
  // slow-query trace does the recording.
  QueryGraph bridge = MakeFig4bWheatstoneBridge();
  for (EdgeId e = 0; e < bridge.graph.num_edges(); ++e) {
    ASSERT_TRUE(
        bridge.graph.SetEdgeProb(e, bridge.graph.edge(e).q * 0.99).ok());
  }
  api::Result<api::QueryResponse> response =
      server.RankGraph(bridge, api::QueryOptions());
  ASSERT_TRUE(response.ok()) << response.status();
  std::vector<obs::CapturedTrace> captured = server.slow_queries().Snapshot();
  ASSERT_FALSE(captured.empty());
  const obs::CapturedTrace& last = captured.back();
  EXPECT_EQ(last.entry_point, "RankGraph");
  // The tree: an api.rank_graph root whose descendants include the
  // serve phases and at least one MC shard span.
  ASSERT_FALSE(last.spans.empty());
  EXPECT_EQ(last.spans[0].name, "api.rank_graph");
  EXPECT_EQ(last.spans[0].parent, -1);
  auto has = [&last](const std::string& name) {
    for (const obs::Span& span : last.spans) {
      if (span.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("api.rank"));
  EXPECT_TRUE(has("serve.canonicalize"));
  EXPECT_TRUE(has("serve.cache_bounds"));
  EXPECT_TRUE(has("serve.prune"));
  EXPECT_TRUE(has("serve.resolve"));
  EXPECT_TRUE(has("serve.mc_shards"));
  EXPECT_TRUE(has("serve.publish"));
  // Every non-root span's parent is a valid earlier index — a tree,
  // not a forest with dangling edges.
  for (size_t i = 1; i < last.spans.size(); ++i) {
    EXPECT_GE(last.spans[i].parent, 0) << last.spans[i].name;
    EXPECT_LT(last.spans[i].parent, static_cast<int>(i))
        << last.spans[i].name;
  }
  const std::string tree = obs::RenderTraceTree(last);
  EXPECT_NE(tree.find("api.rank_graph"), std::string::npos);
  EXPECT_NE(tree.find("serve.mc_shards"), std::string::npos);
  // Metrics agree that a capture happened.
  const std::string text = server.MetricsText();
  EXPECT_NE(text.find("biorank_api_slow_queries_total"), std::string::npos);
}

TEST(ObsTracingIntegrationTest, ServerExportsTheMetricSurface) {
  api::Server& server = TracedServer();
  obs::Snapshot snapshot = server.MetricsSnapshot();
  // The acceptance floor: >= 20 distinct metrics spanning the layers,
  // including the end-to-end and MC latency histograms.
  EXPECT_GE(snapshot.MetricCount(), 20u);
  auto has_histogram = [&snapshot](const std::string& name) {
    for (const obs::HistogramSnapshot& h : snapshot.histograms) {
      if (h.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_histogram("biorank_api_query_seconds"));
  EXPECT_TRUE(has_histogram("biorank_serve_mc_seconds"));
  bool ingest_seen = false;
  bool serve_seen = false;
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    if (c.name.rfind("biorank_ingest_", 0) == 0) ingest_seen = true;
    if (c.name.rfind("biorank_serve_", 0) == 0) serve_seen = true;
  }
  EXPECT_TRUE(ingest_seen);
  EXPECT_TRUE(serve_seen);
  // Stats() is a view over the same counters.
  const api::ServerStats stats = server.Stats();
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    if (c.name == "biorank_api_graph_rankings_total") {
      EXPECT_LE(c.value, stats.graph_rankings);
    }
  }
}

}  // namespace
}  // namespace biorank
