#include "core/topological.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace biorank {
namespace {

TEST(InEdgeTest, CountsIncomingEdges) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<std::vector<double>> r = InEdgeScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[g.answers[0]], 2.0);  // Figure 4a: InEdge = 2.
}

TEST(InEdgeTest, BridgeAnswerHasTwo) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<std::vector<double>> r = InEdgeScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[g.answers[0]], 2.0);
}

TEST(InEdgeTest, IgnoresProbabilitiesEntirely) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.001, "t");
  b.Edge(b.Source(), t, 0.001);
  b.Edge(b.Source(), t, 0.999);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<double>> r = InEdgeScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[t], 2.0);
}

TEST(InEdgeTest, SourceHasZero) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<std::vector<double>> r = InEdgeScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[g.source], 0.0);
}

TEST(InEdgeTest, WorksOnCyclicGraphs) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, t, 0.5);
  b.Edge(t, a, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<double>> r = InEdgeScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[t], 1.0);
  EXPECT_DOUBLE_EQ(r.value()[a], 2.0);
}

TEST(PathCountTest, Fig4aHasTwoPaths) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[g.answers[0]], 2.0);  // Figure 4a: PathC = 2.
}

TEST(PathCountTest, BridgeHasThreePaths) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  // s->a->u, s->b->u, s->a->b->u (Figure 4b: PathC = 3).
  EXPECT_DOUBLE_EQ(r.value()[g.answers[0]], 3.0);
}

TEST(PathCountTest, SourceCountsAsOnePath) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[g.source], 1.0);
}

TEST(PathCountTest, UnreachableNodeHasZeroPaths) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  NodeId island = b.Node(1.0, "island");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t, island});
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[island], 0.0);
}

TEST(PathCountTest, ParallelEdgesCountSeparately) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[t], 2.0);
}

TEST(PathCountTest, CycleReachableFromSourceFails) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, t, 0.5);
  b.Edge(t, a, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PathCountTest, UnreachableCycleIsTolerated) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  NodeId c1 = b.Node(1.0, "c1");
  NodeId c2 = b.Node(1.0, "c2");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(c1, c2, 0.5);
  b.Edge(c2, c1, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[t], 1.0);
}

TEST(PathCountTest, CombinatorialGrowth) {
  // k diamond stages in series double the path count each stage.
  QueryGraphBuilder b;
  NodeId prev = b.Source();
  const int stages = 10;
  for (int i = 0; i < stages; ++i) {
    NodeId top = b.Node(1.0);
    NodeId bottom = b.Node(1.0);
    NodeId join = b.Node(1.0);
    b.Edge(prev, top, 0.5);
    b.Edge(prev, bottom, 0.5);
    b.Edge(top, join, 0.5);
    b.Edge(bottom, join, 0.5);
    prev = join;
  }
  QueryGraph g = std::move(b).Build({prev});
  Result<std::vector<double>> r = PathCountScores(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[prev], 1024.0);  // 2^10.
}

}  // namespace
}  // namespace biorank
