#include "ingest/update_applier.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace biorank::ingest {

UpdateApplier::UpdateApplier(QueryGraph graph,
                             serve::RankingService* service,
                             UpdateApplierOptions options)
    : graph_(std::move(graph)), service_(service), options_(options) {
  canonicalize_ = service_->options().canonicalize;
  canonicalize_.collect_provenance = true;
  init_status_ = graph_.Validate();
  if (!init_status_.ok()) return;
  csr_ = BuildCsrSnapshot(graph_.graph);
  canonicals_.resize(graph_.answers.size());
  std::vector<int> all(graph_.answers.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  init_status_ = Recanonicalize(all);
}

Status UpdateApplier::Recanonicalize(
    const std::vector<int>& answer_indices) {
  std::vector<NodeId> targets(answer_indices.size());
  for (size_t j = 0; j < answer_indices.size(); ++j) {
    targets[j] =
        graph_.answers[static_cast<size_t>(answer_indices[j])];
  }
  std::vector<CanonicalCandidate> fresh;
  BIORANK_RETURN_IF_ERROR(service_->CanonicalizeTargets(
      graph_, targets, canonicalize_, fresh, &csr_));
  for (size_t j = 0; j < answer_indices.size(); ++j) {
    int answer = answer_indices[j];
    index_.Register(answer, fresh[j].key, fresh[j].provenance, graph_);
    canonicals_[static_cast<size_t>(answer)] =
        std::make_unique<CanonicalCandidate>(std::move(fresh[j]));
  }
  return Status::OK();
}

Result<ApplyReport> UpdateApplier::ApplyDelta(
    const EvidenceDelta& delta, const ProbabilisticMetrics* metrics) {
  std::unique_lock<std::shared_mutex> writer(mu_);
  BIORANK_RETURN_IF_ERROR(init_status_);
  // Schema checks here; ApplyDeltaToGraph runs the structural pass, so
  // each delta is validated exactly once per tier.
  if (metrics != nullptr) {
    BIORANK_RETURN_IF_ERROR(ValidateDeltaSchema(delta, *metrics));
  }
  Result<AppliedDelta> applied = ApplyDeltaToGraph(delta, graph_);
  if (!applied.ok()) return applied.status();

  // The graph mutated: refresh the flat snapshot before anything
  // traverses it (re-canonicalization below reads csr_).
  csr_ = BuildCsrSnapshot(graph_.graph);

  ApplyReport report;
  report.ops = delta.size();
  report.nodes_added = static_cast<int>(delta.add_nodes.size());
  report.edges_added = static_cast<int>(delta.add_edges.size());
  report.edges_removed = static_cast<int>(delta.remove_edges.size());
  report.edges_reweighted = static_cast<int>(delta.reweight_edges.size());
  report.node_probs_revised =
      static_cast<int>(delta.revise_node_probs.size());
  report.source_priors_revised =
      static_cast<int>(delta.revise_source_priors.size());

  std::vector<int> dirty =
      index_.AffectedAnswers(delta, applied.value(), graph_);
  report.dirty_answers = static_cast<int>(dirty.size());
  report.clean_answers =
      static_cast<int>(graph_.answers.size() - dirty.size());

  // Candidate orphans must be collected before re-registration
  // overwrites the dirty answers' old keys in the index.
  std::vector<CanonicalKey> stale = index_.ExclusiveKeys(dirty);

  Status recanonicalized = Recanonicalize(dirty);
  if (!recanonicalized.ok()) {
    // The graph mutated but some dirty answer failed to re-canonicalize:
    // the live state is no longer serveable. Poison the applier so every
    // later call surfaces the failure instead of stale rankings.
    init_status_ = recanonicalized;
    return recanonicalized;
  }

  // A dirty answer can re-derive its old key unchanged (a no-op
  // revision, a clamp that left every probability alone); such keys are
  // registered again now and must not be erased from the cache.
  stale.erase(std::remove_if(stale.begin(), stale.end(),
                             [&](const CanonicalKey& key) {
                               return index_.HasKey(key);
                             }),
              stale.end());
  report.stale_keys = stale.size();

  if (options_.invalidate_stale_keys) {
    report.invalidated_entries = service_->OnDelta(stale);
  }
  return report;
}

Result<serve::TopKResult> UpdateApplier::RankTopK(int k) const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  BIORANK_RETURN_IF_ERROR(init_status_);
  std::vector<serve::PreparedCandidate> prepared(canonicals_.size());
  for (size_t i = 0; i < canonicals_.size(); ++i) {
    prepared[i].node = graph_.answers[i];
    prepared[i].canonical = canonicals_[i].get();
  }
  return service_->RankPrepared(prepared, k);
}

QueryGraph UpdateApplier::GraphSnapshot() const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  return graph_;
}

int UpdateApplier::answer_count() const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  return static_cast<int>(graph_.answers.size());
}

}  // namespace biorank::ingest
