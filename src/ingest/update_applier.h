// Applies EvidenceDelta batches to a live, served query graph and keeps
// its top-k ranking incrementally maintained. One UpdateApplier owns one
// live graph plus the per-answer canonicalizations and the dependency
// index built from their provenance; it shares a RankingService (and
// therefore the process-wide reliability cache) with every other live
// graph and with batch RankTopK callers.
//
//   delta -> validate -> apply to graph (writer lock)
//         -> dependency index: dirty answers + orphaned canonical keys
//         -> ReliabilityCache::InvalidateKeys(orphans)  [not Clear()!]
//         -> re-canonicalize only the dirty answers
//   query -> RankPrepared over the per-answer canonicals (reader lock):
//            clean answers hit the warm cache, dirty answers re-enter
//            the bound/prune/resolve pipeline.
//
// Concurrency: a single writer (ApplyDelta) excludes in-flight RankTopK
// readers with a shared_mutex — readers of epoch E never observe writer
// E+1's partial mutations, which is the epoch guarantee a seqlock would
// give without forcing expensive ranking requests to retry. Readers run
// concurrently with each other and fan their per-candidate work out over
// util/parallel's shared pool as usual.
//
// Determinism contract (asserted in tests and bench_ingest_updates):
// after any sequence of deltas, RankTopK output is bit-identical to a
// from-scratch RankingService::RankTopK on a fresh copy of the updated
// graph, at any thread count, cache on or off — every resolved value is
// a pure function of the canonical key, and clean answers keep keys that
// are provably unchanged (their restricted subgraphs were untouched).

#ifndef BIORANK_INGEST_UPDATE_APPLIER_H_
#define BIORANK_INGEST_UPDATE_APPLIER_H_

#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/canonical.h"
#include "core/csr_snapshot.h"
#include "core/query_graph.h"
#include "ingest/delta.h"
#include "ingest/dependency_index.h"
#include "serve/ranking_service.h"
#include "storage/wal.h"
#include "util/status.h"

namespace biorank::ingest {

/// Configuration for UpdateApplier. Canonicalization always runs with the
/// owning service's CanonicalizeOptions (plus provenance collection) so
/// the applier's keys are interchangeable with RankTopK's.
struct UpdateApplierOptions {
  /// Erase orphaned canonical keys from the service's reliability cache
  /// on every delta. Disabling keeps stale entries around (they can never
  /// be *wrong* — keys are pure functions of the subgraph — but they
  /// waste capacity until the LRU ages them out).
  bool invalidate_stale_keys = true;
};

/// What one ApplyDelta did, for observability and the ingest bench.
struct ApplyReport {
  int ops = 0;                   ///< Ops in the delta, all groups.
  int nodes_added = 0;
  int edges_added = 0;
  int edges_removed = 0;
  int edges_reweighted = 0;
  int node_probs_revised = 0;
  int source_priors_revised = 0;
  int dirty_answers = 0;         ///< Answers re-entering the pipeline.
  int clean_answers = 0;         ///< Answers whose canonicals survived.
  size_t stale_keys = 0;         ///< Canonical keys orphaned by the delta.
  size_t invalidated_entries = 0;///< Live cache entries actually dropped.
};

/// A live, updatable served query graph. Thread-safe: any number of
/// concurrent RankTopK/GraphSnapshot readers, one ApplyDelta writer at a
/// time.
class UpdateApplier {
 public:
  /// Takes ownership of `graph` (the answer set stays fixed for the
  /// session; deltas revise evidence, not the question). `service` must
  /// outlive the applier. Canonicalizes every answer up front; a
  /// canonicalization failure surfaces on the first method call.
  UpdateApplier(QueryGraph graph, serve::RankingService* service,
                UpdateApplierOptions options = {});

  /// The warm-boot constructor: like the primary one, but adopts a
  /// preloaded flat snapshot (storage/snapshot.h's bounds-checked load)
  /// instead of rebuilding it from the graph. The caller guarantees
  /// `preloaded_csr` is the snapshot of `graph` — it was serialized from
  /// this same pair and validated on load; re-canonicalization then
  /// traverses byte-identical arrays, which is half of the recovered
  /// server's bit-identity story. `applied_lsn` seeds last_wal_lsn()
  /// with the checkpoint's per-session position so a re-checkpoint
  /// before any new delta still covers the already-baked-in history.
  UpdateApplier(QueryGraph graph, serve::RankingService* service,
                CsrSnapshot preloaded_csr, uint64_t applied_lsn,
                UpdateApplierOptions options = {});

  /// Validates and applies one delta under the writer lock, invalidates
  /// exactly the orphaned cache keys, and re-canonicalizes exactly the
  /// dirty answers. When `metrics` is non-null the delta is additionally
  /// validated against the schema layer (Mediator::ApplyDelta passes its
  /// metrics). On validation failure nothing changes.
  Result<ApplyReport> ApplyDelta(const EvidenceDelta& delta,
                                 const ProbabilisticMetrics* metrics =
                                     nullptr);

  /// Attaches the durability log (storage/wal.h): every later ApplyDelta
  /// becomes log-then-apply — the delta is structurally validated, then
  /// appended to `wal` as session `session_id`, then applied. Invalid
  /// deltas are rejected *before* logging, so a WAL replay can never
  /// fail validation. Pass null to detach. Borrowed; must outlive the
  /// applier (or be detached first).
  void AttachWal(storage::Wal* wal, uint64_t session_id);

  /// Recovery path: applies a delta that is *already* in the WAL without
  /// re-appending it, recording `lsn` as this session's applied
  /// position. Same semantics as ApplyDelta otherwise.
  Result<ApplyReport> ApplyReplayed(const EvidenceDelta& delta, uint64_t lsn,
                                    const ProbabilisticMetrics* metrics =
                                        nullptr);

  /// LSN of the last delta applied through this applier (logged or
  /// replayed); 0 before any. Reader lock.
  uint64_t last_wal_lsn() const;

  /// A checkpoint capture: the live graph, the maintained flat snapshot,
  /// and the applied LSN, all copied under one reader lock so they are
  /// mutually consistent (a concurrent writer either happened before the
  /// whole triple or after it).
  struct FrozenState {
    QueryGraph graph;
    CsrSnapshot csr;
    uint64_t wal_lsn = 0;
  };
  FrozenState Freeze() const;

  /// Ranks the live answer set under the reader lock: clean answers ride
  /// their kept canonicals (warm cache), dirty ones were re-canonicalized
  /// by the last delta. Same semantics as RankingService::RankTopK.
  Result<serve::TopKResult> RankTopK(int k) const;

  /// Copy of the live graph (reader lock) — the from-scratch rebuild
  /// reference in tests and benches ranks this.
  QueryGraph GraphSnapshot() const;

  int answer_count() const;

  /// The dependency index. Not synchronized — inspect only while no
  /// writer is running (tests).
  const DependencyIndex& dependency_index() const { return index_; }

  /// The maintained flat snapshot of the live graph (core/csr_snapshot.h):
  /// rebuilt after every successful ApplyDelta graph mutation, before the
  /// dirty answers re-canonicalize, so re-canonicalization always
  /// traverses the packed arrays of the *updated* graph. Byte-equal to
  /// BuildCsrSnapshot(GraphSnapshot().graph) at every quiesce point
  /// (asserted in tests). Not synchronized — inspect only while no writer
  /// is running, like dependency_index().
  const CsrSnapshot& csr_snapshot() const { return csr_; }

  const UpdateApplierOptions& options() const { return options_; }

 private:
  /// Canonicalizes the given answers of the live graph (parallel, pure
  /// per answer) and registers them in the dependency index. Requires the
  /// writer lock (or the constructor's exclusivity).
  Status Recanonicalize(const std::vector<int>& answer_indices);

  /// Shared init tail of both constructors (canonicalize every answer).
  void Init();

  /// The delta pipeline body; requires the writer lock. `replay_lsn` 0
  /// means a live delta (append to the attached WAL, if any); nonzero
  /// means a replay of an already-logged record at that LSN.
  Result<ApplyReport> ApplyLocked(const EvidenceDelta& delta,
                                  const ProbabilisticMetrics* metrics,
                                  uint64_t replay_lsn);

  mutable std::shared_mutex mu_;
  QueryGraph graph_;
  serve::RankingService* service_;
  UpdateApplierOptions options_;
  CanonicalizeOptions canonicalize_;
  /// Per-answer canonicalizations; unique_ptr for pointer stability
  /// across the vector (RankPrepared holds raw pointers during a
  /// request; dirty slots are swapped whole under the writer lock).
  std::vector<std::unique_ptr<CanonicalCandidate>> canonicals_;
  DependencyIndex index_;
  /// Flat read-side view of graph_; rebuilt under the writer lock on
  /// every delta (the delta layer mutates graph_ in place, and a rebuild
  /// is O(V+E) — the same order as the mask BFS it feeds).
  CsrSnapshot csr_;
  Status init_status_;
  /// Durability hookup (null = memory-only). Guarded by mu_ like the
  /// rest of the writer state.
  storage::Wal* wal_ = nullptr;
  uint64_t wal_session_id_ = 0;
  uint64_t last_wal_lsn_ = 0;
};

}  // namespace biorank::ingest

#endif  // BIORANK_INGEST_UPDATE_APPLIER_H_
