#include "api/server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/canonical.h"
#include "obs/export.h"
#include "storage/codec.h"
#include "util/file.h"
#include "util/parallel.h"

namespace biorank::api {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// The ranking options the shared service is built from: the caller's,
/// plus the server's metrics registry (unless the caller already wired
/// a registry of their own).
serve::RankingServiceOptions WithRegistry(serve::RankingServiceOptions ranking,
                                          obs::Registry* registry) {
  if (ranking.registry == nullptr) ranking.registry = registry;
  return ranking;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      obs_registry_(options_.obs.registry != nullptr
                        ? options_.obs.registry
                        : std::make_shared<obs::Registry>()),
      universe_(ProteinUniverse::Generate(options_.universe)),
      registry_(universe_, options_.sources),
      mediator_(registry_, options_.mediator),
      service_(WithRegistry(options_.ranking, obs_registry_.get())),
      harness_(universe_, registry_, mediator_, options_.ranker),
      admission_(options_.admission),
      slow_log_(options_.obs.slow_trace_capacity,
                options_.obs.slow_query_threshold_s) {
  options_.ranking.registry = service_.options().registry;
  InitMetrics();
  if (!options_.storage_dir.empty()) {
    storage_status_ = BootStorage();
    if (!storage_status_.ok()) {
      // A failed boot must not leave half-recovered sessions serving:
      // fall back to a memory-only server and surface the error through
      // storage_status(). (The construction contract is "never throws";
      // callers that require durability check storage_status()/durable().)
      sessions_.clear();
      wal_.reset();
      next_session_id_.store(1, std::memory_order_relaxed);
    }
  }
}

Server::~Server() {
  if (wal_ != nullptr) wal_->Sync();  // Best-effort; errors have nowhere to go.
}

uint64_t Server::StorageFingerprint() const {
  // Every option that changes ranking values (or graph shape) goes into
  // the key; formatting knobs (observability, admission, eviction) stay
  // out — they are free to differ across restarts of the same store.
  std::string key;
  auto field = [&key](uint64_t v) {
    key += std::to_string(v);
    key += '|';
  };
  const UniverseOptions& u = options_.universe;
  field(u.seed);
  field(static_cast<uint64_t>(u.num_go_terms));
  field(static_cast<uint64_t>(u.num_families));
  field(static_cast<uint64_t>(u.proteins_per_family));
  field(static_cast<uint64_t>(u.hypothetical_family_size));
  field(static_cast<uint64_t>(u.family_function_pool));
  field(static_cast<uint64_t>(u.num_well_studied));
  field(static_cast<uint64_t>(u.num_hypothetical));
  field(options_.mediator.include_minor_sources ? 1 : 0);
  const serve::RankingServiceOptions& r = options_.ranking;
  field(r.seed);
  field(static_cast<uint64_t>(r.exact_max_edges));
  field(static_cast<uint64_t>(r.mc_shard_trials));
  // Doubles ride their bit patterns (the values are configuration
  // constants, so bit-equality is the right notion of "same").
  auto double_field = [&](double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    field(bits);
  };
  double_field(r.mc_epsilon);
  double_field(r.mc_delta);
  double_field(r.bound_resolve_epsilon);
  return Fnv1a64(key);
}

Status Server::BootStorage() {
  const SteadyClock::time_point start = SteadyClock::now();
  const std::string& dir = options_.storage_dir;
  BIORANK_RETURN_IF_ERROR(util::EnsureDir(dir));
  const uint64_t fingerprint = StorageFingerprint();

  // 1. Newest valid snapshot (corrupt ones fall back to older; a
  //    fingerprint mismatch aborts the boot).
  Result<storage::SnapshotLoadResult> loaded =
      storage::LoadNewestValidSnapshot(dir, fingerprint);
  if (!loaded.ok()) return loaded.status();
  storage::SnapshotLoadResult& snap = loaded.value();
  recovery_report_.snapshot_loaded = snap.found;
  recovery_report_.corrupt_snapshots_skipped = snap.corrupt_skipped;

  uint64_t covering_lsn = 0;
  uint64_t next_id = 1;
  // Per-session replay floor: deltas with lsn <= the floor are already
  // baked into the snapshotted graph.
  std::unordered_map<uint64_t, uint64_t> applied_lsn;
  if (snap.found) {
    covering_lsn = snap.state.wal_lsn;
    recovery_report_.snapshot_lsn = covering_lsn;
    next_id = snap.state.next_session_id;
    for (storage::SnapshotSession& s : snap.state.sessions) {
      auto session = std::make_shared<Session>();
      session->live.applier = std::make_unique<ingest::UpdateApplier>(
          std::move(s.graph), &service_, std::move(s.csr), s.applied_lsn);
      session->live.go_node = std::move(s.go_node);
      session->live.answer_labels = std::move(s.answer_labels);
      session->live.matched_proteins = s.matched_proteins;
      applied_lsn[s.id] = s.applied_lsn;
      sessions_.emplace(s.id, std::move(session));
    }
    std::vector<std::pair<std::string, serve::CacheEntry>> entries;
    entries.reserve(snap.state.cache_entries.size());
    for (storage::SnapshotCacheEntry& e : snap.state.cache_entries) {
      entries.emplace_back(std::move(e.repr), e.entry);
    }
    service_.cache().Restore(entries);
    recovery_report_.cache_entries_restored = entries.size();
  }

  // 2. WAL open: scans every complete record, truncates a torn tail.
  storage::WalOptions wal_options = options_.wal;
  if (wal_options.registry == nullptr) {
    wal_options.registry = obs_registry_.get();
  }
  Result<storage::Wal::OpenResult> opened =
      storage::Wal::Open(storage::WalPath(dir), fingerprint, wal_options);
  if (!opened.ok()) return opened.status();
  storage::WalReplay replay = std::move(opened.value().replay);
  wal_ = std::move(opened.value().wal);
  recovery_report_.wal_truncated_bytes = replay.truncated_bytes;
  recovery_report_.wal_torn_tail = replay.torn_tail;

  // 3. Replay past the snapshot. Records are in LSN order, so a delta
  //    always finds its session already opened (or already closed — in
  //    which case its whole history is settled and it skips).
  for (const storage::WalRecord& record : replay.records) {
    switch (record.type) {
      case storage::WalRecordType::kOpenSession: {
        if (record.lsn <= covering_lsn) {
          ++recovery_report_.skipped_records;
          break;
        }
        ExploratoryQuery query;
        storage::ByteReader in(record.body);
        BIORANK_RETURN_IF_ERROR(storage::DecodeQuery(in, query));
        // Re-materializing is deterministic (the universe and sources
        // are pure functions of the options), so the replayed session is
        // the one that was opened.
        Result<Mediator::LiveExploratoryQuery> live =
            mediator_.ServeLive(query, service_);
        if (!live.ok()) return live.status();
        auto session = std::make_shared<Session>();
        session->live = std::move(live.value());
        sessions_[record.session_id] = std::move(session);
        applied_lsn[record.session_id] = 0;
        next_id = std::max(next_id, record.session_id + 1);
        ++recovery_report_.replayed_records;
        break;
      }
      case storage::WalRecordType::kCloseSession: {
        if (record.lsn <= covering_lsn) {
          ++recovery_report_.skipped_records;
          break;
        }
        sessions_.erase(record.session_id);
        ++recovery_report_.replayed_records;
        break;
      }
      case storage::WalRecordType::kApplyDelta: {
        auto it = sessions_.find(record.session_id);
        if (it == sessions_.end() ||
            record.lsn <= applied_lsn[record.session_id]) {
          ++recovery_report_.skipped_records;
          break;
        }
        ingest::EvidenceDelta delta;
        storage::ByteReader in(record.body);
        BIORANK_RETURN_IF_ERROR(storage::DecodeDelta(in, delta));
        // Structural validation ran before the record was logged, so the
        // replayed apply revalidates against the same graph state and
        // cannot fail for a delta that succeeded live.
        Result<ingest::ApplyReport> applied =
            it->second->live.applier->ApplyReplayed(delta, record.lsn);
        if (!applied.ok()) return applied.status();
        ++recovery_report_.replayed_records;
        break;
      }
    }
  }
  next_session_id_.store(next_id, std::memory_order_relaxed);
  for (auto& [id, session] : sessions_) {
    session->live.applier->AttachWal(wal_.get(), id);
  }
  recovery_report_.sessions_recovered = sessions_.size();
  recovery_report_.seconds = SecondsSince(start);
  metrics_.recovery_seconds->Observe(recovery_report_.seconds);
  metrics_.replayed_records->Add(recovery_report_.replayed_records);
  return Status::OK();
}

Result<CheckpointReport> Server::Checkpoint() {
  Tick();
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "api: server has no storage attached (set ServerOptions::"
        "storage_dir; check storage_status() for a boot failure)");
  }
  const SteadyClock::time_point start = SteadyClock::now();
  storage::SnapshotState state;
  state.fingerprint = StorageFingerprint();
  std::vector<std::pair<SessionId, std::shared_ptr<Session>>> live;
  {
    // The LSN capture and the session-set capture happen under the one
    // lock that open/close records are appended under, so the captured
    // LSN cleanly partitions session-lifecycle records into "reflected
    // in the list" and "to be replayed".
    std::lock_guard<std::mutex> lock(sessions_mu_);
    state.wal_lsn = wal_->last_lsn();
    state.next_session_id =
        next_session_id_.load(std::memory_order_relaxed);
    live.assign(sessions_.begin(), sessions_.end());
  }
  // Everything below runs off the registry lock: opens, closes, deltas,
  // and rankings all proceed concurrently. Freeze takes each applier's
  // *shared* lock, so even the frozen session keeps serving reads.
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  state.sessions.reserve(live.size());
  for (auto& [id, session] : live) {
    ingest::UpdateApplier::FrozenState frozen = session->live.applier->Freeze();
    storage::SnapshotSession snap;
    snap.id = id;
    snap.applied_lsn = frozen.wal_lsn;
    snap.matched_proteins = session->live.matched_proteins;
    snap.go_node = session->live.go_node;
    snap.answer_labels = session->live.answer_labels;
    snap.graph = std::move(frozen.graph);
    snap.csr = std::move(frozen.csr);
    state.sessions.push_back(std::move(snap));
  }
  for (auto& [repr, entry] : service_.cache().Export()) {
    state.cache_entries.push_back({std::move(repr), entry});
  }
  // Durability barrier: every LSN the snapshot references (the covering
  // LSN and every session's applied_lsn) was appended before this point,
  // so after the sync none of them can be lost to a torn tail — which is
  // what makes resuming appends at replay.last_lsn + 1 safe (an LSN the
  // next boot's snapshot references is never reassigned).
  BIORANK_RETURN_IF_ERROR(wal_->Sync());
  CheckpointReport report;
  BIORANK_RETURN_IF_ERROR(storage::WriteSnapshotFile(
      options_.storage_dir, state, &report.path, &report.bytes));
  report.wal_lsn = state.wal_lsn;
  report.sessions = state.sessions.size();
  report.cache_entries = state.cache_entries.size();
  report.seconds = SecondsSince(start);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  metrics_.checkpoints->Add();
  metrics_.snapshot_write_seconds->Observe(report.seconds);
  return report;
}

Result<uint64_t> Server::LogSessionEventLocked(storage::WalRecordType type,
                                               SessionId id,
                                               const std::string& body) {
  return wal_->Append(type, id, body);
}

void Server::InitMetrics() {
  obs::Registry& reg = *obs_registry_;
  metrics_.queries =
      reg.GetCounter("biorank_api_queries_total", "Query requests served OK");
  metrics_.batches = reg.GetCounter("biorank_api_batches_total",
                                    "RunBatch calls");
  metrics_.batch_requests = reg.GetCounter(
      "biorank_api_batch_requests_total", "Requests served inside batches");
  metrics_.graph_rankings = reg.GetCounter("biorank_api_graph_rankings_total",
                                           "RankGraph calls served OK");
  metrics_.sessions_opened =
      reg.GetCounter("biorank_api_sessions_opened_total", "Sessions opened");
  metrics_.sessions_closed = reg.GetCounter(
      "biorank_api_sessions_closed_total", "Explicit CloseSession calls");
  metrics_.sessions_evicted = reg.GetCounter(
      "biorank_api_sessions_evicted_total", "Idle-eviction closures");
  metrics_.session_queries = reg.GetCounter(
      "biorank_api_session_queries_total", "QuerySession requests served OK");
  metrics_.deltas_applied = reg.GetCounter("biorank_ingest_deltas_total",
                                           "Evidence deltas applied");
  metrics_.delta_ops = reg.GetCounter("biorank_ingest_delta_ops_total",
                                      "Ops inside applied deltas");
  metrics_.dirty_answers =
      reg.GetCounter("biorank_ingest_dirty_answers_total",
                     "Answers re-entering the pipeline after a delta");
  metrics_.invalidated_entries =
      reg.GetCounter("biorank_ingest_invalidated_entries_total",
                     "Cache entries dropped by delta invalidation");
  metrics_.refinements_started =
      reg.GetCounter("biorank_api_refinements_started_total",
                     "Anytime responses that left a handle");
  metrics_.refinements_completed =
      reg.GetCounter("biorank_api_refinements_completed_total",
                     "Handles refined to completion");
  metrics_.refinements_cancelled =
      reg.GetCounter("biorank_api_refinements_cancelled_total",
                     "CancelRefinement calls that took");
  metrics_.errors = reg.GetCounter("biorank_api_errors_total",
                                   "Requests that returned an error status");
  metrics_.slow_queries = reg.GetCounter(
      "biorank_api_slow_queries_total",
      "Requests captured by the slow-query trace ring buffer");
  metrics_.checkpoints = reg.GetCounter(
      "biorank_storage_checkpoints_total", "Snapshot files written");
  metrics_.replayed_records = reg.GetCounter(
      "biorank_storage_replayed_records_total",
      "WAL records applied during warm boots");
  metrics_.snapshot_write_seconds = reg.GetHistogram(
      "biorank_storage_snapshot_write_seconds",
      "Checkpoint wall time, capture through rename");
  metrics_.recovery_seconds = reg.GetHistogram(
      "biorank_storage_recovery_seconds",
      "Warm-boot wall time (snapshot load + WAL replay)");
  metrics_.query_seconds =
      reg.GetHistogram("biorank_api_query_seconds",
                       "End-to-end request latency, every entry point");
  metrics_.queue_seconds = reg.GetHistogram(
      "biorank_api_queue_seconds", "Admission-queue wait per request");
  metrics_.integrate_seconds = reg.GetHistogram(
      "biorank_api_integrate_seconds", "Mediator crawl + graph stitching");
  metrics_.rank_seconds = reg.GetHistogram(
      "biorank_api_rank_seconds", "Serving-layer bounds + blocking top-k");
  metrics_.refine_seconds = reg.GetHistogram(
      "biorank_api_refine_seconds", "Incremental anytime MC per call");
  metrics_.apply_seconds = reg.GetHistogram(
      "biorank_ingest_apply_seconds", "Evidence-delta apply latency");
  // Gauges and the legacy Stats() structs (cache, admission) are
  // snapshot views: collectors flatten them at TakeSnapshot() time, so
  // the structs stay the source of truth they always were.
  reg.AddCollector([this](obs::Snapshot& snapshot) {
    snapshot.gauges.push_back({"biorank_api_open_sessions",
                               "Currently live sessions",
                               static_cast<double>(session_count())});
    snapshot.gauges.push_back({"biorank_api_open_refinements",
                               "Currently live refinement handles",
                               static_cast<double>(refinement_count())});
    const serve::CacheStats cache = service_.cache().Stats();
    snapshot.counters.push_back({"biorank_serve_cache_hits_total",
                                 "Reliability-cache store hits", cache.hits});
    snapshot.counters.push_back({"biorank_serve_cache_misses_total",
                                 "Reliability-cache store misses",
                                 cache.misses});
    snapshot.counters.push_back({"biorank_serve_cache_insertions_total",
                                 "Reliability-cache insertions",
                                 cache.insertions});
    snapshot.counters.push_back({"biorank_serve_cache_evictions_total",
                                 "Reliability-cache LRU evictions",
                                 cache.evictions});
    snapshot.counters.push_back({"biorank_serve_cache_invalidations_total",
                                 "Reliability-cache delta invalidations",
                                 cache.invalidations});
    snapshot.gauges.push_back({"biorank_serve_cache_entries",
                               "Live reliability-cache entries",
                               static_cast<double>(cache.entries)});
    const AdmissionStats admission = admission_.Stats();
    snapshot.counters.push_back({"biorank_api_admission_admitted_total",
                                 "Requests admitted", admission.admitted});
    snapshot.counters.push_back(
        {"biorank_api_admission_rejected_deadline_total",
         "Rejections: deadline passed while queued",
         admission.rejected_deadline});
    snapshot.counters.push_back(
        {"biorank_api_admission_rejected_capacity_total",
         "Rejections: queue at capacity", admission.rejected_capacity});
    snapshot.counters.push_back({"biorank_api_admission_queued_total",
                                 "Requests that waited in the queue",
                                 admission.queued});
    snapshot.gauges.push_back({"biorank_api_admission_queue_depth",
                               "Requests waiting right now",
                               static_cast<double>(admission.queue_depth)});
    snapshot.gauges.push_back(
        {"biorank_api_admission_peak_queue_depth", "Peak queue depth",
         static_cast<double>(admission.peak_queue_depth)});
    snapshot.gauges.push_back({"biorank_api_admission_inflight",
                               "Requests being served right now",
                               static_cast<double>(admission.inflight)});
    snapshot.gauges.push_back({"biorank_api_admission_queue_wait_seconds",
                               "Cumulative admission-queue wait",
                               admission.queue_wait_s_total});
  });
}

Server::TraceHolder Server::StartTrace(obs::Trace* caller_trace) {
  TraceHolder holder;
  holder.trace = caller_trace;
  if (caller_trace == nullptr && slow_log_.threshold_s() > 0.0) {
    holder.owned = std::make_unique<obs::Trace>(
        next_trace_id_.fetch_add(1, std::memory_order_relaxed));
    holder.trace = holder.owned.get();
  }
  return holder;
}

void Server::RecordPhases(const PhaseTiming& timing) {
  if (timing.queue_s > 0.0) metrics_.queue_seconds->Observe(timing.queue_s);
  if (timing.integrate_s > 0.0) {
    metrics_.integrate_seconds->Observe(timing.integrate_s);
  }
  if (timing.rank_s > 0.0) metrics_.rank_seconds->Observe(timing.rank_s);
  if (timing.refine_s > 0.0) metrics_.refine_seconds->Observe(timing.refine_s);
  metrics_.query_seconds->Observe(timing.total_s);
}

void Server::MaybeCaptureSlow(const char* entry_point, const obs::Trace* trace,
                              double total_s) {
  if (trace == nullptr) return;
  if (slow_log_.Offer(entry_point, *trace, total_s)) {
    metrics_.slow_queries->Add();
  }
}

std::string Server::MetricsText() const {
  return obs::RenderPrometheusText(obs_registry_->TakeSnapshot());
}

std::string Server::MetricsJson() const {
  return obs::RenderJson(obs_registry_->TakeSnapshot());
}

obs::Snapshot Server::MetricsSnapshot() const {
  return obs_registry_->TakeSnapshot();
}

namespace {

/// Clamps a caller-facing top_k to the serve layer's contract
/// (<= 0 means "rank all", k never exceeds the answer count).
int ClampTopK(int top_k, int answers) {
  return top_k > 0 ? std::min(top_k, answers) : answers;
}

/// Converts a serve-layer result into the response's labeled answers +
/// stats; `label(node)` supplies the answer label (graph lookup for
/// one-shot requests, the session's captured labels for live queries).
template <typename LabelFn>
void FillRanked(const serve::TopKResult& top, LabelFn label,
                QueryResponse& response) {
  response.stats = top.stats;
  response.top.reserve(top.top.size());
  for (const serve::RankedCandidate& candidate : top.top) {
    RankedAnswer answer;
    answer.node = candidate.node;
    answer.label = label(candidate.node);
    answer.reliability = candidate.reliability;
    answer.lower = candidate.lower;
    answer.upper = candidate.upper;
    answer.exact = candidate.exact;
    answer.resolution = candidate.resolution;
    response.top.push_back(std::move(answer));
  }
}

}  // namespace

Status Server::RankAnswerSubset(const QueryGraph& graph,
                                const std::vector<NodeId>& answers, int top_k,
                                serve::RankingService& service,
                                QueryResponse& response) {
  int count = static_cast<int>(answers.size());
  if (count == 0) return Status::OK();  // Nothing to rank.
  Result<serve::TopKResult> top =
      service.RankTopK(graph, answers, ClampTopK(top_k, count));
  if (!top.ok()) return top.status();
  FillRanked(top.value(),
             [&graph](NodeId node) { return graph.graph.node(node).label; },
             response);
  return Status::OK();
}

Status Server::AdvanceRefinement(Refinement& refinement,
                                 const QueryOptions& options,
                                 SteadyClock::time_point deadline,
                                 QueryResponse& response) {
  serve::RankingService& service = refinement.private_service != nullptr
                                       ? *refinement.private_service
                                       : service_;
  serve::RefinementState& state = refinement.state;
  const SteadyClock::time_point refine_start = SteadyClock::now();
  if (!state.complete()) {
    if (options.mc_trial_budget > 0) {
      // Budgeted increments: one per call, or — under a deadline —
      // repeated until the ranking settles or the deadline fires.
      const bool repeat = deadline != SteadyClock::time_point::max();
      do {
        Result<serve::Completeness> increment = serve::RefineIncrement(
            service, state, options.mc_trial_budget, deadline);
        if (!increment.ok()) return increment.status();
      } while (repeat && !state.complete() && SteadyClock::now() < deadline);
    } else if (deadline != SteadyClock::time_point::max() ||
               options.mode == QueryMode::kBlocking) {
      // No per-increment budget: refine each survivor to convergence,
      // stopping between survivors if the deadline fires.
      Result<serve::Completeness> increment =
          serve::RefineIncrement(service, state, /*trial_budget=*/0,
                                 deadline);
      if (!increment.ok()) return increment.status();
    }
    // Anytime with no budget and no deadline spends nothing: the
    // bounds-only ranking is the answer.
  }
  response.timing.refine_s = SecondsSince(refine_start);

  serve::TopKResult view;
  view.top = serve::CurrentRanking(state);
  view.stats = state.stats;
  const auto& labels = refinement.labels;
  FillRanked(view,
             [&labels](NodeId node) {
               auto it = labels.find(node);
               return it != labels.end() ? it->second : std::string();
             },
             response);
  response.completeness = serve::Summarize(state);
  return Status::OK();
}

Result<QueryResponse> Server::Query(const QueryRequest& request) {
  Tick();
  const QueryOptions& options = request.options;
  SteadyClock::time_point start = SteadyClock::now();
  const SteadyClock::time_point deadline = options.DeadlineOrMax(start);
  TraceHolder tracing = StartTrace(options.trace);
  QueryResponse response;
  {
    // The root span binds this thread's trace context; the serve layer
    // records its phase spans under it via obs::CurrentTrace(). Closed
    // before the slow-query offer so the captured tree has durations.
    obs::SpanScope root(tracing.trace, "api.query");
    // Admission first: a request that cannot start before its deadline
    // is rejected with the typed code and no partial answer. The ticket
    // is held for the whole call — integration and ranking both count
    // against the server's concurrency cap.
    obs::SpanScope admit(tracing.trace, "api.admit");
    Result<AdmissionQueue::Ticket> ticket = admission_.Admit(deadline);
    admit.End();
    if (!ticket.ok()) {
      metrics_.errors->Add();
      return ticket.status();
    }
    response.timing.queue_s = ticket.value().queue_s();

    SteadyClock::time_point integrate_start = SteadyClock::now();
    obs::SpanScope integrate(tracing.trace, "api.integrate");
    Result<ExploratoryQueryResult> run = mediator_.Run(request.query);
    integrate.End();
    if (!run.ok()) {
      metrics_.errors->Add();
      return run.status();
    }
    response.result = std::move(run.value());
    response.timing.integrate_s = SecondsSince(integrate_start);
    if (options.rank) {
      obs::SpanScope rank(tracing.trace, "api.rank");
      Status ranked =
          RankWithOptions(response.result.query_graph,
                          response.result.query_graph.answers, options,
                          deadline, response);
      if (!ranked.ok()) {
        metrics_.errors->Add();
        return ranked;
      }
    } else {
      response.completeness.complete = true;  // Nothing ranked, nothing open.
    }
    response.timing.total_s = SecondsSince(start);
    metrics_.queries->Add();
    RecordPhases(response.timing);
  }
  MaybeCaptureSlow("Query", tracing.trace, response.timing.total_s);
  return response;
}

Status Server::RankWithOptions(const QueryGraph& graph,
                               const std::vector<NodeId>& answers,
                               const QueryOptions& options,
                               SteadyClock::time_point deadline,
                               QueryResponse& response) {
  const bool foreign_seed =
      options.seed != 0 && options.seed != options_.ranking.seed;
  if (options.mode == QueryMode::kBlocking) {
    SteadyClock::time_point rank_start = SteadyClock::now();
    Status ranked;
    if (!foreign_seed) {
      ranked = RankAnswerSubset(graph, answers, options.top_k, service_,
                                response);
    } else {
      // A foreign MC seed changes every irreducible residue's value, so
      // it must not read or publish through the shared cache; serve it
      // from a request-private service instead.
      serve::RankingServiceOptions foreign = options_.ranking;
      foreign.seed = options.seed;
      serve::RankingService private_service(foreign);
      ranked = RankAnswerSubset(graph, answers, options.top_k,
                                private_service, response);
    }
    if (!ranked.ok()) return ranked;
    response.timing.rank_s = SecondsSince(rank_start);
    // Blocking rankings are final by construction. The resolved/bounded
    // split is derived from the scheduler counters (pruned counts unique
    // canonicals, so request-local duplicates fold into one).
    response.completeness.resolved =
        response.stats.candidates - response.stats.pruned;
    response.completeness.bounded = response.stats.pruned;
    response.completeness.complete = true;
    return Status::OK();
  }
  // Anytime: deterministic bounds-first prepare, then whatever
  // refinement the deadline/budget allows; unresolved answers come
  // back as kRefining brackets behind a handle.
  const int count = static_cast<int>(answers.size());
  if (count == 0) {
    response.completeness.complete = true;
    return Status::OK();
  }
  auto refinement = std::make_shared<Refinement>();
  if (foreign_seed) {
    serve::RankingServiceOptions foreign = options_.ranking;
    foreign.seed = options.seed;
    refinement->private_service =
        std::make_unique<serve::RankingService>(foreign);
  }
  serve::RankingService& service = refinement->private_service != nullptr
                                       ? *refinement->private_service
                                       : service_;
  SteadyClock::time_point rank_start = SteadyClock::now();
  Result<serve::RefinementState> prepared = serve::PrepareAnytime(
      service, graph, answers, ClampTopK(options.top_k, count));
  if (!prepared.ok()) return prepared.status();
  refinement->state = std::move(prepared.value());
  response.timing.rank_s = SecondsSince(rank_start);
  refinement->labels.reserve(refinement->state.nodes.size());
  for (NodeId node : refinement->state.nodes) {
    refinement->labels.emplace(node, graph.graph.node(node).label);
  }
  BIORANK_RETURN_IF_ERROR(
      AdvanceRefinement(*refinement, options, deadline, response));
  if (!refinement->state.complete()) {
    RefinementHandle handle;
    handle.id = next_refinement_id_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(refinements_mu_);
      refinements_.emplace(handle.id, std::move(refinement));
    }
    metrics_.refinements_started->Add();
    response.refinement = handle;
  }
  return Status::OK();
}

Result<QueryResponse> Server::Refine(RefinementHandle handle,
                                     const QueryOptions& options) {
  Tick();
  SteadyClock::time_point start = SteadyClock::now();
  const SteadyClock::time_point deadline = options.DeadlineOrMax(start);
  TraceHolder tracing = StartTrace(options.trace);
  QueryResponse response;
  {
    obs::SpanScope root(tracing.trace, "api.refine");
    // Refinement increments compete for the server like fresh queries
    // do: same deadline-ordered queue, same typed rejection.
    obs::SpanScope admit(tracing.trace, "api.admit");
    Result<AdmissionQueue::Ticket> ticket = admission_.Admit(deadline);
    admit.End();
    if (!ticket.ok()) {
      metrics_.errors->Add();
      return ticket.status();
    }

    std::shared_ptr<Refinement> refinement;
    {
      std::lock_guard<std::mutex> lock(refinements_mu_);
      if (cancelled_refinements_.count(handle.id) > 0) {
        return Status::Cancelled("api: refinement " +
                                 std::to_string(handle.id) +
                                 " was cancelled");
      }
      auto it = refinements_.find(handle.id);
      if (it == refinements_.end()) {
        return Status::NotFound("api: no live refinement with handle " +
                                std::to_string(handle.id));
      }
      refinement = it->second;
    }

    response.timing.queue_s = ticket.value().queue_s();
    bool complete = false;
    {
      std::lock_guard<std::mutex> lock(refinement->mu);
      QueryOptions increment = options;
      increment.mode = QueryMode::kAnytime;  // Refine is inherently anytime…
      if (!increment.has_deadline() && increment.mc_trial_budget <= 0) {
        // …but a Refine with no budget and no deadline means "finish the
        // job", not "do nothing" (the bounds-only phase already ran).
        increment.mode = QueryMode::kBlocking;
      }
      Status advanced =
          AdvanceRefinement(*refinement, increment, deadline, response);
      if (!advanced.ok()) {
        metrics_.errors->Add();
        return advanced;
      }
      complete = refinement->state.complete();
    }
    if (complete) {
      // Retire the handle: later Refine calls get NotFound. A concurrent
      // Refine that also just completed loses the erase race benignly.
      bool erased = false;
      {
        std::lock_guard<std::mutex> lock(refinements_mu_);
        erased = refinements_.erase(handle.id) > 0;
      }
      if (erased) metrics_.refinements_completed->Add();
      response.refinement.id = 0;
    } else {
      response.refinement = handle;
    }
    response.timing.total_s = SecondsSince(start);
    RecordPhases(response.timing);
  }
  MaybeCaptureSlow("Refine", tracing.trace, response.timing.total_s);
  return response;
}

Status Server::CancelRefinement(RefinementHandle handle) {
  Tick();
  std::lock_guard<std::mutex> lock(refinements_mu_);
  if (refinements_.erase(handle.id) > 0) {
    cancelled_refinements_.insert(handle.id);
    metrics_.refinements_cancelled->Add();
    return Status::OK();
  }
  if (cancelled_refinements_.count(handle.id) > 0) {
    return Status::OK();  // Cancelling twice is idempotent.
  }
  return Status::NotFound("api: no live refinement with handle " +
                          std::to_string(handle.id));
}

Result<std::vector<QueryResponse>> Server::RunBatch(
    const std::vector<QueryRequest>& batch) {
  Tick();
  metrics_.batches->Add();
  std::vector<QueryResponse> responses(batch.size());
  if (batch.empty()) return responses;
  ThreadPool& pool = options_.ranking.pool != nullptr
                         ? *options_.ranking.pool
                         : ThreadPool::Global();
  const int max_parallelism = options_.ranking.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options_.ranking.num_threads;
  std::vector<Status> errors(batch.size());
  std::atomic<bool> failed{false};
  // Each request is independent and each ranking is a pure function of
  // its request (cache state and shard interleaving never change values),
  // so the fan-out is bit-identical to a serial loop. Per-request
  // parallelism collapses inline inside a shard (same-pool nesting), so
  // batch-level concurrency is the one fan-out.
  pool.ParallelFor(
      static_cast<int64_t>(batch.size()),
      [&](int, int64_t i) {
        Result<QueryResponse> response = Query(batch[static_cast<size_t>(i)]);
        if (response.ok()) {
          responses[static_cast<size_t>(i)] = std::move(response.value());
          // Counted per served request (not in bulk on success) so the
          // stats stay reconciled with `queries` when a batch fails
          // partway: every request Query() served still shows up here.
          metrics_.batch_requests->Add();
        } else {
          errors[static_cast<size_t>(i)] = response.status();
          failed.store(true, std::memory_order_relaxed);
        }
      },
      max_parallelism);
  if (failed.load(std::memory_order_relaxed)) {
    for (const Status& status : errors) {
      if (!status.ok()) return status;  // First (lowest-index) error wins.
    }
  }
  return responses;
}

Result<QueryResponse> Server::RankGraph(const QueryGraph& graph, int top_k) {
  QueryOptions options;
  options.top_k = top_k;
  return RankGraph(graph, graph.answers, options);
}

Result<QueryResponse> Server::RankGraph(const QueryGraph& graph,
                                        const std::vector<NodeId>& answers,
                                        int top_k) {
  QueryOptions options;
  options.top_k = top_k;
  return RankGraph(graph, answers, options);
}

Result<QueryResponse> Server::RankGraph(const QueryGraph& graph,
                                        const QueryOptions& options) {
  return RankGraph(graph, graph.answers, options);
}

Result<QueryResponse> Server::RankGraph(const QueryGraph& graph,
                                        const std::vector<NodeId>& answers,
                                        const QueryOptions& options) {
  Tick();
  SteadyClock::time_point start = SteadyClock::now();
  const SteadyClock::time_point deadline = options.DeadlineOrMax(start);
  TraceHolder tracing = StartTrace(options.trace);
  QueryResponse response;
  {
    obs::SpanScope root(tracing.trace, "api.rank_graph");
    // Graph rankings pay the same SLO gate as Query: deadline-ordered
    // admission, typed rejection, no partial answer.
    obs::SpanScope admit(tracing.trace, "api.admit");
    Result<AdmissionQueue::Ticket> ticket = admission_.Admit(deadline);
    admit.End();
    if (!ticket.ok()) {
      metrics_.errors->Add();
      return ticket.status();
    }
    response.timing.queue_s = ticket.value().queue_s();
    if (options.rank) {
      obs::SpanScope rank(tracing.trace, "api.rank");
      Status ranked =
          RankWithOptions(graph, answers, options, deadline, response);
      if (!ranked.ok()) {
        metrics_.errors->Add();
        return ranked;
      }
    } else {
      response.completeness.complete = true;
    }
    response.timing.total_s = SecondsSince(start);
    metrics_.graph_rankings->Add();
    RecordPhases(response.timing);
  }
  MaybeCaptureSlow("RankGraph", tracing.trace, response.timing.total_s);
  return response;
}

Result<SessionInfo> Server::OpenSession(const QueryRequest& request) {
  uint64_t now = Tick();
  if (request.options.seed != 0 &&
      request.options.seed != options_.ranking.seed) {
    return Status::InvalidArgument(
        "api: sessions share the canonical reliability cache and must use "
        "the server's MC seed (leave options.seed = 0)");
  }
  Result<Mediator::LiveExploratoryQuery> live =
      mediator_.ServeLive(request.query, service_);
  if (!live.ok()) return live.status();
  auto session = std::make_shared<Session>();
  session->live = std::move(live.value());
  session->last_touch.store(now, std::memory_order_relaxed);
  SessionInfo info;
  info.answers = session->live.applier->answer_count();
  info.matched_proteins = session->live.matched_proteins;
  info.go_node = session->live.go_node;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (options_.session_idle_ops > 0) {
      EvictIdleLocked(options_.session_idle_ops, now);
    }
    info.id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    if (wal_ != nullptr) {
      // Log-then-install: the open record hits the WAL before the
      // session becomes visible, so a session a caller ever saw is a
      // session recovery will rebuild.
      storage::ByteWriter body;
      storage::EncodeQuery(request.query, body);
      Result<uint64_t> lsn = LogSessionEventLocked(
          storage::WalRecordType::kOpenSession, info.id, body.bytes());
      if (!lsn.ok()) {
        metrics_.errors->Add();
        return lsn.status();
      }
      session->live.applier->AttachWal(wal_.get(), info.id);
    }
    sessions_.emplace(info.id, std::move(session));
  }
  metrics_.sessions_opened->Add();
  return info;
}

Result<std::shared_ptr<Server::Session>> Server::FindSession(SessionId id,
                                                             uint64_t now) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("api: no live session with handle " +
                            std::to_string(id));
  }
  it->second->last_touch.store(now, std::memory_order_relaxed);
  return it->second;
}

Result<QueryResponse> Server::QuerySession(SessionId id, int top_k) {
  uint64_t now = Tick();
  SteadyClock::time_point start = SteadyClock::now();
  Result<std::shared_ptr<Session>> session = FindSession(id, now);
  if (!session.ok()) return session.status();
  Session& live = *session.value();
  QueryResponse response;
  response.result.matched_proteins = live.live.matched_proteins;
  int answers = live.live.applier->answer_count();
  if (answers > 0) {
    Result<serve::TopKResult> top =
        live.live.applier->RankTopK(ClampTopK(top_k, answers));
    if (!top.ok()) return top.status();
    const auto& labels = live.live.answer_labels;
    FillRanked(top.value(),
               [&labels](NodeId node) {
                 auto it = labels.find(node);
                 return it != labels.end() ? it->second : std::string();
               },
               response);
  }
  response.timing.rank_s = SecondsSince(start);
  response.timing.total_s = response.timing.rank_s;
  metrics_.session_queries->Add();
  RecordPhases(response.timing);
  return response;
}

Result<ingest::ApplyReport> Server::ApplyDelta(
    SessionId id, const ingest::EvidenceDelta& delta) {
  uint64_t now = Tick();
  Result<std::shared_ptr<Session>> session = FindSession(id, now);
  if (!session.ok()) return session.status();
  SteadyClock::time_point start = SteadyClock::now();
  obs::SpanScope span(obs::CurrentTrace(), "ingest.apply_delta");
  Result<ingest::ApplyReport> report =
      mediator_.ApplyDelta(session.value()->live, delta);
  if (report.ok()) {
    const ingest::ApplyReport& applied = report.value();
    metrics_.deltas_applied->Add();
    metrics_.delta_ops->Add(static_cast<uint64_t>(applied.ops));
    metrics_.dirty_answers->Add(static_cast<uint64_t>(applied.dirty_answers));
    metrics_.invalidated_entries->Add(
        static_cast<uint64_t>(applied.invalidated_entries));
    metrics_.apply_seconds->Observe(SecondsSince(start));
    span.Counter("ops", applied.ops);
    span.Counter("dirty_answers", applied.dirty_answers);
  } else {
    metrics_.errors->Add();
  }
  return report;
}

Result<QueryGraph> Server::SessionSnapshot(SessionId id) {
  uint64_t now = Tick();
  Result<std::shared_ptr<Session>> session = FindSession(id, now);
  if (!session.ok()) return session.status();
  return session.value()->live.applier->GraphSnapshot();
}

Status Server::CloseSession(SessionId id) {
  Tick();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("api: no live session with handle " +
                            std::to_string(id));
  }
  if (wal_ != nullptr) {
    // Log before erase: on append failure the session stays live and the
    // caller sees the error (erasing first would close in memory while
    // recovery resurrects the session — a silent divergence).
    Result<uint64_t> lsn = LogSessionEventLocked(
        storage::WalRecordType::kCloseSession, id, std::string());
    if (!lsn.ok()) {
      metrics_.errors->Add();
      return lsn.status();
    }
  }
  sessions_.erase(it);
  metrics_.sessions_closed->Add();
  return Status::OK();
}

size_t Server::EvictIdleLocked(uint64_t min_idle_ops, uint64_t now) {
  size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    uint64_t touched = it->second->last_touch.load(std::memory_order_relaxed);
    // touched > now happens when a concurrent operation with a later
    // tick touched the session before we acquired the registry lock;
    // such a session is active, not idle (unsigned subtraction would
    // wrap and evict it).
    if (touched <= now && now - touched > min_idle_ops) {
      if (wal_ != nullptr) {
        // Best-effort: an append failure means the WAL is fail-stopped
        // (every later append errors too), so eviction proceeds in
        // memory — recovery may resurrect the session, which idle
        // eviction will then close again.
        LogSessionEventLocked(storage::WalRecordType::kCloseSession,
                              it->first, std::string());
      }
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  metrics_.sessions_evicted->Add(static_cast<uint64_t>(evicted));
  return evicted;
}

size_t Server::EvictIdleSessions(uint64_t min_idle_ops) {
  uint64_t now = Tick();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return EvictIdleLocked(min_idle_ops, now);
}

size_t Server::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

size_t Server::refinement_count() const {
  std::lock_guard<std::mutex> lock(refinements_mu_);
  return refinements_.size();
}

ServerStats Server::Stats() const {
  // A snapshot view over the registry counters: same numbers the
  // Prometheus/JSON exporters report, folded back into the legacy shape.
  ServerStats stats;
  stats.queries = metrics_.queries->Value();
  stats.batches = metrics_.batches->Value();
  stats.batch_requests = metrics_.batch_requests->Value();
  stats.graph_rankings = metrics_.graph_rankings->Value();
  stats.sessions_opened = metrics_.sessions_opened->Value();
  stats.sessions_closed = metrics_.sessions_closed->Value();
  stats.sessions_evicted = metrics_.sessions_evicted->Value();
  stats.session_queries = metrics_.session_queries->Value();
  stats.deltas_applied = metrics_.deltas_applied->Value();
  stats.open_sessions = session_count();
  stats.refinements_started = metrics_.refinements_started->Value();
  stats.refinements_completed = metrics_.refinements_completed->Value();
  stats.refinements_cancelled = metrics_.refinements_cancelled->Value();
  stats.open_refinements = refinement_count();
  stats.cache = service_.cache().Stats();
  stats.admission = admission_.Stats();
  stats.durable = wal_ != nullptr;
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  if (wal_ != nullptr) stats.wal = wal_->stats();
  stats.recovery = recovery_report_;
  return stats;
}

}  // namespace biorank::api
