#include "integrate/exploratory_query.h"

namespace biorank {

ExploratoryQuery MakeProteinFunctionQuery(const std::string& gene_symbol) {
  ExploratoryQuery query;
  query.entity_set = "EntrezProtein";
  query.attribute = "name";
  query.value = gene_symbol;
  query.output_sets = {"AmiGO"};
  return query;
}

}  // namespace biorank
