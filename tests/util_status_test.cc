#include "util/status.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, DataLossHasNamedConstructor) {
  Status s = Status::DataLoss("snapshot checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DataLoss: snapshot checksum mismatch");
  EXPECT_FALSE(Status::DataLoss("x") == Status::Internal("x"));
}

TEST(StatusTest, SchedulingCodesHaveNamedConstructors) {
  Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: too slow");
  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailingHelper() { return Status::OutOfRange("idx"); }

Status UsesReturnIfError() {
  BIORANK_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace biorank
