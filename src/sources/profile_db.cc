#include "sources/profile_db.h"

#include <cstdio>
#include <set>

#include "util/rng.h"

namespace biorank {

ProfileDatabase::ProfileDatabase(const ProteinUniverse& universe,
                                 const EvidenceModel& evidence,
                                 const ProfileDatabaseConfig& config)
    : prefix_(config.prefix), go_mapping_qr_(config.go_mapping_qr) {
  Rng rng(universe.options().seed ^ config.salt);
  hits_.resize(universe.num_proteins());

  // Union of true functions per family: the biology a family profile can
  // be annotated with.
  int num_families = universe.num_families();
  std::vector<std::vector<int>> family_functions(num_families);
  for (int f = 0; f < num_families; ++f) {
    std::set<int> pool;
    for (int member : universe.FamilyMembers(f)) {
      const Protein& protein = universe.protein(member);
      pool.insert(protein.true_functions.begin(),
                  protein.true_functions.end());
    }
    family_functions[f].assign(pool.begin(), pool.end());
  }

  // Profile libraries per family group.
  int group_size = std::max(1, config.families_per_profile);
  std::vector<std::vector<int>> family_profiles(num_families);
  for (int group_start = 0; group_start < num_families;
       group_start += group_size) {
    for (int p = 0; p < config.profiles_per_family; ++p) {
      int profile_id = num_profiles();
      // GO terms sampled from the union of the group's family pools.
      std::vector<int> group_pool;
      for (int f = group_start;
           f < std::min(group_start + group_size, num_families); ++f) {
        group_pool.insert(group_pool.end(), family_functions[f].begin(),
                          family_functions[f].end());
      }
      std::set<int> terms;
      int wanted = static_cast<int>(rng.NextInt(config.go_min, config.go_max));
      for (int tries = 0;
           static_cast<int>(terms.size()) < wanted && tries < 200 &&
           !group_pool.empty();
           ++tries) {
        terms.insert(group_pool[rng.NextBounded(group_pool.size())]);
      }
      profile_go_.emplace_back(terms.begin(), terms.end());
      profile_dedicated_.push_back(false);
      for (int f = group_start;
           f < std::min(group_start + group_size, num_families); ++f) {
        family_profiles[f].push_back(profile_id);
      }
    }
  }

  // Dedicated profiles carrying the expert functions of hypothetical
  // proteins (plus some family biology for cover).
  std::vector<int> dedicated_profile(universe.num_proteins(), -1);
  if (config.dedicated_hypothetical_profiles) {
    for (int index : universe.hypothetical()) {
      const Protein& protein = universe.protein(index);
      std::set<int> terms(protein.expert_functions.begin(),
                          protein.expert_functions.end());
      const std::vector<int>& pool = family_functions[protein.family];
      for (int tries = 0; static_cast<int>(terms.size()) < 4 && tries < 50 &&
                          !pool.empty();
           ++tries) {
        terms.insert(pool[rng.NextBounded(pool.size())]);
      }
      dedicated_profile[index] = num_profiles();
      profile_go_.emplace_back(terms.begin(), terms.end());
      profile_dedicated_.push_back(true);
    }
  }

  // Freshly-updated profiles mapped to recently published functions.
  std::vector<int> recent_profile(universe.num_proteins(), -1);
  if (config.dedicated_recent_profiles) {
    for (int i = 0; i < universe.num_proteins(); ++i) {
      const Protein& protein = universe.protein(i);
      if (protein.recent_functions.empty()) continue;
      recent_profile[i] = num_profiles();
      profile_go_.push_back(protein.recent_functions);
      profile_dedicated_.push_back(true);
    }
  }

  // Hit lists.
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    for (int profile : family_profiles[protein.family]) {
      if (rng.NextBernoulli(config.member_hit_prob)) {
        hits_[i].push_back(
            ProfileHit{profile, evidence.SampleTrueHitEValue(rng)});
      }
    }
    if (dedicated_profile[i] >= 0) {
      hits_[i].push_back(ProfileHit{dedicated_profile[i],
                                    evidence.SampleStrongHitEValue(rng)});
    }
    if (recent_profile[i] >= 0) {
      hits_[i].push_back(ProfileHit{recent_profile[i],
                                    evidence.SampleStrongHitEValue(rng)});
    }
    if (rng.NextBernoulli(config.spurious_hit_prob) && num_profiles() > 0) {
      hits_[i].push_back(
          ProfileHit{static_cast<int>(rng.NextBounded(num_profiles())),
                     evidence.SampleWeakHitEValue(rng)});
    }
  }
}

std::string ProfileDatabase::ProfileName(int profile_id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%05d", prefix_.c_str(), profile_id);
  return buf;
}

const std::vector<ProfileHit>& ProfileDatabase::HitsFor(int seq_id) const {
  if (seq_id < 0 || seq_id >= static_cast<int>(hits_.size())) {
    return empty_hits_;
  }
  return hits_[seq_id];
}

const std::vector<int>& ProfileDatabase::GoTermsFor(int profile_id) const {
  if (profile_id < 0 || profile_id >= num_profiles()) return empty_go_;
  return profile_go_[profile_id];
}

double ProfileDatabase::MappingQr(int profile_id) const {
  if (profile_id < 0 || profile_id >= num_profiles()) return 0.0;
  return profile_dedicated_[profile_id] ? 1.0 : go_mapping_qr_;
}

}  // namespace biorank
