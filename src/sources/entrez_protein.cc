#include "sources/entrez_protein.h"

namespace biorank {

EntrezProteinSource::EntrezProteinSource(const ProteinUniverse& universe)
    : universe_(universe) {
  records_.reserve(universe.num_proteins());
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    records_.push_back(
        ProteinRecord{i, protein.accession, protein.gene_symbol, i});
  }
}

std::vector<ProteinRecord> EntrezProteinSource::Lookup(
    const std::string& query) const {
  std::vector<ProteinRecord> matches;
  Result<int> index = universe_.FindProtein(query);
  if (index.ok()) matches.push_back(records_[index.value()]);
  return matches;
}

const ProteinRecord* EntrezProteinSource::BySeqId(int seq_id) const {
  if (seq_id < 0 || seq_id >= static_cast<int>(records_.size())) {
    return nullptr;
  }
  return &records_[seq_id];
}

}  // namespace biorank
