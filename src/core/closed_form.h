// Closed-form reliability for graphs that reduce completely to a
// single edge under Section 3.1's rules. Fails on irreducible
// (Wheatstone-bridge) topologies, where callers fall back to factoring
// or Monte Carlo.

#ifndef BIORANK_CORE_CLOSED_FORM_H_
#define BIORANK_CORE_CLOSED_FORM_H_

#include <vector>

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Attempts the tractable closed solution of Section 3.1 ("3. Tractable
/// closed solution") for one answer node: restrict the graph to the nodes
/// on some source -> target path, apply the reduction rules, and — if the
/// residue is the single edge source -> target — read the reliability off
/// as p(source) * q(source, target) * p(target).
///
/// Fails with FailedPrecondition when the per-target subgraph is
/// irreducible (e.g. contains a Wheatstone bridge); callers fall back to
/// factoring or Monte Carlo. This mirrors the paper's observation that the
/// *whole* scenario graph is irreducible (final [n:m] relationship) while
/// each individual target subgraph reduces completely.
Result<double> ClosedFormReliability(const QueryGraph& query_graph,
                                     NodeId target);

/// Closed-form reliability for every answer node. Fails if any single
/// target is irreducible. Scores are indexed like `query_graph.answers`.
Result<std::vector<double>> ClosedFormReliabilityAllAnswers(
    const QueryGraph& query_graph);

}  // namespace biorank

#endif  // BIORANK_CORE_CLOSED_FORM_H_
