// Reproduces Theorem 3.1: the trial-count bound for correct Monte Carlo
// ranking. Prints the bound n(eps, delta) over a grid (the paper's
// example: eps = 0.02, delta = 0.05 -> 7,896, rounded to "10,000 trials
// should be enough") and then validates it empirically: with n bounded
// trials, the observed misranking frequency stays below delta.

#include <iostream>

#include "bench_json.h"
#include "bench_util.h"
#include "core/trial_bound.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Theorem 3.1: Monte Carlo trial bound ===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport report("theorem31_bound");
  TextTable grid({"eps \\ delta", "0.10", "0.05", "0.01"});
  CsvWriter csv({"eps", "delta", "bound_n"});
  for (double eps : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row = {FormatCompact(eps, 2)};
    for (double delta : {0.10, 0.05, 0.01}) {
      int64_t n = RequiredMcTrials(eps, delta).value();
      row.push_back(std::to_string(n));
      csv.AddRow({FormatCompact(eps, 2), FormatCompact(delta, 2),
                  std::to_string(n)});
    }
    grid.AddRow(row);
  }
  grid.Print(std::cout);
  std::cout << "\nPaper: n(0.02, 0.05) rounds up to 10,000.\n\n";

  // Empirical validation: two Bernoulli "nodes" eps apart, n trials each,
  // repeated; count how often the estimates invert the true order.
  // Repetition r of each cell draws from RNG stream (cell seed, r) and
  // the repetitions fan out over the shared pool, so the observed rates
  // are identical at any thread count.
  std::cout << "Empirical misranking frequency at the bound (300 "
               "repetitions each):\n";
  TextTable empirical({"eps", "delta", "n", "observed misrank rate",
                       "within bound?"});
  bench::WallTimer empirical_timer;
  int64_t bernoulli_draws = 0;
  uint64_t cell_seed = 31;
  for (double eps : {0.05, 0.1, 0.2}) {
    for (double delta : {0.1, 0.05}) {
      int64_t n = RequiredMcTrials(eps, delta).value();
      double r_hi = 0.5 + eps / 2;
      double r_lo = 0.5 - eps / 2;
      const int repetitions = 300;
      const uint64_t seed = cell_seed++;
      int misranked = ThreadPool::Global().ParallelReduce<int>(
          repetitions, 0,
          [&](int, int64_t rep) {
            Rng rng = Rng::ForStream(seed, static_cast<uint64_t>(rep));
            int64_t hits_hi = 0, hits_lo = 0;
            for (int64_t i = 0; i < n; ++i) {
              if (rng.NextBernoulli(r_hi)) ++hits_hi;
              if (rng.NextBernoulli(r_lo)) ++hits_lo;
            }
            return hits_lo >= hits_hi ? 1 : 0;
          },
          [](int a, int b) { return a + b; });
      bernoulli_draws += 2 * n * repetitions;
      double rate = static_cast<double>(misranked) / repetitions;
      empirical.AddRow({FormatCompact(eps, 2), FormatCompact(delta, 2),
                        std::to_string(n), FormatDouble(rate, 4),
                        rate <= delta ? "yes" : "NO"});
      report.AddRow({{"eps", eps},
                     {"delta", delta},
                     {"bound_n", n},
                     {"misrank_rate", rate},
                     {"within_bound", rate <= delta}});
    }
  }
  double empirical_seconds = empirical_timer.Seconds();
  empirical.Print(std::cout);
  std::cout << "\nThe Bennett-inequality bound is conservative: observed "
               "rates sit well below delta.\n";
  bench::MaybeWriteCsv(csv, "theorem31_bound");
  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("bernoulli_draws", bernoulli_draws);
  report.SetMetric("trials_per_sec",
                   empirical_seconds > 0.0
                       ? static_cast<double>(bernoulli_draws) /
                             empirical_seconds
                       : 0.0);
  return report.Write().ok() ? 0 : 1;
}
