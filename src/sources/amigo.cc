#include "sources/amigo.h"

#include <set>

#include "util/rng.h"

namespace biorank {

AmigoSource::AmigoSource(const ProteinUniverse& universe,
                         const EvidenceModel& evidence,
                         const AmigoOptions& options) {
  Rng rng(universe.options().seed ^ 0xA3160ULL);
  annotations_.resize(universe.num_proteins());
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    std::set<int> recorded;
    // Recently published functions (scenario 2) mostly have not
    // propagated into curated stores yet; their primary evidence lives in
    // TIGRFAM's freshly updated models. A minority already carry one
    // fast-tracked experimental annotation.
    for (int go : protein.recent_functions) {
      if (!rng.NextBernoulli(options.recent_annotation_probability)) continue;
      annotations_[i].push_back(
          GoAnnotation{i, evidence.SampleStrongEvidence(rng), go});
      recorded.insert(go);
    }

    if (protein.study_level != StudyLevel::kHypothetical) {
      // Established annotations mirroring (most of) the curated set;
      // background proteins carry weaker evidence codes.
      bool background = protein.study_level == StudyLevel::kBackground;
      for (int go : protein.curated_functions) {
        if (!rng.NextBernoulli(options.curated_coverage)) continue;
        EvidenceCode code = background
                                ? evidence.SampleBackgroundEvidence(rng)
                                : evidence.SampleCuratedEvidence(rng);
        annotations_[i].push_back(GoAnnotation{i, code, go});
        recorded.insert(go);
      }
      // Weak electronically-inferred rows for other true functions.
      for (int go : protein.true_functions) {
        if (recorded.count(go) > 0) continue;
        if (rng.NextBernoulli(options.weak_leak_probability)) {
          annotations_[i].push_back(
              GoAnnotation{i, evidence.SampleWeakEvidence(rng), go});
          recorded.insert(go);
        }
      }
    }

    // Spurious noise; mostly IEA, occasionally deceptively strong
    // (curation disagreements).
    int spurious = static_cast<int>(
        rng.NextInt(options.min_spurious, options.max_spurious));
    for (int s = 0; s < spurious; ++s) {
      int go = static_cast<int>(rng.NextBounded(universe.ontology().size()));
      if (recorded.count(go) > 0) continue;
      EvidenceCode code =
          rng.NextBernoulli(options.spurious_strong_fraction)
              ? evidence.SampleStrongEvidence(rng)
              : EvidenceCode::kIEA;
      annotations_[i].push_back(GoAnnotation{i, code, go});
      recorded.insert(go);
    }
    total_ += static_cast<int>(annotations_[i].size());
  }
}

const std::vector<GoAnnotation>& AmigoSource::AnnotationsFor(
    int gene_id) const {
  if (gene_id < 0 || gene_id >= static_cast<int>(annotations_.size())) {
    return empty_;
  }
  return annotations_[gene_id];
}

}  // namespace biorank
