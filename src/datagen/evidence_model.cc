#include "datagen/evidence_model.h"

#include <cmath>

namespace biorank {

GeneStatus EvidenceModel::SampleCuratedStatus(Rng& rng) const {
  // Curated entries span the status scale: gold-standard functions are
  // not uniformly backed by Reviewed rows, which is what keeps purely
  // probabilistic ranking from dominating on well-known functions.
  double u = rng.NextDouble();
  if (u < 0.30) return GeneStatus::kReviewed;
  if (u < 0.60) return GeneStatus::kValidated;
  if (u < 0.85) return GeneStatus::kProvisional;
  return GeneStatus::kPredicted;
}

GeneStatus EvidenceModel::SampleBackgroundStatus(Rng& rng) const {
  double u = rng.NextDouble();
  if (u < 0.10) return GeneStatus::kValidated;
  if (u < 0.40) return GeneStatus::kProvisional;
  if (u < 0.75) return GeneStatus::kPredicted;
  return GeneStatus::kModel;
}

GeneStatus EvidenceModel::SamplePredictedStatus(Rng& rng) const {
  double u = rng.NextDouble();
  if (u < 0.50) return GeneStatus::kPredicted;
  if (u < 0.80) return GeneStatus::kModel;
  return GeneStatus::kInferred;
}

EvidenceCode EvidenceModel::SampleStrongEvidence(Rng& rng) const {
  double u = rng.NextDouble();
  if (u < 0.50) return EvidenceCode::kIDA;
  if (u < 0.80) return EvidenceCode::kTAS;
  return EvidenceCode::kIMP;
}

EvidenceCode EvidenceModel::SampleCuratedEvidence(Rng& rng) const {
  double u = rng.NextDouble();
  if (u < 0.15) return EvidenceCode::kIDA;
  if (u < 0.30) return EvidenceCode::kIMP;
  if (u < 0.60) return EvidenceCode::kISS;
  if (u < 0.75) return EvidenceCode::kIC;
  if (u < 0.90) return EvidenceCode::kNAS;
  return EvidenceCode::kIEA;
}

EvidenceCode EvidenceModel::SampleBackgroundEvidence(Rng& rng) const {
  double u = rng.NextDouble();
  if (u < 0.10) return EvidenceCode::kIMP;
  if (u < 0.50) return EvidenceCode::kISS;
  if (u < 0.65) return EvidenceCode::kNAS;
  return EvidenceCode::kIEA;
}

EvidenceCode EvidenceModel::SampleWeakEvidence(Rng& rng) const {
  double u = rng.NextDouble();
  if (u < 0.70) return EvidenceCode::kIEA;
  if (u < 0.90) return EvidenceCode::kISS;
  return EvidenceCode::kND;
}

double EvidenceModel::SampleTrueHitEValue(Rng& rng) const {
  return std::pow(10.0,
                  rng.NextUniform(true_hit_log10_min, true_hit_log10_max));
}

double EvidenceModel::SampleWeakHitEValue(Rng& rng) const {
  return std::pow(10.0,
                  rng.NextUniform(weak_hit_log10_min, weak_hit_log10_max));
}

double EvidenceModel::SampleStrongHitEValue(Rng& rng) const {
  return std::pow(
      10.0, rng.NextUniform(strong_hit_log10_min, strong_hit_log10_max));
}

}  // namespace biorank
