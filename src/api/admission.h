// Deadline-aware admission control in front of the server's shared pool.
//
// Every request acquires a Ticket before touching the ranking pipeline.
// When the configured concurrency is saturated, arrivals park in a
// deadline-ordered queue: the waiter with the earliest deadline takes
// the next freed slot (earliest-deadline-first is the SLO-optimal order
// for a work-conserving single queue), and a waiter whose deadline
// passes while parked is rejected with kDeadlineExceeded instead of
// being served late — the typed rejection the api layer forwards to the
// caller with no partial answer attached.

#ifndef BIORANK_API_ADMISSION_H_
#define BIORANK_API_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

#include "util/status.h"

namespace biorank::api {

/// Configuration for AdmissionQueue.
struct AdmissionOptions {
  /// Requests allowed past admission at once. <= 0 means unlimited:
  /// every arrival is admitted immediately (tickets still track
  /// inflight) — the default, preserving pre-admission behavior.
  int max_concurrent = 0;
  /// Parked waiters beyond which arrivals are rejected outright with
  /// kResourceExhausted (backpressure instead of an unbounded queue).
  size_t max_queue_depth = 1024;
};

/// Point-in-time admission gauges and monotonic counters.
struct AdmissionStats {
  uint64_t admitted = 0;           ///< Tickets granted.
  uint64_t rejected_deadline = 0;  ///< Deadline passed (on arrival or queued).
  uint64_t rejected_capacity = 0;  ///< Queue overflow (kResourceExhausted).
  uint64_t queued = 0;             ///< Admissions that had to park first.
  size_t queue_depth = 0;          ///< Waiters parked right now.
  size_t peak_queue_depth = 0;     ///< High-water mark of queue_depth.
  int inflight = 0;                ///< Live tickets right now.
  double queue_wait_s_total = 0.0; ///< Sum of time spent parked (incl. rejected).
};

/// Thread-safe admission gate. One instance fronts one api::Server.
class AdmissionQueue {
 public:
  /// RAII admission slot: releasing (destruction) frees the slot and
  /// wakes the earliest-deadline waiter. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : owner_(other.owner_), queue_s_(other.queue_s_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Reset();
        owner_ = other.owner_;
        queue_s_ = other.queue_s_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Reset(); }

    bool valid() const { return owner_ != nullptr; }
    /// Seconds this request spent parked before admission.
    double queue_s() const { return queue_s_; }

   private:
    friend class AdmissionQueue;
    void Reset();
    AdmissionQueue* owner_ = nullptr;
    double queue_s_ = 0.0;
  };

  explicit AdmissionQueue(AdmissionOptions options = {});

  /// Blocks until a slot is free (earliest deadline first) or `deadline`
  /// passes. An already-expired deadline rejects immediately without
  /// queuing; `time_point::max()` waits indefinitely. Errors:
  /// kDeadlineExceeded (expired on arrival or while parked),
  /// kResourceExhausted (queue at max_queue_depth).
  Result<Ticket> Admit(std::chrono::steady_clock::time_point deadline =
                           std::chrono::steady_clock::time_point::max());

  AdmissionStats Stats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  void Release();

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Parked waiters ordered by (deadline, arrival seq): begin() is the
  /// next waiter to admit. Each waiter owns exactly one key.
  std::set<std::pair<std::chrono::steady_clock::time_point, uint64_t>>
      waiters_;
  uint64_t next_seq_ = 0;
  int inflight_ = 0;
  AdmissionStats stats_;
};

}  // namespace biorank::api

#endif  // BIORANK_API_ADMISSION_H_
