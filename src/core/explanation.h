// Evidence-path explanations: the highest-probability source-to-
// answer paths, formatted so a scientist can see why an answer ranked
// where it did.

#ifndef BIORANK_CORE_EXPLANATION_H_
#define BIORANK_CORE_EXPLANATION_H_

#include <string>
#include <vector>

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// One loopless evidence path from the query node to an answer, with its
/// existence probability (the product of every node and edge probability
/// along it, the source included).
struct EvidencePath {
  std::vector<NodeId> nodes;  ///< source ... target, in order.
  std::vector<EdgeId> edges;  ///< Parallel to consecutive node pairs.
  double probability = 0.0;

  /// Number of edges.
  int length() const { return static_cast<int>(edges.size()); }
};

/// Options for evidence-path extraction.
struct ExplanationOptions {
  int max_paths = 5;          ///< How many paths to return (k of k-best).
  double min_probability = 0.0;  ///< Drop paths weaker than this.
};

/// Returns the k most probable loopless paths from the query node to
/// `target`, strongest first — the provenance a biologist asks for when
/// a function ranks high ("which records support this?"). Implemented as
/// Yen's k-shortest-paths over -log(p*q) edge weights with a Dijkstra
/// core, so it handles cycles in the entity graph.
///
/// Returns an empty vector when the target is unreachable. Fails on
/// invalid targets or non-positive max_paths.
Result<std::vector<EvidencePath>> ExplainAnswer(
    const QueryGraph& query_graph, NodeId target,
    const ExplanationOptions& options = {});

/// Renders one path like
///   "query -> ABCC8 [q=1] -> EG:GO:0008281:Reviewed [q=0.95] -> GO:0008281"
/// using node labels (ids when unlabeled).
std::string FormatEvidencePath(const QueryGraph& query_graph,
                               const EvidencePath& path);

}  // namespace biorank

#endif  // BIORANK_CORE_EXPLANATION_H_
