#include "core/query_graph.h"

#include <cstdlib>
#include <unordered_set>

namespace biorank {

Status QueryGraph::Validate() const {
  if (!graph.IsValidNode(source)) {
    return Status::InvalidArgument("query graph: source node is not alive");
  }
  std::unordered_set<NodeId> seen;
  for (NodeId a : answers) {
    if (!graph.IsValidNode(a)) {
      return Status::InvalidArgument("query graph: answer node " +
                                     std::to_string(a) + " is not alive");
    }
    if (a == source) {
      return Status::InvalidArgument(
          "query graph: source cannot be an answer");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("query graph: duplicate answer node " +
                                     std::to_string(a));
    }
  }
  return Status::OK();
}

QueryGraphBuilder::QueryGraphBuilder() {
  source_ = query_graph_.graph.AddNode(1.0, "query", "Query");
  query_graph_.source = source_;
}

NodeId QueryGraphBuilder::Node(double p, std::string label,
                               std::string entity_set) {
  return query_graph_.graph.AddNode(p, std::move(label),
                                    std::move(entity_set));
}

EdgeId QueryGraphBuilder::Edge(NodeId from, NodeId to, double q) {
  Result<EdgeId> result = query_graph_.graph.AddEdge(from, to, q);
  if (!result.ok()) {
    // Builder misuse in a test or example is a programming error.
    std::abort();
  }
  return result.value();
}

QueryGraph QueryGraphBuilder::Build(std::vector<NodeId> answers) && {
  query_graph_.answers = std::move(answers);
  return std::move(query_graph_);
}

QueryGraph MakeFig4aSerialParallel() {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId m = b.Node(1.0, "m");
  NodeId a = b.Node(1.0, "a");
  NodeId bb = b.Node(1.0, "b");
  NodeId u = b.Node(1.0, "u");
  b.Edge(s, m, 0.5);
  b.Edge(m, a, 1.0);
  b.Edge(m, bb, 1.0);
  b.Edge(a, u, 1.0);
  b.Edge(bb, u, 1.0);
  return std::move(b).Build({u});
}

QueryGraph MakeFig4bWheatstoneBridge() {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId a = b.Node(1.0, "a");
  NodeId bb = b.Node(1.0, "b");
  NodeId u = b.Node(1.0, "u");
  b.Edge(s, a, 0.5);
  b.Edge(s, bb, 0.5);
  b.Edge(a, bb, 0.5);  // The bridge.
  b.Edge(a, u, 0.5);
  b.Edge(bb, u, 0.5);
  return std::move(b).Build({u});
}

}  // namespace biorank
