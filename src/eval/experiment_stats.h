// Accumulator for repeated AP experiments: per-method running mean,
// standard deviation, and confidence intervals for the result tables.

#ifndef BIORANK_EVAL_EXPERIMENT_STATS_H_
#define BIORANK_EVAL_EXPERIMENT_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "util/stats.h"

namespace biorank {

/// Accumulates one AP sample per (condition, repetition) cell and reports
/// the mean/stdev bars that the paper's figures print. Conditions are
/// string keys such as method names ("Rel", "Prop", ...) or sigma levels
/// ("0.5", "1", "2", "3", "Random").
class ApExperiment {
 public:
  /// Records one average-precision observation under `condition`.
  void Record(const std::string& condition, double ap);

  /// Mean/stdev/CI summary of a condition; zeroed stats if unseen.
  SampleStats Summary(const std::string& condition) const;

  /// All observations of one condition (insertion order).
  std::vector<double> Samples(const std::string& condition) const;

  /// All condition keys in insertion order of first appearance.
  std::vector<std::string> Conditions() const;

 private:
  std::map<std::string, std::vector<double>> samples_;
  std::vector<std::string> order_;
};

}  // namespace biorank

#endif  // BIORANK_EVAL_EXPERIMENT_STATS_H_
