// Synthetic Gene Ontology: a randomly generated DAG of GO terms with
// realistic fan-out, used to build evaluation universes.

#ifndef BIORANK_DATAGEN_GO_ONTOLOGY_H_
#define BIORANK_DATAGEN_GO_ONTOLOGY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace biorank {

/// One Gene Ontology term of the synthetic shared vocabulary.
struct GoTerm {
  std::string id;    ///< "GO:NNNNNNN", 7 digits, unique.
  std::string name;  ///< Synthesized descriptive name.
};

/// A synthetic Gene Ontology: the shared function vocabulary every source
/// annotates against (the real GO plays this role in the paper). Term ids
/// are deterministic in the seed, so a universe regenerates identically.
class GoOntology {
 public:
  /// Generates `num_terms` distinct terms with plausible names.
  static GoOntology Generate(int num_terms, Rng& rng);

  int size() const { return static_cast<int>(terms_.size()); }

  /// Term by dense index in [0, size).
  const GoTerm& term(int index) const { return terms_[index]; }

  /// Dense index of a term id, or NotFound.
  Result<int> IndexOf(const std::string& id) const;

 private:
  std::vector<GoTerm> terms_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace biorank

#endif  // BIORANK_DATAGEN_GO_ONTOLOGY_H_
