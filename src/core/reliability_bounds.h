// Deterministic two-sided bounds on the #P-hard reliability value,
// used to prune candidates in adaptive top-k ranking before spending
// Monte Carlo trials on them.

#ifndef BIORANK_CORE_RELIABILITY_BOUNDS_H_
#define BIORANK_CORE_RELIABILITY_BOUNDS_H_

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Deterministic two-sided bounds on a #P-hard quantity.
struct ReliabilityBounds {
  double lower = 0.0;  ///< Exact reliability of the k-best-paths subgraph.
  double upper = 1.0;  ///< Propagation score (dominates reliability).
  int paths_used = 0;  ///< How many evidence paths the lower bound uses.
};

/// Options for the bound computation.
struct ReliabilityBoundsOptions {
  /// How many strongest evidence paths feed the lower bound. More paths
  /// tighten it monotonically; the per-call cost is an exact reliability
  /// computation on the union subgraph (small by construction).
  int max_paths = 8;
};

/// Brackets the reliability of `target` without Monte Carlo:
///  - lower bound: the exact reliability of the subgraph formed by the
///    union of the k most probable source->target paths (a sub-event of
///    "connected", so never an overestimate);
///  - upper bound: the propagation score, which treats converging paths
///    as independent and therefore dominates reliability (Section 3.2).
/// Useful to certify a ranking decision without simulation, or to decide
/// whether simulation is needed at all (bounds often already separate
/// two answers).
Result<ReliabilityBounds> BoundReliability(
    const QueryGraph& query_graph, NodeId target,
    const ReliabilityBoundsOptions& options = {});

}  // namespace biorank

#endif  // BIORANK_CORE_RELIABILITY_BOUNDS_H_
