// Reproduces Figure 4: the five relevance scores on the serial-parallel
// graph (a) and the Wheatstone bridge (b). Exact engines are used so the
// numbers are deterministic.
//
// Paper values — (a): Rel 0.5, Prop 0.75, Diff 0.11, InEdge 2, PathC 2;
// (b): Rel 0.469, Prop 0.484, InEdge 2, PathC 3. (The figure prints 0.11
// for diffusion on (b) as well; the fixed point of the Section 3.3
// definition evaluates to 1/6 — see EXPERIMENTS.md.)

#include <iostream>

#include "bench_json.h"
#include "bench_util.h"
#include "core/query_graph.h"
#include "core/ranking.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Figure 4: relevance scores on canonical topologies ===\n\n";
  bench::WallTimer total_timer;
  bench::JsonReport report("fig4_topologies");

  RankerOptions options;
  options.reliability_engine = ReliabilityEngine::kExact;
  Ranker ranker(options);

  struct Row {
    const char* name;
    QueryGraph graph;
  };
  Row graphs[] = {
      {"Fig 4a serial-parallel", MakeFig4aSerialParallel()},
      {"Fig 4b Wheatstone bridge", MakeFig4bWheatstoneBridge()},
  };

  TextTable table({"Graph", "Rel", "Prop", "Diff", "InEdge", "PathC"});
  CsvWriter csv({"graph", "rel", "prop", "diff", "inedge", "pathc"});
  for (Row& row : graphs) {
    std::vector<std::string> cells = {row.name};
    for (RankingMethod method : AllRankingMethods()) {
      Result<std::vector<RankedAnswer>> ranked =
          ranker.Rank(row.graph, method);
      cells.push_back(ranked.ok()
                          ? FormatCompact(ranked.value()[0].score, 4)
                          : std::string("error"));
    }
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"graph", cells[0]},
                   {"rel", cells[1]},
                   {"prop", cells[2]},
                   {"diff", cells[3]},
                   {"inedge", cells[4]},
                   {"pathc", cells[5]}});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: (a) 0.5 / 0.75 / 0.11 / 2 / 2"
            << "  (b) 0.469 / 0.484 / [0.11] / 2 / 3\n";
  bench::MaybeWriteCsv(csv, "fig4_topologies");
  report.SetWallTime(total_timer.Seconds());
  return report.Write().ok() ? 0 : 1;
}
