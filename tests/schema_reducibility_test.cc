#include "schema/reducibility.h"

#include <gtest/gtest.h>

#include "schema/composition.h"

namespace biorank {
namespace {

ErSchema ChainSchema(const std::vector<Cardinality>& types) {
  ErSchema schema;
  for (size_t i = 0; i <= types.size(); ++i) {
    schema.AddEntitySet({"E" + std::to_string(i), {}, 1.0});
  }
  for (size_t i = 0; i < types.size(); ++i) {
    schema.AddRelationship({"R" + std::to_string(i), "E" + std::to_string(i),
                            "E" + std::to_string(i + 1), types[i], 1.0});
  }
  return schema;
}

TEST(CompositionTest, IdentityWithOneToOne) {
  EXPECT_EQ(Compose(Cardinality::kOneToOne, Cardinality::kOneToMany),
            Cardinality::kOneToMany);
  EXPECT_EQ(Compose(Cardinality::kManyToOne, Cardinality::kOneToOne),
            Cardinality::kManyToOne);
  EXPECT_EQ(Compose(Cardinality::kOneToOne, Cardinality::kOneToOne),
            Cardinality::kOneToOne);
}

TEST(CompositionTest, HomogeneousCompositionsArePreserved) {
  // [1:n] o [1:n] = [1:n] and [n:1] o [n:1] = [n:1] (Section 3.1).
  EXPECT_EQ(Compose(Cardinality::kOneToMany, Cardinality::kOneToMany),
            Cardinality::kOneToMany);
  EXPECT_EQ(Compose(Cardinality::kManyToOne, Cardinality::kManyToOne),
            Cardinality::kManyToOne);
}

TEST(CompositionTest, ManyToManyAbsorbs) {
  for (Cardinality c :
       {Cardinality::kOneToOne, Cardinality::kOneToMany,
        Cardinality::kManyToOne, Cardinality::kManyToMany}) {
    EXPECT_EQ(Compose(Cardinality::kManyToMany, c), Cardinality::kManyToMany);
    EXPECT_EQ(Compose(c, Cardinality::kManyToMany), Cardinality::kManyToMany);
  }
}

TEST(CompositionTest, MixedDefaultsToManyToMany) {
  EXPECT_EQ(Compose(Cardinality::kOneToMany, Cardinality::kManyToOne),
            Cardinality::kManyToMany);
  EXPECT_EQ(Compose(Cardinality::kManyToOne, Cardinality::kOneToMany),
            Cardinality::kManyToMany);
}

TEST(CompositionOracleTest, OverrideWinsOverAlgebra) {
  CompositionOracle oracle;
  RelationshipDef q{"Q", "A", "B", Cardinality::kOneToMany, 1.0};
  RelationshipDef qp{"Q'", "B", "C", Cardinality::kManyToOne, 1.0};
  EXPECT_EQ(oracle.Resolve(q, qp), Cardinality::kManyToMany);
  oracle.Declare("Q", "Q'", Cardinality::kOneToMany);
  EXPECT_EQ(oracle.Resolve(q, qp), Cardinality::kOneToMany);
}

TEST(ForestTest, OneToManyChainIsForest) {
  ErSchema schema = ChainSchema(
      {Cardinality::kOneToMany, Cardinality::kOneToMany});
  EXPECT_TRUE(IsOneToManyForest(schema));
}

TEST(ForestTest, ManyToOneBreaksIt) {
  ErSchema schema = ChainSchema(
      {Cardinality::kOneToMany, Cardinality::kManyToOne});
  EXPECT_FALSE(IsOneToManyForest(schema));
}

TEST(ForestTest, ConvergingEdgesBreakIt) {
  ErSchema schema;
  schema.AddEntitySet({"A", {}, 1.0});
  schema.AddEntitySet({"B", {}, 1.0});
  schema.AddEntitySet({"C", {}, 1.0});
  schema.AddRelationship({"R1", "A", "C", Cardinality::kOneToMany, 1.0});
  schema.AddRelationship({"R2", "B", "C", Cardinality::kOneToMany, 1.0});
  EXPECT_FALSE(IsOneToManyForest(schema));
}

TEST(ReducibilityTest, TheoremPartA_OneToManyTree) {
  // A tree of [1:n] relationships is reducible (Theorem 3.2 A).
  ErSchema schema;
  schema.AddEntitySet({"Root", {}, 1.0});
  schema.AddEntitySet({"L", {}, 1.0});
  schema.AddEntitySet({"R", {}, 1.0});
  schema.AddEntitySet({"LL", {}, 1.0});
  schema.AddRelationship({"R1", "Root", "L", Cardinality::kOneToMany, 1.0});
  schema.AddRelationship({"R2", "Root", "R", Cardinality::kOneToMany, 1.0});
  schema.AddRelationship({"R3", "L", "LL", Cardinality::kOneToMany, 1.0});
  EXPECT_TRUE(CheckSchemaReducibility(schema).reducible);
}

TEST(ReducibilityTest, Fig2a_ManyToManyInMiddleIsNotProvablyReducible) {
  // Figure 2a: [1:n] [n:m] [n:1] — instances may contain Wheatstone
  // bridges.
  ErSchema schema = ChainSchema({Cardinality::kOneToMany,
                                 Cardinality::kManyToMany,
                                 Cardinality::kManyToOne});
  EXPECT_FALSE(CheckSchemaReducibility(schema).reducible);
}

TEST(ReducibilityTest, Fig2b_AlternatingWithoutKnowledgeIsStuck) {
  // Figure 2b: [1:n] [1:n] [n:1] [n:1] — still irreducible: the
  // innermost composition [1:n] o [n:1] is unknown.
  ErSchema schema =
      ChainSchema({Cardinality::kOneToMany, Cardinality::kOneToMany,
                   Cardinality::kManyToOne, Cardinality::kManyToOne});
  EXPECT_FALSE(CheckSchemaReducibility(schema).reducible);
}

TEST(ReducibilityTest, Fig3a_KnowledgeMakesAlternatingChainReducible) {
  // Figure 3a: the inner compositions are known to stay [1:n]/[n:1], so
  // contraction cascades to a single relationship.
  ErSchema schema =
      ChainSchema({Cardinality::kOneToMany, Cardinality::kManyToOne,
                   Cardinality::kOneToMany, Cardinality::kManyToOne});
  CompositionOracle oracle;
  oracle.Declare("R0", "R1", Cardinality::kOneToOne);   // E1 contracts.
  oracle.Declare("R2", "R3", Cardinality::kOneToMany);  // E3 contracts.
  // After the two contractions the residual chain is
  // E0 -[1:1]-> E2 -[1:n]-> E4, a forest of downward relationships:
  // Theorem 3.2 part A accepts it.
  ReducibilityResult result = CheckSchemaReducibility(schema, oracle);
  EXPECT_TRUE(result.reducible) << result.trace.back();
}

TEST(ReducibilityTest, Fig3b_ManyToManyCompositionBlocks) {
  // Figure 3b: the first composition results in [m:n]; not reducible.
  ErSchema schema =
      ChainSchema({Cardinality::kOneToMany, Cardinality::kManyToOne,
                   Cardinality::kOneToMany, Cardinality::kManyToOne});
  CompositionOracle oracle;
  oracle.Declare("R0", "R1", Cardinality::kManyToMany);
  oracle.Declare("R2", "R3", Cardinality::kManyToMany);
  ReducibilityResult result = CheckSchemaReducibility(schema, oracle);
  EXPECT_FALSE(result.reducible);
}

TEST(ReducibilityTest, TraceRecordsContractions) {
  ErSchema schema =
      ChainSchema({Cardinality::kOneToMany, Cardinality::kManyToOne});
  CompositionOracle oracle;
  oracle.Declare("R0", "R1", Cardinality::kOneToMany);
  ReducibilityResult result = CheckSchemaReducibility(schema, oracle);
  EXPECT_TRUE(result.reducible);
  ASSERT_GE(result.trace.size(), 2u);
  EXPECT_NE(result.trace[0].find("contract E1"), std::string::npos);
}

TEST(ReducibilityTest, SelfLoopEntityIsNotContractible) {
  ErSchema schema;
  schema.AddEntitySet({"A", {}, 1.0});
  schema.AddEntitySet({"B", {}, 1.0});
  schema.AddRelationship({"R1", "A", "B", Cardinality::kOneToMany, 1.0});
  schema.AddRelationship({"Rloop", "B", "B", Cardinality::kManyToOne, 1.0});
  EXPECT_FALSE(CheckSchemaReducibility(schema).reducible);
}

TEST(ReducibilityTest, EmptySchemaIsTriviallyReducible) {
  ErSchema schema;
  schema.AddEntitySet({"A", {}, 1.0});
  EXPECT_TRUE(CheckSchemaReducibility(schema).reducible);
}

}  // namespace
}  // namespace biorank
