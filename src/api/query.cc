#include "api/query.h"

namespace biorank::api {

QueryRequest MakeProteinFunctionRequest(const std::string& gene_symbol,
                                        int top_k) {
  QueryRequest request;
  request.query = MakeProteinFunctionQuery(gene_symbol);
  request.options.top_k = top_k;
  return request;
}

std::vector<std::pair<NodeId, double>> RankingFingerprint(
    const QueryResponse& response) {
  std::vector<std::pair<NodeId, double>> fingerprint;
  fingerprint.reserve(response.top.size());
  for (const RankedAnswer& answer : response.top) {
    fingerprint.emplace_back(answer.node, answer.reliability);
  }
  return fingerprint;
}

}  // namespace biorank::api
