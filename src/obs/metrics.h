// Process-local metrics registry: named counters, gauges, and
// log-bucketed latency histograms with cheap handle-based recording on
// hot paths. A Registry instance is owned by whoever fronts a
// deployment (api::Server owns one per server; the shard router records
// into its front server's registry) — deliberately NOT a process-global
// singleton, because InProcessTransport stands up N servers in one
// process and their metrics must not collide.
//
// Recording contract (the hot-path side):
//   - Counter::Add and Histogram::Observe are lock-free: relaxed
//     atomics sharded across cacheline-padded slots keyed by thread, so
//     concurrent writers never contend on one cacheline and TSan sees
//     only atomic traffic.
//   - Gauge is a single atomic (gauges are low-rate by nature).
//   - Handles returned by Get* are stable for the Registry's lifetime;
//     resolve them once at construction, not per request.
//
// Snapshot contract (the reading side): TakeSnapshot() holds the
// registry mutex, runs registered collector callbacks (the bridge from
// legacy Stats() structs — CacheStats, AdmissionStats, RouterStats —
// which remain the point-in-time snapshot views they always were), and
// returns a self-contained Snapshot sorted by metric name. Individual
// counter reads sum their slots with acquire ordering; a snapshot is a
// consistent *list* of metrics, each atomically summed, not a global
// atomic cut — the same contract Prometheus scrapes live with.
//
// Histograms use a fixed ~2x bucket ladder: bucket i holds observations
// <= min_bound * 2^i (cumulative counts are computed at snapshot time,
// matching Prometheus `le` semantics). Quantiles are derived from the
// bucket counts with log-linear interpolation inside the bucket —
// approximate by construction, exact enough for p50/p99/p999 gates.
//
// Naming convention (enforced by the exporter tests, see
// docs/ARCHITECTURE.md §9): biorank_<layer>_<name> with layer one of
// api/serve/shard/ingest, counters suffixed _total, latency histograms
// suffixed _seconds.

#ifndef BIORANK_OBS_METRICS_H_
#define BIORANK_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace biorank::obs {

/// Number of cacheline-padded slots a Counter/Histogram stripes its
/// writers across. Eight covers the pool widths this repo runs (the
/// thread pool is sized to hardware_concurrency, typically <= 8 here);
/// more threads than slots just share slots, still atomically.
inline constexpr int kWriteSlots = 8;

/// Stable per-thread slot index in [0, kWriteSlots).
int ThisThreadSlot();

/// A monotonically increasing counter. Add() is wait-free on the hot
/// path; Value() sums the slots.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    slots_[static_cast<size_t>(ThisThreadSlot())].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.v.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, kWriteSlots> slots_;
};

/// A settable instantaneous value (queue depth, open sessions, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram shape: a fixed ladder of `buckets` finite upper bounds
/// min_bound * 2^i plus an implicit +Inf bucket. The default spans
/// 1 microsecond .. ~134 seconds in 28 doublings — wide enough for
/// every latency this stack records, from cache probes to blocked
/// open-loop queries.
struct HistogramOptions {
  double min_bound = 1e-6;
  int buckets = 28;
};

/// A log-bucketed histogram. Observe() is wait-free (bucket search is a
/// handful of compares on a 28-entry ladder); the running sum uses a
/// CAS loop because C++17 has no atomic<double>::fetch_add.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = HistogramOptions());
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Values below the first bound land in
  /// bucket 0; values above the last finite bound land in the +Inf
  /// bucket. NaN is dropped (never recorded) so a poisoned timing can
  /// not corrupt the sum.
  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;

  /// Finite upper bounds (size options.buckets); the +Inf bucket is
  /// implicit at index options.buckets in per-bucket counts.
  const std::vector<double>& bounds() const { return bounds_; }

  /// Raw (non-cumulative) per-bucket counts, size bounds().size() + 1.
  std::vector<uint64_t> BucketCounts() const;

 private:
  struct alignas(64) Slot {
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<uint64_t> sum_bits{0};  // bit-cast double accumulator
  };

  std::vector<double> bounds_;
  std::array<Slot, kWriteSlots> slots_;
};

/// Point-in-time views assembled by Registry::TakeSnapshot().
struct CounterSnapshot {
  std::string name;
  std::string help;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::vector<double> bounds;    ///< finite upper bounds, ascending
  std::vector<uint64_t> counts;  ///< raw per-bucket, size bounds+1 (+Inf last)
  uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0,1]) by log-linear interpolation within
  /// the bucket holding the q-th observation. Returns 0 on an empty
  /// histogram; observations in the +Inf bucket report the last finite
  /// bound (a deliberate floor — the ladder is sized so this is rare).
  double Quantile(double q) const;
};

struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Distinct metric names across all three kinds.
  size_t MetricCount() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// A collector contributes derived metrics (typically a legacy Stats()
/// struct flattened into counters/gauges) at snapshot time, under the
/// registry lock. Collectors must not call back into the Registry.
using Collector = std::function<void(Snapshot&)>;

/// The registry proper. Get* calls are idempotent: the first call for a
/// name creates the metric, later calls return the same handle (help
/// text from the first registration wins). Metric names must be
/// distinct across kinds — registering "x" as both a counter and a
/// gauge is a programming error and aborts in debug builds.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          HistogramOptions options = HistogramOptions());

  /// Registers a snapshot-time collector (see Collector above). The
  /// returned token deregisters it — a component whose lifetime is
  /// shorter than the registry's (e.g. a ShardRouter borrowing its
  /// front server's registry) must RemoveCollector before dying.
  uint64_t AddCollector(Collector fn);
  void RemoveCollector(uint64_t token);

  /// Locked point-in-time snapshot: native metrics first, then
  /// collectors, then a stable sort by name within each kind.
  Snapshot TakeSnapshot() const;

 private:
  struct CounterEntry {
    std::string help;
    std::unique_ptr<Counter> metric;
  };
  struct GaugeEntry {
    std::string help;
    std::unique_ptr<Gauge> metric;
  };
  struct HistogramEntry {
    std::string help;
    std::unique_ptr<Histogram> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_token_ = 1;
};

}  // namespace biorank::obs

#endif  // BIORANK_OBS_METRICS_H_
