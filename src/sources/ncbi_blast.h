// Simulated NCBI BLAST wrapper: sequence-similarity hits whose
// E-values become edge probabilities.

#ifndef BIORANK_SOURCES_NCBI_BLAST_H_
#define BIORANK_SOURCES_NCBI_BLAST_H_

#include <vector>

#include "datagen/evidence_model.h"
#include "datagen/protein_universe.h"
#include "sources/data_source.h"

namespace biorank {

/// One BLAST similarity hit: the paper's ternary relationship
/// NCBIBlast(seq1, seq2, idEG, e-value), split into NCBIBlast1 (the
/// similarity with its e-value) and NCBIBlast2 (the certain foreign key
/// from seq2 into EntrezGene).
struct BlastHit {
  int seq2 = 0;        ///< Similar sequence (= protein index).
  int gene_id = 0;     ///< Foreign key into EntrezGene (qr = 1).
  double e_value = 1.0;
};

/// Tuning knobs for the simulated BLAST neighbourhood.
struct NcbiBlastOptions {
  /// Spurious cross-family hits appended to every hit list (weak
  /// e-values). The noise that makes exploratory answers imprecise.
  int min_noise_hits = 0;
  int max_noise_hits = 1;
};

/// Simulated NCBIBlast: returns same-family proteins with genuine-homology
/// e-values plus a few spurious cross-family hits. Hit lists are generated
/// once, deterministically from the universe seed.
class NcbiBlastSource : public DataSource {
 public:
  NcbiBlastSource(const ProteinUniverse& universe,
                  const EvidenceModel& evidence,
                  const NcbiBlastOptions& options = {});

  std::string name() const override { return "NCBIBlast"; }
  int entity_set_count() const override { return 2; }
  int relationship_count() const override { return 3; }

  /// Hits for a query sequence; empty for out-of-range ids.
  const std::vector<BlastHit>& Similar(int seq_id) const;

 private:
  std::vector<std::vector<BlastHit>> hits_;
  std::vector<BlastHit> empty_;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_NCBI_BLAST_H_
