// Anytime top-k refinement: the resumable half of the serving pipeline.
//
// A blocking RankPrepared call runs bounds -> prune -> exact/MC to
// convergence in one shot. The anytime path splits that at the prune
// gate: PrepareAnytime runs the deterministic phases only (canonicalize,
// cache lookup, bounds, top-k cut, classification — no factoring, no
// Monte Carlo), leaving a RefinementState whose survivors carry partial
// integer MC tallies. Each RefineIncrement advances every unresolved
// survivor by whole shards of the same deterministic trial schedule the
// blocking path uses, so when the state reaches convergence the ranking
// is bit-identical — value for value — to the blocking answer (this is
// the Bernecker-style incremental-rank pruning from the ROADMAP, built
// on the paper's bounds).
//
// Determinism contract: refinement state is keyed by (canonical key,
// service seed, trials-so-far). Shard i of a survivor always draws from
// the RNG stream derived from (seed, canonical hash, i) regardless of
// which increment runs it, and tallies are integers, so any increment
// schedule — one big step, many small ones, partly adopted from another
// handle via the shared cache — sums to the same converged value.

#ifndef BIORANK_SERVE_REFINEMENT_H_
#define BIORANK_SERVE_REFINEMENT_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/canonical.h"
#include "core/query_graph.h"
#include "serve/ranking_service.h"
#include "util/status.h"

namespace biorank::serve {

/// How settled a (possibly still-refining) ranking is. Counts are per
/// request candidate (duplicates counted once each, like RequestStats).
struct Completeness {
  int resolved = 0;   ///< Candidates with a final value (exact, cached, or converged MC).
  int bounded = 0;    ///< Candidates settled by bounds alone (pruned from the top k).
  int refining = 0;   ///< Candidates whose value is still an open bracket.
  /// Widest upper-lower bracket among the still-refining candidates
  /// (0 when none remain).
  double widest_bracket = 0.0;
  /// True once every candidate is resolved or pruned: the ranking is
  /// final and bit-identical to the blocking answer.
  bool complete = false;
};

/// Resumable state of one anytime ranking. Owns its canonicalizations
/// (`uniques` hold pointers into `canonicals`, which stay valid under
/// move — the vector's heap buffer moves wholesale — but not copy, so
/// the type is move-only).
struct RefinementState {
  RefinementState() = default;
  RefinementState(RefinementState&&) = default;
  RefinementState& operator=(RefinementState&&) = default;
  RefinementState(const RefinementState&) = delete;
  RefinementState& operator=(const RefinementState&) = delete;

  int k = 0;                          ///< Requested (clamped) top-k.
  std::vector<NodeId> nodes;          ///< Per-candidate request node ids.
  std::vector<CanonicalCandidate> canonicals;  ///< Per-candidate, owned.
  std::vector<UniqueState> uniques;   ///< Per unique canonical key.
  std::vector<int> unique_index;      ///< Candidate -> unique position.
  std::vector<int> refinable;         ///< Uniques still needing exact/MC.
  double threshold = 0.0;             ///< The prepare-time top-k cut.
  RequestStats stats;                 ///< Accumulated across increments.

  bool complete() const { return refinable.empty(); }
};

/// Runs the deterministic prefix of the pipeline — canonicalize,
/// cache lookup, bounds, top-k cut, classify — and returns the resumable
/// state. Spends no factoring or Monte Carlo work: a ranking read off
/// this state is the pure bounds-only answer. `targets` must be a
/// distinct subset of `graph.answers`; `k` is clamped to the target
/// count. Bounds (and free bound-exact closures) are published to the
/// service cache exactly like the blocking path's phase 7.
Result<RefinementState> PrepareAnytime(RankingService& service,
                                       const QueryGraph& graph,
                                       const std::vector<NodeId>& targets,
                                       int k);

/// Advances every unresolved survivor by up to `trial_budget` MC trials
/// (rounded up to whole shards; <= 0 means run each survivor to
/// convergence), trying exact factoring first where the residue is small
/// enough. Survivors are visited in deterministic (unique) order; when
/// `deadline` is in the past the sweep stops between survivors and the
/// call returns with whatever progress was made. Progress is published
/// to the service cache after each survivor, so concurrent handles on
/// isomorphic candidates adopt each other's tallies instead of repeating
/// coin flips. Returns the state's completeness after the increment.
Result<Completeness> RefineIncrement(
    RankingService& service, RefinementState& state, int64_t trial_budget,
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max());

/// The ranking the state supports right now: resolved candidates rank by
/// value; still-refining survivors rank by their bracket midpoint with
/// Resolution::kRefining and the open [lower, upper] attached; pruned
/// candidates are omitted (provably outside the top k). Sorted by the
/// one serving order (RanksBefore), truncated to the state's k. Once the
/// state is complete this is bit-identical to the blocking ranking.
std::vector<RankedCandidate> CurrentRanking(const RefinementState& state);

/// Completeness summary of the state (see Completeness).
Completeness Summarize(const RefinementState& state);

}  // namespace biorank::serve

#endif  // BIORANK_SERVE_REFINEMENT_H_
