// Reproduces the Section 4 "Efficiency" text claims:
//  - the reduction rules shrink the 20 scenario-1 query graphs by ~78%
//    (nodes + edges);
//  - the traversal Monte Carlo simulation (Algorithm 3.1) is ~3.4x faster
//    than the naive simulate-everything variant;
//  - reduction plus traversal MC is ~13.4x faster than naive MC.

#include <chrono>
#include <iostream>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/reduction.h"
#include "core/reliability_mc.h"
#include "integrate/scenario_harness.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

double TimeMcMs(const QueryGraph& graph, McOptions::Mode mode,
                int64_t trials, uint64_t seed) {
  McOptions options;
  options.mode = mode;
  options.trials = trials;
  options.seed = seed;
  // Single-threaded on purpose: this compares the *algorithms* (naive vs
  // traversal vs reduced), not the parallel engine; see
  // bench_parallel_scaling for thread scaling.
  options.num_threads = 1;
  auto start = std::chrono::steady_clock::now();
  EstimateReliabilityMc(graph, options).value();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  std::cout << "=== Graph reduction and traversal-MC statistics ===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport report("reduction_stats");
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  TextTable table({"Protein", "Nodes", "Edges", "Nodes'", "Edges'",
                   "Removed"});
  CsvWriter csv({"protein", "nodes_before", "edges_before", "nodes_after",
                 "edges_after", "removed_fraction"});
  std::vector<double> removed, nodes, edges;
  std::vector<QueryGraph> reduced_graphs;
  for (const ScenarioQuery& query : queries.value()) {
    QueryGraph reduced = query.graph;
    ReductionStats stats = ReduceQueryGraph(reduced);
    reduced_graphs.push_back(std::move(reduced));
    removed.push_back(stats.RemovedFraction());
    nodes.push_back(stats.nodes_before);
    edges.push_back(stats.edges_before);
    table.AddRow({query.spec.gene_symbol, std::to_string(stats.nodes_before),
                  std::to_string(stats.edges_before),
                  std::to_string(stats.nodes_after),
                  std::to_string(stats.edges_after),
                  FormatDouble(stats.RemovedFraction() * 100, 1) + "%"});
    csv.AddRow({query.spec.gene_symbol, std::to_string(stats.nodes_before),
                std::to_string(stats.edges_before),
                std::to_string(stats.nodes_after),
                std::to_string(stats.edges_after),
                FormatDouble(stats.RemovedFraction(), 4)});
  }
  table.AddSeparator();
  table.AddRow({"Mean", FormatDouble(Mean(nodes), 0),
                FormatDouble(Mean(edges), 0), "", "",
                FormatDouble(Mean(removed) * 100, 1) + "%"});
  table.Print(std::cout);
  std::cout << "\nPaper: graphs average 520 nodes / 695 edges; reductions "
               "remove 78% of elements.\n\n";

  // MC speedups, averaged over the 20 graphs (1000 trials each).
  std::vector<double> naive_ms, traversal_ms, reduced_traversal_ms;
  uint64_t seed = 0;
  for (size_t i = 0; i < queries.value().size(); ++i) {
    const QueryGraph& graph = queries.value()[i].graph;
    naive_ms.push_back(
        TimeMcMs(graph, McOptions::Mode::kNaive, 1000, seed++));
    traversal_ms.push_back(
        TimeMcMs(graph, McOptions::Mode::kTraversal, 1000, seed++));
    reduced_traversal_ms.push_back(TimeMcMs(
        reduced_graphs[i], McOptions::Mode::kTraversal, 1000, seed++));
  }
  double naive = Mean(naive_ms);
  double traversal = Mean(traversal_ms);
  double reduced_traversal = Mean(reduced_traversal_ms);

  TextTable timing({"Variant", "Mean ms / graph", "Speedup vs naive"});
  timing.AddRow({"naive MC (all coins)", FormatDouble(naive, 2), "1.0x"});
  timing.AddRow({"traversal MC (Algorithm 3.1)", FormatDouble(traversal, 2),
                 FormatDouble(naive / traversal, 1) + "x"});
  timing.AddRow({"reduction + traversal MC",
                 FormatDouble(reduced_traversal, 2),
                 FormatDouble(naive / reduced_traversal, 1) + "x"});
  timing.Print(std::cout);
  std::cout << "\nPaper: traversal 3.4x (-70%), reduction + traversal "
               "13.4x (-93%).\n";
  bench::MaybeWriteCsv(csv, "reduction_stats");
  report.SetWallTime(total_timer.Seconds());
  report.SetThreads(1);
  report.SetMetric("mean_removed_fraction", Mean(removed));
  report.SetMetric("naive_ms_per_graph", naive);
  report.SetMetric("traversal_ms_per_graph", traversal);
  report.SetMetric("reduced_traversal_ms_per_graph", reduced_traversal);
  report.SetMetric("traversal_speedup_vs_naive", naive / traversal);
  report.SetMetric("reduced_traversal_speedup_vs_naive",
                   naive / reduced_traversal);
  return report.Write().ok() ? 0 : 1;
}
