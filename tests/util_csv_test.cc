#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(CsvTest, EscapePlainCellUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape("0.84"), "0.84");
}

TEST(CsvTest, EscapeQuotesCommas) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvTest, EscapeDoublesQuotes) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, EscapeNewlines) {
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvTest, ToStringEmitsHeaderAndRows) {
  CsvWriter w({"method", "ap"});
  w.AddRow({"Rel", "0.84"});
  w.AddRow({"Prop", "0.85"});
  EXPECT_EQ(w.ToString(), "method,ap\nRel,0.84\nProp,0.85\n");
}

TEST(CsvTest, RowCount) {
  CsvWriter w({"x"});
  EXPECT_EQ(w.row_count(), 0u);
  w.AddRow({"1"});
  EXPECT_EQ(w.row_count(), 1u);
}

TEST(CsvTest, WriteToFileRoundTrips) {
  CsvWriter w({"a", "b"});
  w.AddRow({"1", "two, three"});
  std::string path = ::testing::TempDir() + "/biorank_csv_test.csv";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,\"two, three\"\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvWriter w({"a"});
  Status s = w.WriteToFile("/nonexistent_dir_zzz/out.csv");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace biorank
