// Differential harness for the CSR-vs-pointer backend contract: every
// comparison runs the same computation on both substrates and reports
// the first bit-level divergence. Scores are compared by bit pattern
// (memcmp), never by tolerance — the contract is "same coins, same
// order, same arithmetic", not "close enough".

#ifndef BIORANK_TESTS_TESTING_DIFFERENTIAL_H_
#define BIORANK_TESTS_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/diffusion.h"
#include "core/query_graph.h"
#include "core/reliability_mc.h"
#include "core/topk_mc.h"

namespace biorank::testing {

/// Outcome of one differential comparison. `ok` means bit-identical;
/// otherwise `message` pinpoints the first divergence (suitable for
/// EXPECT_TRUE(r.ok) << r.message).
struct DiffResult {
  bool ok = true;
  std::string message;
};

/// True iff the two vectors have equal length and bitwise-equal contents
/// (NaN matches NaN, +0.0 differs from -0.0).
bool ScoresBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Runs EstimateReliabilityMc on `query_graph` with the CSR and pointer
/// backends (same trials/seed/mode/threading) and compares the full score
/// vectors bitwise.
DiffResult CompareMcBackends(const QueryGraph& query_graph, int64_t trials,
                             uint64_t seed, int num_threads,
                             McOptions::Mode mode =
                                 McOptions::Mode::kTraversal);

/// Runs RankTopKAdaptive with both backends and compares the adaptive
/// trajectory: trials_used, separated, and the full ranking (node order,
/// rank numbers, bitwise scores).
DiffResult CompareTopKBackends(const QueryGraph& query_graph,
                               const TopKOptions& base);

/// Runs Diffuse with both backends and compares scores (bitwise),
/// iteration counts, and convergence flags.
DiffResult CompareDiffusionBackends(const QueryGraph& query_graph,
                                    const DiffusionOptions& base);

/// Compares the query-relevant restriction of every answer between the
/// pointer traversal and the CSR-mask overload: kept masks, canonical
/// keys, and provenance footprints must match exactly.
DiffResult CompareRestrictionBackends(const QueryGraph& query_graph);

}  // namespace biorank::testing

#endif  // BIORANK_TESTS_TESTING_DIFFERENTIAL_H_
