// Interactive-style CLI over the BioRank front door: run an exploratory
// query for a protein through api::Server, rank its candidate functions,
// and print the top answers with their strongest evidence paths
// (provenance). Reliability ranking rides the serving layer (canonical
// cache + bounds-driven pruning); the other relevance functions are
// scored offline via the server's evaluation harness.
//
// Usage:
//   ./build/examples/explore_cli [gene_symbol] [method] [top_n]
//   ./build/examples/explore_cli --metrics [gene_symbol]
// With no arguments it picks the first well-studied protein and
// reliability ranking. --metrics serves one query and dumps the
// server's Prometheus metrics instead of the ranking.

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/server.h"
#include "core/explanation.h"
#include "core/ranking.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

Result<RankingMethod> ParseMethod(const std::string& name) {
  for (RankingMethod method : AllRankingMethods()) {
    if (name == RankingMethodName(method)) return method;
  }
  return Status::InvalidArgument(
      "unknown method '" + name + "' (use Rel, Prop, Diff, InEdge, PathC)");
}

void PrintEvidence(const QueryGraph& graph, NodeId answer) {
  ExplanationOptions explain;
  explain.max_paths = 2;
  Result<std::vector<EvidencePath>> paths =
      ExplainAnswer(graph, answer, explain);
  if (!paths.ok()) return;
  for (const EvidencePath& path : paths.value()) {
    std::cout << "        " << FormatEvidencePath(graph, path) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  api::Server server;

  if (argc > 1 && std::string(argv[1]) == "--metrics") {
    // Serve one real query so the scrape shows live numbers, then dump
    // the full registry in Prometheus exposition format.
    std::string symbol = argc > 2 ? argv[2]
                                  : server.universe()
                                        .protein(server.universe()
                                                     .well_studied()[0])
                                        .gene_symbol;
    api::Result<api::QueryResponse> response =
        server.Query(api::MakeProteinFunctionRequest(symbol, 8));
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    std::cout << server.MetricsText();
    return 0;
  }

  std::string symbol;
  if (argc > 1) {
    symbol = argv[1];
  } else {
    symbol = server.universe()
                 .protein(server.universe().well_studied()[0])
                 .gene_symbol;
    std::cout << "(no gene symbol given; using " << symbol << ")\n";
  }
  RankingMethod method = RankingMethod::kReliability;
  if (argc > 2) {
    Result<RankingMethod> parsed = ParseMethod(argv[2]);
    if (!parsed.ok()) {
      std::cerr << parsed.status() << "\n";
      return 2;
    }
    method = parsed.value();
  }
  int top_n = argc > 3 ? std::atoi(argv[3]) : 8;

  if (method == RankingMethod::kReliability) {
    // The served path: typed request in, typed response out.
    api::Result<api::QueryResponse> response =
        server.Query(api::MakeProteinFunctionRequest(symbol, top_n));
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    const api::QueryResponse& r = response.value();
    const QueryGraph& graph = r.result.query_graph;
    std::cout << "Query (EntrezProtein.name = \"" << symbol << "\", AmiGO): "
              << graph.graph.num_nodes() << " nodes, "
              << graph.graph.num_edges() << " edges, "
              << graph.answers.size() << " candidate functions.\n\n";
    std::cout << "Top " << top_n << " functions by served reliability ("
              << FormatCompact(r.timing.rank_s * 1e3, 3) << " ms, "
              << r.stats.cache_hits << " cache hits, " << r.stats.pruned
              << " pruned):\n";
    for (size_t i = 0; i < r.top.size(); ++i) {
      const api::RankedAnswer& answer = r.top[i];
      std::cout << " " << PadLeft(std::to_string(i + 1), 5) << "  "
                << answer.label << "  (r " << FormatCompact(answer.reliability, 4)
                << " in [" << FormatCompact(answer.lower, 4) << ", "
                << FormatCompact(answer.upper, 4) << "])\n";
      PrintEvidence(graph, answer.node);
    }
    return 0;
  }

  // Offline methods: materialize the graph through the facade, score
  // with the harness's Ranker.
  api::QueryRequest graph_only = api::MakeProteinFunctionRequest(symbol);
  graph_only.options.rank = false;
  api::Result<api::QueryResponse> run = server.Query(graph_only);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  const QueryGraph& graph = run.value().result.query_graph;
  std::cout << "Query (EntrezProtein.name = \"" << symbol << "\", AmiGO): "
            << graph.graph.num_nodes() << " nodes, "
            << graph.graph.num_edges() << " edges, "
            << graph.answers.size() << " candidate functions.\n\n";

  Result<std::vector<RankedAnswer>> ranked =
      server.harness().ranker().Rank(graph, method);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }
  std::cout << "Top " << top_n << " functions by "
            << RankingMethodName(method) << ":\n";
  for (int i = 0; i < top_n && i < static_cast<int>(ranked.value().size());
       ++i) {
    const RankedAnswer& answer = ranked.value()[i];
    std::cout << " "
              << PadLeft(FormatRankInterval(answer.rank_lo, answer.rank_hi),
                         5)
              << "  " << graph.graph.node(answer.node).label << "  (score "
              << FormatCompact(answer.score, 4) << ")\n";
    PrintEvidence(graph, answer.node);
  }
  return 0;
}
