// The metrics registry: counter/gauge/histogram semantics, the ~2x
// bucket ladder, snapshot consistency, the Prometheus/JSON exporters,
// and a multi-writer hammer (this suite runs under the concurrency
// ctest label, so TSan sees the striped-slot recording paths).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"

namespace biorank::obs {
namespace {

TEST(ObsCounterTest, AddsAccumulateAcrossSlots) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(ObsGaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(ObsHistogramTest, BucketLadderDoublesFromMinBound) {
  HistogramOptions options;
  options.min_bound = 1e-6;
  options.buckets = 28;
  Histogram histogram(options);
  const std::vector<double>& bounds = histogram.bounds();
  ASSERT_EQ(bounds.size(), 28u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  }
  // The default ladder tops out above two minutes — enough for every
  // latency this stack records.
  EXPECT_GT(bounds.back(), 120.0);
}

TEST(ObsHistogramTest, ObservationsLandInTheRightBuckets) {
  HistogramOptions options;
  options.min_bound = 1.0;
  options.buckets = 3;  // bounds 1, 2, 4 (+Inf implicit)
  Histogram histogram(options);
  histogram.Observe(0.5);   // <= 1 -> bucket 0
  histogram.Observe(1.0);   // == bound -> bucket 0 (le semantics)
  histogram.Observe(1.5);   // bucket 1
  histogram.Observe(100.0); // +Inf bucket
  std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 103.0);
}

TEST(ObsHistogramTest, NanIsDropped) {
  Histogram histogram;
  histogram.Observe(std::numeric_limits<double>::quiet_NaN());
  histogram.Observe(0.001);
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_FALSE(std::isnan(histogram.Sum()));
}

TEST(ObsHistogramTest, QuantileInterpolatesWithinBucket) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("biorank_api_test_seconds");
  // 100 observations at 3ms: p50 and p99 must land inside the bucket
  // holding 3ms — between its lower and upper bound.
  for (int i = 0; i < 100; ++i) histogram->Observe(0.003);
  Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& h = snapshot.histograms[0];
  for (double q : {0.5, 0.99, 0.999}) {
    const double estimate = h.Quantile(q);
    EXPECT_GT(estimate, 0.002) << "q=" << q;
    EXPECT_LE(estimate, 0.0041943045) << "q=" << q;  // 1e-6 * 2^22
  }
  // Empty histogram reports 0.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
}

TEST(ObsRegistryTest, HandlesAreIdempotent) {
  Registry registry;
  Counter* a = registry.GetCounter("biorank_api_x_total", "first help wins");
  Counter* b = registry.GetCounter("biorank_api_x_total", "ignored");
  EXPECT_EQ(a, b);
  a->Add(3);
  Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].value, 3u);
  EXPECT_EQ(snapshot.counters[0].help, "first help wins");
}

TEST(ObsRegistryTest, SnapshotIsSortedByNameAndCountsMetrics) {
  Registry registry;
  registry.GetCounter("biorank_serve_b_total");
  registry.GetCounter("biorank_api_a_total");
  registry.GetGauge("biorank_api_depth");
  registry.GetHistogram("biorank_shard_rpc_seconds");
  Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "biorank_api_a_total");
  EXPECT_EQ(snapshot.counters[1].name, "biorank_serve_b_total");
  EXPECT_EQ(snapshot.MetricCount(), 4u);
}

TEST(ObsRegistryTest, CollectorsContributeAndCanBeRemoved) {
  Registry registry;
  uint64_t token = registry.AddCollector([](Snapshot& snapshot) {
    snapshot.gauges.push_back({"biorank_api_derived", "from a collector", 5.0});
  });
  EXPECT_EQ(registry.TakeSnapshot().gauges.size(), 1u);
  registry.RemoveCollector(token);
  EXPECT_EQ(registry.TakeSnapshot().gauges.size(), 0u);
}

TEST(ObsExportTest, PrometheusTextIsWellFormed) {
  Registry registry;
  registry.GetCounter("biorank_api_queries_total", "Queries served")->Add(2);
  registry.GetGauge("biorank_api_open_sessions", "Live sessions")->Set(1);
  HistogramOptions options;
  options.min_bound = 1.0;
  options.buckets = 2;
  Histogram* h =
      registry.GetHistogram("biorank_api_query_seconds", "Latency", options);
  h->Observe(0.5);
  h->Observe(3.0);
  const std::string text = RenderPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("# HELP biorank_api_queries_total Queries served"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE biorank_api_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("biorank_api_queries_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE biorank_api_open_sessions gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE biorank_api_query_seconds histogram"),
            std::string::npos);
  // Cumulative le buckets: the 0.5 observation counts into both finite
  // buckets; +Inf carries the total.
  EXPECT_NE(text.find("biorank_api_query_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("biorank_api_query_seconds_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("biorank_api_query_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("biorank_api_query_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("biorank_api_query_seconds_sum 3.5"), std::string::npos);
}

TEST(ObsExportTest, JsonCarriesQuantiles) {
  Registry registry;
  Histogram* h = registry.GetHistogram("biorank_serve_mc_seconds");
  for (int i = 0; i < 10; ++i) h->Observe(0.01);
  const std::string json = RenderJson(registry.TakeSnapshot());
  EXPECT_NE(json.find("\"biorank_serve_mc_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
}

TEST(ObsRegistryConcurrencyTest, MultiWriterHammerLosesNothing) {
  Registry registry;
  Counter* counter = registry.GetCounter("biorank_api_hammer_total");
  Gauge* gauge = registry.GetGauge("biorank_api_hammer_depth");
  Histogram* histogram = registry.GetHistogram("biorank_api_hammer_seconds");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Add();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        histogram->Observe(1e-4 * static_cast<double>(1 + (i % 7)));
        if (i % 4096 == 0) {
          // Snapshots race the writers by design (the Prometheus
          // contract); they must stay internally consistent.
          Snapshot snapshot = registry.TakeSnapshot();
          ASSERT_EQ(snapshot.histograms.size(), 1u);
          uint64_t bucket_total = 0;
          for (uint64_t c : snapshot.histograms[0].counts) bucket_total += c;
          ASSERT_EQ(bucket_total, snapshot.histograms[0].count);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // The sum is an exact integer multiple of 1e-4 sums — every
  // observation's contribution survived the CAS loop.
  const double expected_per_thread = 1e-4 * [&] {
    double s = 0;
    for (int i = 0; i < kOpsPerThread; ++i) s += 1 + (i % 7);
    return s;
  }();
  EXPECT_NEAR(histogram->Sum(), kThreads * expected_per_thread, 1e-6);
}

}  // namespace
}  // namespace biorank::obs
