// Curated mappings from source annotations - Entrez gene status and
// GO evidence codes - to probabilities (the Section 2 tables), with
// string round-trips for data loading.

#ifndef BIORANK_SCHEMA_TRANSFORMS_H_
#define BIORANK_SCHEMA_TRANSFORMS_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace biorank {

/// EntrezGene record status codes (Section 2's transformation table).
enum class GeneStatus {
  kReviewed,
  kValidated,
  kProvisional,
  kPredicted,
  kModel,
  kInferred,
};

/// Gene Ontology evidence codes (AmiGO's transformation table). Codes with
/// equal confidence share one enumerator group.
enum class EvidenceCode {
  kIDA,  ///< Inferred from Direct Assay.
  kTAS,  ///< Traceable Author Statement.
  kIGI,  ///< Inferred from Genetic Interaction.
  kIMP,  ///< Inferred from Mutant Phenotype.
  kIPI,  ///< Inferred from Physical Interaction.
  kIEP,  ///< Inferred from Expression Pattern.
  kISS,  ///< Inferred from Sequence Similarity.
  kRCA,  ///< Reviewed Computational Analysis.
  kIC,   ///< Inferred by Curator.
  kNAS,  ///< Non-traceable Author Statement.
  kIEA,  ///< Inferred from Electronic Annotation.
  kND,   ///< No biological Data available.
  kNR,   ///< Not Recorded.
};

const char* GeneStatusToString(GeneStatus status);
const char* EvidenceCodeToString(EvidenceCode code);

/// Record probability pr for an EntrezGene annotation by its status code,
/// exactly the paper's table: Reviewed 1.0, Validated 0.8, Provisional
/// 0.7, Predicted 0.4, Model 0.3, Inferred 0.2.
double GeneStatusToPr(GeneStatus status);

/// pr for an AmiGO annotation by its evidence code, exactly the paper's
/// table: IDA/TAS 1.0, IGI/IMP/IPI 0.9, IEP/ISS/RCA 0.7, IC 0.6, NAS 0.5,
/// IEA 0.3, ND/NR 0.2.
double EvidenceCodeToPr(EvidenceCode code);

/// String-keyed variants for the mediator, which sees attribute values as
/// text. Unknown codes are an error (unmodeled uncertainty must not pass
/// silently).
Result<double> GeneStatusStringToPr(std::string_view status);
Result<double> EvidenceCodeStringToPr(std::string_view code);

/// The paper's e-value transform (Section 2):
///   qr = -log10(e-value) / 300, clamped to [0, 1].
/// An e-value of 1e-300 or better maps to 1; e-values >= 1 map to 0.
double EValueToQr(double e_value);

}  // namespace biorank

#endif  // BIORANK_SCHEMA_TRANSFORMS_H_
