// Probabilistic entity-relationship model of the mediated schema
// (Section 2, Figure 1): entity set and relationship definitions with
// cardinality annotations consumed by the reducibility analysis.

#ifndef BIORANK_SCHEMA_ER_SCHEMA_H_
#define BIORANK_SCHEMA_ER_SCHEMA_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace biorank {

/// Cardinality type of a mediated-schema relationship (Section 3.1,
/// "Tractable closed solution"). [1:1] is folded into [1:n] or [n:1] by
/// the paper; we keep it distinct and treat it as both.
enum class Cardinality {
  kOneToOne,    ///< [1:1]
  kOneToMany,   ///< [1:n]
  kManyToOne,   ///< [n:1]
  kManyToMany,  ///< [m:n]
};

/// Display form: "[1:1]", "[1:n]", "[n:1]", "[m:n]".
const char* CardinalityToString(Cardinality c);

/// An entity set of the mediated E/R schema, P(id, a1, a2, ...).
struct EntitySetDef {
  std::string name;                     ///< e.g. "EntrezGene".
  std::vector<std::string> attributes;  ///< Attribute names beyond the key.
  double ps = 1.0;                      ///< Set-level confidence (Sect 2).
};

/// A relationship of the mediated E/R schema, Q(id, id', b1, ...), linking
/// `from` to `to` entity sets with a given cardinality type.
struct RelationshipDef {
  std::string name;   ///< e.g. "NCBIBlast1".
  std::string from;   ///< Source entity set name.
  std::string to;     ///< Target entity set name.
  Cardinality cardinality = Cardinality::kManyToMany;
  double qs = 1.0;    ///< Relationship-level confidence (Sect 2).
};

/// The mediated Entity-Relationship schema (Section 2, "Schema
/// integration"): a directed multigraph of entity sets and relationships.
class ErSchema {
 public:
  /// Adds an entity set; fails on duplicate names or ps outside [0,1].
  Status AddEntitySet(EntitySetDef def);

  /// Adds a relationship; fails if either endpoint is unknown, the name
  /// duplicates, or qs is outside [0,1].
  Status AddRelationship(RelationshipDef def);

  bool HasEntitySet(const std::string& name) const;

  Result<EntitySetDef> GetEntitySet(const std::string& name) const;
  Result<RelationshipDef> GetRelationship(const std::string& name) const;

  const std::vector<EntitySetDef>& entity_sets() const {
    return entity_sets_;
  }
  const std::vector<RelationshipDef>& relationships() const {
    return relationships_;
  }

  /// Names of relationships leaving / entering `entity_set`.
  std::vector<std::string> OutgoingRelationships(
      const std::string& entity_set) const;
  std::vector<std::string> IncomingRelationships(
      const std::string& entity_set) const;

 private:
  std::vector<EntitySetDef> entity_sets_;
  std::vector<RelationshipDef> relationships_;
};

/// The subset of the BioRank mediated schema relevant to the paper's
/// exploratory query (Figure 1): EntrezProtein fans out through NCBIBlast,
/// Pfam, and TigrFam toward AmiGO GO-term records, plus the direct
/// EntrezGene route.
ErSchema MakeFigure1Schema();

}  // namespace biorank

#endif  // BIORANK_SCHEMA_ER_SCHEMA_H_
