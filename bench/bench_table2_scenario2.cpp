// Reproduces Table 2: the rank each method assigns to the recently
// published ("less-known") functions of the scenario-2 proteins. Ties are
// printed as rank intervals exactly like the paper.
//
// Paper shape: Rel/Prop put the new functions in the upper quarter
// (mean rank ~15-17 of ~97), Diff often at the very top, while
// InEdge/PathC leave them tied with the noise tail (mean ~36, intervals
// like "34-97") — barely better than random.

#include <iostream>
#include <map>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "integrate/scenario_harness.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Table 2: ranks of less-known functions (scenario 2) "
               "===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport report("table2_scenario2");
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario2LessKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  TextTable table({"Protein", "Function", "Rel", "Prop", "Diff", "InEdge",
                   "PathC", "Random"});
  CsvWriter csv({"protein", "function", "method", "rank_lo", "rank_hi"});
  // Mean midpoint rank per method, like the paper's summary rows.
  std::map<std::string, std::vector<double>> midpoints;

  for (const ScenarioQuery& query : queries.value()) {
    // Rankings once per method, then read off the gold functions.
    std::map<std::string, std::vector<RankedAnswer>> rankings;
    for (RankingMethod method : AllRankingMethods()) {
      Result<std::vector<RankedAnswer>> ranked =
          harness.ranker().Rank(query.graph, method);
      if (ranked.ok()) {
        rankings[RankingMethodName(method)] = std::move(ranked.value());
      }
    }
    for (NodeId gold : query.relevant) {
      std::vector<std::string> cells = {
          query.spec.gene_symbol, query.graph.graph.node(gold).label};
      for (RankingMethod method : AllRankingMethods()) {
        const char* name = RankingMethodName(method);
        auto it = rankings.find(name);
        std::string cell = "-";
        if (it != rankings.end()) {
          for (const RankedAnswer& answer : it->second) {
            if (answer.node == gold) {
              cell = FormatRankInterval(answer.rank_lo, answer.rank_hi);
              midpoints[name].push_back(
                  0.5 * (answer.rank_lo + answer.rank_hi));
              csv.AddRow({query.spec.gene_symbol,
                          query.graph.graph.node(gold).label, name,
                          std::to_string(answer.rank_lo),
                          std::to_string(answer.rank_hi)});
              break;
            }
          }
        }
        cells.push_back(cell);
      }
      cells.push_back("1-" + std::to_string(query.answer_count));
      table.AddRow(cells);
    }
  }

  table.AddSeparator();
  std::vector<std::string> mean_row = {"Mean", ""};
  std::vector<std::string> stdv_row = {"Stdv", ""};
  for (const char* name : {"Rel", "Prop", "Diff", "InEdge", "PathC"}) {
    SampleStats stats = ComputeStats(midpoints[name]);
    mean_row.push_back(FormatDouble(stats.mean, 1));
    stdv_row.push_back(FormatDouble(stats.stddev, 1));
    report.AddRow({{"method", name},
                   {"mean_midpoint_rank", stats.mean},
                   {"stdev", stats.stddev}});
  }
  table.AddRow(mean_row);
  table.AddRow(stdv_row);
  table.Print(std::cout);

  std::cout << "\nPaper means (midpoint rank): Rel 14.8, Prop 16.7, "
               "Diff 6.5, InEdge 36.6, PathC 35.9, Random 39.6.\n";
  bench::MaybeWriteCsv(csv, "table2_scenario2");
  report.SetWallTime(total_timer.Seconds());
  return report.Write().ok() ? 0 : 1;
}
