#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "storage/codec.h"
#include "util/crc32c.h"
#include "util/file.h"

namespace biorank::storage {
namespace {

constexpr char kMagic[8] = {'B', 'R', 'W', 'A', 'L', '0', '0', '1'};
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint64_t);
constexpr size_t kFrameHeaderSize = 2 * sizeof(uint32_t);
// lsn + type + session_id.
constexpr size_t kPayloadHeaderSize = sizeof(uint64_t) + 1 + sizeof(uint64_t);

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status DecodePayload(const char* data, size_t n, WalRecord& record) {
  ByteReader reader(data, n);
  uint8_t type = 0;
  BIORANK_RETURN_IF_ERROR(reader.GetU64(record.lsn));
  BIORANK_RETURN_IF_ERROR(reader.GetU8(type));
  BIORANK_RETURN_IF_ERROR(reader.GetU64(record.session_id));
  if (type < 1 || type > 3) {
    return Status::DataLoss("wal record has unknown type " +
                            std::to_string(type));
  }
  record.type = static_cast<WalRecordType>(type);
  record.body.assign(data + reader.pos(), n - reader.pos());
  return Status::OK();
}

/// Parses `bytes` (header already verified and stripped by the caller;
/// `base_offset` = kHeaderSize, for error messages). Implements the
/// torn-tail contract: the scan stops cleanly at the first incomplete
/// frame, and a CRC/decode failure on the *final* parseable frame also
/// counts as torn; a bad frame with complete frames after it is
/// kDataLoss. `valid_end` is the file offset right after the last good
/// record (where Open truncates to).
Status ParseRecords(const std::string& bytes, size_t base_offset,
                    WalReplay& replay, uint64_t& valid_end) {
  size_t pos = 0;
  valid_end = base_offset;
  // Offset (relative) + decoded record of a suspect frame: a frame whose
  // checksum or payload failed. Deferred because its meaning depends on
  // whether anything parseable follows it.
  bool have_bad_frame = false;
  size_t bad_frame_pos = 0;
  std::string bad_frame_reason;

  while (bytes.size() - pos >= kFrameHeaderSize) {
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    std::memcpy(&crc, bytes.data() + pos + sizeof(len), sizeof(crc));
    if (len < kPayloadHeaderSize || bytes.size() - pos - kFrameHeaderSize <
                                        static_cast<size_t>(len)) {
      // Incomplete (or nonsense-length) frame at the end of the scan:
      // the torn tail. If a bad frame came before it, that bad frame is
      // NOT last — but nothing complete followed it either, so the
      // simplest consistent reading is still truncation at the bad
      // frame (everything from it on is the tail a crash tore).
      break;
    }
    const char* payload = bytes.data() + pos + kFrameHeaderSize;
    WalRecord record;
    bool good = util::Crc32c(payload, len) == crc &&
                DecodePayload(payload, len, record).ok() &&
                record.lsn == replay.last_lsn + 1;
    if (!good) {
      if (have_bad_frame) {
        // Two independent bad frames with parseable framing: not a tail.
        return Status::DataLoss("wal corrupt at offset " +
                                std::to_string(base_offset + bad_frame_pos) +
                                ": " + bad_frame_reason);
      }
      have_bad_frame = true;
      bad_frame_pos = pos;
      bad_frame_reason = "checksum/payload mismatch";
      pos += kFrameHeaderSize + len;
      continue;
    }
    if (have_bad_frame) {
      // A complete, checksum-valid record follows the bad frame, so the
      // bad frame cannot be a torn tail — the file is corrupt mid-way.
      return Status::DataLoss("wal corrupt at offset " +
                              std::to_string(base_offset + bad_frame_pos) +
                              ": " + bad_frame_reason +
                              " with valid records following");
    }
    replay.records.push_back(std::move(record));
    replay.last_lsn = replay.records.back().lsn;
    pos += kFrameHeaderSize + len;
    valid_end = base_offset + pos;
  }

  uint64_t file_end = base_offset + bytes.size();
  replay.truncated_bytes = file_end - valid_end;
  replay.torn_tail = replay.truncated_bytes > 0;
  return Status::OK();
}

Result<WalReplay> ScanFile(const std::string& path, uint64_t fingerprint,
                           uint64_t& valid_end) {
  Result<std::string> contents = util::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  if (bytes.size() < kHeaderSize) {
    return Status::DataLoss("wal file shorter than its header: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("wal magic mismatch: " + path);
  }
  uint64_t file_fingerprint = 0;
  std::memcpy(&file_fingerprint, bytes.data() + sizeof(kMagic),
              sizeof(file_fingerprint));
  if (file_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "wal belongs to a differently-configured server (fingerprint "
        "mismatch): " +
        path);
  }
  WalReplay replay;
  Status parsed = ParseRecords(bytes.substr(kHeaderSize), kHeaderSize, replay,
                               valid_end);
  if (!parsed.ok()) return parsed;
  return replay;
}

}  // namespace

std::string WalFileHeader(uint64_t fingerprint) {
  std::string header(kMagic, sizeof(kMagic));
  header.append(reinterpret_cast<const char*>(&fingerprint),
                sizeof(fingerprint));
  return header;
}

std::string FrameWalRecord(uint64_t lsn, WalRecordType type,
                           uint64_t session_id, const std::string& body) {
  ByteWriter payload;
  payload.PutU64(lsn);
  payload.PutU8(static_cast<uint8_t>(type));
  payload.PutU64(session_id);
  payload.PutBytes(body.data(), body.size());
  const std::string& bytes = payload.bytes();
  uint32_t len = static_cast<uint32_t>(bytes.size());
  uint32_t crc = util::Crc32c(bytes.data(), bytes.size());
  std::string frame;
  frame.reserve(kFrameHeaderSize + bytes.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame.append(bytes);
  return frame;
}

Result<WalReplay> ReadWal(const std::string& path, uint64_t fingerprint) {
  uint64_t valid_end = 0;
  return ScanFile(path, fingerprint, valid_end);
}

Wal::Wal(std::string path, int fd, uint64_t last_lsn, WalOptions options)
    : path_(std::move(path)), options_(options), fd_(fd),
      last_lsn_(last_lsn) {
  last_sync_monotonic_s_ = MonotonicSeconds();
  stats_.last_lsn = last_lsn;
  if (options_.registry != nullptr) {
    append_seconds_ = options_.registry->GetHistogram(
        "biorank_storage_wal_append_seconds",
        "Latency of one WAL record append (frame + write + group fsync).");
    bytes_total_ = options_.registry->GetCounter(
        "biorank_storage_wal_bytes_total",
        "Framed bytes appended to the WAL.");
    records_total_ = options_.registry->GetCounter(
        "biorank_storage_wal_records_total", "Records appended to the WAL.");
    syncs_total_ = options_.registry->GetCounter(
        "biorank_storage_wal_syncs_total", "fsync calls issued by the WAL.");
  }
}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (options_.fsync) ::fsync(fd_);
    ::close(fd_);
  }
}

Result<Wal::OpenResult> Wal::Open(const std::string& path,
                                  uint64_t fingerprint, WalOptions options) {
  uint64_t valid_end = 0;
  WalReplay replay;
  Result<WalReplay> scanned = ScanFile(path, fingerprint, valid_end);
  if (scanned.ok()) {
    replay = std::move(scanned).value();
  } else if (scanned.status().code() == StatusCode::kNotFound) {
    // Fresh log.
    Status created = util::AtomicFileWrite(path, WalFileHeader(fingerprint));
    if (!created.ok()) return created;
    valid_end = kHeaderSize;
  } else {
    return scanned.status();
  }

  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::Internal("cannot open wal for append: " + path + ": " +
                            std::strerror(errno));
  }
  // Drop the torn tail physically so the append offset is the end of the
  // last complete record.
  if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    ::close(fd);
    return Status::Internal("cannot truncate wal torn tail: " + path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Status::Internal("cannot seek wal: " + path);
  }
  OpenResult result;
  result.replay = std::move(replay);
  result.wal.reset(new Wal(path, fd, result.replay.last_lsn, options));
  return result;
}

Result<uint64_t> Wal::Append(WalRecordType type, uint64_t session_id,
                             const std::string& body) {
  double start_s = MonotonicSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::Internal("wal is broken after a failed write: " + path_);
  }
  uint64_t lsn = last_lsn_ + 1;
  std::string frame = FrameWalRecord(lsn, type, session_id, body);
  const char* data = frame.data();
  size_t remaining = frame.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial record may now be on disk — exactly the torn tail the
      // next Open truncates. Fail-stop so no later record lands after it.
      broken_ = true;
      return Status::Internal("wal write failed: " + path_ + ": " +
                              std::strerror(errno));
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  last_lsn_ = lsn;
  stats_.records++;
  stats_.bytes += frame.size();
  stats_.last_lsn = lsn;
  unsynced_records_++;

  bool should_sync = false;
  if (options_.fsync) {
    if (options_.fsync_every_n > 0 &&
        unsynced_records_ >= options_.fsync_every_n) {
      should_sync = true;
    }
    if (options_.fsync_interval_s > 0.0 &&
        MonotonicSeconds() - last_sync_monotonic_s_ >=
            options_.fsync_interval_s) {
      should_sync = true;
    }
  }
  if (should_sync) {
    BIORANK_RETURN_IF_ERROR(SyncLocked());
  }
  if (records_total_ != nullptr) {
    records_total_->Add(1);
    bytes_total_->Add(frame.size());
    append_seconds_->Observe(MonotonicSeconds() - start_s);
  }
  return lsn;
}

Status Wal::SyncLocked() {
  if (unsynced_records_ == 0) return Status::OK();
  if (options_.fsync && ::fsync(fd_) != 0) {
    broken_ = true;
    return Status::Internal("wal fsync failed: " + path_);
  }
  unsynced_records_ = 0;
  last_sync_monotonic_s_ = MonotonicSeconds();
  stats_.syncs++;
  if (syncs_total_ != nullptr) syncs_total_->Add(1);
  return Status::OK();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::Internal("wal is broken after a failed write: " + path_);
  }
  return SyncLocked();
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

}  // namespace biorank::storage
