#include "core/csr_snapshot.h"

#include <cstring>

#include "util/checked_cast.h"

namespace biorank {

namespace {

/// Bitwise equality of two double arrays (memcmp: NaNs match themselves,
/// -0.0 differs from +0.0 — exactly the "byte-equal" contract).
bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool BitsEqual(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

}  // namespace

CsrSnapshot BuildCsrSnapshot(const ProbabilisticEntityGraph& graph,
                             const std::vector<bool>* kept_mask) {
  CsrSnapshot csr;
  const NodeId capacity = graph.node_capacity();
  csr.dense_id.assign(static_cast<size_t>(capacity), kCsrInvalid);

  auto included = [&](NodeId id) {
    if (!graph.IsValidNode(id)) return false;
    if (kept_mask == nullptr) return true;
    return static_cast<size_t>(id) < kept_mask->size() &&
           (*kept_mask)[static_cast<size_t>(id)];
  };

  // Pass 1 — dense node ids in ascending original order (the ordering
  // contract the differential suite pins down).
  for (NodeId id = 0; id < capacity; ++id) {
    if (!included(id)) continue;
    csr.dense_id[static_cast<size_t>(id)] =
        CheckedUint32Cast(csr.orig_id.size(), "BuildCsrSnapshot node count");
    csr.orig_id.push_back(id);
    const GraphNode& node = graph.node(id);
    csr.node_p.push_back(node.p);
    csr.node_confidence.push_back(static_cast<float>(node.p));
    csr.node_kind.push_back(0);
  }
  const uint32_t n = csr.num_nodes();

  // Pass 2 — degree counts for both CSR directions.
  std::vector<uint32_t> out_degree(n, 0), in_degree(n, 0);
  uint32_t total = 0;
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.IsValidEdge(e)) continue;
    const GraphEdge& edge = graph.edge(e);
    const uint32_t from = csr.dense_id[static_cast<size_t>(edge.from)];
    const uint32_t to = csr.dense_id[static_cast<size_t>(edge.to)];
    if (from == kCsrInvalid || to == kCsrInvalid) continue;
    ++out_degree[from];
    ++in_degree[to];
    total = CheckedUint32Cast(static_cast<uint64_t>(total) + 1,
                              "BuildCsrSnapshot edge count");
  }

  csr.out_offset.assign(n + 1, 0);
  csr.in_offset.assign(n + 1, 0);
  for (uint32_t d = 0; d < n; ++d) {
    csr.out_offset[d + 1] = csr.out_offset[d] + out_degree[d];
    csr.in_offset[d + 1] = csr.in_offset[d] + in_degree[d];
  }
  csr.out_to.assign(total, kCsrInvalid);
  csr.out_q.assign(total, 0.0);
  csr.in_from.assign(total, kCsrInvalid);
  csr.in_q.assign(total, 0.0);

  // Pass 3 — fill both directions in ascending EdgeId order, so every
  // node's edge segment enumerates exactly as the pointer graph's
  // ForEachOutEdge / ForEachInEdge (adjacency lists append on AddEdge).
  std::vector<uint32_t> out_cursor(csr.out_offset.begin(),
                                   csr.out_offset.end() - 1);
  std::vector<uint32_t> in_cursor(csr.in_offset.begin(),
                                  csr.in_offset.end() - 1);
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.IsValidEdge(e)) continue;
    const GraphEdge& edge = graph.edge(e);
    const uint32_t from = csr.dense_id[static_cast<size_t>(edge.from)];
    const uint32_t to = csr.dense_id[static_cast<size_t>(edge.to)];
    if (from == kCsrInvalid || to == kCsrInvalid) continue;
    const uint32_t oc = out_cursor[from]++;
    csr.out_to[oc] = to;
    csr.out_q[oc] = edge.q;
    const uint32_t ic = in_cursor[to]++;
    csr.in_from[ic] = from;
    csr.in_q[ic] = edge.q;
  }
  return csr;
}

bool CsrBytesEqual(const CsrSnapshot& a, const CsrSnapshot& b) {
  return BitsEqual(a.node_p, b.node_p) &&
         BitsEqual(a.node_confidence, b.node_confidence) &&
         a.node_kind == b.node_kind && a.orig_id == b.orig_id &&
         a.dense_id == b.dense_id && a.out_offset == b.out_offset &&
         a.out_to == b.out_to && BitsEqual(a.out_q, b.out_q) &&
         a.in_offset == b.in_offset && a.in_from == b.in_from &&
         BitsEqual(a.in_q, b.in_q);
}

Result<CsrQuerySnapshot> BuildCsrQuerySnapshot(const QueryGraph& query_graph) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  CsrQuerySnapshot qs;
  qs.csr = BuildCsrSnapshot(query_graph.graph);
  qs.source = qs.csr.dense_id[static_cast<size_t>(query_graph.source)];
  qs.csr.node_kind[qs.source] |= kCsrKindSource;
  qs.answers.reserve(query_graph.answers.size());
  for (NodeId t : query_graph.answers) {
    const uint32_t dense = qs.csr.dense_id[static_cast<size_t>(t)];
    qs.csr.node_kind[dense] |= kCsrKindAnswer;
    qs.answers.push_back(dense);
  }
  return qs;
}

std::vector<bool> QueryRelevantMask(const CsrSnapshot& csr, NodeId source,
                                    const std::vector<NodeId>& answers) {
  const uint32_t n = csr.num_nodes();
  const size_t capacity = csr.dense_id.size();
  std::vector<bool> keep(capacity, false);
  if (source >= 0 && static_cast<size_t>(source) < capacity) {
    keep[static_cast<size_t>(source)] = true;
  }

  auto dense_of = [&](NodeId id) -> uint32_t {
    if (id < 0 || static_cast<size_t>(id) >= capacity) return kCsrInvalid;
    return csr.dense_id[static_cast<size_t>(id)];
  };

  // Forward BFS from the source over the packed out-edges.
  std::vector<bool> reach(n, false);
  std::vector<uint32_t> stack;
  const uint32_t src = dense_of(source);
  if (src != kCsrInvalid) {
    reach[src] = true;
    stack.push_back(src);
    while (!stack.empty()) {
      const uint32_t x = stack.back();
      stack.pop_back();
      for (uint32_t i = csr.out_offset[x]; i < csr.out_offset[x + 1]; ++i) {
        const uint32_t y = csr.out_to[i];
        if (!reach[y]) {
          reach[y] = true;
          stack.push_back(y);
        }
      }
    }
  }

  // One backward BFS from all answers at once over the transposed CSR.
  std::vector<bool> co(n, false);
  std::vector<bool> wanted(n, false);
  for (NodeId t : answers) {
    const uint32_t dense = dense_of(t);
    if (dense == kCsrInvalid) continue;
    wanted[dense] = true;
    if (!co[dense]) {
      co[dense] = true;
      stack.push_back(dense);
    }
  }
  while (!stack.empty()) {
    const uint32_t x = stack.back();
    stack.pop_back();
    for (uint32_t i = csr.in_offset[x]; i < csr.in_offset[x + 1]; ++i) {
      const uint32_t y = csr.in_from[i];
      if (!co[y]) {
        co[y] = true;
        stack.push_back(y);
      }
    }
  }

  for (uint32_t d = 0; d < n; ++d) {
    if ((reach[d] && co[d]) || wanted[d]) {
      keep[static_cast<size_t>(csr.orig_id[d])] = true;
    }
  }
  return keep;
}

}  // namespace biorank
