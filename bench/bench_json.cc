#include "bench_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/parallel.h"

namespace biorank::bench {

namespace {

std::string FormatNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string FieldsToJson(const JsonFields& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(key) + "\": " + value.ToJson();
  }
  out += "}";
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonScalar::JsonScalar(double value) : kind_(Kind::kNumber), number_(value) {}
JsonScalar::JsonScalar(int64_t value) : kind_(Kind::kInt), int_(value) {}
JsonScalar::JsonScalar(int value) : kind_(Kind::kInt), int_(value) {}
JsonScalar::JsonScalar(bool value) : kind_(Kind::kBool), bool_(value) {}
JsonScalar::JsonScalar(const char* value)
    : kind_(Kind::kString), string_(value) {}
JsonScalar::JsonScalar(std::string value)
    : kind_(Kind::kString), string_(std::move(value)) {}

std::string JsonScalar::ToJson() const {
  switch (kind_) {
    case Kind::kNumber:
      return FormatNumber(number_);
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kString:
      return "\"" + JsonEscape(string_) + "\"";
  }
  return "null";
}

// DefaultThreadCount (not Global().slot_count()) so that constructing a
// report never spawns the shared pool's workers in single-threaded
// benches.
JsonReport::JsonReport(std::string name)
    : name_(std::move(name)), threads_(ThreadPool::DefaultThreadCount()) {}

void JsonReport::SetMetric(const std::string& key, JsonScalar value) {
  for (auto& [existing, scalar] : metrics_) {
    if (existing == key) {
      scalar = std::move(value);
      return;
    }
  }
  metrics_.emplace_back(key, std::move(value));
}

void JsonReport::AddRow(JsonFields row) { rows_.push_back(std::move(row)); }

std::string JsonReport::ToJson() const {
  std::string out = "{\n";
  // v2: adds the serving-layer cache metrics (cache_hit_rate,
  // pruned_fraction, ...) emitted by bench_serve_topk and the
  // thread-sweep clamp fields of bench_parallel_scaling; the layout of
  // existing fields is unchanged.
  // v3: adds the ingest metrics emitted by bench_ingest_updates
  // (preserved_hit_rate, update_latency_ms_mean/_max,
  // touched_fraction_max, stale_keys, invalidated_entries); the layout
  // of existing fields is again unchanged.
  // v4: adds the api front-door metrics emitted by bench_api_server
  // (mixed_hit_rate, deterministic_batch, session_rebuild_identical,
  // batch_s_mean, session/eviction counters); layout unchanged again.
  // v5: adds the shard scatter-gather metrics of bench_shard_scaling
  // (merge/short-circuit counters); layout unchanged again.
  // v6: adds the anytime/admission fields — bench_api_server's
  // queue_s_total / anytime_refine_s / anytime_identical and the new
  // bench_open_loop report (blocking_p99_s, anytime_p99_s, p99_ratio,
  // slo_p99_s, deadline-rejection counters); layout unchanged again.
  // v7: adds the observability fields — metrics_exposed and the
  // histogram-derived hist_p50_ms/hist_p99_ms of bench_api_server and
  // bench_open_loop (read from the shared biorank_api_query_seconds
  // histogram), bench_serve_topk's obs_overhead_ratio A/B measurement,
  // and bench_shard_scaling's rpc_hist_count; layout unchanged again.
  // v8: adds the durability fields — the new bench_durability report
  // (recovery_identical / hit_rate_preserved flags, recovery_seconds,
  // wal_appends_per_sec, checkpoint throughput counters); layout
  // unchanged again.
  out += "  \"schema_version\": 8,\n";
  out += "  \"bench\": \"" + JsonEscape(name_) + "\",\n";
  out += "  \"threads\": " + std::to_string(threads_) + ",\n";
  out += "  \"wall_time_s\": " + FormatNumber(wall_time_s_) + ",\n";
  out += "  \"metrics\": " + FieldsToJson(metrics_) + ",\n";
  out += "  \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + FieldsToJson(rows_[i]);
  }
  if (!rows_.empty()) out += "\n  ";
  out += "]\n}\n";
  return out;
}

Status JsonReport::Write() const {
  const char* dir = std::getenv("BIORANK_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/BENCH_" + name_ + ".json"
                         : "BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench json: cannot open " << path << "\n";
    return Status::Internal("cannot open " + path);
  }
  out << ToJson();
  out.close();
  if (!out) {
    std::cerr << "bench json: write to " << path << " failed\n";
    return Status::Internal("write to " + path + " failed");
  }
  std::cout << "(bench json written to " << path << ")\n";
  return Status::OK();
}

Status WriteMetricsDump(const std::string& name, const std::string& text) {
  const char* dir = std::getenv("BIORANK_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/METRICS_" + name + ".prom"
                         : "METRICS_" + name + ".prom";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench metrics: cannot open " << path << "\n";
    return Status::Internal("cannot open " + path);
  }
  out << text;
  out.close();
  if (!out) {
    std::cerr << "bench metrics: write to " << path << " failed\n";
    return Status::Internal("write to " + path + " failed");
  }
  std::cout << "(metrics dump written to " << path << ")\n";
  return Status::OK();
}

}  // namespace biorank::bench
