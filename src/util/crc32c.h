// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used to
// frame WAL records and stamp snapshot files in src/storage/. Software
// table-driven implementation; the same polynomial RocksDB and leveldb
// use for their log framing, chosen for its error-detection properties
// on short records.

#ifndef BIORANK_UTIL_CRC32C_H_
#define BIORANK_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace biorank::util {

/// Extends `crc` with `data[0, n)`. Start from 0 for a fresh checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Checksum of `data[0, n)`.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace biorank::util

#endif  // BIORANK_UTIL_CRC32C_H_
