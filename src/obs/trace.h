// End-to-end request tracing: a Trace records a tree of named spans
// (admit, canonicalize, cache, bounds, prune, factoring, MC shards,
// shard fan-out/merge, refinement increments) with monotonic-clock
// durations and per-span counters (trials run, candidates pruned,
// cache hits). A Trace pointer rides inside api::QueryOptions and
// crosses the shard Transport seam inside ShardQuery, so shard-side
// spans attach to the parent trace.
//
// Zero-perturbation contract (asserted by obs_trace_test and the bench
// bit-identity gates): tracing only *observes*. Spans record steady-
// clock timings and counters after every ranking decision is made; no
// code path consults a trace, a clock, or an RNG to decide anything
// about the ranking. Tracing on vs. off is bit-identical for all
// rankings.
//
// Threading: a Trace is mutex-guarded — shard scatter and batch
// fan-out append spans from pool threads concurrently. Span nesting
// within one thread is tracked by a thread-local (trace, span) binding
// that SpanScope pushes/pops RAII-style; cross-thread attachment (the
// shard seam) passes the parent span index explicitly. A SpanScope on
// a null trace is a no-op costing one branch — the always-on hot path
// pays only metric handles, never trace locks.
//
// SlowQueryLog is the threshold-triggered capture: the server offers
// each finished trace with its total latency, and traces at or over
// the configured threshold keep their full span tree in a bounded ring
// buffer (oldest evicted first).

#ifndef BIORANK_OBS_TRACE_H_
#define BIORANK_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace biorank::obs {

/// One node of the span tree. Indices are positions in Trace::Spans();
/// parent == -1 marks a root.
struct Span {
  std::string name;
  int parent = -1;
  uint64_t start_ns = 0;     ///< steady-clock offset from the trace epoch
  uint64_t duration_ns = 0;  ///< 0 while the span is open
  std::vector<std::pair<std::string, int64_t>> counters;
};

/// A single request's span tree. Create one per traced request; append
/// spans via SpanScope (or Begin/End for non-scoped lifetimes).
class Trace {
 public:
  explicit Trace(uint64_t id = 0);

  uint64_t id() const { return id_; }

  /// Opens a span; thread-safe; returns its index. parent == -1 roots.
  int BeginSpan(const std::string& name, int parent);
  /// Closes the span, stamping its steady-clock duration.
  void EndSpan(int index);
  /// Attaches a named counter to an open or closed span.
  void AddCounter(int index, const std::string& key, int64_t value);

  /// Copy of the span tree (safe while writers are active).
  std::vector<Span> Spans() const;
  size_t SpanCount() const;

 private:
  const uint64_t id_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// The thread's current (trace, span) binding — what SpanScope nests
/// under by default. Null when the thread is not inside a traced
/// request.
Trace* CurrentTrace();
int CurrentSpanIndex();

/// RAII span. The default constructor form nests under the thread's
/// current binding when `trace` matches it (or roots otherwise); the
/// explicit-parent form is the cross-thread attach used at the shard
/// seam. While alive, the scope IS the thread's current binding.
class SpanScope {
 public:
  SpanScope(Trace* trace, const std::string& name);
  SpanScope(Trace* trace, const std::string& name, int parent);
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope();

  /// Attaches a counter to this span; no-op on a null trace.
  void Counter(const std::string& key, int64_t value);

  /// Closes the span early (idempotent; the destructor calls it). Must
  /// be called in LIFO order with any nested scopes on this thread.
  void End();

  bool active() const { return trace_ != nullptr; }
  int index() const { return index_; }

 private:
  void Bind();

  Trace* trace_ = nullptr;
  int index_ = -1;
  Trace* prev_trace_ = nullptr;
  int prev_index_ = -1;
};

/// A captured slow query: the finished span tree plus identification.
struct CapturedTrace {
  uint64_t id = 0;
  std::string entry_point;  ///< which server entry produced it
  double total_s = 0.0;
  std::vector<Span> spans;
};

/// Bounded ring buffer of slow-query captures; Offer() keeps the trace
/// only when total_s >= threshold_s, evicting the oldest at capacity.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 32, double threshold_s = 0.0);

  /// Threshold <= 0 disables capture entirely.
  double threshold_s() const { return threshold_s_; }
  size_t capacity() const { return capacity_; }

  /// Captures the trace if it crossed the threshold. Returns true when
  /// captured.
  bool Offer(const std::string& entry_point, const Trace& trace,
             double total_s);

  std::vector<CapturedTrace> Snapshot() const;
  size_t size() const;
  uint64_t offered() const;
  uint64_t captured() const;

 private:
  const size_t capacity_;
  const double threshold_s_;
  mutable std::mutex mu_;
  std::deque<CapturedTrace> ring_;
  uint64_t offered_ = 0;
  uint64_t captured_ = 0;
};

}  // namespace biorank::obs

#endif  // BIORANK_OBS_TRACE_H_
