#include "eval/perturbation.h"

#include <algorithm>
#include <cmath>

namespace biorank {

double LogOdds(double p) { return std::log(p / (1.0 - p)); }

double InverseLogOdds(double lo) { return 1.0 / (1.0 + std::exp(-lo)); }

double PerturbProbabilityLogOdds(double p, const PerturbationOptions& options,
                                 Rng& rng) {
  double clamped =
      std::min(1.0 - options.clamp, std::max(options.clamp, p));
  double noisy = LogOdds(clamped) + rng.NextGaussian(0.0, options.sigma);
  return InverseLogOdds(noisy);
}

void PerturbQueryGraph(QueryGraph& query_graph,
                       const PerturbationOptions& options, Rng& rng) {
  ProbabilisticEntityGraph& graph = query_graph.graph;
  for (NodeId i : graph.AliveNodes()) {
    if (options.skip_source && i == query_graph.source) continue;
    graph.SetNodeProb(
        i, PerturbProbabilityLogOdds(graph.node(i).p, options, rng));
  }
  for (EdgeId e : graph.AliveEdges()) {
    graph.SetEdgeProb(
        e, PerturbProbabilityLogOdds(graph.edge(e).q, options, rng));
  }
}

QueryGraph PerturbedCopy(const QueryGraph& query_graph,
                         const PerturbationOptions& options, uint64_t seed,
                         uint64_t rep) {
  QueryGraph copy = query_graph;
  Rng rng = Rng::ForStream(seed, rep);
  PerturbQueryGraph(copy, options, rng);
  return copy;
}

}  // namespace biorank
