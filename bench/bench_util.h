#ifndef BIORANK_BENCH_BENCH_UTIL_H_
#define BIORANK_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "util/csv.h"

namespace biorank::bench {

/// Repetition count for repeated-experiment benches. The paper uses
/// m = 100; the default here keeps the full bench suite fast. Raise via
/// the BIORANK_REPS environment variable to reproduce at paper scale.
inline int Repetitions(int default_reps = 10) {
  const char* env = std::getenv("BIORANK_REPS");
  if (env == nullptr) return default_reps;
  int value = std::atoi(env);
  return value > 0 ? value : default_reps;
}

/// Writes a CSV copy of a bench table when BIORANK_CSV_DIR is set.
inline void MaybeWriteCsv(const CsvWriter& csv, const std::string& name) {
  const char* dir = std::getenv("BIORANK_CSV_DIR");
  if (dir == nullptr) return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  Status status = csv.WriteToFile(path);
  if (status.ok()) {
    std::cout << "(csv written to " << path << ")\n";
  } else {
    std::cerr << "csv write failed: " << status << "\n";
  }
}

}  // namespace biorank::bench

#endif  // BIORANK_BENCH_BENCH_UTIL_H_
