// Sensitivity-analysis example (Section 4): how stable are the rankings
// when every input probability is perturbed with log-odds Gaussian noise?
// Perturbs one scenario-1 query graph at increasing sigma and reports the
// reliability ranking's average precision.
//
// Run:  ./build/examples/sensitivity_study

#include <iostream>

#include "api/server.h"
#include "eval/perturbation.h"
#include "eval/rank_correlation.h"
#include "integrate/scenario_harness.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "== BioRank sensitivity study ==\n\n"
            << "The default probabilities were elicited from domain\n"
            << "experts; this study perturbs all of them simultaneously\n"
            << "(p' = sigmoid(logit(p) + N(0, sigma))) and watches the\n"
            << "ranking quality.\n\n";

  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }
  const ScenarioQuery& query = queries.value().front();
  std::cout << "Protein " << query.spec.gene_symbol << ": "
            << query.answer_count << " candidate functions, "
            << query.relevant.size() << " gold.\n\n";

  const int repetitions = 20;
  Rng rng(4242);
  TextTable table(
      {"sigma", "mean AP (Rel)", "stdev", "rank stability (tau-b)"});

  Result<double> baseline =
      harness.ApForQuery(query, RankingMethod::kReliability);
  Result<std::vector<RankedAnswer>> base_ranking =
      harness.ranker().Rank(query.graph, RankingMethod::kReliability);
  table.AddRow(
      {"default", FormatDouble(baseline.value_or(0.0), 3), "-", "1.000"});

  for (double sigma : {0.5, 1.0, 2.0, 3.0}) {
    std::vector<double> aps;
    std::vector<double> taus;
    for (int rep = 0; rep < repetitions; ++rep) {
      QueryGraph perturbed = query.graph;
      PerturbationOptions options;
      options.sigma = sigma;
      PerturbQueryGraph(perturbed, options, rng);
      Result<double> ap = harness.ApForGraph(perturbed, query.relevant,
                                             RankingMethod::kReliability);
      if (ap.ok()) aps.push_back(ap.value());
      // Rank-order stability vs the unperturbed ranking (the AI
      // literature's "rank swaps" lens on the same experiment).
      Result<std::vector<RankedAnswer>> perturbed_ranking =
          harness.ranker().Rank(perturbed, RankingMethod::kReliability);
      if (base_ranking.ok() && perturbed_ranking.ok()) {
        Result<double> tau = RankingKendallTau(base_ranking.value(),
                                               perturbed_ranking.value());
        if (tau.ok()) taus.push_back(tau.value());
      }
    }
    SampleStats stats = ComputeStats(aps);
    table.AddRow({FormatCompact(sigma, 1), FormatDouble(stats.mean, 3),
                  FormatDouble(stats.stddev, 3),
                  FormatDouble(Mean(taus), 3)});
  }
  Result<double> random = harness.RandomBaselineAp(query);
  table.AddRow({"random", FormatDouble(random.value_or(0.0), 3), "-", "-"});
  table.Print(std::cout);

  std::cout << "\nThe paper's observation: quality degrades only slowly "
               "with sigma\nand stays far above the random baseline — "
               "expert-elicited\nprobabilities need not be precise.\n";
  return 0;
}
