// End-to-end harness that replays the paper's evaluation scenarios
// through the mediator and scores rankings with the Definition 4.1
// metric, powering the Table 1-3 benches.

#ifndef BIORANK_INTEGRATE_SCENARIO_HARNESS_H_
#define BIORANK_INTEGRATE_SCENARIO_HARNESS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "core/ranking.h"
#include "datagen/scenario.h"
#include "eval/perturbation.h"
#include "integrate/mediator.h"
#include "sources/source_registry.h"
#include "util/parallel.h"
#include "util/status.h"

namespace biorank {

/// One fully materialized scenario query: the probabilistic query graph,
/// and the gold standard expressed as graph node ids.
struct ScenarioQuery {
  ScenarioCase spec;
  QueryGraph graph;
  /// Answer nodes the gold standard marks relevant.
  std::unordered_set<NodeId> relevant;
  int answer_count = 0;   ///< |answer set| ("# BioRank Functions").
  int gold_total = 0;     ///< |gold standard| for this case.
  int gold_retrieved = 0; ///< Gold functions present in the answer set.
};

/// End-to-end experiment driver: materializes scenario queries through a
/// *borrowed* integration stack and scores rankings offline. The harness
/// no longer owns the universe/sources/mediator — `api::Server` does, and
/// exposes its harness via `Server::harness()`, so every bench and
/// example shares one world (and one reliability cache) per server.
class ScenarioHarness {
 public:
  /// Borrows the stack; all three referents must outlive the harness
  /// (api::Server owns them all and constructs the harness last).
  ScenarioHarness(const ProteinUniverse& universe,
                  const SourceRegistry& sources, const Mediator& mediator,
                  RankerOptions ranker = {});

  const ProteinUniverse& universe() const { return universe_; }
  const SourceRegistry& sources() const { return sources_; }
  const Mediator& mediator() const { return mediator_; }
  const Ranker& ranker() const { return ranker_; }

  /// Materializes every query of a scenario.
  Result<std::vector<ScenarioQuery>> BuildQueries(ScenarioId scenario) const;

  /// Tied average precision of `method` on one query.
  Result<double> ApForQuery(const ScenarioQuery& query,
                            RankingMethod method) const;

  /// Tied AP of `method` on a pre-built (possibly perturbed) graph,
  /// scored against `query`'s gold standard.
  Result<double> ApForGraph(const QueryGraph& graph,
                            const std::unordered_set<NodeId>& relevant,
                            RankingMethod method) const;

  /// Definition 4.1 baseline for one query: APrand(k, n) with k the
  /// retrieved gold functions and n the answer-set size.
  Result<double> RandomBaselineAp(const ScenarioQuery& query) const;

  /// Figure 6 inner loop: `reps` independent log-odds perturbations of the
  /// query graph, each ranked with `method` and scored against the gold
  /// standard. Returns one AP per repetition (index = rep). Repetition r
  /// perturbs with RNG stream (seed, r) and the repetitions fan out over
  /// `pool` (nullptr = shared pool), so the result is identical at any
  /// thread count.
  Result<std::vector<double>> ApForPerturbedReps(
      const ScenarioQuery& query, RankingMethod method,
      const PerturbationOptions& options, int reps, uint64_t seed,
      ThreadPool* pool = nullptr) const;

  /// Figure 7 inner loop: `reps` independent Monte Carlo reliability
  /// estimates of the query graph with `trials` trials each, ranked and
  /// scored against the gold standard. Returns one AP per repetition.
  /// Repetition r simulates with RNG stream (seed, r); same determinism
  /// contract as ApForPerturbedReps.
  Result<std::vector<double>> ApForMcReps(const ScenarioQuery& query,
                                          int64_t trials, int reps,
                                          uint64_t seed,
                                          ThreadPool* pool = nullptr) const;

 private:
  const ProteinUniverse& universe_;
  const SourceRegistry& sources_;
  const Mediator& mediator_;
  Ranker ranker_;
};

}  // namespace biorank

#endif  // BIORANK_INTEGRATE_SCENARIO_HARNESS_H_
