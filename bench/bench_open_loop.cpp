// Open-loop load bench for the anytime serving mode: a fixed-seed
// Poisson arrival schedule replayed against measured per-request
// service times, blocking vs bounds-first anytime, on one FCFS server.
//
// The workload is a fixed-seed set of layered random DAGs served through
// RankGraph with factoring disabled, so every surviving answer is real
// Monte Carlo work on the blocking path. (The protein-universe front
// door cannot play this role: its per-answer residues reduce to single
// paths, so bounds collapse and blocking == bounds-only there.)
//
// Open loop means arrivals do not wait for completions — the schedule
// is fixed up front (deterministic exponential inter-arrivals at
// lambda = 1.5x the blocking path's saturation rate), so when service
// is slower than arrival the queue grows and tail latency explodes.
// That is exactly the regime the anytime redesign targets: the
// bounds-only pass answers in a fraction of the blocking service time
// (MC refinement moves off the latency path, to Refine calls), so the
// same schedule that drowns the blocking server leaves the anytime
// server nearly idle.
//
// The replay is analytical (latency_i = max(arrival_i, completion_{i-1})
// + service_i - arrival_i) over service times measured on this host, so
// the tail numbers are deterministic given the measured services — no
// real-time sleeping, no scheduler noise in the queueing math itself. A
// second, real-thread section drives api::AdmissionQueue at
// max_concurrent = 1 with deadlines too tight to wait out, counting the
// typed kDeadlineExceeded rejections the SLO front returns instead of
// late answers.
//
// BENCH_open_loop.json gates (mirrored in compare_baselines.py):
//   * p99_ratio = blocking_p99_s / anytime_p99_s >= 5.0;
//   * anytime_p99_s <= slo_p99_s (half the mean blocking service time)
//     — clamped to report-only on single-core hosts;
//   * deadline_rejections > 0 (the admission front actually rejected).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/admission.h"
#include "api/server.h"
#include "core/query_graph.h"
#include "bench_json.h"
#include "bench_util.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// FCFS single-server replay of the fixed arrival schedule against one
/// mode's measured service times. Returns per-arrival latencies.
std::vector<double> Replay(const std::vector<double>& arrivals,
                           const std::vector<size_t>& which,
                           const std::vector<double>& service) {
  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  double completion = 0.0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    completion = std::max(arrivals[i], completion) + service[which[i]];
    latencies.push_back(completion - arrivals[i]);
  }
  return latencies;
}

/// One layered random DAG with enough multi-path answers that, with
/// factoring disabled, the blocking path pays full Monte Carlo per
/// survivor while the bounds-only pass stays purely deterministic.
QueryGraph MakeLayeredDag(Rng& rng) {
  constexpr int kLayers = 3;
  constexpr int kNodesPerLayer = 6;
  constexpr int kAnswers = 12;
  constexpr double kEdgeDensity = 0.45;
  constexpr double kSkipDensity = 0.15;
  QueryGraphBuilder builder;
  std::vector<std::vector<NodeId>> layers = {{builder.Source()}};
  for (int layer = 0; layer < kLayers; ++layer) {
    std::vector<NodeId> current;
    for (int i = 0; i < kNodesPerLayer; ++i) {
      current.push_back(builder.Node(rng.NextUniform(0.3, 1.0)));
    }
    layers.push_back(current);
  }
  std::vector<NodeId> answers;
  for (int i = 0; i < kAnswers; ++i) {
    answers.push_back(builder.Node(rng.NextUniform(0.3, 1.0),
                                   "ans" + std::to_string(i)));
  }
  layers.push_back(answers);
  for (size_t layer = 0; layer + 1 < layers.size(); ++layer) {
    for (NodeId from : layers[layer]) {
      for (NodeId to : layers[layer + 1]) {
        if (rng.NextBernoulli(kEdgeDensity)) {
          builder.Edge(from, to, rng.NextUniform(0.2, 1.0));
        }
      }
      for (size_t skip = layer + 2; skip < layers.size(); ++skip) {
        for (NodeId to : layers[skip]) {
          if (rng.NextBernoulli(kSkipDensity)) {
            builder.Edge(from, to, rng.NextUniform(0.2, 1.0));
          }
        }
      }
    }
  }
  // Connectivity hooks: every non-source node gets at least one in-edge
  // from the previous layer.
  for (size_t layer = 1; layer < layers.size(); ++layer) {
    for (NodeId to : layers[layer]) {
      const std::vector<NodeId>& prev = layers[layer - 1];
      builder.Edge(prev[static_cast<size_t>(rng.NextBounded(prev.size()))], to,
                   rng.NextUniform(0.2, 1.0));
    }
  }
  return std::move(builder).Build(answers);
}

/// Measures each graph's service time on a fresh cache-off 1-thread
/// MC-forced server: min over `reps` runs (min, not mean — queueing math
/// wants the intrinsic cost, not this container's scheduling noise).
/// When `metrics_out` is non-null it receives the server's final
/// registry snapshot, so the report can carry the histogram-derived
/// percentiles next to the exact replay math.
Result<std::vector<double>> MeasureServices(
    const std::vector<QueryGraph>& workload, int top_k, api::QueryMode mode,
    int reps, obs::Snapshot* metrics_out = nullptr) {
  api::ServerOptions options;
  options.ranking.enable_cache = false;
  options.ranking.num_threads = 1;
  options.ranking.exact_max_edges = 0;  // Force MC on every survivor.
  // Tighter MC precision than the serving default: the blocking path
  // pays proportionally more trials, putting the service-time gap (and
  // the p99 gap the replay magnifies) firmly above measurement noise.
  options.ranking.mc_epsilon = 0.01;
  api::Server server(options);
  std::vector<double> service(workload.size(), 0.0);
  for (size_t i = 0; i < workload.size(); ++i) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      api::QueryOptions request_options;
      request_options.top_k = top_k;
      request_options.mode = mode;
      bench::WallTimer timer;
      api::Result<api::QueryResponse> response =
          server.RankGraph(workload[i], request_options);
      double s = timer.Seconds();
      if (!response.ok()) return response.status();
      if (mode == api::QueryMode::kAnytime) {
        // Bounds-only: the measured pass must not have spent refinement
        // effort, and any registered handle is dropped, not refined —
        // refinement cost is off the serving path by design.
        if (response.value().refinement.valid()) {
          server.CancelRefinement(response.value().refinement).ok();
        }
      }
      best = r == 0 ? s : std::min(best, s);
    }
    service[i] = best;
  }
  if (metrics_out != nullptr) *metrics_out = server.MetricsSnapshot();
  return service;
}

}  // namespace

int main() {
  const int k = 10;
  const int graphs = 16;
  const int reps = std::max(2, bench::Repetitions(2));
  const int arrivals_n = 400;
  std::cout << "=== Open-loop load: Poisson arrivals over an MC-heavy DAG "
               "mix, blocking vs anytime bounds-first ===\n\n";

  Rng workload_rng(20260808);
  std::vector<QueryGraph> workload;
  workload.reserve(graphs);
  for (int i = 0; i < graphs; ++i) {
    workload.push_back(MakeLayeredDag(workload_rng));
  }

  bench::WallTimer wall;

  // 1. Service-time measurement, both modes, cold canonical cache.
  obs::Snapshot blocking_metrics;
  Result<std::vector<double>> blocking_service = MeasureServices(
      workload, k, api::QueryMode::kBlocking, reps, &blocking_metrics);
  Result<std::vector<double>> anytime_service =
      MeasureServices(workload, k, api::QueryMode::kAnytime, reps);
  if (!blocking_service.ok() || !anytime_service.ok()) {
    std::cerr << (blocking_service.ok() ? anytime_service.status()
                                        : blocking_service.status())
              << "\n";
    return 1;
  }
  const double blocking_mean = Mean(blocking_service.value());
  const double anytime_mean = Mean(anytime_service.value());

  // 2. The fixed-seed schedule: lambda at 1.5x blocking saturation, so
  // the blocking replay runs at rho = 1.5 (unstable — the queue grows
  // for the whole run) while the anytime replay sees rho well under 1.
  const double lambda = 1.5 / std::max(blocking_mean, 1e-9);
  Rng rng = Rng::ForStream(20260808, 0);
  std::vector<double> arrivals;
  std::vector<size_t> which;
  double clock = 0.0;
  for (int i = 0; i < arrivals_n; ++i) {
    clock += rng.NextExponential(lambda);
    arrivals.push_back(clock);
    which.push_back(static_cast<size_t>(rng.NextBounded(workload.size())));
  }

  std::vector<double> blocking_lat =
      Replay(arrivals, which, blocking_service.value());
  std::vector<double> anytime_lat =
      Replay(arrivals, which, anytime_service.value());

  const double blocking_p50 = Percentile(blocking_lat, 0.50);
  const double blocking_p99 = Percentile(blocking_lat, 0.99);
  const double blocking_p999 = Percentile(blocking_lat, 0.999);
  const double anytime_p50 = Percentile(anytime_lat, 0.50);
  const double anytime_p99 = Percentile(anytime_lat, 0.99);
  const double anytime_p999 = Percentile(anytime_lat, 0.999);
  const double p99_ratio =
      blocking_p99 / std::max(anytime_p99, 1e-9);
  const double slo_p99_s = 0.5 * blocking_mean;
  const bool slo_met = anytime_p99 <= slo_p99_s;

  TextTable table({"mode", "service mean ms", "p50 ms", "p99 ms", "p999 ms"});
  CsvWriter csv({"mode", "service_mean_ms", "p50_ms", "p99_ms", "p999_ms"});
  bench::JsonReport report("open_loop");
  auto add = [&](const std::string& mode, double mean, double p50, double p99,
                 double p999) {
    std::vector<std::string> cells = {
        mode, FormatDouble(mean * 1e3, 3), FormatDouble(p50 * 1e3, 3),
        FormatDouble(p99 * 1e3, 3), FormatDouble(p999 * 1e3, 3)};
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"mode", mode},
                   {"service_mean_s", mean},
                   {"p50_s", p50},
                   {"p99_s", p99},
                   {"p999_s", p999}});
  };
  add("blocking", blocking_mean, blocking_p50, blocking_p99, blocking_p999);
  add("anytime", anytime_mean, anytime_p50, anytime_p99, anytime_p999);
  table.Print(std::cout);
  std::cout << "\n" << arrivals_n << " Poisson arrivals at lambda = "
            << FormatDouble(lambda, 2)
            << "/s (1.5x blocking saturation): blocking p99 "
            << FormatDouble(blocking_p99 * 1e3, 1) << " ms vs anytime p99 "
            << FormatDouble(anytime_p99 * 1e3, 3) << " ms ("
            << FormatDouble(p99_ratio, 1) << "x); SLO p99 <= "
            << FormatDouble(slo_p99_s * 1e3, 1) << " ms "
            << (slo_met ? "met" : "MISSED") << ".\n";

  // 3. Real threads against the SLO front: one slot, a slow holder, and
  // waiters whose deadlines are far too tight to inherit it — every one
  // must come back kDeadlineExceeded, not late.
  api::AdmissionOptions admission_options;
  admission_options.max_concurrent = 1;
  api::AdmissionQueue admission(admission_options);
  uint64_t deadline_rejections = 0;
  {
    api::Result<api::AdmissionQueue::Ticket> holder = admission.Admit();
    if (!holder.ok()) {
      std::cerr << holder.status() << "\n";
      return 1;
    }
    std::vector<std::thread> waiters;
    std::atomic<uint64_t> rejected{0};
    for (int i = 0; i < 4; ++i) {
      waiters.emplace_back([&admission, &rejected] {
        api::Result<api::AdmissionQueue::Ticket> ticket =
            admission.Admit(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(5));
        if (!ticket.ok() &&
            ticket.status().code() == StatusCode::kDeadlineExceeded) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (std::thread& t : waiters) t.join();
    deadline_rejections = rejected.load();
  }
  api::AdmissionStats admission_stats = admission.Stats();
  std::cout << "Admission front (1 slot, 5 ms deadlines vs a 30 ms holder): "
            << deadline_rejections << "/4 waiters rejected kDeadlineExceeded, "
            << admission_stats.admitted << " admitted, peak queue depth "
            << admission_stats.peak_queue_depth << ".\n";
  bench::MaybeWriteCsv(csv, "open_loop");

  const unsigned hc = std::thread::hardware_concurrency();
  report.SetWallTime(wall.Seconds());
  report.SetMetric("k", k);
  report.SetMetric("arrivals", arrivals_n);
  report.SetMetric("lambda_per_s", lambda);
  report.SetMetric("blocking_service_mean_s", blocking_mean);
  report.SetMetric("anytime_service_mean_s", anytime_mean);
  report.SetMetric("blocking_p50_s", blocking_p50);
  report.SetMetric("blocking_p99_s", blocking_p99);
  report.SetMetric("blocking_p999_s", blocking_p999);
  report.SetMetric("anytime_p50_s", anytime_p50);
  report.SetMetric("anytime_p99_s", anytime_p99);
  report.SetMetric("anytime_p999_s", anytime_p999);
  report.SetMetric("p99_ratio", p99_ratio);
  report.SetMetric("slo_p99_s", slo_p99_s);
  report.SetMetric("slo_met", slo_met);
  report.SetMetric("deadline_rejections",
                   static_cast<int64_t>(deadline_rejections));
  report.SetMetric("admission_admitted",
                   static_cast<int64_t>(admission_stats.admitted));
  report.SetMetric("admission_peak_queue_depth",
                   static_cast<int64_t>(admission_stats.peak_queue_depth));
  report.SetMetric("hardware_concurrency", static_cast<int64_t>(hc));
  // The shared biorank_api_query_seconds histogram saw every blocking
  // measurement run — its log-bucketed percentiles ride next to the
  // exact replay percentiles (report-only: the ~2x bucket resolution is
  // too coarse to gate on, but the trend and the count are checkable).
  for (const obs::HistogramSnapshot& h : blocking_metrics.histograms) {
    if (h.name == "biorank_api_query_seconds") {
      report.SetMetric("hist_queries", static_cast<int64_t>(h.count));
      report.SetMetric("hist_p50_ms", h.Quantile(0.5) * 1e3);
      report.SetMetric("hist_p99_ms", h.Quantile(0.99) * 1e3);
    }
  }
  Status write_status = report.Write();

  bool ok = write_status.ok();
  if (p99_ratio < 5.0) {
    std::cerr << "open-loop gate FAILED: p99_ratio "
              << FormatDouble(p99_ratio, 2) << "x is below the 5.0x floor\n";
    ok = false;
  }
  if (!slo_met) {
    if (hc <= 1) {
      // Single-core hosts time-slice the measurement itself; the SLO
      // ceiling stays report-only there (mirrored in the CI gate).
      std::cerr << "open-loop note: SLO ceiling missed on a single-core "
                   "host (report-only)\n";
    } else {
      std::cerr << "open-loop gate FAILED: anytime_p99_s "
                << FormatDouble(anytime_p99, 4) << " s exceeds the SLO of "
                << FormatDouble(slo_p99_s, 4) << " s\n";
      ok = false;
    }
  }
  if (deadline_rejections == 0) {
    std::cerr << "open-loop gate FAILED: the admission front rejected "
                 "nothing under impossible deadlines\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
