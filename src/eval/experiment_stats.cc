#include "eval/experiment_stats.h"

namespace biorank {

void ApExperiment::Record(const std::string& condition, double ap) {
  auto [it, inserted] = samples_.try_emplace(condition);
  if (inserted) order_.push_back(condition);
  it->second.push_back(ap);
}

SampleStats ApExperiment::Summary(const std::string& condition) const {
  auto it = samples_.find(condition);
  if (it == samples_.end()) return SampleStats{};
  return ComputeStats(it->second);
}

std::vector<double> ApExperiment::Samples(
    const std::string& condition) const {
  auto it = samples_.find(condition);
  if (it == samples_.end()) return {};
  return it->second;
}

std::vector<std::string> ApExperiment::Conditions() const { return order_; }

}  // namespace biorank
