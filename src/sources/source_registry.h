// Registry wiring every source wrapper into the mediator (Section 2)
// so queries can fan out across the federation by name.

#ifndef BIORANK_SOURCES_SOURCE_REGISTRY_H_
#define BIORANK_SOURCES_SOURCE_REGISTRY_H_

#include <memory>
#include <vector>

#include "datagen/evidence_model.h"
#include "datagen/protein_universe.h"
#include "sources/amigo.h"
#include "sources/entrez_gene.h"
#include "sources/entrez_protein.h"
#include "sources/minor_sources.h"
#include "sources/ncbi_blast.h"
#include "sources/pfam.h"

namespace biorank {

/// Generation knobs for every source, bundled.
struct SourceRegistryOptions {
  EvidenceModel evidence;
  NcbiBlastOptions blast;
  EntrezGeneOptions entrez_gene;
  AmigoOptions amigo;
};

/// Owns the 11 simulated sources of the paper's Section 2 table, all
/// generated deterministically from one universe. The mediator queries
/// sources through this registry.
class SourceRegistry {
 public:
  explicit SourceRegistry(const ProteinUniverse& universe,
                          const SourceRegistryOptions& options = {});

  const ProteinUniverse& universe() const { return universe_; }

  const EntrezProteinSource& entrez_protein() const { return entrez_protein_; }
  const NcbiBlastSource& ncbi_blast() const { return ncbi_blast_; }
  const EntrezGeneSource& entrez_gene() const { return entrez_gene_; }
  const AmigoSource& amigo() const { return amigo_; }
  const PfamSource& pfam() const { return pfam_; }
  const TigrFamSource& tigrfam() const { return tigrfam_; }
  const PirsfSource& pirsf() const { return pirsf_; }
  const SuperFamilySource& superfamily() const { return superfamily_; }
  const CddSource& cdd() const { return cdd_; }
  const UniProtSource& uniprot() const { return uniprot_; }
  const PdbSource& pdb() const { return pdb_; }

  /// All 11 sources (paper's table order).
  std::vector<const DataSource*> AllSources() const;

 private:
  const ProteinUniverse& universe_;
  EntrezProteinSource entrez_protein_;
  NcbiBlastSource ncbi_blast_;
  EntrezGeneSource entrez_gene_;
  AmigoSource amigo_;
  PfamSource pfam_;
  TigrFamSource tigrfam_;
  PirsfSource pirsf_;
  SuperFamilySource superfamily_;
  CddSource cdd_;
  UniProtSource uniprot_;
  PdbSource pdb_;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_SOURCE_REGISTRY_H_
