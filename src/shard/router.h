// Scatter–gather top-k serving across N shards (ROADMAP item 2). One
// ShardRouter fronts a fleet of api::Server shards behind a Transport:
//
//   Query      — materialize the query graph once (front server),
//                partition the answer set by label hash (Partitioner),
//                scatter "rank your slice" calls to every owning shard
//                in parallel, and merge the per-shard top-k lists into
//                the global top-k.
//   RankGraph  — the same scatter–gather on a caller-provided graph
//                (pre-materialized workloads, benches, rebuilds).
//
// The merge is bounds-based, after Bernecker et al.'s incremental-rank
// pruning ("Scalable Probabilistic Similarity Ranking in Uncertain
// Databases", PAPERS.md): every RankedCandidate carries deterministic
// [lower, upper] reliability bounds, and once k candidates are merged,
// the global cutoff L = the k-th largest lower bound over everything
// gathered. A shard whose best remaining upper bound is below L is
// short-circuited — provably no remaining candidate of that shard can
// place, because any such candidate c has reliability <= upper(c) < L
// while k already-merged candidates have reliability >= L. With the
// current single-round gather the cutoff yields the observable
// short-circuit counters (which shards' leftover work was provably
// unnecessary); a streaming-refinement transport would feed the same L
// back to stop shard-side MC work mid-flight.
//
// Correctness of the merge (why sharded == monolith, bit for bit):
//  * every resolved reliability is a pure function of (canonical key,
//    MC seed) — shard-local cache state and request composition never
//    change values (the serve layer's determinism contract);
//  * a shard's top-k contains every candidate of its slice that could
//    enter the global top-k (the global top-k restricted to one slice
//    has at most k members, and slice-local pruning only discards
//    candidates provably outside the slice's own top-k);
//  * per-shard lists and the merge share one strict total order,
//    serve::RanksBefore (reliability desc, node id asc), so cross-shard
//    ties break exactly as the monolith's phase-8 sort breaks them.
//
// Backpressure: an optional admission cap bounds concurrently-served
// router queries; beyond it, Query/RankGraph fail fast with
// ResourceExhausted instead of queueing unboundedly, and Stats()
// exposes the rejection/inflight/peak counters a load balancer needs.

#ifndef BIORANK_SHARD_ROUTER_H_
#define BIORANK_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "api/query.h"
#include "api/server.h"
#include "obs/metrics.h"
#include "shard/partitioner.h"
#include "shard/transport.h"

namespace biorank::shard {

struct ShardRouterOptions {
  /// Placement of answers onto shards. num_shards must match the
  /// transport's shard_count (checked per query).
  PartitionerOptions partition;
  /// Admission cap: maximum concurrently-served router queries; further
  /// ones are rejected with ResourceExhausted. 0 disables the cap.
  uint32_t max_inflight = 0;
};

/// Monotonic router counters plus the point-in-time inflight gauge.
struct RouterStats {
  uint64_t queries = 0;            ///< Query/RankGraph attempts admitted.
  uint64_t queries_ok = 0;         ///< ...that returned a merged answer.
  uint64_t admission_rejected = 0; ///< Rejected by the inflight cap.
  uint64_t shard_calls = 0;        ///< Transport calls issued.
  uint64_t shard_errors = 0;       ///< Transport calls that failed.
  uint64_t empty_slices = 0;       ///< Shards skipped (no answers owned).
  uint64_t merged_candidates = 0;  ///< Candidates gathered from shards.
  uint64_t shards_short_circuited = 0;      ///< Bound-retired shards.
  uint64_t short_circuited_candidates = 0;  ///< Their unmerged leftovers.
  uint64_t inflight = 0;           ///< Queries being served right now.
  uint64_t peak_inflight = 0;
  /// Per-shard RPC latency snapshots (biorank_shard_rpc_shard<i>_seconds),
  /// one per transport shard, in shard order.
  std::vector<obs::HistogramSnapshot> shard_rpc;
};

/// The scatter–gather front door. Thread-compatible with concurrent
/// Query/RankGraph/Stats calls; all mutable state is atomic counters.
class ShardRouter {
 public:
  /// `front` materializes queries (in single-process deployments,
  /// InProcessTransport::server(0) serves double duty); both are
  /// borrowed and must outlive the router.
  ShardRouter(api::Server& front, Transport& transport,
              ShardRouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Serves one typed request end to end: front-door mediator crawl,
  /// partition, parallel scatter, bounds-based merge. The response is
  /// shaped exactly like api::Server::Query's (same fingerprint, labels,
  /// aggregated scheduler counters), so callers swap a monolith for a
  /// router without changes. Foreign MC seeds are rejected: shards
  /// serve through their per-shard canonical caches, which are only
  /// valid under the fleet's configured seed. A failed shard fails the
  /// whole query with a typed Unavailable — never a partial answer.
  api::Result<api::QueryResponse> Query(const api::QueryRequest& request);

  /// Scatter–gather ranking of a caller-provided graph (top_k <= 0
  /// ranks the full answer set). The response's `result` is empty.
  api::Result<api::QueryResponse> RankGraph(const QueryGraph& graph,
                                            int top_k);

  const Partitioner& partitioner() const { return partitioner_; }

  RouterStats Stats() const;

 private:
  /// RAII admission ticket; tracks inflight/peak and rejection.
  class AdmissionTicket;

  /// Partition + scatter + merge: appends the merged top-k (labeled
  /// from `graph`) and aggregated stats to `response`.
  Status ScatterGather(const QueryGraph& graph, int top_k,
                       api::QueryResponse& response);

  api::Server& front_;
  Transport& transport_;
  ShardRouterOptions options_;
  Partitioner partitioner_;

  /// The front server's registry: the router contributes shard-layer
  /// metrics (RPC latency histograms, RouterStats counters) to the same
  /// exporter surface the rest of the deployment scrapes. The collector
  /// reads `this`, so the destructor deregisters it.
  obs::Registry* obs_registry_ = nullptr;
  obs::Histogram* rpc_seconds_ = nullptr;  ///< all shards pooled
  std::vector<obs::Histogram*> shard_rpc_seconds_;  ///< one per shard
  uint64_t collector_token_ = 0;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> admission_rejected_{0};
  std::atomic<uint64_t> shard_calls_{0};
  std::atomic<uint64_t> shard_errors_{0};
  std::atomic<uint64_t> empty_slices_{0};
  std::atomic<uint64_t> merged_candidates_{0};
  std::atomic<uint64_t> shards_short_circuited_{0};
  std::atomic<uint64_t> short_circuited_candidates_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> peak_inflight_{0};
};

}  // namespace biorank::shard

#endif  // BIORANK_SHARD_ROUTER_H_
