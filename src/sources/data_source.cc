#include "sources/data_source.h"

// DataSource is a pure interface; this translation unit anchors its
// vtable.

namespace biorank {}  // namespace biorank
