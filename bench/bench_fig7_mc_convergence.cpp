// Reproduces Figure 7: speed of convergence of the Monte Carlo estimator
// — the reliability ranking's AP on scenario 1 as a function of the
// number of simulation trials (1 .. 10^5), averaged over repeated runs,
// against the closed-solution AP and the random baseline.
//
// Paper shape: AP climbs from the random baseline and is already at the
// closed-solution plateau by ~1,000 trials (hence "1000 trials already
// deliver very reliable results"). Paper uses m = 100; set
// BIORANK_REPS=100 to match.

#include <iostream>

#include "bench_util.h"
#include "core/reliability_mc.h"
#include "eval/experiment_stats.h"
#include "eval/tied_ap.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  const int reps = bench::Repetitions(10);
  std::cout << "=== Figure 7: Monte Carlo convergence (m=" << reps
            << ") ===\n\n";

  ScenarioHarness harness;
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  // Closed-solution reference AP (deterministic).
  double closed_sum = 0.0;
  int closed_count = 0;
  double random_sum = 0.0;
  for (const ScenarioQuery& query : queries.value()) {
    if (query.relevant.empty()) continue;
    Result<double> ap =
        harness.ApForQuery(query, RankingMethod::kReliability);
    if (ap.ok()) {
      closed_sum += ap.value();
      ++closed_count;
    }
    Result<double> random = harness.RandomBaselineAp(query);
    if (random.ok()) random_sum += random.value();
  }
  double closed_ap = closed_count > 0 ? closed_sum / closed_count : 0.0;
  double random_ap = closed_count > 0 ? random_sum / closed_count : 0.0;

  TextTable table({"# trials", "Mean AP", "Stdv"});
  CsvWriter csv({"trials", "mean_ap", "stdev"});
  const int64_t trial_counts[] = {1, 3, 10, 30, 100, 300, 1000, 3000, 10000};
  uint64_t seed = 1;
  for (int64_t trials : trial_counts) {
    ApExperiment experiment;
    for (int rep = 0; rep < reps; ++rep) {
      for (const ScenarioQuery& query : queries.value()) {
        if (query.relevant.empty()) continue;
        McOptions mc;
        mc.trials = trials;
        mc.seed = seed++;
        Result<McEstimate> estimate =
            EstimateReliabilityMc(query.graph, mc);
        if (!estimate.ok()) continue;
        std::vector<RankedAnswer> ranked =
            RankAnswers(query.graph.answers, estimate.value().scores);
        Result<double> ap = ApForRanking(ranked, query.relevant);
        if (ap.ok()) {
          experiment.Record(std::to_string(trials), ap.value());
        }
      }
    }
    SampleStats stats = experiment.Summary(std::to_string(trials));
    table.AddRow({std::to_string(trials), FormatDouble(stats.mean, 3),
                  FormatDouble(stats.stddev, 3)});
    csv.AddRow({std::to_string(trials), FormatDouble(stats.mean, 4),
                FormatDouble(stats.stddev, 4)});
  }
  table.AddSeparator();
  table.AddRow({"closed solution", FormatDouble(closed_ap, 3), "-"});
  table.AddRow({"random baseline", FormatDouble(random_ap, 3), "-"});
  table.Print(std::cout);

  std::cout << "\nPaper: the curve reaches the closed-solution plateau "
               "(0.84) by ~1000 trials,\nstarting from the random baseline "
               "(0.42) at 1 trial.\n";
  bench::MaybeWriteCsv(csv, "fig7_mc_convergence");
  return 0;
}
