// Minimal CSV writer with RFC-4180 escaping for bench output.

#ifndef BIORANK_UTIL_CSV_H_
#define BIORANK_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace biorank {

/// Accumulates rows and writes RFC-4180-style CSV. Benchmark binaries use
/// this to emit machine-readable copies of each reproduced table/figure
/// (set the BIORANK_CSV_DIR environment variable to enable).
class CsvWriter {
 public:
  /// Creates a writer with the given column headers.
  explicit CsvWriter(std::vector<std::string> headers);

  /// Appends one row. Cells containing commas, quotes, or newlines are
  /// quoted on output.
  void AddRow(std::vector<std::string> cells);

  /// Renders the full document (header + rows).
  std::string ToString() const;

  /// Writes the document to `path`, overwriting any existing file. The
  /// write is atomic (temp file + rename via util::AtomicFileWrite), so a
  /// crash never leaves a torn CSV behind.
  Status WriteToFile(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV cell per RFC 4180 (quotes doubled; field quoted when it
/// contains a comma, quote, or newline).
std::string CsvEscape(const std::string& cell);

}  // namespace biorank

#endif  // BIORANK_UTIL_CSV_H_
