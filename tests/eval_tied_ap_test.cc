#include "eval/tied_ap.h"

#include <gtest/gtest.h>

#include "eval/average_precision.h"
#include "eval/random_ap.h"
#include "util/rng.h"

namespace biorank {
namespace {

TEST(TiedApTest, NoTiesMatchesPlainAp) {
  // Groups of size 1 degenerate to a strict ranking.
  std::vector<TiedGroup> groups = {{1, 1}, {1, 0}, {1, 1}, {1, 0}, {1, 1}};
  Result<double> tied = ExpectedApWithTies(groups);
  Result<double> plain = AveragePrecision({true, false, true, false, true});
  ASSERT_TRUE(tied.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(tied.value(), plain.value(), 1e-12);
}

TEST(TiedApTest, SingleAllTiedGroupEqualsRandomAp) {
  // Definition 4.1 is the one-group special case of the tied expectation.
  for (int n : {1, 2, 5, 20, 97}) {
    for (int k : {1, 2, 7}) {
      if (k > n) continue;
      Result<double> tied = ExpectedApWithTies({{n, k}});
      Result<double> random = RandomAveragePrecision(k, n);
      ASSERT_TRUE(tied.ok());
      ASSERT_TRUE(random.ok());
      EXPECT_NEAR(tied.value(), random.value(), 1e-12)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(TiedApTest, TwoItemTieAveragesBothOrders) {
  // One relevant and one irrelevant item tied: AP is (1 + 1/2)/2 = 0.75.
  Result<double> tied = ExpectedApWithTies({{2, 1}});
  ASSERT_TRUE(tied.ok());
  EXPECT_NEAR(tied.value(), 0.75, 1e-12);
}

TEST(TiedApTest, RelevantGroupBelowIrrelevantHead) {
  // Head: 1 irrelevant; tail: tie of (1 relevant, 1 irrelevant).
  // Orders: [0,1,0] AP=1/2; [0,0,1] AP=1/3; expectation 5/12.
  Result<double> tied = ExpectedApWithTies({{1, 0}, {2, 1}});
  ASSERT_TRUE(tied.ok());
  EXPECT_NEAR(tied.value(), 5.0 / 12.0, 1e-12);
}

TEST(TiedApTest, InconsistentGroupRejected) {
  EXPECT_FALSE(ExpectedApWithTies({{2, 3}}).ok());
  EXPECT_FALSE(ExpectedApWithTies({{-1, 0}}).ok());
}

TEST(TiedApTest, NoRelevantRejected) {
  EXPECT_FALSE(ExpectedApWithTies({{3, 0}, {2, 0}}).ok());
}

class TiedApPermutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(TiedApPermutationProperty, AnalyticMatchesSampledExpectation) {
  Rng rng(42 + GetParam());
  // Random group structure.
  int num_groups = 1 + static_cast<int>(rng.NextBounded(5));
  std::vector<TiedGroup> groups;
  int total_relevant = 0;
  for (int g = 0; g < num_groups; ++g) {
    int size = 1 + static_cast<int>(rng.NextBounded(6));
    int relevant = static_cast<int>(rng.NextBounded(size + 1));
    total_relevant += relevant;
    groups.push_back({size, relevant});
  }
  if (total_relevant == 0) groups[0].relevant = groups[0].size;

  Result<double> analytic = ExpectedApWithTies(groups);
  ASSERT_TRUE(analytic.ok());
  Result<double> sampled = SampleApOverPermutations(groups, rng, 40000);
  ASSERT_TRUE(sampled.ok());
  EXPECT_NEAR(analytic.value(), sampled.value(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TiedApPermutationProperty,
                         ::testing::Range(0, 10));

TEST(GroupsFromRankingTest, SplitsOnRankIntervals) {
  std::vector<RankedAnswer> ranking = {
      {10, 0.9, 1, 1}, {11, 0.5, 2, 3}, {12, 0.5, 2, 3}, {13, 0.1, 4, 4}};
  std::unordered_set<NodeId> relevant = {10, 12};
  std::vector<TiedGroup> groups = GroupsFromRanking(ranking, relevant);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size, 1);
  EXPECT_EQ(groups[0].relevant, 1);
  EXPECT_EQ(groups[1].size, 2);
  EXPECT_EQ(groups[1].relevant, 1);
  EXPECT_EQ(groups[2].size, 1);
  EXPECT_EQ(groups[2].relevant, 0);
}

TEST(ApForRankingTest, EndToEnd) {
  std::vector<RankedAnswer> ranking = {
      {10, 0.9, 1, 1}, {11, 0.5, 2, 2}, {12, 0.3, 3, 3}};
  std::unordered_set<NodeId> relevant = {10, 12};
  Result<double> ap = ApForRanking(ranking, relevant);
  ASSERT_TRUE(ap.ok());
  EXPECT_NEAR(ap.value(), (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(RandomApTest, KnownSmallValues) {
  // k=1, n=2: orders [1,0] AP=1, [0,1] AP=1/2 -> 0.75.
  EXPECT_NEAR(RandomAveragePrecision(1, 2).value(), 0.75, 1e-12);
  // k=n: always 1.
  EXPECT_NEAR(RandomAveragePrecision(3, 3).value(), 1.0, 1e-12);
  // n=1.
  EXPECT_NEAR(RandomAveragePrecision(1, 1).value(), 1.0, 1e-12);
}

TEST(RandomApTest, ScenarioOneBaselineIsAboutPointFour) {
  // The paper's scenario 1 random baseline is 0.42 with 306 relevant of
  // 1036 answers overall; the per-protein ratio k/n ~ 0.37 puts the
  // formula's value in that neighbourhood.
  Result<double> ap = RandomAveragePrecision(13, 36);
  ASSERT_TRUE(ap.ok());
  EXPECT_GT(ap.value(), 0.3);
  EXPECT_LT(ap.value(), 0.5);
}

TEST(RandomApTest, RejectsBadArguments) {
  EXPECT_FALSE(RandomAveragePrecision(0, 5).ok());
  EXPECT_FALSE(RandomAveragePrecision(6, 5).ok());
  EXPECT_FALSE(RandomAveragePrecision(1, 0).ok());
}

TEST(RandomApTest, IncreasesWithRelevantFraction) {
  double prev = 0.0;
  for (int k = 1; k <= 10; ++k) {
    double ap = RandomAveragePrecision(k, 10).value();
    EXPECT_GT(ap, prev);
    prev = ap;
  }
}

}  // namespace
}  // namespace biorank
