// Concurrency hammer for the api::Server session registry: many client
// threads opening, querying, snapshotting, and closing live sessions
// against one server (all sessions sharing one canonical reliability
// cache), racing a writer thread that applies evidence deltas to its own
// session. Run under ThreadSanitizer in CI (the tsan job). Asserts the
// two contracts the front door makes:
//
//  * determinism — every ranking a hammer thread observes on an
//    untouched graph is bit-identical to a serial replay recorded before
//    any thread started, no matter how opens/queries/deltas interleave;
//  * accounting — the shared cache's snapshot invariant (insertions -
//    evictions - invalidations == entries) and the server's session
//    counters survive the stampede.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/server.h"

namespace biorank::api {
namespace {

TEST(ApiConcurrencyTest, SessionStampedeStaysDeterministic) {
  constexpr int kSymbols = 4;
  constexpr int kThreads = 6;
  constexpr int kIterations = 3;
  constexpr int kTopK = 10;

  Server server;
  std::vector<std::string> symbols;
  for (int i = 0; i < kSymbols + 1; ++i) {
    symbols.push_back(
        server.universe()
            .protein(server.universe().well_studied()[static_cast<size_t>(i)])
            .gene_symbol);
  }

  // Serial replay: the reference ranking per symbol, recorded before any
  // concurrency (and through the same facade).
  std::vector<std::vector<std::pair<NodeId, double>>> expected;
  for (int i = 0; i < kSymbols; ++i) {
    Result<SessionInfo> session =
        server.OpenSession(MakeProteinFunctionRequest(symbols[static_cast<size_t>(i)]));
    ASSERT_TRUE(session.ok()) << session.status();
    Result<QueryResponse> ranked = server.QuerySession(session.value().id, kTopK);
    ASSERT_TRUE(ranked.ok()) << ranked.status();
    expected.push_back(RankingFingerprint(ranked.value()));
    ASSERT_TRUE(server.CloseSession(session.value().id).ok());
  }

  // The hammer: kThreads open/query/snapshot/close sessions on clean
  // graphs while one extra writer thread applies deltas to its own
  // session on a fifth symbol. Cache invalidations from the writer may
  // orphan keys the clean sessions share — they must re-resolve to
  // bit-identical values, never to different ones.
  std::atomic<int> failures{0};
  std::atomic<int> deltas_ok{0};
  auto hammer = [&](int thread_index) {
    for (int iteration = 0; iteration < kIterations; ++iteration) {
      int symbol = (thread_index + iteration) % kSymbols;
      Result<SessionInfo> session = server.OpenSession(
          MakeProteinFunctionRequest(symbols[static_cast<size_t>(symbol)]));
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int pass = 0; pass < 2; ++pass) {
        Result<QueryResponse> ranked =
            server.QuerySession(session.value().id, kTopK);
        if (!ranked.ok() ||
            RankingFingerprint(ranked.value()) != expected[static_cast<size_t>(symbol)]) {
          failures.fetch_add(1);
        }
      }
      if (iteration == kIterations - 1 &&
          !server.SessionSnapshot(session.value().id).ok()) {
        failures.fetch_add(1);
      }
      if (!server.CloseSession(session.value().id).ok()) {
        failures.fetch_add(1);
      }
    }
  };
  auto writer = [&] {
    Result<SessionInfo> session = server.OpenSession(
        MakeProteinFunctionRequest(symbols[kSymbols]));
    if (!session.ok()) {
      failures.fetch_add(1);
      return;
    }
    for (int iteration = 0; iteration < kIterations * 2; ++iteration) {
      ingest::EvidenceDelta delta;
      delta.revise_source_priors.push_back(
          {"AmiGO", iteration % 2 == 0 ? 0.9 : 1.0 / 0.9});
      if (server.ApplyDelta(session.value().id, delta).ok()) {
        deltas_ok.fetch_add(1);
      } else {
        failures.fetch_add(1);
      }
      if (!server.QuerySession(session.value().id, kTopK).ok()) {
        failures.fetch_add(1);
      }
    }
    if (!server.CloseSession(session.value().id).ok()) {
      failures.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(hammer, t);
  }
  threads.emplace_back(writer);
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(deltas_ok.load(), kIterations * 2);
  EXPECT_EQ(server.session_count(), 0u);

  ServerStats stats = server.Stats();
  const uint64_t hammer_opens =
      static_cast<uint64_t>(kThreads) * kIterations + 1;
  EXPECT_EQ(stats.sessions_opened, hammer_opens + kSymbols);
  EXPECT_EQ(stats.sessions_closed, hammer_opens + kSymbols);
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_EQ(stats.deltas_applied, static_cast<uint64_t>(kIterations) * 2);
  // The cache-stat invariant under concurrent insertion, eviction, and
  // selective invalidation (Stats() holds every shard lock at once).
  EXPECT_EQ(stats.cache.insertions - stats.cache.evictions -
                stats.cache.invalidations,
            stats.cache.entries);
}

TEST(ApiConcurrencyTest, ConcurrentBatchesMatchSerialReplay) {
  Server server;
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(MakeProteinFunctionRequest(
        server.universe()
            .protein(server.universe().well_studied()[static_cast<size_t>(i)])
            .gene_symbol,
        8));
  }
  // Serial replay through a second, fresh server.
  Server reference;
  std::vector<std::vector<std::pair<NodeId, double>>> expected;
  for (const QueryRequest& request : batch) {
    Result<QueryResponse> serial = reference.Query(request);
    ASSERT_TRUE(serial.ok()) << serial.status();
    expected.push_back(RankingFingerprint(serial.value()));
  }

  std::atomic<int> failures{0};
  auto run = [&] {
    for (int repeat = 0; repeat < 2; ++repeat) {
      Result<std::vector<QueryResponse>> fanned = server.RunBatch(batch);
      if (!fanned.ok() || fanned.value().size() != batch.size()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (RankingFingerprint(fanned.value()[i]) != expected[i]) failures.fetch_add(1);
      }
    }
  };
  std::thread a(run);
  std::thread b(run);
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.batch_requests, 16u);
}

}  // namespace
}  // namespace biorank::api
