// Reproduces Figure 6 (a-i): the multi-way sensitivity analysis. Every
// node and edge probability is perturbed with log-odds Gaussian noise at
// sigma in {0.5, 1, 2, 3}; the AP of each probabilistic ranking method on
// each scenario is averaged over repeated perturbations and compared with
// the unperturbed default and the random baseline.
//
// Paper shape: quality is flat through sigma = 1 and degrades only
// mildly at sigma = 3, staying far above random everywhere (the method
// is robust to imprecise expert probabilities). The paper averages over
// m = 100 repetitions; set BIORANK_REPS=100 to match.

#include <iostream>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "eval/experiment_stats.h"
#include "eval/perturbation.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  const int reps = bench::Repetitions(10);
  std::cout << "=== Figure 6: sensitivity to input probabilities (m=" << reps
            << ") ===\n\n";

  bench::WallTimer total_timer;
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  CsvWriter csv({"scenario", "method", "sigma", "mean_ap", "stdev"});
  bench::JsonReport report("fig6_sensitivity");
  uint64_t seed = 0xF16;
  int64_t perturbed_rankings = 0;

  const ScenarioId scenarios[] = {ScenarioId::kScenario1WellKnown,
                                  ScenarioId::kScenario2LessKnown,
                                  ScenarioId::kScenario3Hypothetical};
  const RankingMethod methods[] = {RankingMethod::kReliability,
                                   RankingMethod::kPropagation,
                                   RankingMethod::kDiffusion};

  for (ScenarioId scenario : scenarios) {
    Result<std::vector<ScenarioQuery>> queries =
        harness.BuildQueries(scenario);
    if (!queries.ok()) {
      std::cerr << queries.status() << "\n";
      return 1;
    }

    for (RankingMethod method : methods) {
      ApExperiment experiment;
      double random_sum = 0.0;
      int random_count = 0;
      for (const ScenarioQuery& query : queries.value()) {
        if (query.relevant.empty()) continue;
        Result<double> base = harness.ApForQuery(query, method);
        if (base.ok()) experiment.Record("Default", base.value());
        Result<double> random = harness.RandomBaselineAp(query);
        if (random.ok()) {
          random_sum += random.value();
          ++random_count;
        }
        for (double sigma : {0.5, 1.0, 2.0, 3.0}) {
          PerturbationOptions options;
          options.sigma = sigma;
          // One root seed per (query, sigma) cell; repetition r perturbs
          // with stream (seed, r), fanned out over the shared pool.
          Result<std::vector<double>> aps = harness.ApForPerturbedReps(
              query, method, options, reps, seed++);
          if (!aps.ok()) continue;
          for (double ap : aps.value()) {
            experiment.Record(FormatCompact(sigma, 1), ap);
          }
          perturbed_rankings += reps;
        }
      }

      std::cout << ScenarioName(scenario) << ", "
                << RankingMethodName(method) << ":\n";
      TextTable table({"Perturbation", "Mean AP", "Stdv"});
      for (const std::string& condition : experiment.Conditions()) {
        SampleStats stats = experiment.Summary(condition);
        table.AddRow({condition, FormatDouble(stats.mean, 2),
                      FormatDouble(stats.stddev, 2)});
        csv.AddRow({ScenarioName(scenario), RankingMethodName(method),
                    condition, FormatDouble(stats.mean, 4),
                    FormatDouble(stats.stddev, 4)});
        report.AddRow({{"scenario", ScenarioName(scenario)},
                       {"method", RankingMethodName(method)},
                       {"sigma", condition},
                       {"mean_ap", stats.mean},
                       {"stdev", stats.stddev}});
      }
      if (random_count > 0) {
        table.AddRow({"Random", FormatDouble(random_sum / random_count, 2),
                      "-"});
      }
      table.Print(std::cout);
      std::cout << "\n";
    }
  }

  std::cout << "Paper (reliability rows, default -> sigma 3):\n"
            << "  S1: .84 .86 .85 .80 .72 | random .42\n"
            << "  S2: .46 .46 .46 .41 .34 | random .12\n"
            << "  S3: .68 .67 .64 .60 .57 | random .29\n";
  bench::MaybeWriteCsv(csv, "fig6_sensitivity");
  double seconds = total_timer.Seconds();
  report.SetWallTime(seconds);
  report.SetMetric("reps", reps);
  report.SetMetric("perturbed_rankings", perturbed_rankings);
  report.SetMetric("rankings_per_sec",
                   seconds > 0.0
                       ? static_cast<double>(perturbed_rankings) / seconds
                       : 0.0);
  return report.Write().ok() ? 0 : 1;
}
