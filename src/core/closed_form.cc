#include "core/closed_form.h"

#include "core/graph_algo.h"
#include "core/reduction.h"

namespace biorank {

Result<double> ClosedFormReliability(const QueryGraph& query_graph,
                                     NodeId target) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  if (!graph.IsValidNode(target)) {
    return Status::InvalidArgument("closed form: invalid target");
  }

  QueryGraph single;
  single.graph = graph;
  single.source = query_graph.source;
  single.answers = {target};
  QueryGraph sub = RestrictToQueryRelevantSubgraph(single);
  ReduceQueryGraph(sub);

  NodeId s = sub.source;
  NodeId t = sub.answers[0];
  if (!sub.graph.IsValidNode(t)) {
    return Status::Internal("closed form: protected target was removed");
  }

  // Unreachable target: restriction keeps it isolated.
  if (sub.graph.InDegree(t) == 0 && t != s) return 0.0;

  // Fully reduced residue: exactly the two protected nodes and one edge.
  std::vector<EdgeId> in = sub.graph.InEdges(t);
  if (sub.graph.num_nodes() == 2 && sub.graph.num_edges() == 1 &&
      in.size() == 1 && sub.graph.edge(in[0]).from == s) {
    return sub.graph.node(s).p * sub.graph.edge(in[0]).q *
           sub.graph.node(t).p;
  }
  return Status::FailedPrecondition(
      "closed form: target subgraph is irreducible (residual " +
      std::to_string(sub.graph.num_nodes()) + " nodes, " +
      std::to_string(sub.graph.num_edges()) + " edges)");
}

Result<std::vector<double>> ClosedFormReliabilityAllAnswers(
    const QueryGraph& query_graph) {
  std::vector<double> scores;
  scores.reserve(query_graph.answers.size());
  for (NodeId t : query_graph.answers) {
    Result<double> r = ClosedFormReliability(query_graph, t);
    if (!r.ok()) return r.status();
    scores.push_back(r.value());
  }
  return scores;
}

}  // namespace biorank
