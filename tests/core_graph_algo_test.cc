#include "core/graph_algo.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace biorank {
namespace {

ProbabilisticEntityGraph Chain(int n, std::vector<NodeId>* ids) {
  ProbabilisticEntityGraph g;
  for (int i = 0; i < n; ++i) ids->push_back(g.AddNode(1.0));
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge((*ids)[i], (*ids)[i + 1], 1.0).value();
  }
  return g;
}

TEST(ReachabilityTest, ChainIsFullyReachableFromHead) {
  std::vector<NodeId> ids;
  ProbabilisticEntityGraph g = Chain(4, &ids);
  std::vector<bool> r = ReachableFrom(g, ids[0]);
  for (NodeId id : ids) EXPECT_TRUE(r[id]);
}

TEST(ReachabilityTest, NothingBehindTheStart) {
  std::vector<NodeId> ids;
  ProbabilisticEntityGraph g = Chain(4, &ids);
  std::vector<bool> r = ReachableFrom(g, ids[2]);
  EXPECT_FALSE(r[ids[0]]);
  EXPECT_FALSE(r[ids[1]]);
  EXPECT_TRUE(r[ids[2]]);
  EXPECT_TRUE(r[ids[3]]);
}

TEST(ReachabilityTest, InvalidStartYieldsAllFalse) {
  std::vector<NodeId> ids;
  ProbabilisticEntityGraph g = Chain(3, &ids);
  std::vector<bool> r = ReachableFrom(g, 99);
  for (bool b : r) EXPECT_FALSE(b);
}

TEST(ReachabilityTest, CoReachableIsReverse) {
  std::vector<NodeId> ids;
  ProbabilisticEntityGraph g = Chain(4, &ids);
  std::vector<bool> r = CoReachable(g, ids[2]);
  EXPECT_TRUE(r[ids[0]]);
  EXPECT_TRUE(r[ids[1]]);
  EXPECT_TRUE(r[ids[2]]);
  EXPECT_FALSE(r[ids[3]]);
}

TEST(TopologicalOrderTest, ChainOrder) {
  std::vector<NodeId> ids;
  ProbabilisticEntityGraph g = Chain(4, &ids);
  Result<std::vector<NodeId>> order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), ids);
}

TEST(TopologicalOrderTest, CycleIsRejected) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  g.AddEdge(a, b, 1.0).value();
  g.AddEdge(b, a, 1.0).value();
  Result<std::vector<NodeId>> order = TopologicalOrder(g);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TopologicalOrderTest, RespectsEdgesInDag) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  NodeId c = g.AddNode(1.0);
  g.AddEdge(a, c, 1.0).value();
  g.AddEdge(b, c, 1.0).value();
  Result<std::vector<NodeId>> order = TopologicalOrder(g);
  ASSERT_TRUE(order.ok());
  std::vector<int> pos(3);
  for (int i = 0; i < 3; ++i) pos[order.value()[i]] = i;
  EXPECT_LT(pos[a], pos[c]);
  EXPECT_LT(pos[b], pos[c]);
}

TEST(CycleDetectionTest, SelfLoopCounts) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  g.AddEdge(a, a, 0.5).value();
  EXPECT_TRUE(HasCycleReachableFrom(g, a));
}

TEST(CycleDetectionTest, UnreachableCycleIgnored) {
  ProbabilisticEntityGraph g;
  NodeId s = g.AddNode(1.0);
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  NodeId c = g.AddNode(1.0);
  g.AddEdge(s, a, 1.0).value();
  g.AddEdge(b, c, 1.0).value();
  g.AddEdge(c, b, 1.0).value();  // Cycle not reachable from s.
  EXPECT_FALSE(HasCycleReachableFrom(g, s));
  EXPECT_TRUE(HasCycleReachableFrom(g, b));
}

TEST(CycleDetectionTest, DiamondIsAcyclic) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  EXPECT_FALSE(HasCycleReachableFrom(g.graph, g.source));
}

TEST(LongestPathTest, ChainLength) {
  std::vector<NodeId> ids;
  ProbabilisticEntityGraph g = Chain(5, &ids);
  Result<int> len = LongestPathLengthFrom(g, ids[0]);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 4);
}

TEST(LongestPathTest, BridgeTakesLongerRoute) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<int> len = LongestPathLengthFrom(g.graph, g.source);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 3);  // s -> a -> b -> u.
}

TEST(LongestPathTest, CycleReachableFails) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  g.AddEdge(a, b, 1.0).value();
  g.AddEdge(b, a, 1.0).value();
  EXPECT_FALSE(LongestPathLengthFrom(g, a).ok());
}

TEST(LongestPathTest, UnreachableCycleElsewhereIsFine) {
  ProbabilisticEntityGraph g;
  NodeId s = g.AddNode(1.0);
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  NodeId c = g.AddNode(1.0);
  g.AddEdge(s, a, 1.0).value();
  g.AddEdge(b, c, 1.0).value();
  g.AddEdge(c, b, 1.0).value();
  Result<int> len = LongestPathLengthFrom(g, s);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 1);
}

TEST(InducedSubgraphTest, KeepsSelectedNodesAndInternalEdges) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(0.9, "a");
  NodeId b = g.AddNode(0.8, "b");
  NodeId c = g.AddNode(0.7, "c");
  g.AddEdge(a, b, 0.5).value();
  g.AddEdge(b, c, 0.4).value();
  std::vector<bool> keep = {true, true, false};
  std::vector<NodeId> mapping;
  ProbabilisticEntityGraph sub = InducedSubgraph(g, keep, &mapping);
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(mapping[c], kInvalidNode);
  EXPECT_NE(mapping[a], kInvalidNode);
  EXPECT_EQ(sub.node(mapping[a]).label, "a");
  EXPECT_DOUBLE_EQ(sub.node(mapping[b]).p, 0.8);
}

TEST(RestrictTest, DropsNodesOffAllPaths) {
  QueryGraphBuilder builder;
  NodeId s = builder.Source();
  NodeId mid = builder.Node(0.9, "mid");
  NodeId t = builder.Node(0.8, "t");
  NodeId stray = builder.Node(0.7, "stray");     // Reachable, not co-reachable.
  NodeId island = builder.Node(0.6, "island");   // Fully disconnected.
  (void)island;
  builder.Edge(s, mid, 0.5);
  builder.Edge(mid, t, 0.5);
  builder.Edge(mid, stray, 0.5);
  QueryGraph g = std::move(builder).Build({t});
  QueryGraph sub = RestrictToQueryRelevantSubgraph(g);
  EXPECT_EQ(sub.graph.num_nodes(), 3);  // s, mid, t.
  EXPECT_EQ(sub.graph.num_edges(), 2);
  EXPECT_EQ(sub.answers.size(), 1u);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(RestrictTest, UnreachableAnswerKeptIsolated) {
  QueryGraphBuilder builder;
  NodeId s = builder.Source();
  NodeId t = builder.Node(0.8, "t");
  NodeId orphan_answer = builder.Node(0.7, "orphan");
  builder.Edge(s, t, 0.5);
  QueryGraph g = std::move(builder).Build({t, orphan_answer});
  QueryGraph sub = RestrictToQueryRelevantSubgraph(g);
  EXPECT_EQ(sub.answers.size(), 2u);
  EXPECT_TRUE(sub.Validate().ok());
  // The orphan answer survives with no edges.
  EXPECT_EQ(sub.graph.InDegree(sub.answers[1]), 0);
}

TEST(DotExportTest, MentionsAllNodesAndProbs) {
  QueryGraph g = MakeFig4aSerialParallel();
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0.5"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // Answer style.
  EXPECT_NE(dot.find("box"), std::string::npos);           // Source style.
  // 5 nodes and 5 edges.
  size_t arrows = 0;
  for (size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 2)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 5u);
}

}  // namespace
}  // namespace biorank
