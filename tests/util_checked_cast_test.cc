#include "util/checked_cast.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(CheckedCastTest, FitsUint32AcceptsRepresentableValues) {
  EXPECT_TRUE(FitsUint32(0));
  EXPECT_TRUE(FitsUint32(1));
  EXPECT_TRUE(FitsUint32(std::numeric_limits<uint32_t>::max()));
  EXPECT_TRUE(FitsUint32(static_cast<int64_t>(0xFFFFFFFFLL)));
  EXPECT_TRUE(FitsUint32(static_cast<size_t>(0xFFFFFFFFu)));
  EXPECT_TRUE(FitsUint32(std::numeric_limits<int32_t>::max()));
}

TEST(CheckedCastTest, FitsUint32RejectsNegativeAndOversized) {
  EXPECT_FALSE(FitsUint32(-1));
  EXPECT_FALSE(FitsUint32(std::numeric_limits<int64_t>::min()));
  EXPECT_FALSE(FitsUint32(static_cast<int64_t>(0x100000000LL)));
  EXPECT_FALSE(FitsUint32(static_cast<uint64_t>(0x100000000ULL)));
  EXPECT_FALSE(FitsUint32(std::numeric_limits<uint64_t>::max()));
}

TEST(CheckedCastTest, CastPassesThroughInRangeValues) {
  EXPECT_EQ(CheckedUint32Cast(0, "test"), 0u);
  EXPECT_EQ(CheckedUint32Cast(static_cast<size_t>(12345), "test"), 12345u);
  EXPECT_EQ(CheckedUint32Cast(static_cast<uint64_t>(0xFFFFFFFFULL), "test"),
            0xFFFFFFFFu);
}

TEST(CheckedCastDeathTest, CastAbortsOnOverflow) {
  EXPECT_DEATH(CheckedUint32Cast(static_cast<uint64_t>(0x100000000ULL),
                                 "edge count"),
               "checked cast to uint32_t overflowed in edge count");
  EXPECT_DEATH(CheckedUint32Cast(-1, "node count"),
               "checked cast to uint32_t overflowed in node count");
}

}  // namespace
}  // namespace biorank
