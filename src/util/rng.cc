#include "util/rng.h"

#include <cmath>

namespace biorank {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream) {
  uint64_t state = seed;
  uint64_t mixed = SplitMix64Next(state);
  // Inject the stream index with an odd multiplier so that consecutive
  // streams land far apart in SplitMix64's state space, then mix again.
  state = mixed ^ (stream * 0xD1B54A32D192ED03ULL + 0x8CB92BA72F3D8DD7ULL);
  return SplitMix64Next(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller with rejection of u1 == 0.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace biorank
