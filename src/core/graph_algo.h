// Reachability, topological order, cycle checks, and query-relevant
// subgraph restriction on entity graphs. These support the Section 3.1
// reductions and all scoring methods.

#ifndef BIORANK_CORE_GRAPH_ALGO_H_
#define BIORANK_CORE_GRAPH_ALGO_H_

#include <string>
#include <vector>

#include "core/csr_snapshot.h"
#include "core/graph.h"
#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Nodes reachable from `start` following edge directions (includes
/// `start`). Indexed by NodeId; dead nodes are false.
std::vector<bool> ReachableFrom(const ProbabilisticEntityGraph& graph,
                                NodeId start);

/// Nodes from which `target` is reachable (includes `target`).
std::vector<bool> CoReachable(const ProbabilisticEntityGraph& graph,
                              NodeId target);

/// Topological order of the alive nodes. Fails with FailedPrecondition if
/// the graph has a cycle.
Result<std::vector<NodeId>> TopologicalOrder(
    const ProbabilisticEntityGraph& graph);

/// True if some cycle is reachable from `start` (self-loops count).
bool HasCycleReachableFrom(const ProbabilisticEntityGraph& graph,
                           NodeId start);

/// Length (edge count) of the longest simple path from `source` over the
/// reachable DAG; fails if a cycle is reachable. This is the iteration
/// count after which propagation reaches its fixpoint on DAGs (Sect 3.2).
Result<int> LongestPathLengthFrom(const ProbabilisticEntityGraph& graph,
                                  NodeId source);

/// Copies the subgraph induced by `keep` (indexed by NodeId) into a fresh
/// graph with dense ids. `old_to_new` (optional out-param) receives the id
/// mapping, kInvalidNode for dropped nodes.
ProbabilisticEntityGraph InducedSubgraph(const ProbabilisticEntityGraph& graph,
                                         const std::vector<bool>& keep,
                                         std::vector<NodeId>* old_to_new);

/// Restricts a query graph to the union over all answers t of the nodes
/// lying on some source -> t path (i.e. Reach(source) intersected with the
/// union of CoReach(t)). Answers unreachable from the source are kept as
/// isolated nodes so that every input answer remains a valid (score-0)
/// answer in the output.
QueryGraph RestrictToQueryRelevantSubgraph(const QueryGraph& query_graph);

/// Same, but restricting to the given answer subset instead of
/// `query_graph.answers` (the output's answer set is `answers`). Lets
/// per-candidate callers (core/canonical.h) restrict to one target
/// without first copying the whole graph just to swap the answer list.
/// `kept_nodes` (optional out-param) receives the membership mask of the
/// restriction, indexed by *original* NodeId — the provenance record the
/// ingest layer's dependency index is built from.
QueryGraph RestrictToQueryRelevantSubgraph(const QueryGraph& query_graph,
                                           const std::vector<NodeId>& answers,
                                           std::vector<bool>* kept_nodes =
                                               nullptr);

/// Same restriction, but the membership mask is computed by BFS over a
/// prebuilt flat snapshot of `query_graph.graph` (core/csr_snapshot.h)
/// instead of walking the pointer graph's tombstone-filtered adjacency.
/// `graph_csr` must be an unmasked snapshot of exactly that graph — the
/// per-candidate fan-out in canonicalization builds it once per request
/// and reuses it for every target. The produced mask, subgraph, and
/// answer mapping are identical to the pointer overload's.
QueryGraph RestrictToQueryRelevantSubgraph(const QueryGraph& query_graph,
                                           const std::vector<NodeId>& answers,
                                           const CsrSnapshot& graph_csr,
                                           std::vector<bool>* kept_nodes =
                                               nullptr);

/// Graphviz DOT rendering (nodes annotated with p, edges with q; source
/// drawn as a box, answers as double circles).
std::string ToDot(const QueryGraph& query_graph);

}  // namespace biorank

#endif  // BIORANK_CORE_GRAPH_ALGO_H_
