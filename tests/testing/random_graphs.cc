#include "testing/random_graphs.h"

#include <string>

namespace biorank::testing {

QueryGraph MakeRandomLayeredDag(Rng& rng, const RandomDagOptions& options) {
  QueryGraphBuilder builder;
  std::vector<std::vector<NodeId>> layers;
  layers.push_back({builder.Source()});

  auto node_p = [&]() {
    return options.certain_nodes ? 1.0
                                 : rng.NextUniform(options.min_node_p, 1.0);
  };
  auto edge_q = [&]() { return rng.NextUniform(options.min_edge_q, 1.0); };

  for (int layer = 0; layer < options.layers; ++layer) {
    std::vector<NodeId> current;
    for (int i = 0; i < options.nodes_per_layer; ++i) {
      current.push_back(builder.Node(
          node_p(), "L" + std::to_string(layer) + "N" + std::to_string(i)));
    }
    layers.push_back(current);
  }
  std::vector<NodeId> answers;
  for (int i = 0; i < options.answers; ++i) {
    answers.push_back(builder.Node(node_p(), "ans" + std::to_string(i)));
  }
  layers.push_back(answers);

  for (size_t layer = 0; layer + 1 < layers.size(); ++layer) {
    for (NodeId from : layers[layer]) {
      for (NodeId to : layers[layer + 1]) {
        if (rng.NextBernoulli(options.edge_density)) {
          builder.Edge(from, to, edge_q());
        }
      }
      // Occasional layer-skipping edges.
      for (size_t skip = layer + 2; skip < layers.size(); ++skip) {
        for (NodeId to : layers[skip]) {
          if (rng.NextBernoulli(options.skip_density)) {
            builder.Edge(from, to, edge_q());
          }
        }
      }
    }
  }
  // Guarantee connectivity hooks: each non-source layer node gets at least
  // one in-edge from the previous layer, picked uniformly.
  for (size_t layer = 1; layer < layers.size(); ++layer) {
    for (NodeId to : layers[layer]) {
      const std::vector<NodeId>& prev = layers[layer - 1];
      NodeId from =
          prev[static_cast<size_t>(rng.NextBounded(prev.size()))];
      builder.Edge(from, to, edge_q());
    }
  }
  return std::move(builder).Build(answers);
}

QueryGraph MakeRandomTree(Rng& rng, int depth, int branching,
                          bool certain_nodes) {
  QueryGraphBuilder builder;
  std::vector<NodeId> frontier = {builder.Source()};
  std::vector<NodeId> leaves;
  for (int level = 0; level < depth; ++level) {
    std::vector<NodeId> next;
    for (NodeId parent : frontier) {
      for (int child = 0; child < branching; ++child) {
        double p = certain_nodes ? 1.0 : rng.NextUniform(0.3, 1.0);
        NodeId id = builder.Node(p);
        builder.Edge(parent, id, rng.NextUniform(0.2, 1.0));
        next.push_back(id);
      }
    }
    frontier = std::move(next);
  }
  leaves = frontier;
  return std::move(builder).Build(leaves);
}

QueryGraph MakeRandomDigraph(Rng& rng, int num_nodes, double edge_density,
                             int num_answers) {
  QueryGraphBuilder builder;
  std::vector<NodeId> nodes = {builder.Source()};
  for (int i = 1; i < num_nodes; ++i) {
    nodes.push_back(builder.Node(rng.NextUniform(0.3, 1.0)));
  }
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = 0; j < num_nodes; ++j) {
      if (i == j) continue;
      if (rng.NextBernoulli(edge_density)) {
        builder.Edge(nodes[i], nodes[j], rng.NextUniform(0.2, 1.0));
      }
    }
  }
  std::vector<NodeId> answers;
  for (int i = 0; i < num_answers && i + 1 < num_nodes; ++i) {
    answers.push_back(nodes[num_nodes - 1 - i]);
  }
  return std::move(builder).Build(answers);
}

}  // namespace biorank::testing
