#include "integrate/mediator.h"

#include <gtest/gtest.h>

#include "core/graph_algo.h"
#include "integrate/exploratory_query.h"

namespace biorank {
namespace {

class MediatorTest : public ::testing::Test {
 protected:
  MediatorTest()
      : universe_(ProteinUniverse::Generate()),
        registry_(universe_),
        mediator_(registry_) {}

  ExploratoryQueryResult RunFor(int protein_index) {
    const Protein& protein = universe_.protein(protein_index);
    Result<ExploratoryQueryResult> run =
        mediator_.Run(MakeProteinFunctionQuery(protein.gene_symbol));
    EXPECT_TRUE(run.ok()) << run.status();
    return std::move(run.value());
  }

  ProteinUniverse universe_;
  SourceRegistry registry_;
  Mediator mediator_;
};

TEST_F(MediatorTest, UnknownProteinIsNotFound) {
  Result<ExploratoryQueryResult> run =
      mediator_.Run(MakeProteinFunctionQuery("NO_SUCH_GENE"));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST_F(MediatorTest, UnsupportedQueryShapesAreRejected) {
  ExploratoryQuery query;
  query.entity_set = "Pfam";
  query.value = "x";
  EXPECT_EQ(mediator_.Run(query).status().code(),
            StatusCode::kUnimplemented);
  ExploratoryQuery bad_output = MakeProteinFunctionQuery("x");
  bad_output.output_sets = {"PDB"};
  EXPECT_EQ(mediator_.Run(bad_output).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(MediatorTest, RunErrorPathsAreTyped) {
  const std::string known =
      universe_.protein(universe_.well_studied()[0]).gene_symbol;

  // Unknown input entity set: rejected before any source is queried,
  // even when the value would match a real protein.
  ExploratoryQuery wrong_set = MakeProteinFunctionQuery(known);
  wrong_set.entity_set = "NoSuchEntitySet";
  EXPECT_EQ(mediator_.Run(wrong_set).status().code(),
            StatusCode::kUnimplemented);

  // Unsupported match attribute on the supported entity set.
  ExploratoryQuery wrong_attribute = MakeProteinFunctionQuery(known);
  wrong_attribute.attribute = "sequence";
  EXPECT_EQ(mediator_.Run(wrong_attribute).status().code(),
            StatusCode::kUnimplemented);

  // Unsupported output sets: a foreign set, several sets, and none.
  ExploratoryQuery extra_outputs = MakeProteinFunctionQuery(known);
  extra_outputs.output_sets = {"AmiGO", "PDB"};
  EXPECT_EQ(mediator_.Run(extra_outputs).status().code(),
            StatusCode::kUnimplemented);
  ExploratoryQuery no_outputs = MakeProteinFunctionQuery(known);
  no_outputs.output_sets.clear();
  EXPECT_EQ(mediator_.Run(no_outputs).status().code(),
            StatusCode::kUnimplemented);

  // Empty match: a well-formed query whose value matches no record.
  ExploratoryQuery no_match = MakeProteinFunctionQuery("");
  Result<ExploratoryQueryResult> empty = mediator_.Run(no_match);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);

  // The ranked entry point surfaces the same statuses (no swallow).
  serve::RankingService service;
  EXPECT_EQ(mediator_.RunRanked(wrong_set, 5, service).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(mediator_.RunRanked(no_match, 5, service).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MediatorTest, GraphValidatesAndHasAnswers) {
  ExploratoryQueryResult result = RunFor(universe_.well_studied()[0]);
  EXPECT_TRUE(result.query_graph.Validate().ok());
  EXPECT_EQ(result.matched_proteins, 1);
  EXPECT_FALSE(result.query_graph.answers.empty());
  EXPECT_EQ(result.query_graph.answers.size(), result.go_node.size());
}

TEST_F(MediatorTest, GraphScaleMatchesPaper) {
  // The paper's 20 graphs average 520 nodes / 695 edges with answer sets
  // of 15-130 functions; ours must land in the same regime.
  ExploratoryQueryResult result = RunFor(universe_.well_studied()[0]);
  EXPECT_GT(result.query_graph.graph.num_nodes(), 100);
  EXPECT_LT(result.query_graph.graph.num_nodes(), 1500);
  EXPECT_GT(result.query_graph.graph.num_edges(), 150);
  EXPECT_LT(result.query_graph.graph.num_edges(), 2500);
  EXPECT_GE(static_cast<int>(result.query_graph.answers.size()), 15);
  EXPECT_LE(static_cast<int>(result.query_graph.answers.size()), 130);
}

TEST_F(MediatorTest, AllAnswersAreGoTermNodes) {
  ExploratoryQueryResult result = RunFor(universe_.well_studied()[1]);
  for (NodeId answer : result.query_graph.answers) {
    EXPECT_EQ(result.query_graph.graph.node(answer).entity_set, "GO");
    // The GO vocabulary is certain; uncertainty lives on annotations.
    EXPECT_DOUBLE_EQ(result.query_graph.graph.node(answer).p, 1.0);
  }
}

TEST_F(MediatorTest, AnswersAreReachableFromQueryNode) {
  ExploratoryQueryResult result = RunFor(universe_.well_studied()[2]);
  std::vector<bool> reachable =
      ReachableFrom(result.query_graph.graph, result.query_graph.source);
  for (NodeId answer : result.query_graph.answers) {
    EXPECT_TRUE(reachable[answer]);
  }
}

TEST_F(MediatorTest, QueryGraphIsAcyclic) {
  // Figure 1 crawls are workflow-shaped: PathCount must be well-defined.
  ExploratoryQueryResult result = RunFor(universe_.well_studied()[3]);
  EXPECT_FALSE(HasCycleReachableFrom(result.query_graph.graph,
                                     result.query_graph.source));
}

TEST_F(MediatorTest, ProbabilitiesComposePsTimesPr) {
  // EntrezGene annotation nodes must carry ps(EntrezGene) * status pr;
  // spot-check that every node probability is within (0, 1].
  ExploratoryQueryResult result = RunFor(universe_.well_studied()[4]);
  const ProbabilisticEntityGraph& graph = result.query_graph.graph;
  int eg_nodes = 0;
  for (NodeId id : graph.AliveNodes()) {
    const GraphNode& node = graph.node(id);
    EXPECT_GT(node.p, 0.0) << node.label;
    EXPECT_LE(node.p, 1.0) << node.label;
    if (node.entity_set == "EntrezGene" && node.label.rfind("EG:", 0) == 0) {
      ++eg_nodes;
      // ps = 0.9 and pr in {1.0, .8, .7, .4, .3, .2}.
      const double valid[] = {0.9, 0.72, 0.63, 0.36, 0.27, 0.18};
      bool matches = false;
      for (double v : valid) {
        if (std::abs(node.p - v) < 1e-9) matches = true;
      }
      EXPECT_TRUE(matches) << node.label << " p=" << node.p;
    }
  }
  EXPECT_GT(eg_nodes, 0);
}

TEST_F(MediatorTest, GoldFunctionsAreRetrieved) {
  int index = universe_.well_studied()[0];
  ExploratoryQueryResult result = RunFor(index);
  const Protein& protein = universe_.protein(index);
  int retrieved = 0;
  for (int go : protein.curated_functions) {
    if (result.go_node.count(go) > 0) ++retrieved;
  }
  // Curation coverage is incomplete but transfers recover most of it.
  EXPECT_GT(retrieved,
            static_cast<int>(protein.curated_functions.size()) * 7 / 10);
}

TEST_F(MediatorTest, RecentFunctionsAreRetrieved) {
  for (int index : universe_.well_studied()) {
    const Protein& protein = universe_.protein(index);
    if (protein.recent_functions.empty()) continue;
    ExploratoryQueryResult result = RunFor(index);
    for (int go : protein.recent_functions) {
      EXPECT_EQ(result.go_node.count(go), 1u) << protein.gene_symbol;
    }
  }
}

TEST_F(MediatorTest, DeterministicAcrossRuns) {
  int index = universe_.well_studied()[5];
  ExploratoryQueryResult a = RunFor(index);
  ExploratoryQueryResult b = RunFor(index);
  EXPECT_EQ(a.query_graph.graph.num_nodes(), b.query_graph.graph.num_nodes());
  EXPECT_EQ(a.query_graph.graph.num_edges(), b.query_graph.graph.num_edges());
  EXPECT_EQ(a.query_graph.answers, b.query_graph.answers);
}

TEST_F(MediatorTest, MinorSourcesEnlargeTheGraph) {
  int index = universe_.well_studied()[0];
  ExploratoryQueryResult base = RunFor(index);

  MediatorOptions options;
  options.include_minor_sources = true;
  Mediator extended(registry_, options);
  Result<ExploratoryQueryResult> run = extended.Run(
      MakeProteinFunctionQuery(universe_.protein(index).gene_symbol));
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run.value().query_graph.graph.num_nodes(),
            base.query_graph.graph.num_nodes());
  EXPECT_TRUE(run.value().query_graph.Validate().ok());
}

TEST_F(MediatorTest, PdbContributesSinkNodes) {
  MediatorOptions options;
  options.include_minor_sources = true;
  Mediator extended(registry_, options);
  // Find a well-studied protein with deposited structures.
  for (int index : universe_.well_studied()) {
    if (registry_.pdb().StructuresFor(index).empty()) continue;
    Result<ExploratoryQueryResult> run = extended.Run(
        MakeProteinFunctionQuery(universe_.protein(index).gene_symbol));
    ASSERT_TRUE(run.ok());
    const ProbabilisticEntityGraph& graph = run.value().query_graph.graph;
    int pdb_sinks = 0;
    for (NodeId id : graph.AliveNodes()) {
      if (graph.node(id).entity_set == "PDB") {
        EXPECT_EQ(graph.OutDegree(id), 0);
        ++pdb_sinks;
      }
    }
    EXPECT_GT(pdb_sinks, 0);
    return;
  }
  GTEST_SKIP() << "no protein with PDB structures in this universe";
}

TEST_F(MediatorTest, RunRankedServesTopKThroughTheRankingService) {
  const Protein& protein = universe_.protein(universe_.well_studied()[0]);
  serve::RankingService service;
  Result<RankedExploratoryResult> ranked = mediator_.RunRanked(
      MakeProteinFunctionQuery(protein.gene_symbol), 5, service);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_FALSE(ranked.value().result.query_graph.answers.empty());
  ASSERT_EQ(ranked.value().ranked.top.size(), 5u);
  for (size_t i = 1; i < ranked.value().ranked.top.size(); ++i) {
    EXPECT_GE(ranked.value().ranked.top[i - 1].reliability,
              ranked.value().ranked.top[i].reliability);
  }
  // A repeated request is answered from the service's canonical cache.
  Result<RankedExploratoryResult> again = mediator_.RunRanked(
      MakeProteinFunctionQuery(protein.gene_symbol), 5, service);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ranked.stats.cache_misses, 0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(again.value().ranked.top[i].node,
              ranked.value().ranked.top[i].node);
    EXPECT_EQ(again.value().ranked.top[i].reliability,
              ranked.value().ranked.top[i].reliability);
  }
  // k = 0 ranks the full answer set.
  Result<RankedExploratoryResult> full = mediator_.RunRanked(
      MakeProteinFunctionQuery(protein.gene_symbol), 0, service);
  ASSERT_TRUE(full.ok());
  EXPECT_GE(full.value().ranked.top.size(), 5u);
}

TEST_F(MediatorTest, RunRankedKEdgeCases) {
  const Protein& protein = universe_.protein(universe_.well_studied()[1]);
  serve::RankingService service;

  // k = 0 ranks the full answer set.
  Result<RankedExploratoryResult> full = mediator_.RunRanked(
      MakeProteinFunctionQuery(protein.gene_symbol), 0, service);
  ASSERT_TRUE(full.ok()) << full.status();
  size_t answers = full.value().result.query_graph.answers.size();
  ASSERT_GT(answers, 0u);
  EXPECT_EQ(full.value().ranked.top.size(), answers);

  // k far beyond the answer count clamps to the answer count and yields
  // the same ranking as k = 0.
  Result<RankedExploratoryResult> huge = mediator_.RunRanked(
      MakeProteinFunctionQuery(protein.gene_symbol),
      static_cast<int>(answers) + 1000, service);
  ASSERT_TRUE(huge.ok()) << huge.status();
  ASSERT_EQ(huge.value().ranked.top.size(), answers);
  for (size_t i = 0; i < answers; ++i) {
    EXPECT_EQ(huge.value().ranked.top[i].node,
              full.value().ranked.top[i].node);
    EXPECT_EQ(huge.value().ranked.top[i].reliability,
              full.value().ranked.top[i].reliability);
  }

  // Negative k behaves like 0 (RunRanked treats <= 0 as "rank all").
  Result<RankedExploratoryResult> negative = mediator_.RunRanked(
      MakeProteinFunctionQuery(protein.gene_symbol), -3, service);
  ASSERT_TRUE(negative.ok()) << negative.status();
  EXPECT_EQ(negative.value().ranked.top.size(), answers);
}

TEST_F(MediatorTest, RunRankedEmptyQueryRelevantSubgraphAnswers) {
  // Answers whose evidence subgraph is empty (reliability exactly 0)
  // must survive a full ranking: the mediator's graphs always support
  // every answer, so serve the request through the service on a
  // mediator graph with one answer's evidence severed.
  const Protein& protein = universe_.protein(universe_.well_studied()[2]);
  Result<ExploratoryQueryResult> run =
      mediator_.Run(MakeProteinFunctionQuery(protein.gene_symbol));
  ASSERT_TRUE(run.ok()) << run.status();
  QueryGraph graph = std::move(run.value().query_graph);
  ASSERT_GT(graph.answers.size(), 1u);
  // Sever every in-edge of the first answer: its query-relevant
  // subgraph becomes empty.
  NodeId severed = graph.answers[0];
  for (EdgeId e : graph.graph.InEdges(severed)) {
    graph.graph.RemoveEdge(e);
  }
  serve::RankingService service;
  Result<serve::TopKResult> ranked =
      service.RankTopK(graph, static_cast<int>(graph.answers.size()));
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ASSERT_EQ(ranked.value().top.size(), graph.answers.size());
  const serve::RankedCandidate& last = ranked.value().top.back();
  EXPECT_EQ(last.node, severed);
  EXPECT_DOUBLE_EQ(last.reliability, 0.0);
}

TEST_F(MediatorTest, ServeLiveAppliesDeltasIncrementally) {
  const Protein& protein = universe_.protein(universe_.well_studied()[0]);
  serve::RankingService service;
  Result<Mediator::LiveExploratoryQuery> live = mediator_.ServeLive(
      MakeProteinFunctionQuery(protein.gene_symbol), service);
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_NE(live.value().applier, nullptr);
  EXPECT_FALSE(live.value().go_node.empty());

  Result<serve::TopKResult> before = live.value().applier->RankTopK(5);
  ASSERT_TRUE(before.ok()) << before.status();

  // A schema-validated delta: AmiGO's prior is revised downward.
  ingest::EvidenceDelta delta;
  delta.revise_source_priors.push_back({"AmiGO", 0.9});
  Result<ingest::ApplyReport> report =
      mediator_.ApplyDelta(live.value(), delta);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report.value().dirty_answers, 0);

  // An unknown source is rejected by the mediator's schema metrics.
  ingest::EvidenceDelta unknown;
  unknown.revise_source_priors.push_back({"NoSuchSource", 0.9});
  EXPECT_EQ(mediator_.ApplyDelta(live.value(), unknown).status().code(),
            StatusCode::kNotFound);

  // The live ranking after the delta matches a from-scratch service on
  // the updated graph.
  Result<serve::TopKResult> after = live.value().applier->RankTopK(5);
  ASSERT_TRUE(after.ok()) << after.status();
  serve::RankingServiceOptions reference_options;
  reference_options.enable_cache = false;
  reference_options.num_threads = 1;
  serve::RankingService reference(reference_options);
  Result<serve::TopKResult> rebuilt =
      reference.RankTopK(live.value().applier->GraphSnapshot(), 5);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ASSERT_EQ(after.value().top.size(), rebuilt.value().top.size());
  for (size_t i = 0; i < after.value().top.size(); ++i) {
    EXPECT_EQ(after.value().top[i].node, rebuilt.value().top[i].node);
    EXPECT_EQ(after.value().top[i].reliability,
              rebuilt.value().top[i].reliability);
  }
}

TEST_F(MediatorTest, DefaultMetricsMatchSection2Narrative) {
  ProbabilisticMetrics metrics = MakeDefaultBioRankMetrics();
  // PIRSF is trusted more than Pfam; profile HMMs more than raw BLAST.
  EXPECT_GT(metrics.SourceConfidence("PIRSF"),
            metrics.SourceConfidence("PfamDomain"));
  EXPECT_GT(metrics.RelationshipConfidence("Pfam1"),
            metrics.RelationshipConfidence("NCBIBlast1"));
  // Foreign keys are certain.
  EXPECT_DOUBLE_EQ(metrics.RelationshipConfidence("NCBIBlast2"), 1.0);
}

}  // namespace
}  // namespace biorank
