// Differential lockdown of the CSR-vs-pointer backend contract: across
// ~200 seeded random graphs, reliability_mc, topk_mc, diffusion, and the
// per-candidate query-relevant restriction must be BIT-identical between
// the flat-snapshot and pointer-graph substrates, at 1 and 4 threads.
// Any divergence means the two paths flipped different coins (or summed
// in a different order) — the exact regression this suite exists to
// catch before it ships as a silent ranking change.

#include <cstdint>

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "testing/differential.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

using testing::CompareDiffusionBackends;
using testing::CompareMcBackends;
using testing::CompareRestrictionBackends;
using testing::CompareTopKBackends;
using testing::DiffResult;

/// One graph per round, cycling through the three generators so the
/// sweep covers DAGs, trees, and cyclic digraphs (self-loops included).
QueryGraph GraphForRound(Rng& rng, int round) {
  switch (round % 3) {
    case 0: {
      testing::RandomDagOptions options;
      options.layers = 2 + round % 4;
      options.nodes_per_layer = 3 + round % 5;
      options.answers = 2 + round % 4;
      options.edge_density = 0.3 + 0.02 * (round % 15);
      options.skip_density = 0.1;
      options.certain_nodes = (round % 6) == 0;
      return testing::MakeRandomLayeredDag(rng, options);
    }
    case 1:
      return testing::MakeRandomTree(rng, 2 + round % 3, 2 + round % 2,
                                     (round % 4) == 1);
    default:
      return testing::MakeRandomDigraph(rng, 8 + round % 10,
                                        0.2 + 0.01 * (round % 10),
                                        2 + round % 3);
  }
}

TEST(CsrDifferentialTest, ReliabilityMcBitIdentical) {
  Rng rng(20260808);
  for (int round = 0; round < 50; ++round) {
    QueryGraph query = GraphForRound(rng, round);
    for (int threads : {1, 4}) {
      DiffResult r = CompareMcBackends(query, /*trials=*/1500,
                                       /*seed=*/1000 + round, threads);
      EXPECT_TRUE(r.ok) << "round " << round << ", " << threads
                        << " threads: " << r.message;
    }
  }
}

TEST(CsrDifferentialTest, ReliabilityMcNaiveModeBitIdentical) {
  // The naive sampler flips a coin for *every* element, so it exercises
  // the dense-iteration equivalence (dead nodes consume no draws in
  // either backend because p == 0 short-circuits the Bernoulli).
  Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    QueryGraph query = GraphForRound(rng, round);
    for (int threads : {1, 4}) {
      DiffResult r =
          CompareMcBackends(query, /*trials=*/600, /*seed=*/31 + round,
                            threads, McOptions::Mode::kNaive);
      EXPECT_TRUE(r.ok) << "round " << round << ", " << threads
                        << " threads: " << r.message;
    }
  }
}

TEST(CsrDifferentialTest, TopKAdaptiveTrajectoryBitIdentical) {
  Rng rng(4242);
  for (int round = 0; round < 40; ++round) {
    QueryGraph query = GraphForRound(rng, round);
    TopKOptions options;
    options.k = 2;
    options.batch_trials = 400;
    options.max_trials = 4000;
    options.seed = 9000 + static_cast<uint64_t>(round);
    for (int threads : {1, 4}) {
      options.num_threads = threads;
      DiffResult r = CompareTopKBackends(query, options);
      EXPECT_TRUE(r.ok) << "round " << round << ", " << threads
                        << " threads: " << r.message;
    }
  }
}

TEST(CsrDifferentialTest, DiffusionBitIdentical) {
  Rng rng(1717);
  for (int round = 0; round < 50; ++round) {
    QueryGraph query = GraphForRound(rng, round);
    DiffusionOptions options;
    options.max_iterations = 100;
    options.solver = (round % 2) == 0 ? DiffusionInnerSolver::kAnalytic
                                      : DiffusionInnerSolver::kBisection;
    DiffResult r = CompareDiffusionBackends(query, options);
    EXPECT_TRUE(r.ok) << "round " << round << ": " << r.message;
  }
}

TEST(CsrDifferentialTest, RestrictionAndCanonicalizationIdentical) {
  Rng rng(5150);
  for (int round = 0; round < 40; ++round) {
    QueryGraph query = GraphForRound(rng, round);
    DiffResult r = CompareRestrictionBackends(query);
    EXPECT_TRUE(r.ok) << "round " << round << ": " << r.message;
  }
}

TEST(CsrDifferentialTest, ShardGranularityInvariance) {
  // Same seed, different shard sizes: each backend must change results
  // the same way (shard plan is part of the reproducibility key, not a
  // backend detail).
  Rng rng(62);
  QueryGraph query = GraphForRound(rng, 0);
  for (int64_t shard_trials : {1, 7, 64, 512}) {
    McOptions mc;
    mc.trials = 999;
    mc.seed = 11;
    mc.shard_trials = shard_trials;
    mc.num_threads = 4;
    mc.backend = McOptions::Backend::kCsrSnapshot;
    Result<McEstimate> csr = EstimateReliabilityMc(query, mc);
    mc.backend = McOptions::Backend::kPointerView;
    Result<McEstimate> ptr = EstimateReliabilityMc(query, mc);
    ASSERT_TRUE(csr.ok() && ptr.ok());
    EXPECT_TRUE(
        testing::ScoresBitIdentical(csr.value().scores, ptr.value().scores))
        << "shard_trials=" << shard_trials;
  }
}

}  // namespace
}  // namespace biorank
