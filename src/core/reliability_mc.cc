#include "core/reliability_mc.h"

#include <algorithm>
#include <cmath>

#include "core/trial_bound.h"
#include "util/rng.h"

namespace biorank {

namespace {

Status ValidateMcOptions(const McOptions& options) {
  if (options.trials <= 0) {
    return Status::InvalidArgument("MC trials must be positive");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument(
        "MC num_threads must be >= 0 (0 = full shared pool)");
  }
  if (options.shard_trials < 1) {
    return Status::InvalidArgument("MC shard_trials must be >= 1");
  }
  return Status::OK();
}

/// Per-executor scratch reused across every shard a thread runs, so shard
/// granularity costs no allocations. Reach counts are integers, which is
/// what makes the cross-shard sum order-independent and the final estimate
/// bit-identical for any thread count.
struct TrialWorkspace {
  std::vector<int64_t> reach_count;
  /// `last_sim[x] == epoch` marks x as simulated in the current trial.
  /// The epoch increments monotonically across trials *and shards*, so
  /// reuse needs no clearing.
  std::vector<int64_t> last_sim;
  std::vector<NodeId> stack;
  int64_t epoch = 0;
  // Naive-mode buffers (unused in traversal mode).
  std::vector<uint8_t> node_present;
  std::vector<uint8_t> edge_present;

  void Init(int node_count, int edge_count, McOptions::Mode mode) {
    reach_count.assign(node_count, 0);
    last_sim.assign(node_count, -1);
    stack.reserve(64);
    if (mode == McOptions::Mode::kNaive) {
      node_present.assign(node_count, 0);
      edge_present.assign(edge_count, 0);
    }
  }
};

/// Runs `trials` traversal trials (Algorithm 3.1), accumulating per-node
/// reach counts into `ws.reach_count`.
void RunTraversalTrials(const CompactGraphView& view, NodeId source,
                        int64_t trials, Rng rng, TrialWorkspace& ws) {
  for (int64_t trial = 0; trial < trials; ++trial) {
    const int64_t epoch = ++ws.epoch;
    ws.stack.clear();
    ws.last_sim[source] = epoch;
    if (rng.NextBernoulli(view.node_p[source])) {
      ++ws.reach_count[source];
      ws.stack.push_back(source);
    }
    while (!ws.stack.empty()) {
      NodeId x = ws.stack.back();
      ws.stack.pop_back();
      for (int32_t i = view.out_offset[x]; i < view.out_offset[x + 1]; ++i) {
        // One coin per edge per trial: x expands at most once per trial.
        if (!rng.NextBernoulli(view.edge_q[i])) continue;
        NodeId y = view.edge_to[i];
        if (ws.last_sim[y] == epoch) continue;
        ws.last_sim[y] = epoch;
        if (rng.NextBernoulli(view.node_p[y])) {
          ++ws.reach_count[y];
          ws.stack.push_back(y);
        }
      }
    }
  }
}

/// Runs `trials` naive trials: every element flips a coin, then a DFS over
/// the sampled subgraph counts reached-and-present nodes.
void RunNaiveTrials(const CompactGraphView& view, NodeId source,
                    int64_t trials, Rng rng, TrialWorkspace& ws) {
  const int n = static_cast<int>(view.node_p.size());
  const int m = static_cast<int>(view.edge_q.size());
  for (int64_t trial = 0; trial < trials; ++trial) {
    const int64_t epoch = ++ws.epoch;
    for (int i = 0; i < n; ++i) {
      ws.node_present[i] = rng.NextBernoulli(view.node_p[i]) ? 1 : 0;
    }
    for (int i = 0; i < m; ++i) {
      ws.edge_present[i] = rng.NextBernoulli(view.edge_q[i]) ? 1 : 0;
    }
    if (!ws.node_present[source]) continue;
    ws.stack.clear();
    ws.stack.push_back(source);
    ws.last_sim[source] = epoch;
    ++ws.reach_count[source];
    while (!ws.stack.empty()) {
      NodeId x = ws.stack.back();
      ws.stack.pop_back();
      for (int32_t i = view.out_offset[x]; i < view.out_offset[x + 1]; ++i) {
        if (!ws.edge_present[i]) continue;
        NodeId y = view.edge_to[i];
        if (ws.last_sim[y] == epoch || !ws.node_present[y]) continue;
        ws.last_sim[y] = epoch;
        ++ws.reach_count[y];
        ws.stack.push_back(y);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CSR-snapshot backend. Same trials, same coins, flat arrays, and a
// fully inlined sampler: the pointer path pays an out-of-line Rng call
// per coin, which dominates the per-edge cost of the traversal kernel.
// ---------------------------------------------------------------------------

/// xoshiro256++ inlined into the kernel, bit-compatible with util/rng.h's
/// Rng: same SplitMix64 seeding, same output function, same top-53-bit
/// double mapping, and the same "certain elements consume no draw"
/// shortcut. Any divergence from Rng breaks the pointer-vs-CSR
/// bit-identity the differential suite asserts, so it cannot rot quietly.
struct InlineRng {
  uint64_t s[4];

  explicit InlineRng(uint64_t seed) {
    for (auto& word : s) word = SplitMix64Next(seed);
  }

  inline uint64_t Next() {
    const uint64_t rotated = s[0] + s[3];
    const uint64_t result = ((rotated << 23) | (rotated >> 41)) + s[0];
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = ((s[3] << 45) | (s[3] >> 19));
    return result;
  }

  inline bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }
};

/// Probabilities pre-scaled to 53-bit integer thresholds so the kernel
/// compares the raw 53-bit draw directly: for integer x < 2^53 and
/// p in (0,1), (double)x * 2^-53 < p  ⟺  x < ceil(p * 2^53) — both
/// sides are exact (power-of-two scaling is lossless and x has ≤ 53
/// bits), so the accept/reject decision is bit-identical to
/// Rng::NextBernoulli. Certain and impossible elements get sentinel
/// values that preserve the "no draw consumed" shortcut. On the Fig. 7
/// workload 76% of edges are certain, so the hot loop's common case
/// collapses to one integer compare with no RNG advance.
constexpr uint64_t kThreshNever = 0;                     // p <= 0: false, no draw
constexpr uint64_t kThreshCertain = ~uint64_t{0};        // p >= 1: true, no draw

inline uint64_t BernoulliThreshold(double p) {
  if (p <= 0.0) return kThreshNever;
  if (p >= 1.0) return kThreshCertain;
  // ceil(p * 2^53); p < 1 so the product is < 2^53 and never collides
  // with kThreshCertain. p > 0 so it is >= 1 and never kThreshNever.
  return static_cast<uint64_t>(std::ceil(p * 9007199254740992.0));
}

/// Draw-consuming path only; callers must have peeled the sentinels.
inline bool DrawAgainst(InlineRng& rng, uint64_t threshold) {
  return (rng.Next() >> 11) < threshold;
}

/// Per-call threshold tables mirroring node_p / out_q, built once before
/// the shard fan-out and shared read-only by every worker.
struct CsrThresholds {
  std::vector<uint64_t> node;
  std::vector<uint64_t> edge;

  explicit CsrThresholds(const CsrSnapshot& csr) {
    node.reserve(csr.node_p.size());
    for (double p : csr.node_p) node.push_back(BernoulliThreshold(p));
    edge.reserve(csr.out_q.size());
    for (double q : csr.out_q) edge.push_back(BernoulliThreshold(q));
  }
};

/// Dense scratch for the CSR kernels; arrays are sized to the snapshot's
/// node count (no tombstone slack), so the per-trial working set is as
/// small as the kept subgraph.
struct CsrTrialWorkspace {
  std::vector<int64_t> reach_count;
  std::vector<int64_t> last_sim;
  std::vector<uint32_t> stack;
  int64_t epoch = 0;
  std::vector<uint8_t> node_present;
  std::vector<uint8_t> edge_present;

  void Init(uint32_t node_count, uint32_t edge_count, McOptions::Mode mode) {
    reach_count.assign(node_count, 0);
    last_sim.assign(node_count, -1);
    stack.reserve(64);
    if (mode == McOptions::Mode::kNaive) {
      node_present.assign(node_count, 0);
      edge_present.assign(edge_count, 0);
    }
  }
};

void RunCsrTraversalTrials(const CsrSnapshot& csr,
                           const CsrThresholds& thresholds, uint32_t source,
                           int64_t trials, InlineRng rng,
                           CsrTrialWorkspace& ws) {
  const uint64_t* const node_t = thresholds.node.data();
  const uint64_t* const edge_t = thresholds.edge.data();
  const uint32_t* const out_offset = csr.out_offset.data();
  const uint32_t* const out_to = csr.out_to.data();
  for (int64_t trial = 0; trial < trials; ++trial) {
    const int64_t epoch = ++ws.epoch;
    ws.stack.clear();
    ws.last_sim[source] = epoch;
    const uint64_t source_t = node_t[source];
    if (source_t == kThreshCertain ||
        (source_t != kThreshNever && DrawAgainst(rng, source_t))) {
      ++ws.reach_count[source];
      ws.stack.push_back(source);
    }
    while (!ws.stack.empty()) {
      const uint32_t x = ws.stack.back();
      ws.stack.pop_back();
      const uint32_t end = out_offset[x + 1];
      for (uint32_t i = out_offset[x]; i < end; ++i) {
        const uint64_t et = edge_t[i];
        if (et != kThreshCertain &&
            (et == kThreshNever || !DrawAgainst(rng, et))) {
          continue;
        }
        const uint32_t y = out_to[i];
        if (ws.last_sim[y] == epoch) continue;
        ws.last_sim[y] = epoch;
        const uint64_t nt = node_t[y];
        if (nt == kThreshCertain ||
            (nt != kThreshNever && DrawAgainst(rng, nt))) {
          ++ws.reach_count[y];
          ws.stack.push_back(y);
        }
      }
    }
  }
}

void RunCsrNaiveTrials(const CsrSnapshot& csr,
                       const CsrThresholds& thresholds, uint32_t source,
                       int64_t trials, InlineRng rng,
                       CsrTrialWorkspace& ws) {
  const uint32_t n = csr.num_nodes();
  const uint32_t m = csr.num_edges();
  const uint64_t* const node_t = thresholds.node.data();
  const uint64_t* const edge_t = thresholds.edge.data();
  for (int64_t trial = 0; trial < trials; ++trial) {
    const int64_t epoch = ++ws.epoch;
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t t = node_t[i];
      ws.node_present[i] =
          (t == kThreshCertain ||
           (t != kThreshNever && DrawAgainst(rng, t)))
              ? 1
              : 0;
    }
    for (uint32_t i = 0; i < m; ++i) {
      const uint64_t t = edge_t[i];
      ws.edge_present[i] =
          (t == kThreshCertain ||
           (t != kThreshNever && DrawAgainst(rng, t)))
              ? 1
              : 0;
    }
    if (!ws.node_present[source]) continue;
    ws.stack.clear();
    ws.stack.push_back(source);
    ws.last_sim[source] = epoch;
    ++ws.reach_count[source];
    while (!ws.stack.empty()) {
      const uint32_t x = ws.stack.back();
      ws.stack.pop_back();
      const uint32_t end = csr.out_offset[x + 1];
      for (uint32_t i = csr.out_offset[x]; i < end; ++i) {
        if (!ws.edge_present[i]) continue;
        const uint32_t y = csr.out_to[i];
        if (ws.last_sim[y] == epoch || !ws.node_present[y]) continue;
        ws.last_sim[y] = epoch;
        ++ws.reach_count[y];
        ws.stack.push_back(y);
      }
    }
  }
}

/// The seed-era pointer-view estimator, byte-for-byte the original hot
/// path — now the differential reference backend.
Result<McEstimate> EstimateOnPointerView(const QueryGraph& query_graph,
                                         const McOptions& options) {
  CompactGraphView view = CompactGraphView::FromGraph(query_graph.graph);
  const int n = view.node_count();
  const int m = static_cast<int>(view.edge_q.size());

  // Fixed shard schedule: shard i runs shards[i] trials on RNG stream
  // (seed, i). Which thread runs which shard never affects the counts.
  Result<std::vector<int64_t>> plan =
      PlanTrialShards(options.trials, options.shard_trials);
  if (!plan.ok()) return plan.status();
  const std::vector<int64_t>& shards = plan.value();

  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Global();
  const int max_parallelism = options.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options.num_threads;

  std::vector<TrialWorkspace> workspaces(pool.slot_count());
  pool.ParallelFor(
      static_cast<int64_t>(shards.size()),
      [&](int slot, int64_t shard) {
        TrialWorkspace& ws = workspaces[slot];
        if (ws.reach_count.empty()) ws.Init(n, m, options.mode);
        Rng rng = Rng::ForStream(options.seed, static_cast<uint64_t>(shard));
        if (options.mode == McOptions::Mode::kTraversal) {
          RunTraversalTrials(view, query_graph.source, shards[shard], rng, ws);
        } else {
          RunNaiveTrials(view, query_graph.source, shards[shard], rng, ws);
        }
      },
      max_parallelism);

  McEstimate estimate;
  estimate.trials = options.trials;
  estimate.scores.assign(n, 0.0);
  std::vector<int64_t> totals(n, 0);
  for (const TrialWorkspace& ws : workspaces) {
    if (ws.reach_count.empty()) continue;
    for (int i = 0; i < n; ++i) totals[i] += ws.reach_count[i];
  }
  for (int i = 0; i < n; ++i) {
    estimate.scores[i] = static_cast<double>(totals[i]) /
                         static_cast<double>(options.trials);
  }
  return estimate;
}

}  // namespace

Result<McShardTallies> TallyReliabilityMcShards(
    const CsrQuerySnapshot& snapshot, const McOptions& options,
    int64_t shard_begin, int64_t shard_end) {
  BIORANK_RETURN_IF_ERROR(ValidateMcOptions(options));
  if (snapshot.source == kCsrInvalid ||
      snapshot.source >= snapshot.csr.num_nodes()) {
    return Status::InvalidArgument("MC snapshot has no valid source node");
  }
  const CsrSnapshot& csr = snapshot.csr;
  const uint32_t n = csr.num_nodes();
  const uint32_t m = csr.num_edges();

  Result<std::vector<int64_t>> plan =
      PlanTrialShards(options.trials, options.shard_trials);
  if (!plan.ok()) return plan.status();
  const std::vector<int64_t>& shards = plan.value();
  if (shard_begin < 0 || shard_end < shard_begin ||
      shard_end > static_cast<int64_t>(shards.size())) {
    return Status::OutOfRange(
        "MC shard range [" + std::to_string(shard_begin) + ", " +
        std::to_string(shard_end) + ") is outside the " +
        std::to_string(shards.size()) + "-shard schedule");
  }
  const int64_t range = shard_end - shard_begin;

  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Global();
  const int max_parallelism = options.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options.num_threads;

  const CsrThresholds thresholds(csr);
  std::vector<CsrTrialWorkspace> workspaces(pool.slot_count());
  pool.ParallelFor(
      range,
      [&](int slot, int64_t offset) {
        const int64_t shard = shard_begin + offset;
        CsrTrialWorkspace& ws = workspaces[slot];
        if (ws.reach_count.empty()) ws.Init(n, m, options.mode);
        // Same per-shard stream as Rng::ForStream(seed, shard).
        InlineRng rng(DeriveStreamSeed(options.seed,
                                       static_cast<uint64_t>(shard)));
        if (options.mode == McOptions::Mode::kTraversal) {
          RunCsrTraversalTrials(csr, thresholds, snapshot.source,
                                shards[shard], rng, ws);
        } else {
          RunCsrNaiveTrials(csr, thresholds, snapshot.source, shards[shard],
                            rng, ws);
        }
      },
      max_parallelism);

  // Dense integer totals, then one expansion back to original NodeId
  // indexing (dead nodes count 0) so callers are backend-agnostic.
  std::vector<int64_t> totals(n, 0);
  for (const CsrTrialWorkspace& ws : workspaces) {
    if (ws.reach_count.empty()) continue;
    for (uint32_t i = 0; i < n; ++i) totals[i] += ws.reach_count[i];
  }
  McShardTallies tallies;
  for (int64_t shard = shard_begin; shard < shard_end; ++shard) {
    tallies.trials += shards[shard];
  }
  tallies.counts.assign(static_cast<size_t>(csr.orig_capacity()), 0);
  for (uint32_t i = 0; i < n; ++i) {
    tallies.counts[static_cast<size_t>(csr.orig_id[i])] = totals[i];
  }
  return tallies;
}

Result<McEstimate> EstimateReliabilityMcOnSnapshot(
    const CsrQuerySnapshot& snapshot, const McOptions& options) {
  // One full pass over the shard schedule. Expressing the one-shot
  // estimator through the resumable tally keeps the two structurally
  // incapable of drifting: an incremental refinement that covers the
  // whole schedule sums exactly these integers.
  Result<std::vector<int64_t>> plan =
      PlanTrialShards(options.trials, options.shard_trials);
  if (!plan.ok()) return plan.status();
  Result<McShardTallies> tallies = TallyReliabilityMcShards(
      snapshot, options, 0, static_cast<int64_t>(plan.value().size()));
  if (!tallies.ok()) return tallies.status();
  McEstimate estimate;
  estimate.trials = options.trials;
  estimate.scores.assign(tallies.value().counts.size(), 0.0);
  for (size_t i = 0; i < estimate.scores.size(); ++i) {
    estimate.scores[i] = static_cast<double>(tallies.value().counts[i]) /
                         static_cast<double>(options.trials);
  }
  return estimate;
}

Result<McEstimate> EstimateReliabilityMc(const QueryGraph& query_graph,
                                         const McOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  BIORANK_RETURN_IF_ERROR(ValidateMcOptions(options));
  if (options.backend == McOptions::Backend::kPointerView) {
    return EstimateOnPointerView(query_graph, options);
  }
  Result<CsrQuerySnapshot> snapshot = BuildCsrQuerySnapshot(query_graph);
  if (!snapshot.ok()) return snapshot.status();
  return EstimateReliabilityMcOnSnapshot(snapshot.value(), options);
}

}  // namespace biorank
