// The bounds-driven ranking service: top-k values must agree exactly
// with the exact per-answer reliabilities where those are computable,
// and the service output must be bit-identical with the cache on or
// off, at 1 or k threads, and across repeated requests.

#include "serve/ranking_service.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/query_graph.h"
#include "core/reliability_exact.h"
#include "testing/random_graphs.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace biorank::serve {
namespace {

using biorank::testing::MakeRandomLayeredDag;
using biorank::testing::RandomDagOptions;

/// (node, reliability) pairs for exact output comparison. Doubles are
/// compared with ==: the service's determinism contract is bit-identity.
std::vector<std::pair<NodeId, double>> Flatten(const TopKResult& result) {
  std::vector<std::pair<NodeId, double>> out;
  for (const RankedCandidate& c : result.top) {
    out.emplace_back(c.node, c.reliability);
  }
  return out;
}

std::vector<QueryGraph> MakeWorkload(int count, uint64_t seed) {
  Rng rng(seed);
  RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 4;
  options.answers = 6;
  std::vector<QueryGraph> graphs;
  for (int i = 0; i < count; ++i) {
    graphs.push_back(MakeRandomLayeredDag(rng, options));
  }
  return graphs;
}

TEST(RankingServiceTest, FullRankingMatchesExactReliability) {
  for (const QueryGraph& g :
       {MakeFig4aSerialParallel(), MakeFig4bWheatstoneBridge()}) {
    RankingService service;
    Result<TopKResult> result =
        service.RankTopK(g, static_cast<int>(g.answers.size()));
    ASSERT_TRUE(result.ok()) << result.status();
    Result<std::vector<double>> exact = ExactReliabilityAllAnswers(g);
    ASSERT_TRUE(exact.ok());
    ASSERT_EQ(result.value().top.size(), g.answers.size());
    for (const RankedCandidate& c : result.value().top) {
      for (size_t i = 0; i < g.answers.size(); ++i) {
        if (g.answers[i] == c.node) {
          EXPECT_NEAR(c.reliability, exact.value()[i], 1e-12)
              << "answer node " << c.node;
          EXPECT_TRUE(c.exact);
        }
      }
    }
  }
}

TEST(RankingServiceTest, TopKIsSortedAndTruncated) {
  Rng rng(7);
  RandomDagOptions options;
  options.answers = 8;
  QueryGraph g = MakeRandomLayeredDag(rng, options);
  RankingService service;
  Result<TopKResult> all = service.RankTopK(g, 8);
  ASSERT_TRUE(all.ok()) << all.status();
  Result<TopKResult> top3 = service.RankTopK(g, 3);
  ASSERT_TRUE(top3.ok());
  ASSERT_EQ(top3.value().top.size(), 3u);
  for (size_t i = 1; i < all.value().top.size(); ++i) {
    EXPECT_GE(all.value().top[i - 1].reliability,
              all.value().top[i].reliability);
  }
  // The truncated request returns a prefix of the full ranking.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top3.value().top[i].node, all.value().top[i].node);
    EXPECT_EQ(top3.value().top[i].reliability,
              all.value().top[i].reliability);
  }
}

TEST(RankingServiceTest, BitIdenticalWithCacheOnAndOff) {
  std::vector<QueryGraph> workload = MakeWorkload(6, 11);
  RankingServiceOptions with_cache;
  RankingServiceOptions without_cache;
  without_cache.enable_cache = false;
  RankingService cached(with_cache);
  RankingService uncached(without_cache);
  for (int pass = 0; pass < 2; ++pass) {
    for (const QueryGraph& g : workload) {
      Result<TopKResult> a = cached.RankTopK(g, 3);
      Result<TopKResult> b = uncached.RankTopK(g, 3);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(Flatten(a.value()), Flatten(b.value()));
    }
  }
  // The warm cache actually served hits; the uncached service did not.
  EXPECT_GT(cached.cache().Stats().hits, 0u);
  EXPECT_EQ(uncached.cache().Stats().hits + uncached.cache().Stats().misses,
            0u);
}

TEST(RankingServiceTest, BitIdenticalAcrossThreadCounts) {
  std::vector<QueryGraph> workload = MakeWorkload(4, 23);
  RankingServiceOptions inline_options;
  inline_options.num_threads = 1;
  inline_options.exact_max_edges = 0;  // Force Monte Carlo on survivors.
  RankingServiceOptions pooled_options = inline_options;
  pooled_options.num_threads = 4;
  ThreadPool pool(3);
  pooled_options.pool = &pool;
  RankingService inline_service(inline_options);
  RankingService pooled_service(pooled_options);
  bool saw_mc = false;
  for (const QueryGraph& g : workload) {
    Result<TopKResult> a = inline_service.RankTopK(g, 3);
    Result<TopKResult> b = pooled_service.RankTopK(g, 3);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(Flatten(a.value()), Flatten(b.value()));
    saw_mc = saw_mc || a.value().stats.monte_carlo > 0;
  }
  EXPECT_TRUE(saw_mc) << "workload never exercised the MC path";
}

TEST(RankingServiceTest, SecondRequestIsServedFromTheCache) {
  QueryGraph g = MakeFig4aSerialParallel();
  RankingService service;
  Result<TopKResult> first = service.RankTopK(g, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().stats.cache_hits, 0);
  EXPECT_GT(first.value().stats.cache_misses, 0);
  Result<TopKResult> second = service.RankTopK(g, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().stats.cache_misses, 0);
  EXPECT_GT(second.value().stats.cache_hits, 0);
  EXPECT_EQ(Flatten(first.value()), Flatten(second.value()));
}

TEST(RankingServiceTest, BoundsPruneBelowTheCut) {
  // A star of answers with well-separated edge probabilities: with k=2
  // the weak answers' upper bounds sit below the strong answers' lower
  // bounds, so they must be pruned without exact/MC work.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  std::vector<NodeId> answers;
  for (int i = 0; i < 8; ++i) {
    NodeId t = b.Node(1.0);
    b.Edge(s, t, i < 2 ? 0.9 : 0.1 + 0.01 * i);
    answers.push_back(t);
  }
  QueryGraph g = std::move(b).Build(answers);
  RankingService service;
  Result<TopKResult> result = service.RankTopK(g, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().top.size(), 2u);
  EXPECT_EQ(result.value().top[0].node, answers[0]);
  EXPECT_EQ(result.value().top[1].node, answers[1]);
  EXPECT_DOUBLE_EQ(result.value().top[0].reliability, 0.9);
  EXPECT_GT(result.value().stats.pruned, 0);
  EXPECT_GT(result.value().stats.PrunedFraction(), 0.0);
}

TEST(RankingServiceTest, IsomorphicAnswersShareOneResolution) {
  // Two answers with identical evidence shape: one canonical key, one
  // computation, and the duplicate lookup counts as a hit.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId m1 = b.Node(0.9);
  NodeId m2 = b.Node(0.9);
  NodeId t1 = b.Node(0.8);
  NodeId t2 = b.Node(0.8);
  b.Edge(s, m1, 0.7);
  b.Edge(s, m2, 0.7);
  b.Edge(m1, t1, 0.6);
  b.Edge(m2, t2, 0.6);
  QueryGraph g = std::move(b).Build({t1, t2});
  RankingService service;
  Result<TopKResult> result = service.RankTopK(g, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.cache_hits, 1);
  EXPECT_EQ(result.value().stats.cache_misses, 1);
  ASSERT_EQ(result.value().top.size(), 2u);
  EXPECT_EQ(result.value().top[0].reliability,
            result.value().top[1].reliability);
}

TEST(RankingServiceTest, EmptyAnswerSetReturnsEmptyResult) {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId m = b.Node(0.9);
  b.Edge(s, m, 0.5);
  QueryGraph g = std::move(b).Build({});
  RankingService service;
  Result<TopKResult> result = service.RankTopK(g, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().top.empty());
  EXPECT_EQ(result.value().stats.candidates, 0);
}

TEST(RankingServiceTest, UnreachableAnswerHasEmptyEvidenceSubgraph) {
  // An answer with no path from the query node: its query-relevant
  // subgraph is empty, its reliability is exactly 0, and it must still
  // appear in a full ranking (below every supported answer).
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId supported = b.Node(1.0);
  NodeId stranded = b.Node(1.0);
  b.Edge(s, supported, 0.7);
  QueryGraph g = std::move(b).Build({supported, stranded});
  RankingService service;
  Result<TopKResult> result = service.RankTopK(g, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().top.size(), 2u);
  EXPECT_EQ(result.value().top[0].node, supported);
  EXPECT_DOUBLE_EQ(result.value().top[0].reliability, 0.7);
  EXPECT_EQ(result.value().top[1].node, stranded);
  EXPECT_DOUBLE_EQ(result.value().top[1].reliability, 0.0);
  EXPECT_TRUE(result.value().top[1].exact);
}

TEST(RankingServiceTest, RankPreparedRejectsNullCanonicals) {
  RankingService service;
  std::vector<PreparedCandidate> prepared(1);
  prepared[0].node = 1;
  EXPECT_EQ(service.RankPrepared(prepared, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RankingServiceTest, InvalidRequestsAreRejected) {
  QueryGraph g = MakeFig4aSerialParallel();
  RankingService service;
  EXPECT_FALSE(service.RankTopK(g, 0).ok());
  // k larger than the answer set is clamped, not an error.
  Result<TopKResult> clamped = service.RankTopK(g, 99);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped.value().top.size(), g.answers.size());
}

}  // namespace
}  // namespace biorank::serve
