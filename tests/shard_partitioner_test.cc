#include "shard/partitioner.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/query_graph.h"

namespace biorank::shard {
namespace {

TEST(PartitionerTest, DeterministicAcrossInstances) {
  PartitionerOptions options;
  options.num_shards = 4;
  Partitioner a(options);
  Partitioner b(options);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "GO:" + std::to_string(1000 + i);
    EXPECT_EQ(a.ShardOf(key), b.ShardOf(key)) << key;
    EXPECT_LT(a.ShardOf(key), 4u);
  }
}

TEST(PartitionerTest, EveryShardReceivesKeys) {
  PartitionerOptions options;
  options.num_shards = 4;
  Partitioner partitioner(options);
  std::set<uint32_t> hit;
  for (int i = 0; i < 200; ++i) {
    hit.insert(partitioner.ShardOf("key" + std::to_string(i)));
  }
  // 200 keys over 4 shards: a hash that misses a shard entirely is
  // either broken or catastrophically biased.
  EXPECT_EQ(hit.size(), 4u);
}

TEST(PartitionerTest, SaltChangesPlacement) {
  PartitionerOptions a_options;
  a_options.num_shards = 8;
  PartitionerOptions b_options = a_options;
  b_options.salt = a_options.salt + 1;
  Partitioner a(a_options);
  Partitioner b(b_options);
  int moved = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (a.ShardOf(key) != b.ShardOf(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(PartitionerTest, ZeroShardsClampsToOne) {
  PartitionerOptions options;
  options.num_shards = 0;
  Partitioner partitioner(options);
  EXPECT_EQ(partitioner.num_shards(), 1u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(partitioner.ShardOf("key" + std::to_string(i)), 0u);
  }
}

TEST(PartitionerTest, PartitionAnswersIsAnOrderedDisjointCover) {
  QueryGraphBuilder builder;
  std::vector<NodeId> answers;
  for (int i = 0; i < 24; ++i) {
    NodeId node = builder.Node(0.5, "ans" + std::to_string(i));
    builder.Edge(builder.Source(), node, 0.5);
    answers.push_back(node);
  }
  QueryGraph graph = std::move(builder).Build(answers);

  PartitionerOptions options;
  options.num_shards = 3;
  Partitioner partitioner(options);
  std::vector<std::vector<NodeId>> slices = partitioner.PartitionAnswers(graph);
  ASSERT_EQ(slices.size(), 3u);

  std::set<NodeId> seen;
  size_t total = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    for (size_t i = 0; i < slices[s].size(); ++i) {
      NodeId node = slices[s][i];
      // Placement agrees with the key hash.
      EXPECT_EQ(partitioner.ShardOf(graph.graph.node(node).label), s);
      // Disjoint: no answer is owned twice.
      EXPECT_TRUE(seen.insert(node).second);
      // Answer order is preserved within a slice (node ids were created
      // in answer order above).
      if (i > 0) {
        EXPECT_LT(slices[s][i - 1], node);
      }
      ++total;
    }
  }
  // Cover: every answer is owned once.
  EXPECT_EQ(total, graph.answers.size());
}

}  // namespace
}  // namespace biorank::shard
