// Additive relevance diffusion with flow thresholds (Section 3.3) -
// the paper's "Diff" score. Each node splits its relevance across
// out-edges; the inner flow equation is solved analytically or by
// bisection.

#ifndef BIORANK_CORE_DIFFUSION_H_
#define BIORANK_CORE_DIFFUSION_H_

#include <vector>

#include "core/csr_snapshot.h"
#include "core/propagation.h"
#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// How the implicit per-node inflow equation of the diffusion semantics is
/// solved (the `solve` call of Algorithm 3.3).
enum class DiffusionInnerSolver {
  /// Exact solution in O(d log d) per node: sort parent scores, then the
  /// fixpoint is t = (sum_{i<=m} r_i q_i) / (1 + sum_{i<=m} q_i) for the
  /// unique prefix m consistent with r_m >= t >= r_{m+1}.
  kAnalytic,
  /// Bisection on g(t) = f(t) - t (g is strictly decreasing), the robust
  /// form of the paper's inner iteration. Kept for the ablation benchmark.
  kBisection,
};

/// Options for relevance diffusion (Algorithm 3.3).
struct DiffusionOptions {
  /// Graph substrate of the Jacobi sweep. The parent lists both backends
  /// enumerate are identical (ascending original EdgeId), so every score,
  /// iteration count, and convergence flag is bit-identical between them
  /// (pinned by tests/core_csr_differential_test.cc).
  enum class Backend {
    kCsrSnapshot,  ///< Flat transposed-CSR sweep (default, hot path).
    kPointerView,  ///< Seed-era CompactGraphView sweep, the reference.
  };

  int max_iterations = 200;     ///< Outer synchronous iterations cap.
  double tolerance = 1e-10;     ///< Outer convergence threshold.
  DiffusionInnerSolver solver = DiffusionInnerSolver::kAnalytic;
  int bisection_steps = 64;     ///< Inner iterations for kBisection.
  Backend backend = Backend::kCsrSnapshot;
};

/// Relevance diffusion (Section 3.3): relevance flows from x to y only
/// while r(x) exceeds y's inflow level r_bar(y), and inflows add instead
/// of independent-OR:
///   r_bar(y) = sum_{(x,y) in E} max[(r(x) - r_bar(y)) * q(x,y), 0]
///   r(y)     = r_bar(y) * p(y)
/// The inflow equation is implicit in r_bar(y); each outer iteration
/// solves it per node from the previous iteration's parent scores. Favours
/// few strong paths over many weak ones and penalizes long paths.
Result<IterativeScores> Diffuse(const QueryGraph& query_graph,
                                const DiffusionOptions& options = {});

/// Diffusion on a prebuilt CSR query snapshot, skipping the per-call
/// snapshot build. `options.backend` is ignored (the snapshot *is* the
/// backend). Scores come back indexed by the snapshot's original NodeIds
/// (dropped nodes score 0), exactly like Diffuse.
Result<IterativeScores> DiffuseOnSnapshot(const CsrQuerySnapshot& snapshot,
                                          const DiffusionOptions& options = {});

/// Solves t = sum_i max((r[i] - t) * q[i], 0) for the unique t >= 0.
/// Exposed for tests and the inner-solver ablation benchmark.
double SolveDiffusionInflow(const std::vector<double>& parent_scores,
                            const std::vector<double>& edge_probs,
                            DiffusionInnerSolver solver,
                            int bisection_steps = 64);

}  // namespace biorank

#endif  // BIORANK_CORE_DIFFUSION_H_
