// Reproduces the Section 5 discussion claim ("Divergent and non-workflow
// schemas"): when entries from different databases cannot be linked, the
// query graph degenerates to a divergent star — every answer has exactly
// one supporting path. InEdge and PathCount then see identical counts
// everywhere and cannot rank at all (one all-tied group = the random
// baseline), while the probabilistic methods still order answers by the
// strength of their single path.

#include <iostream>

#include "bench_json.h"
#include "bench_util.h"
#include "core/ranking.h"
#include "eval/experiment_stats.h"
#include "eval/tied_ap.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

/// A divergent star: query -> intermediate -> answer, one chain per
/// answer, no convergence anywhere. Relevant answers get stronger chains.
QueryGraph MakeStar(Rng& rng, int num_answers, double relevant_fraction,
                    std::unordered_set<NodeId>& relevant) {
  QueryGraphBuilder b;
  std::vector<NodeId> answers;
  for (int i = 0; i < num_answers; ++i) {
    bool is_relevant = rng.NextDouble() < relevant_fraction;
    double strength = is_relevant ? rng.NextUniform(0.6, 0.95)
                                  : rng.NextUniform(0.05, 0.5);
    NodeId mid = b.Node(rng.NextUniform(0.7, 1.0));
    NodeId answer = b.Node(1.0, "ans" + std::to_string(i));
    b.Edge(b.Source(), mid, strength);
    b.Edge(mid, answer, rng.NextUniform(0.7, 1.0));
    answers.push_back(answer);
    if (is_relevant) relevant.insert(answer);
  }
  return std::move(b).Build(answers);
}

}  // namespace

int main() {
  const int repetitions = bench::Repetitions(20);
  std::cout << "=== Divergent star schemas (Section 5 discussion) ===\n"
            << "Every answer has exactly one evidence path; counting\n"
            << "measures cannot rank (" << repetitions << " random stars, "
            << "40 answers, ~30% relevant).\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport report("divergent_schema");
  Rng rng(0xD17E);
  Ranker ranker;
  ApExperiment experiment;
  for (int rep = 0; rep < repetitions; ++rep) {
    std::unordered_set<NodeId> relevant;
    QueryGraph g = MakeStar(rng, 40, 0.3, relevant);
    if (relevant.empty()) continue;
    for (RankingMethod method : AllRankingMethods()) {
      Result<std::vector<RankedAnswer>> ranked = ranker.Rank(g, method);
      if (!ranked.ok()) continue;
      Result<double> ap = ApForRanking(ranked.value(), relevant);
      if (ap.ok()) experiment.Record(RankingMethodName(method), ap.value());
    }
    // Random baseline for the same star.
    Result<double> random = ExpectedApWithTies(
        {{static_cast<int>(g.answers.size()),
          static_cast<int>(relevant.size())}});
    if (random.ok()) experiment.Record("Random", random.value());
  }

  TextTable table({"Method", "Mean AP", "Stdv"});
  CsvWriter csv({"method", "mean_ap", "stdev"});
  for (const std::string& condition : experiment.Conditions()) {
    SampleStats stats = experiment.Summary(condition);
    table.AddRow({condition, FormatDouble(stats.mean, 2),
                  FormatDouble(stats.stddev, 2)});
    csv.AddRow({condition, FormatDouble(stats.mean, 4),
                FormatDouble(stats.stddev, 4)});
    report.AddRow({{"method", condition},
                   {"mean_ap", stats.mean},
                   {"stdev", stats.stddev}});
  }
  table.Print(std::cout);
  std::cout << "\nExpected: InEdge and PathCount equal the random baseline "
               "exactly (all answers\ntied at one path / one in-edge); "
               "Rel / Prop / Diff rank by path strength and\nstay far "
               "above it — 'taking into account the strength of each "
               "individual path\nis the only way to rank results'.\n";
  bench::MaybeWriteCsv(csv, "divergent_schema");
  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("repetitions", repetitions);
  return report.Write().ok() ? 0 : 1;
}
