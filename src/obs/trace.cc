#include "obs/trace.h"

#include <algorithm>

namespace biorank::obs {

namespace {

struct ThreadBinding {
  Trace* trace = nullptr;
  int span = -1;
};

thread_local ThreadBinding g_binding;

uint64_t NanosSince(std::chrono::steady_clock::time_point epoch) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace

Trace::Trace(uint64_t id) : id_(id), epoch_(std::chrono::steady_clock::now()) {}

int Trace::BeginSpan(const std::string& name, int parent) {
  const uint64_t start = NanosSince(epoch_);
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = name;
  span.parent =
      parent >= 0 && parent < static_cast<int>(spans_.size()) ? parent : -1;
  span.start_ns = start;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::EndSpan(int index) {
  const uint64_t now = NanosSince(epoch_);
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  Span& span = spans_[static_cast<size_t>(index)];
  span.duration_ns = now > span.start_ns ? now - span.start_ns : 0;
}

void Trace::AddCounter(int index, const std::string& key, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<size_t>(index)].counters.emplace_back(key, value);
}

std::vector<Span> Trace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Trace::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

Trace* CurrentTrace() { return g_binding.trace; }
int CurrentSpanIndex() { return g_binding.span; }

SpanScope::SpanScope(Trace* trace, const std::string& name) : trace_(trace) {
  if (!trace_) return;
  // Nest under the thread's current span only if it belongs to the
  // same trace; a different (or no) trace on this thread roots.
  const int parent = g_binding.trace == trace_ ? g_binding.span : -1;
  index_ = trace_->BeginSpan(name, parent);
  Bind();
}

SpanScope::SpanScope(Trace* trace, const std::string& name, int parent)
    : trace_(trace) {
  if (!trace_) return;
  index_ = trace_->BeginSpan(name, parent);
  Bind();
}

void SpanScope::Bind() {
  prev_trace_ = g_binding.trace;
  prev_index_ = g_binding.span;
  g_binding.trace = trace_;
  g_binding.span = index_;
}

SpanScope::~SpanScope() { End(); }

void SpanScope::End() {
  if (!trace_) return;
  trace_->EndSpan(index_);
  g_binding.trace = prev_trace_;
  g_binding.span = prev_index_;
  trace_ = nullptr;
}

void SpanScope::Counter(const std::string& key, int64_t value) {
  if (!trace_) return;
  trace_->AddCounter(index_, key, value);
}

SlowQueryLog::SlowQueryLog(size_t capacity, double threshold_s)
    : capacity_(std::max<size_t>(1, capacity)), threshold_s_(threshold_s) {}

bool SlowQueryLog::Offer(const std::string& entry_point, const Trace& trace,
                         double total_s) {
  if (threshold_s_ <= 0.0) return false;
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++offered_;
    if (total_s < threshold_s_) return false;
  }
  // Copy the span tree outside our own lock (Trace has its own).
  spans = trace.Spans();
  std::lock_guard<std::mutex> lock(mu_);
  ++captured_;
  CapturedTrace captured;
  captured.id = trace.id();
  captured.entry_point = entry_point;
  captured.total_s = total_s;
  captured.spans = std::move(spans);
  ring_.push_back(std::move(captured));
  while (ring_.size() > capacity_) ring_.pop_front();
  return true;
}

std::vector<CapturedTrace> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CapturedTrace>(ring_.begin(), ring_.end());
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t SlowQueryLog::offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offered_;
}

uint64_t SlowQueryLog::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

}  // namespace biorank::obs
