// Noise model that turns gold-standard annotations into the
// probabilistic evidence records the simulated sources serve.

#ifndef BIORANK_DATAGEN_EVIDENCE_MODEL_H_
#define BIORANK_DATAGEN_EVIDENCE_MODEL_H_

#include "schema/transforms.h"
#include "util/rng.h"

namespace biorank {

/// Samples the attribute values (status codes, evidence codes, e-values)
/// that the simulated sources attach to their records. The distributions
/// encode the paper's Figure 9 structure: well-known facts carry redundant
/// moderate evidence, recently published facts carry one very strong
/// record, noise carries weak records.
struct EvidenceModel {
  /// log10 e-value ranges (uniform within each).
  double true_hit_log10_min = -200.0;   ///< Same-family BLAST/HMM hits.
  double true_hit_log10_max = -60.0;
  double weak_hit_log10_min = -30.0;    ///< Spurious cross-family hits.
  double weak_hit_log10_max = -4.0;
  double strong_hit_log10_min = -299.0; ///< Recently published strong hits.
  double strong_hit_log10_max = -285.0;

  /// Status code of a curated gene annotation (mostly Reviewed/Validated).
  GeneStatus SampleCuratedStatus(Rng& rng) const;

  /// Status code of a background (less-studied) protein's curated
  /// annotation — skewed toward Provisional/Predicted, which keeps
  /// homology-transferred evidence individually weak (Figure 9a:
  /// redundant, not strong).
  GeneStatus SampleBackgroundStatus(Rng& rng) const;

  /// Status code of a computationally predicted annotation.
  GeneStatus SamplePredictedStatus(Rng& rng) const;

  /// Evidence code of a high-quality experimental GO annotation.
  EvidenceCode SampleStrongEvidence(Rng& rng) const;

  /// Evidence code of a reliable curated GO annotation (mixed quality).
  EvidenceCode SampleCuratedEvidence(Rng& rng) const;

  /// Evidence code of a background protein's GO annotation (mostly
  /// sequence-similarity and electronic inference).
  EvidenceCode SampleBackgroundEvidence(Rng& rng) const;

  /// Evidence code of an electronically inferred annotation.
  EvidenceCode SampleWeakEvidence(Rng& rng) const;

  /// e-value of a genuine homology hit.
  double SampleTrueHitEValue(Rng& rng) const;

  /// e-value of a spurious hit.
  double SampleWeakHitEValue(Rng& rng) const;

  /// e-value of an exceptionally strong hit (recent-discovery evidence).
  double SampleStrongHitEValue(Rng& rng) const;
};

}  // namespace biorank

#endif  // BIORANK_DATAGEN_EVIDENCE_MODEL_H_
