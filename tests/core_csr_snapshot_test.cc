// Structural invariants of the flat CSR snapshot (core/csr_snapshot.h):
// offset monotonicity, degree accounting, id-mapping round trips,
// rebuild idempotence, and equivalence of the kept-mask restriction with
// the pointer-graph induced subgraph.

#include "core/csr_snapshot.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/graph_algo.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

/// (from, to, q-bits) triples of every alive edge, sorted — the
/// order-insensitive adjacency content of a graph or snapshot.
std::vector<std::tuple<NodeId, NodeId, double>> GraphEdgeMultiset(
    const ProbabilisticEntityGraph& graph) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.IsValidEdge(e)) continue;
    edges.emplace_back(graph.edge(e).from, graph.edge(e).to, graph.edge(e).q);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::vector<std::tuple<NodeId, NodeId, double>> CsrEdgeMultiset(
    const CsrSnapshot& csr) {
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
    for (uint32_t i = csr.out_offset[d]; i < csr.out_offset[d + 1]; ++i) {
      edges.emplace_back(csr.orig_id[d], csr.orig_id[csr.out_to[i]],
                         csr.out_q[i]);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Core invariants any well-formed snapshot must satisfy.
void CheckInvariants(const CsrSnapshot& csr) {
  const uint32_t n = csr.num_nodes();
  ASSERT_EQ(csr.node_p.size(), n);
  ASSERT_EQ(csr.node_confidence.size(), n);
  ASSERT_EQ(csr.node_kind.size(), n);
  ASSERT_EQ(csr.orig_id.size(), n);
  ASSERT_EQ(csr.out_offset.size(), n + 1);
  ASSERT_EQ(csr.in_offset.size(), n + 1);
  EXPECT_EQ(csr.out_offset[0], 0u);
  EXPECT_EQ(csr.in_offset[0], 0u);
  for (uint32_t d = 0; d < n; ++d) {
    EXPECT_LE(csr.out_offset[d], csr.out_offset[d + 1]);
    EXPECT_LE(csr.in_offset[d], csr.in_offset[d + 1]);
  }
  EXPECT_EQ(csr.out_offset[n], csr.num_edges());
  EXPECT_EQ(csr.in_offset[n], csr.num_edges());
  EXPECT_EQ(csr.out_to.size(), csr.out_q.size());
  EXPECT_EQ(csr.in_from.size(), csr.in_q.size());
  EXPECT_EQ(csr.out_to.size(), csr.in_from.size());

  // Dense ids ascend by original id, and the two-way mapping closes.
  for (uint32_t d = 0; d < n; ++d) {
    if (d > 0) {
      EXPECT_LT(csr.orig_id[d - 1], csr.orig_id[d]);
    }
    ASSERT_LT(static_cast<size_t>(csr.orig_id[d]), csr.dense_id.size());
    EXPECT_EQ(csr.dense_id[static_cast<size_t>(csr.orig_id[d])], d);
  }
  size_t mapped = 0;
  for (uint32_t dense : csr.dense_id) {
    if (dense == kCsrInvalid) continue;
    ++mapped;
    ASSERT_LT(dense, n);
  }
  EXPECT_EQ(mapped, n);

  // Edge endpoints in range; in-degree totals match out-degree totals.
  for (uint32_t to : csr.out_to) ASSERT_LT(to, n);
  for (uint32_t from : csr.in_from) ASSERT_LT(from, n);
  std::vector<uint32_t> in_degree(n, 0);
  for (uint32_t to : csr.out_to) ++in_degree[to];
  for (uint32_t d = 0; d < n; ++d) {
    EXPECT_EQ(csr.in_offset[d + 1] - csr.in_offset[d], in_degree[d]);
  }
}

/// Rebuilds a pointer graph from a snapshot's adjacency (dense ids
/// become the new graph's node ids directly).
ProbabilisticEntityGraph GraphFromCsr(const CsrSnapshot& csr) {
  ProbabilisticEntityGraph graph;
  for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
    graph.AddNode(csr.node_p[d]);
  }
  for (uint32_t d = 0; d < csr.num_nodes(); ++d) {
    for (uint32_t i = csr.out_offset[d]; i < csr.out_offset[d + 1]; ++i) {
      graph.AddEdge(static_cast<NodeId>(d),
                    static_cast<NodeId>(csr.out_to[i]), csr.out_q[i])
          .value();
    }
  }
  return graph;
}

TEST(CsrSnapshotTest, EmptyGraph) {
  ProbabilisticEntityGraph graph;
  CsrSnapshot csr = BuildCsrSnapshot(graph);
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.orig_capacity(), 0);
  CheckInvariants(csr);
}

TEST(CsrSnapshotTest, SingleNode) {
  ProbabilisticEntityGraph graph;
  NodeId a = graph.AddNode(0.75);
  CsrSnapshot csr = BuildCsrSnapshot(graph);
  CheckInvariants(csr);
  ASSERT_EQ(csr.num_nodes(), 1u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.orig_id[0], a);
  EXPECT_EQ(csr.node_p[0], 0.75);
  EXPECT_EQ(csr.node_confidence[0], 0.75f);
}

TEST(CsrSnapshotTest, SelfLoop) {
  ProbabilisticEntityGraph graph;
  NodeId a = graph.AddNode(1.0);
  graph.AddEdge(a, a, 0.5).value();
  CsrSnapshot csr = BuildCsrSnapshot(graph);
  CheckInvariants(csr);
  ASSERT_EQ(csr.num_edges(), 1u);
  EXPECT_EQ(csr.out_to[0], 0u);
  EXPECT_EQ(csr.in_from[0], 0u);
  EXPECT_EQ(csr.out_q[0], 0.5);
  EXPECT_EQ(csr.in_q[0], 0.5);
}

TEST(CsrSnapshotTest, ParallelEdgesKeepMultiplicityAndOrder) {
  ProbabilisticEntityGraph graph;
  NodeId a = graph.AddNode(1.0);
  NodeId b = graph.AddNode(0.9);
  graph.AddEdge(a, b, 0.3).value();
  graph.AddEdge(a, b, 0.7).value();
  graph.AddEdge(a, b, 0.1).value();
  CsrSnapshot csr = BuildCsrSnapshot(graph);
  CheckInvariants(csr);
  ASSERT_EQ(csr.num_edges(), 3u);
  // Segment order is ascending original EdgeId — insertion order here.
  EXPECT_EQ(csr.out_q[0], 0.3);
  EXPECT_EQ(csr.out_q[1], 0.7);
  EXPECT_EQ(csr.out_q[2], 0.1);
  EXPECT_EQ(csr.in_q[0], 0.3);
  EXPECT_EQ(csr.in_q[1], 0.7);
  EXPECT_EQ(csr.in_q[2], 0.1);
}

TEST(CsrSnapshotTest, TombstonesAreExcluded) {
  ProbabilisticEntityGraph graph;
  NodeId a = graph.AddNode(1.0);
  NodeId b = graph.AddNode(0.5);
  NodeId c = graph.AddNode(0.25);
  graph.AddEdge(a, b, 0.5).value();
  EdgeId dead = graph.AddEdge(a, c, 0.4).value();
  graph.AddEdge(b, c, 0.6).value();
  ASSERT_TRUE(graph.RemoveEdge(dead).ok());
  ASSERT_TRUE(graph.RemoveNode(b).ok());  // Also drops its edges.
  CsrSnapshot csr = BuildCsrSnapshot(graph);
  CheckInvariants(csr);
  ASSERT_EQ(csr.num_nodes(), 2u);
  EXPECT_EQ(csr.orig_id[0], a);
  EXPECT_EQ(csr.orig_id[1], c);
  EXPECT_EQ(csr.dense_id[static_cast<size_t>(b)], kCsrInvalid);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrSnapshotTest, RandomGraphsSatisfyInvariantsAndMatchAdjacency) {
  Rng rng(2026);
  for (int round = 0; round < 30; ++round) {
    testing::RandomDagOptions options;
    options.layers = 2 + round % 4;
    options.nodes_per_layer = 3 + round % 5;
    options.edge_density = 0.4 + 0.02 * (round % 10);
    QueryGraph query = testing::MakeRandomLayeredDag(rng, options);
    CsrSnapshot csr = BuildCsrSnapshot(query.graph);
    CheckInvariants(csr);
    EXPECT_EQ(CsrEdgeMultiset(csr), GraphEdgeMultiset(query.graph));
    EXPECT_EQ(csr.num_nodes(),
              static_cast<uint32_t>(query.graph.num_nodes()));
    EXPECT_EQ(csr.num_edges(),
              static_cast<uint32_t>(query.graph.num_edges()));
  }
}

TEST(CsrSnapshotTest, RoundTripIsIdempotent) {
  // CSR -> adjacency -> CSR reaches a fixpoint after one normalization:
  // rebuilding from the round-tripped graph must be byte-identical.
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    QueryGraph query = testing::MakeRandomDigraph(rng, 12 + round, 0.3, 3);
    CsrSnapshot first = BuildCsrSnapshot(query.graph);
    ProbabilisticEntityGraph rebuilt = GraphFromCsr(first);
    CsrSnapshot second = BuildCsrSnapshot(rebuilt);
    CsrSnapshot third = BuildCsrSnapshot(GraphFromCsr(second));
    EXPECT_TRUE(CsrBytesEqual(second, third));
    // And the adjacency content never drifts across the round trip.
    EXPECT_EQ(CsrEdgeMultiset(second), CsrEdgeMultiset(first));
  }
}

TEST(CsrSnapshotTest, CsrBytesEqualDetectsEveryArray) {
  ProbabilisticEntityGraph graph;
  NodeId a = graph.AddNode(1.0);
  NodeId b = graph.AddNode(0.5);
  graph.AddEdge(a, b, 0.5).value();
  CsrSnapshot base = BuildCsrSnapshot(graph);
  EXPECT_TRUE(CsrBytesEqual(base, base));

  CsrSnapshot changed = base;
  changed.node_p[1] = 0.5000000001;
  EXPECT_FALSE(CsrBytesEqual(base, changed));
  changed = base;
  changed.out_q[0] = 0.25;
  EXPECT_FALSE(CsrBytesEqual(base, changed));
  changed = base;
  changed.node_kind[0] = kCsrKindAnswer;
  EXPECT_FALSE(CsrBytesEqual(base, changed));
  changed = base;
  changed.node_confidence[0] = 0.125f;
  EXPECT_FALSE(CsrBytesEqual(base, changed));
}

TEST(CsrSnapshotTest, KeptMaskMatchesInducedSubgraph) {
  // Restricting via the mask must produce the same packed structure as
  // snapshotting the pointer-built induced subgraph: both number kept
  // nodes in ascending original order and kept edges in ascending
  // original EdgeId order.
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    testing::RandomDagOptions options;
    options.layers = 3;
    options.nodes_per_layer = 4;
    options.answers = 3;
    options.edge_density = 0.35;
    QueryGraph query = testing::MakeRandomLayeredDag(rng, options);

    std::vector<bool> kept;
    QueryGraph restricted =
        RestrictToQueryRelevantSubgraph(query, query.answers, &kept);

    CsrSnapshot masked = BuildCsrSnapshot(query.graph, &kept);
    CsrSnapshot reference = BuildCsrSnapshot(restricted.graph);
    CheckInvariants(masked);

    // Identical packed structure; only the id mapping back to the
    // original graph differs (the reference graph is renumbered).
    EXPECT_EQ(masked.node_p, reference.node_p);
    EXPECT_EQ(masked.out_offset, reference.out_offset);
    EXPECT_EQ(masked.out_to, reference.out_to);
    EXPECT_EQ(masked.out_q, reference.out_q);
    EXPECT_EQ(masked.in_offset, reference.in_offset);
    EXPECT_EQ(masked.in_from, reference.in_from);
    EXPECT_EQ(masked.in_q, reference.in_q);

    // The mask itself round-trips through the flat BFS variant.
    CsrSnapshot full = BuildCsrSnapshot(query.graph);
    EXPECT_EQ(QueryRelevantMask(full, query.source, query.answers), kept);
  }
}

TEST(CsrSnapshotTest, QuerySnapshotStampsRoles) {
  Rng rng(5);
  QueryGraph query = testing::MakeRandomTree(rng, 3, 2, false);
  Result<CsrQuerySnapshot> snapshot = BuildCsrQuerySnapshot(query);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().message();
  const CsrQuerySnapshot& qs = snapshot.value();
  ASSERT_NE(qs.source, kCsrInvalid);
  EXPECT_EQ(qs.csr.orig_id[qs.source], query.source);
  EXPECT_TRUE(qs.csr.node_kind[qs.source] & kCsrKindSource);
  ASSERT_EQ(qs.answers.size(), query.answers.size());
  for (size_t i = 0; i < qs.answers.size(); ++i) {
    EXPECT_EQ(qs.csr.orig_id[qs.answers[i]], query.answers[i]);
    EXPECT_TRUE(qs.csr.node_kind[qs.answers[i]] & kCsrKindAnswer);
  }
}

}  // namespace
}  // namespace biorank
