#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace biorank {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string FormatCompact(double value, int precision) {
  std::string s = FormatDouble(value, precision);
  if (s.find('.') == std::string::npos) return s;
  size_t last = s.find_last_not_of('0');
  if (s[last] == '.') last -= 1;
  s.erase(last + 1);
  return s;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string PadLeft(std::string_view text, size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out.append(text);
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string FormatRankInterval(int lo, int hi) {
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

}  // namespace biorank
