// Reproduces Figure 8a: wall-clock time of the six ways to compute
// reliability scores over the scenario-1/2 query graphs:
//   M1    Monte Carlo, 10,000 trials, original graph
//   M2    Monte Carlo,  1,000 trials, original graph
//   C     closed solution (per-target reductions), original graph
//   R&M1  graph reduction + Monte Carlo 10,000
//   R&M2  graph reduction + Monte Carlo  1,000
//   R&C   graph reduction + closed solution
//
// Paper (ms, mean over the 20 graphs): M1 731, M2 74, C 97, R&M1 151,
// R&M2 18, R&C 20 — reduction + 1,000 trials is the fastest, beating
// even the closed solution. Absolute numbers differ on modern hardware;
// the ordering is the reproduced result.

#include <benchmark/benchmark.h>

#include "api/server.h"
#include "bench_gbench_json.h"

#include "core/closed_form.h"
#include "core/reduction.h"
#include "core/reliability_mc.h"
#include "integrate/scenario_harness.h"

using namespace biorank;

namespace {

const std::vector<ScenarioQuery>& Scenario1Queries() {
  static const std::vector<ScenarioQuery>* queries = [] {
    static api::Server server;
    auto result = server.harness().BuildQueries(ScenarioId::kScenario1WellKnown);
    return new std::vector<ScenarioQuery>(std::move(result.value()));
  }();
  return *queries;
}

void RunMc(const QueryGraph& graph, int64_t trials, bool reduce_first,
           uint64_t seed) {
  if (reduce_first) {
    QueryGraph reduced = graph;
    ReduceQueryGraph(reduced);
    McOptions options;
    options.trials = trials;
    options.seed = seed;
    benchmark::DoNotOptimize(EstimateReliabilityMc(reduced, options));
  } else {
    McOptions options;
    options.trials = trials;
    options.seed = seed;
    benchmark::DoNotOptimize(EstimateReliabilityMc(graph, options));
  }
}

void RunClosed(const QueryGraph& graph, bool reduce_first) {
  if (reduce_first) {
    QueryGraph reduced = graph;
    ReduceQueryGraph(reduced);
    benchmark::DoNotOptimize(ClosedFormReliabilityAllAnswers(reduced));
  } else {
    benchmark::DoNotOptimize(ClosedFormReliabilityAllAnswers(graph));
  }
}

void BM_M1_MonteCarlo10000(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      RunMc(q.graph, 10000, /*reduce_first=*/false, seed++);
    }
  }
}
BENCHMARK(BM_M1_MonteCarlo10000)->Unit(benchmark::kMillisecond);

void BM_M2_MonteCarlo1000(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      RunMc(q.graph, 1000, /*reduce_first=*/false, seed++);
    }
  }
}
BENCHMARK(BM_M2_MonteCarlo1000)->Unit(benchmark::kMillisecond);

void BM_C_ClosedSolution(benchmark::State& state) {
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      RunClosed(q.graph, /*reduce_first=*/false);
    }
  }
}
BENCHMARK(BM_C_ClosedSolution)->Unit(benchmark::kMillisecond);

void BM_RM1_ReduceMonteCarlo10000(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      RunMc(q.graph, 10000, /*reduce_first=*/true, seed++);
    }
  }
}
BENCHMARK(BM_RM1_ReduceMonteCarlo10000)->Unit(benchmark::kMillisecond);

void BM_RM2_ReduceMonteCarlo1000(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      RunMc(q.graph, 1000, /*reduce_first=*/true, seed++);
    }
  }
}
BENCHMARK(BM_RM2_ReduceMonteCarlo1000)->Unit(benchmark::kMillisecond);

void BM_RC_ReduceClosedSolution(benchmark::State& state) {
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      RunClosed(q.graph, /*reduce_first=*/true);
    }
  }
}
BENCHMARK(BM_RC_ReduceClosedSolution)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return biorank::bench::RunBenchmarksWithJson("fig8a_reliability_methods", argc, argv);
}
