#include "schema/transforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "schema/metrics.h"

namespace biorank {
namespace {

TEST(GeneStatusTest, TableMatchesPaperExactly) {
  EXPECT_DOUBLE_EQ(GeneStatusToPr(GeneStatus::kReviewed), 1.0);
  EXPECT_DOUBLE_EQ(GeneStatusToPr(GeneStatus::kValidated), 0.8);
  EXPECT_DOUBLE_EQ(GeneStatusToPr(GeneStatus::kProvisional), 0.7);
  EXPECT_DOUBLE_EQ(GeneStatusToPr(GeneStatus::kPredicted), 0.4);
  EXPECT_DOUBLE_EQ(GeneStatusToPr(GeneStatus::kModel), 0.3);
  EXPECT_DOUBLE_EQ(GeneStatusToPr(GeneStatus::kInferred), 0.2);
}

TEST(EvidenceCodeTest, TableMatchesPaperExactly) {
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIDA), 1.0);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kTAS), 1.0);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIGI), 0.9);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIMP), 0.9);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIPI), 0.9);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIEP), 0.7);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kISS), 0.7);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kRCA), 0.7);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIC), 0.6);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kNAS), 0.5);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kIEA), 0.3);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kND), 0.2);
  EXPECT_DOUBLE_EQ(EvidenceCodeToPr(EvidenceCode::kNR), 0.2);
}

TEST(StringLookupTest, RoundTripsThroughNames) {
  for (GeneStatus s : {GeneStatus::kReviewed, GeneStatus::kValidated,
                       GeneStatus::kProvisional, GeneStatus::kPredicted,
                       GeneStatus::kModel, GeneStatus::kInferred}) {
    Result<double> pr = GeneStatusStringToPr(GeneStatusToString(s));
    ASSERT_TRUE(pr.ok());
    EXPECT_DOUBLE_EQ(pr.value(), GeneStatusToPr(s));
  }
  for (EvidenceCode c :
       {EvidenceCode::kIDA, EvidenceCode::kTAS, EvidenceCode::kIGI,
        EvidenceCode::kIMP, EvidenceCode::kIPI, EvidenceCode::kIEP,
        EvidenceCode::kISS, EvidenceCode::kRCA, EvidenceCode::kIC,
        EvidenceCode::kNAS, EvidenceCode::kIEA, EvidenceCode::kND,
        EvidenceCode::kNR}) {
    Result<double> pr = EvidenceCodeStringToPr(EvidenceCodeToString(c));
    ASSERT_TRUE(pr.ok());
    EXPECT_DOUBLE_EQ(pr.value(), EvidenceCodeToPr(c));
  }
}

TEST(StringLookupTest, UnknownCodesFail) {
  EXPECT_FALSE(GeneStatusStringToPr("Bogus").ok());
  EXPECT_FALSE(EvidenceCodeStringToPr("XYZ").ok());
  EXPECT_FALSE(GeneStatusStringToPr("reviewed").ok());  // Case-sensitive.
}

TEST(EValueTest, TransformMatchesPaperFormula) {
  // qr = -log10(e) / 300.
  EXPECT_NEAR(EValueToQr(1e-30), 0.1, 1e-12);
  EXPECT_NEAR(EValueToQr(1e-150), 0.5, 1e-12);
  EXPECT_NEAR(EValueToQr(1e-300), 1.0, 1e-12);
}

TEST(EValueTest, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(EValueToQr(0.0), 1.0);       // Perfect match.
  EXPECT_DOUBLE_EQ(EValueToQr(-1.0), 1.0);      // Degenerate input.
  EXPECT_DOUBLE_EQ(EValueToQr(1.0), 0.0);       // Chance-level hit.
  EXPECT_DOUBLE_EQ(EValueToQr(10.0), 0.0);
  EXPECT_DOUBLE_EQ(EValueToQr(1e-320), 1.0);    // Beyond the scale.
}

TEST(EValueTest, StrongerHitsGetHigherConfidence) {
  double prev = -1.0;
  for (double exp10 : {-5.0, -20.0, -60.0, -120.0, -250.0}) {
    double qr = EValueToQr(std::pow(10.0, exp10));
    EXPECT_GT(qr, prev);  // Smaller e-value -> larger qr.
    prev = qr;
    // All interior values stay in (0,1].
    EXPECT_GT(qr, 0.0);
    EXPECT_LE(qr, 1.0);
  }
}

TEST(MetricsTest, DefaultsAreOneWithoutRegistration) {
  ProbabilisticMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.SourceConfidence("Anything"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.NodeProbability("Anything", 0.4), 0.4);
}

TEST(MetricsTest, FromSchemaPicksUpDefaults) {
  ErSchema schema = MakeFigure1Schema();
  ProbabilisticMetrics metrics = ProbabilisticMetrics::FromSchema(schema);
  EXPECT_DOUBLE_EQ(metrics.SourceConfidence("EntrezGene"), 0.9);
  EXPECT_DOUBLE_EQ(metrics.RelationshipConfidence("NCBIBlast2"), 1.0);
}

TEST(MetricsTest, NodeProbabilityIsProduct) {
  ProbabilisticMetrics metrics;
  metrics.SetSourceConfidence("EntrezGene", 0.9);
  // p = ps * pr per Section 2.
  EXPECT_NEAR(metrics.NodeProbability("EntrezGene", 0.8), 0.72, 1e-12);
}

TEST(MetricsTest, EdgeProbabilityIsProduct) {
  ProbabilisticMetrics metrics;
  metrics.SetRelationshipConfidence("NCBIBlast1", 0.65);
  EXPECT_NEAR(metrics.EdgeProbability("NCBIBlast1", 0.5), 0.325, 1e-12);
}

TEST(MetricsTest, UserTuningOverridesDefaults) {
  ErSchema schema = MakeFigure1Schema();
  ProbabilisticMetrics metrics = ProbabilisticMetrics::FromSchema(schema);
  ASSERT_TRUE(metrics.SetSourceConfidence("EntrezGene", 0.5).ok());
  EXPECT_DOUBLE_EQ(metrics.SourceConfidence("EntrezGene"), 0.5);
}

TEST(MetricsTest, RejectsOutOfRangeConfidence) {
  ProbabilisticMetrics metrics;
  EXPECT_FALSE(metrics.SetSourceConfidence("A", 1.5).ok());
  EXPECT_FALSE(metrics.SetRelationshipConfidence("R", -0.1).ok());
}

TEST(MetricsTest, RecordProbabilitiesAreClamped) {
  ProbabilisticMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.NodeProbability("A", 1.7), 1.0);
  EXPECT_DOUBLE_EQ(metrics.EdgeProbability("R", -0.4), 0.0);
}

}  // namespace
}  // namespace biorank
