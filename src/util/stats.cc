#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace biorank {

SampleStats ComputeStats(const std::vector<double>& values) {
  SampleStats stats;
  stats.count = values.size();
  if (values.empty()) return stats;
  stats.mean = Mean(values);
  stats.stddev = StdDev(values);
  auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  stats.min = *mn;
  stats.max = *mx;
  if (stats.count >= 2) {
    stats.ci95_half_width =
        1.959964 * stats.stddev / std::sqrt(static_cast<double>(stats.count));
  }
  return stats;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace biorank
