#include "sources/minor_sources.h"

#include <cstdio>

#include "util/rng.h"

namespace biorank {

namespace {

ProfileDatabaseConfig PirsfConfig() {
  ProfileDatabaseConfig config;
  config.salt = 0x915FULL;
  config.prefix = "PIRSF";
  config.profiles_per_family = 1;
  config.families_per_profile = 1;
  config.go_min = 2;
  config.go_max = 5;
  config.member_hit_prob = 0.7;
  config.spurious_hit_prob = 0.05;  // Accurate: little noise.
  return config;
}

ProfileDatabaseConfig SuperFamilyConfig() {
  ProfileDatabaseConfig config;
  config.salt = 0x50F4ULL;
  config.prefix = "SSF";
  config.profiles_per_family = 1;
  config.families_per_profile = 3;  // Coarse structural classes.
  config.go_min = 4;
  config.go_max = 10;
  config.member_hit_prob = 0.75;
  config.spurious_hit_prob = 0.1;
  return config;
}

ProfileDatabaseConfig CddConfig() {
  ProfileDatabaseConfig config;
  config.salt = 0xCDD0ULL;
  config.prefix = "CDD";
  config.profiles_per_family = 2;
  config.families_per_profile = 2;
  config.go_min = 3;
  config.go_max = 9;
  config.member_hit_prob = 0.8;
  config.spurious_hit_prob = 0.25;  // Broad but noisy.
  return config;
}

}  // namespace

PirsfSource::PirsfSource(const ProteinUniverse& universe,
                         const EvidenceModel& evidence)
    : db_(universe, evidence, PirsfConfig()) {}

SuperFamilySource::SuperFamilySource(const ProteinUniverse& universe,
                                     const EvidenceModel& evidence)
    : db_(universe, evidence, SuperFamilyConfig()) {}

CddSource::CddSource(const ProteinUniverse& universe,
                     const EvidenceModel& evidence)
    : db_(universe, evidence, CddConfig()) {}

UniProtSource::UniProtSource(const ProteinUniverse& universe,
                             const EvidenceModel& evidence) {
  (void)evidence;
  Rng rng(universe.options().seed ^ 0x0141ULL);
  annotations_.resize(universe.num_proteins());
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    if (protein.study_level == StudyLevel::kHypothetical) continue;
    bool reviewed_entry =
        protein.study_level == StudyLevel::kWellStudied
            ? rng.NextBernoulli(0.9)
            : rng.NextBernoulli(0.4);
    for (int go : protein.curated_functions) {
      if (!rng.NextBernoulli(0.55)) continue;  // Partial coverage.
      annotations_[i].push_back(UniProtAnnotation{go, reviewed_entry});
    }
  }
}

const std::vector<UniProtAnnotation>& UniProtSource::AnnotationsFor(
    int protein) const {
  if (protein < 0 || protein >= static_cast<int>(annotations_.size())) {
    return empty_;
  }
  return annotations_[protein];
}

PdbSource::PdbSource(const ProteinUniverse& universe,
                     const EvidenceModel& evidence) {
  (void)evidence;
  Rng rng(universe.options().seed ^ 0x9DB0ULL);
  structures_.resize(universe.num_proteins());
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    // Only well-characterized proteins tend to have solved structures.
    double coverage =
        protein.study_level == StudyLevel::kWellStudied ? 0.6 : 0.1;
    int count = rng.NextBernoulli(coverage)
                    ? 1 + static_cast<int>(rng.NextBounded(2))
                    : 0;
    for (int s = 0; s < count; ++s) {
      std::string id;
      id += static_cast<char>('1' + rng.NextBounded(9));
      for (int c = 0; c < 3; ++c) {
        id += static_cast<char>('A' + rng.NextBounded(26));
      }
      structures_[i].push_back(std::move(id));
    }
  }
}

const std::vector<std::string>& PdbSource::StructuresFor(int protein) const {
  if (protein < 0 || protein >= static_cast<int>(structures_.size())) {
    return empty_;
  }
  return structures_[protein];
}

}  // namespace biorank
