#include "serve/reliability_cache.h"

#include <algorithm>

namespace biorank::serve {

ReliabilityCache::ReliabilityCache(ReliabilityCacheOptions options)
    : options_(options) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
  options_.shards = std::max(1, options_.shards);
  // A shard count above the capacity would make some shards zero-sized.
  options_.shards = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(options_.shards), options_.capacity));
  per_shard_capacity_ =
      (options_.capacity + static_cast<size_t>(options_.shards) - 1) /
      static_cast<size_t>(options_.shards);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ReliabilityCache::Shard& ReliabilityCache::ShardFor(const CanonicalKey& key) {
  return *shards_[key.hash % shards_.size()];
}

std::optional<CacheEntry> ReliabilityCache::Get(const CanonicalKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.repr);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ReliabilityCache::Put(const CanonicalKey& key, const CacheEntry& entry) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.repr);
  if (it != shard.index.end()) {
    it->second->second = entry;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key.repr, entry);
  shard.index.emplace(key.repr, shard.lru.begin());
  ++shard.insertions;
  while (shard.index.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats ReliabilityCache::Stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->index.size();
  }
  return stats;
}

void ReliabilityCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace biorank::serve
