#include "sources/pfam.h"

namespace biorank {

ProfileDatabaseConfig PfamSource::Config() {
  ProfileDatabaseConfig config;
  config.salt = 0x9FA3ULL;
  config.prefix = "PF";
  config.profiles_per_family = 2;
  config.families_per_profile = 1;
  config.go_min = 3;
  config.go_max = 8;
  config.member_hit_prob = 0.9;
  config.spurious_hit_prob = 0.2;
  config.dedicated_hypothetical_profiles = true;
  return config;
}

PfamSource::PfamSource(const ProteinUniverse& universe,
                       const EvidenceModel& evidence)
    : db_(universe, evidence, Config()) {}

ProfileDatabaseConfig TigrFamSource::Config() {
  ProfileDatabaseConfig config;
  config.salt = 0x7163ULL;
  config.prefix = "TIGR";
  config.profiles_per_family = 1;
  config.families_per_profile = 1;
  config.go_min = 2;
  config.go_max = 6;
  config.member_hit_prob = 0.8;
  config.spurious_hit_prob = 0.1;
  config.dedicated_hypothetical_profiles = true;
  config.dedicated_recent_profiles = true;
  return config;
}

TigrFamSource::TigrFamSource(const ProteinUniverse& universe,
                             const EvidenceModel& evidence)
    : db_(universe, evidence, Config()) {}

}  // namespace biorank
