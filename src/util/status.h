// Status and Result<T>: the error-handling vocabulary used across
// the library instead of exceptions.

#ifndef BIORANK_UTIL_STATUS_H_
#define BIORANK_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace biorank {

/// Error categories used across the library. Modeled after the RocksDB /
/// Google `Status` idiom: fallible operations return a `Status` (or a
/// `Result<T>`, below) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed value (e.g. p outside [0,1]).
  kNotFound,          ///< A looked-up entity, node, or source does not exist.
  kFailedPrecondition,///< Operation not valid in the current state (e.g. cycle).
  kOutOfRange,        ///< Index or id outside the valid range.
  kUnimplemented,     ///< Feature intentionally not provided.
  kInternal,          ///< Invariant violation inside the library (a bug).
  kUnavailable,       ///< A dependency (shard, transport) failed to answer.
  kResourceExhausted, ///< Admission control rejected the request (backpressure).
  kDeadlineExceeded,  ///< The request's deadline passed before it could be served.
  kCancelled,         ///< The caller cancelled the operation (e.g. a refinement).
  kDataLoss,          ///< Unrecoverable corruption (checksum mismatch, bad file).
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error value. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, analogous to absl::StatusOr<T>.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design.

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// The contained value. Must only be called when ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates an error status out of the current function.
#define BIORANK_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::biorank::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                          \
  } while (false)

}  // namespace biorank

#endif  // BIORANK_UTIL_STATUS_H_
