// Immutable struct-of-arrays CSR snapshot of the alive (optionally
// mask-restricted) part of a probabilistic entity graph — the read-side
// substrate of the Monte Carlo and traversal hot paths.
//
// The mutable ProbabilisticEntityGraph stays the ingest write side: it
// supports tombstoned removal, bypass-edge insertion, and per-element
// probability revision, all of which the Section 3.1 reductions and the
// delta applier need. But the hot consumers (reliability_mc, topk_mc,
// diffusion, the query-relevant restriction inside canonicalization)
// touch every edge up to 1e4 times per query and were walking
// vector<vector<EdgeId>> adjacency through tombstone filters. This
// snapshot packs the kept subgraph once into contiguous arrays:
//
//   dense node ids   uint32_t, 0..num_nodes()-1, ascending original id
//   out_offset[n+1]  CSR offsets into out_to / out_q
//   out_to, out_q    packed edge targets + probabilities (double: the
//                    Bernoulli thresholds must be bit-exact)
//   in_offset/from/q the transposed CSR (diffusion, backward BFS)
//   node_p           presence probabilities, double
//   node_confidence  float side array (compact scans; never the sampler)
//   node_kind        role flags (source / answer), set by the query wrapper
//   orig_id/dense_id the two-way id mapping back to the pointer graph
//
// Ordering contract (load-bearing for bit-identical differential runs):
// dense node ids ascend by original NodeId, and each node's out- and
// in-edge segments ascend by original EdgeId — exactly the enumeration
// order of the pointer-graph paths, so both backends flip the same coins
// in the same order.
//
// Snapshots are plain value types: build once per canonical answer (or
// per delta, in ingest/update_applier), share read-only across threads.

#ifndef BIORANK_CORE_CSR_SNAPSHOT_H_
#define BIORANK_CORE_CSR_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Sentinel for "original node not present in the snapshot".
inline constexpr uint32_t kCsrInvalid = UINT32_C(0xFFFFFFFF);

/// Node-kind flags (node_kind side array). BuildCsrSnapshot leaves kinds
/// 0; BuildCsrQuerySnapshot stamps the query roles.
inline constexpr uint8_t kCsrKindSource = 1;
inline constexpr uint8_t kCsrKindAnswer = 2;

/// Flat read-only CSR view. All arrays are indexed by dense node id
/// except dense_id (indexed by original NodeId).
struct CsrSnapshot {
  // Node arrays, size num_nodes().
  std::vector<double> node_p;        ///< Presence probabilities.
  std::vector<float> node_confidence;///< float(p) side array for scans.
  std::vector<uint8_t> node_kind;    ///< kCsrKind* flags (query roles).
  std::vector<NodeId> orig_id;       ///< dense -> original id, ascending.

  /// original NodeId -> dense id; kCsrInvalid for dead/masked-out nodes.
  /// Size = node_capacity() of the source graph.
  std::vector<uint32_t> dense_id;

  // Forward CSR: out-edges of dense node d are [out_offset[d],
  // out_offset[d+1]) into out_to / out_q.
  std::vector<uint32_t> out_offset;  ///< Size num_nodes() + 1.
  std::vector<uint32_t> out_to;      ///< Dense target ids.
  std::vector<double> out_q;         ///< Edge probabilities.

  // Transposed CSR: in-edges of dense node d.
  std::vector<uint32_t> in_offset;
  std::vector<uint32_t> in_from;     ///< Dense source ids.
  std::vector<double> in_q;

  uint32_t num_nodes() const {
    return static_cast<uint32_t>(node_p.size());
  }
  uint32_t num_edges() const {
    return static_cast<uint32_t>(out_to.size());
  }
  /// Node capacity of the graph this snapshot was built from; scores
  /// computed on the snapshot expand back to this indexing.
  NodeId orig_capacity() const {
    return static_cast<NodeId>(dense_id.size());
  }
};

/// Builds the flat snapshot of `graph`. Includes every alive node (and
/// every alive edge between included nodes); when `kept_mask` is given
/// (indexed by original NodeId), only alive nodes with a true mask entry
/// are included — the same restriction semantics as InducedSubgraph, but
/// without constructing a pointer graph. Aborts (checked cast) on graphs
/// past 2^32 nodes or edges.
CsrSnapshot BuildCsrSnapshot(const ProbabilisticEntityGraph& graph,
                             const std::vector<bool>* kept_mask = nullptr);

/// Byte-level equality of two snapshots: every array identical, doubles
/// compared by bit pattern (so a NaN-for-NaN rebuild still matches and a
/// -0.0/+0.0 drift still fails). This is the ingest-layer acceptance
/// check: an incrementally maintained snapshot must be byte-equal to a
/// from-scratch build of the updated graph.
bool CsrBytesEqual(const CsrSnapshot& a, const CsrSnapshot& b);

/// A query graph's snapshot: the flat view plus the source and answer
/// roles in dense id space. node_kind carries the same roles as flags.
struct CsrQuerySnapshot {
  CsrSnapshot csr;
  uint32_t source = kCsrInvalid;       ///< Dense id of the query node.
  std::vector<uint32_t> answers;       ///< Dense answer ids, input order.
};

/// Builds the query snapshot of a validated query graph. Fails exactly
/// when QueryGraph::Validate fails.
Result<CsrQuerySnapshot> BuildCsrQuerySnapshot(const QueryGraph& query_graph);

/// Membership mask (indexed by original NodeId) of the query-relevant
/// subgraph: Reach(source) ∩ ∪_t CoReach(t), plus the source and every
/// valid answer — computed by forward/backward BFS over the flat arrays.
/// `csr` must be an unmasked snapshot of the graph the ids refer to.
/// Bit-for-bit identical to the mask RestrictToQueryRelevantSubgraph
/// derives on the pointer graph (asserted by the differential suite).
std::vector<bool> QueryRelevantMask(const CsrSnapshot& csr, NodeId source,
                                    const std::vector<NodeId>& answers);

}  // namespace biorank

#endif  // BIORANK_CORE_CSR_SNAPSHOT_H_
