#include "ingest/update_applier.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "storage/codec.h"

namespace biorank::ingest {

UpdateApplier::UpdateApplier(QueryGraph graph,
                             serve::RankingService* service,
                             UpdateApplierOptions options)
    : graph_(std::move(graph)), service_(service), options_(options) {
  init_status_ = graph_.Validate();
  if (!init_status_.ok()) return;
  csr_ = BuildCsrSnapshot(graph_.graph);
  Init();
}

UpdateApplier::UpdateApplier(QueryGraph graph,
                             serve::RankingService* service,
                             CsrSnapshot preloaded_csr, uint64_t applied_lsn,
                             UpdateApplierOptions options)
    : graph_(std::move(graph)), service_(service), options_(options),
      csr_(std::move(preloaded_csr)), last_wal_lsn_(applied_lsn) {
  init_status_ = graph_.Validate();
  if (!init_status_.ok()) return;
  Init();
}

void UpdateApplier::Init() {
  canonicalize_ = service_->options().canonicalize;
  canonicalize_.collect_provenance = true;
  canonicals_.resize(graph_.answers.size());
  std::vector<int> all(graph_.answers.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  init_status_ = Recanonicalize(all);
}

Status UpdateApplier::Recanonicalize(
    const std::vector<int>& answer_indices) {
  std::vector<NodeId> targets(answer_indices.size());
  for (size_t j = 0; j < answer_indices.size(); ++j) {
    targets[j] =
        graph_.answers[static_cast<size_t>(answer_indices[j])];
  }
  std::vector<CanonicalCandidate> fresh;
  BIORANK_RETURN_IF_ERROR(service_->CanonicalizeTargets(
      graph_, targets, canonicalize_, fresh, &csr_));
  for (size_t j = 0; j < answer_indices.size(); ++j) {
    int answer = answer_indices[j];
    index_.Register(answer, fresh[j].key, fresh[j].provenance, graph_);
    canonicals_[static_cast<size_t>(answer)] =
        std::make_unique<CanonicalCandidate>(std::move(fresh[j]));
  }
  return Status::OK();
}

Result<ApplyReport> UpdateApplier::ApplyDelta(
    const EvidenceDelta& delta, const ProbabilisticMetrics* metrics) {
  std::unique_lock<std::shared_mutex> writer(mu_);
  return ApplyLocked(delta, metrics, /*replay_lsn=*/0);
}

Result<ApplyReport> UpdateApplier::ApplyReplayed(
    const EvidenceDelta& delta, uint64_t lsn,
    const ProbabilisticMetrics* metrics) {
  std::unique_lock<std::shared_mutex> writer(mu_);
  return ApplyLocked(delta, metrics, lsn);
}

void UpdateApplier::AttachWal(storage::Wal* wal, uint64_t session_id) {
  std::unique_lock<std::shared_mutex> writer(mu_);
  wal_ = wal;
  wal_session_id_ = session_id;
}

uint64_t UpdateApplier::last_wal_lsn() const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  return last_wal_lsn_;
}

UpdateApplier::FrozenState UpdateApplier::Freeze() const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  FrozenState frozen;
  frozen.graph = graph_;
  frozen.csr = csr_;
  frozen.wal_lsn = last_wal_lsn_;
  return frozen;
}

Result<ApplyReport> UpdateApplier::ApplyLocked(
    const EvidenceDelta& delta, const ProbabilisticMetrics* metrics,
    uint64_t replay_lsn) {
  BIORANK_RETURN_IF_ERROR(init_status_);
  // Schema checks here; ApplyDeltaToGraph runs the structural pass, so
  // each delta is validated exactly once per tier.
  if (metrics != nullptr) {
    BIORANK_RETURN_IF_ERROR(ValidateDeltaSchema(delta, *metrics));
  }
  uint64_t logged_lsn = replay_lsn;
  if (wal_ != nullptr && replay_lsn == 0) {
    // Log-then-apply. Structural validation runs *before* the append so
    // a delta that would be rejected never reaches the log — which is
    // what lets recovery apply every logged delta unconditionally.
    // ApplyDeltaToGraph revalidates below; the duplicate pass is cheap
    // next to re-canonicalization and keeps its no-mutation-on-error
    // contract intact.
    BIORANK_RETURN_IF_ERROR(ValidateDelta(delta, graph_));
    storage::ByteWriter body;
    storage::EncodeDelta(delta, body);
    Result<uint64_t> lsn = wal_->Append(storage::WalRecordType::kApplyDelta,
                                        wal_session_id_, body.bytes());
    if (!lsn.ok()) return lsn.status();
    logged_lsn = lsn.value();
  }
  Result<AppliedDelta> applied = ApplyDeltaToGraph(delta, graph_);
  if (!applied.ok()) return applied.status();
  if (logged_lsn != 0) last_wal_lsn_ = logged_lsn;

  // The graph mutated: refresh the flat snapshot before anything
  // traverses it (re-canonicalization below reads csr_).
  csr_ = BuildCsrSnapshot(graph_.graph);

  ApplyReport report;
  report.ops = delta.size();
  report.nodes_added = static_cast<int>(delta.add_nodes.size());
  report.edges_added = static_cast<int>(delta.add_edges.size());
  report.edges_removed = static_cast<int>(delta.remove_edges.size());
  report.edges_reweighted = static_cast<int>(delta.reweight_edges.size());
  report.node_probs_revised =
      static_cast<int>(delta.revise_node_probs.size());
  report.source_priors_revised =
      static_cast<int>(delta.revise_source_priors.size());

  std::vector<int> dirty =
      index_.AffectedAnswers(delta, applied.value(), graph_);
  report.dirty_answers = static_cast<int>(dirty.size());
  report.clean_answers =
      static_cast<int>(graph_.answers.size() - dirty.size());

  // Candidate orphans must be collected before re-registration
  // overwrites the dirty answers' old keys in the index.
  std::vector<CanonicalKey> stale = index_.ExclusiveKeys(dirty);

  Status recanonicalized = Recanonicalize(dirty);
  if (!recanonicalized.ok()) {
    // The graph mutated but some dirty answer failed to re-canonicalize:
    // the live state is no longer serveable. Poison the applier so every
    // later call surfaces the failure instead of stale rankings.
    init_status_ = recanonicalized;
    return recanonicalized;
  }

  // A dirty answer can re-derive its old key unchanged (a no-op
  // revision, a clamp that left every probability alone); such keys are
  // registered again now and must not be erased from the cache.
  stale.erase(std::remove_if(stale.begin(), stale.end(),
                             [&](const CanonicalKey& key) {
                               return index_.HasKey(key);
                             }),
              stale.end());
  report.stale_keys = stale.size();

  if (options_.invalidate_stale_keys) {
    report.invalidated_entries = service_->OnDelta(stale);
  }
  return report;
}

Result<serve::TopKResult> UpdateApplier::RankTopK(int k) const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  BIORANK_RETURN_IF_ERROR(init_status_);
  std::vector<serve::PreparedCandidate> prepared(canonicals_.size());
  for (size_t i = 0; i < canonicals_.size(); ++i) {
    prepared[i].node = graph_.answers[i];
    prepared[i].canonical = canonicals_[i].get();
  }
  return service_->RankPrepared(prepared, k);
}

QueryGraph UpdateApplier::GraphSnapshot() const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  return graph_;
}

int UpdateApplier::answer_count() const {
  std::shared_lock<std::shared_mutex> reader(mu_);
  return static_cast<int>(graph_.answers.size());
}

}  // namespace biorank::ingest
