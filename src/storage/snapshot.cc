#include "storage/snapshot.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "storage/codec.h"
#include "util/crc32c.h"
#include "util/file.h"

namespace biorank::storage {
namespace {

constexpr char kMagic[8] = {'B', 'R', 'S', 'N', 'A', 'P', '0', '1'};
constexpr uint32_t kVersion = 1;

// --- flat array (de)serialization ------------------------------------
//
// Vectors of trivially-copyable elements are written as u64 count + raw
// bytes (the in-memory little-endian representation, doubles by bit
// pattern). GetCount's plausibility check plus the byte-size check below
// bound every read.

template <typename T>
void PutArray(ByteWriter& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable<T>::value, "raw array codec");
  out.PutU64(v.size());
  if (!v.empty()) out.PutBytes(v.data(), v.size() * sizeof(T));
}

template <typename T>
Status GetArray(ByteReader& in, std::vector<T>& v) {
  uint64_t n = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(T)));
  v.resize(static_cast<size_t>(n));
  if (n == 0) return Status::OK();
  return in.GetBytesInto(v.data(), static_cast<size_t>(n) * sizeof(T));
}

void PutCsr(ByteWriter& out, const CsrSnapshot& csr) {
  PutArray(out, csr.node_p);
  PutArray(out, csr.node_confidence);
  PutArray(out, csr.node_kind);
  PutArray(out, csr.orig_id);
  PutArray(out, csr.dense_id);
  PutArray(out, csr.out_offset);
  PutArray(out, csr.out_to);
  PutArray(out, csr.out_q);
  PutArray(out, csr.in_offset);
  PutArray(out, csr.in_from);
  PutArray(out, csr.in_q);
}

Status GetCsr(ByteReader& in, CsrSnapshot& csr) {
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.node_p));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.node_confidence));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.node_kind));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.orig_id));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.dense_id));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.out_offset));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.out_to));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.out_q));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.in_offset));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.in_from));
  BIORANK_RETURN_IF_ERROR(GetArray(in, csr.in_q));
  return ValidateCsr(csr);
}

// --- graph (de)serialization ------------------------------------------

void PutGraph(ByteWriter& out, const QueryGraph& qg) {
  const ProbabilisticEntityGraph& g = qg.graph;
  out.PutU64(static_cast<uint64_t>(g.node_capacity()));
  for (NodeId id = 0; id < g.node_capacity(); ++id) {
    const GraphNode& node = g.node(id);
    out.PutDouble(node.p);
    out.PutString(node.label);
    out.PutString(node.entity_set);
    out.PutU8(node.alive ? 1 : 0);
  }
  out.PutU64(static_cast<uint64_t>(g.edge_capacity()));
  for (EdgeId id = 0; id < g.edge_capacity(); ++id) {
    const GraphEdge& edge = g.edge(id);
    out.PutI32(edge.from);
    out.PutI32(edge.to);
    out.PutDouble(edge.q);
    out.PutU8(edge.alive ? 1 : 0);
  }
  out.PutI32(qg.source);
  out.PutU64(qg.answers.size());
  for (NodeId answer : qg.answers) out.PutI32(answer);
}

Status GetGraph(ByteReader& in, QueryGraph& qg) {
  // Reconstruct via the public mutators so adjacency lists and alive
  // counters come out exactly as the original insertion sequence built
  // them: add every node and edge alive, then tombstone the dead edges
  // and nodes (a dead node's incident edges are all already dead in the
  // source graph — RemoveNode killed them — so the final state matches
  // id-for-id). Probabilities were clamped when first stored, so the
  // clamp in AddNode/AddEdge is the identity on valid data; out-of-range
  // or NaN values can only mean corruption and are rejected.
  uint64_t node_cap = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(node_cap, sizeof(double) + 17));
  struct PendingNode {
    double p;
    std::string label;
    std::string entity_set;
    bool alive;
  };
  std::vector<PendingNode> nodes(static_cast<size_t>(node_cap));
  for (auto& node : nodes) {
    uint8_t alive = 0;
    BIORANK_RETURN_IF_ERROR(in.GetDouble(node.p));
    BIORANK_RETURN_IF_ERROR(in.GetString(node.label));
    BIORANK_RETURN_IF_ERROR(in.GetString(node.entity_set));
    BIORANK_RETURN_IF_ERROR(in.GetU8(alive));
    node.alive = alive != 0;
    if (!(node.p >= 0.0 && node.p <= 1.0)) {
      return Status::DataLoss("snapshot node probability outside [0,1]");
    }
  }
  uint64_t edge_cap = 0;
  BIORANK_RETURN_IF_ERROR(
      in.GetCount(edge_cap, 2 * sizeof(int32_t) + sizeof(double) + 1));
  struct PendingEdge {
    NodeId from;
    NodeId to;
    double q;
    bool alive;
  };
  std::vector<PendingEdge> edges(static_cast<size_t>(edge_cap));
  for (auto& edge : edges) {
    uint8_t alive = 0;
    BIORANK_RETURN_IF_ERROR(in.GetI32(edge.from));
    BIORANK_RETURN_IF_ERROR(in.GetI32(edge.to));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(edge.q));
    BIORANK_RETURN_IF_ERROR(in.GetU8(alive));
    edge.alive = alive != 0;
    if (!(edge.q >= 0.0 && edge.q <= 1.0)) {
      return Status::DataLoss("snapshot edge probability outside [0,1]");
    }
    if (edge.from < 0 || edge.to < 0 ||
        static_cast<uint64_t>(edge.from) >= node_cap ||
        static_cast<uint64_t>(edge.to) >= node_cap) {
      return Status::DataLoss("snapshot edge endpoint out of range");
    }
  }

  ProbabilisticEntityGraph& g = qg.graph;
  g = ProbabilisticEntityGraph();
  for (const auto& node : nodes) {
    g.AddNode(node.p, node.label, node.entity_set);
  }
  for (const auto& edge : edges) {
    Result<EdgeId> added = g.AddEdge(edge.from, edge.to, edge.q);
    if (!added.ok()) {
      return Status::DataLoss("snapshot edge rejected: " +
                              added.status().message());
    }
  }
  for (EdgeId id = 0; id < g.edge_capacity(); ++id) {
    if (!edges[static_cast<size_t>(id)].alive) {
      BIORANK_RETURN_IF_ERROR(g.RemoveEdge(id));
    }
  }
  for (NodeId id = 0; id < g.node_capacity(); ++id) {
    if (!nodes[static_cast<size_t>(id)].alive) {
      BIORANK_RETURN_IF_ERROR(g.RemoveNode(id));
    }
  }

  BIORANK_RETURN_IF_ERROR(in.GetI32(qg.source));
  uint64_t answer_count = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(answer_count, sizeof(int32_t)));
  qg.answers.resize(static_cast<size_t>(answer_count));
  for (auto& answer : qg.answers) {
    BIORANK_RETURN_IF_ERROR(in.GetI32(answer));
  }
  Status valid = qg.Validate();
  if (!valid.ok()) {
    return Status::DataLoss("snapshot graph fails validation: " +
                            valid.message());
  }
  return Status::OK();
}

void PutSession(ByteWriter& out, const SnapshotSession& session) {
  out.PutU64(session.id);
  out.PutU64(session.applied_lsn);
  out.PutI32(session.matched_proteins);
  // Maps are serialized in sorted key order so encoding is deterministic
  // (two checkpoints of identical state produce identical bytes).
  std::vector<std::pair<int, NodeId>> go(session.go_node.begin(),
                                         session.go_node.end());
  std::sort(go.begin(), go.end());
  out.PutU64(go.size());
  for (const auto& [term, node] : go) {
    out.PutI32(term);
    out.PutI32(node);
  }
  std::vector<std::pair<NodeId, std::string>> labels(
      session.answer_labels.begin(), session.answer_labels.end());
  std::sort(labels.begin(), labels.end());
  out.PutU64(labels.size());
  for (const auto& [node, label] : labels) {
    out.PutI32(node);
    out.PutString(label);
  }
  PutGraph(out, session.graph);
  PutCsr(out, session.csr);
}

Status GetSession(ByteReader& in, SnapshotSession& session) {
  BIORANK_RETURN_IF_ERROR(in.GetU64(session.id));
  BIORANK_RETURN_IF_ERROR(in.GetU64(session.applied_lsn));
  BIORANK_RETURN_IF_ERROR(in.GetI32(session.matched_proteins));
  uint64_t n = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, 2 * sizeof(int32_t)));
  for (uint64_t i = 0; i < n; ++i) {
    int32_t term = 0;
    NodeId node = kInvalidNode;
    BIORANK_RETURN_IF_ERROR(in.GetI32(term));
    BIORANK_RETURN_IF_ERROR(in.GetI32(node));
    session.go_node.emplace(term, node);
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(int32_t) + sizeof(uint64_t)));
  for (uint64_t i = 0; i < n; ++i) {
    NodeId node = kInvalidNode;
    std::string label;
    BIORANK_RETURN_IF_ERROR(in.GetI32(node));
    BIORANK_RETURN_IF_ERROR(in.GetString(label));
    session.answer_labels.emplace(node, std::move(label));
  }
  BIORANK_RETURN_IF_ERROR(GetGraph(in, session.graph));
  BIORANK_RETURN_IF_ERROR(GetCsr(in, session.csr));
  if (session.csr.orig_capacity() != session.graph.graph.node_capacity()) {
    return Status::DataLoss(
        "snapshot csr capacity disagrees with its graph");
  }
  return Status::OK();
}

}  // namespace

Status ValidateCsr(const CsrSnapshot& csr) {
  const size_t n = csr.node_p.size();
  if (csr.node_confidence.size() != n || csr.node_kind.size() != n ||
      csr.orig_id.size() != n) {
    return Status::DataLoss("csr node arrays disagree on length");
  }
  if (csr.out_offset.size() != n + 1 || csr.in_offset.size() != n + 1) {
    return Status::DataLoss("csr offset array has wrong length");
  }
  if (csr.out_to.size() != csr.out_q.size() ||
      csr.in_from.size() != csr.in_q.size() ||
      csr.out_to.size() != csr.in_from.size()) {
    return Status::DataLoss("csr edge arrays disagree on length");
  }
  if (csr.out_offset[0] != 0 || csr.in_offset[0] != 0 ||
      csr.out_offset[n] != csr.out_to.size() ||
      csr.in_offset[n] != csr.in_from.size()) {
    return Status::DataLoss("csr offsets do not cover the edge arrays");
  }
  for (size_t i = 0; i < n; ++i) {
    if (csr.out_offset[i] > csr.out_offset[i + 1] ||
        csr.in_offset[i] > csr.in_offset[i + 1]) {
      return Status::DataLoss("csr offsets not monotone");
    }
  }
  for (uint32_t to : csr.out_to) {
    if (to >= n) return Status::DataLoss("csr out edge target out of range");
  }
  for (uint32_t from : csr.in_from) {
    if (from >= n) return Status::DataLoss("csr in edge source out of range");
  }
  for (size_t i = 0; i < n; ++i) {
    NodeId orig = csr.orig_id[i];
    if (orig < 0 || static_cast<size_t>(orig) >= csr.dense_id.size() ||
        csr.dense_id[static_cast<size_t>(orig)] != i) {
      return Status::DataLoss("csr id mapping inconsistent");
    }
  }
  for (uint32_t dense : csr.dense_id) {
    if (dense != kCsrInvalid && dense >= n) {
      return Status::DataLoss("csr dense id out of range");
    }
  }
  return Status::OK();
}

std::string EncodeSnapshot(const SnapshotState& state) {
  ByteWriter out;
  out.PutBytes(kMagic, sizeof(kMagic));
  out.PutU32(kVersion);
  out.PutU64(state.fingerprint);
  out.PutU64(state.wal_lsn);
  out.PutU64(state.next_session_id);
  out.PutU64(state.sessions.size());
  for (const auto& session : state.sessions) PutSession(out, session);
  out.PutU64(state.cache_entries.size());
  for (const auto& cached : state.cache_entries) {
    out.PutString(cached.repr);
    out.PutDouble(cached.entry.lower);
    out.PutDouble(cached.entry.upper);
    out.PutU8(cached.entry.has_value ? 1 : 0);
    out.PutDouble(cached.entry.value);
    out.PutU8(cached.entry.exact ? 1 : 0);
    out.PutI64(cached.entry.trials);
    out.PutI64(cached.entry.tally);
  }
  std::string image = std::move(out).TakeBytes();
  uint32_t crc = util::Crc32c(image.data(), image.size());
  image.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return image;
}

Result<SnapshotState> DecodeSnapshot(const std::string& bytes,
                                     uint64_t expected_fingerprint) {
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint32_t)) {
    return Status::DataLoss("snapshot file shorter than its header");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  uint32_t actual_crc =
      util::Crc32c(bytes.data(), bytes.size() - sizeof(stored_crc));
  if (stored_crc != actual_crc) {
    return Status::DataLoss("snapshot whole-file checksum mismatch");
  }
  ByteReader in(bytes.data(), bytes.size() - sizeof(stored_crc));
  char magic[sizeof(kMagic)];
  BIORANK_RETURN_IF_ERROR(in.GetBytesInto(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("snapshot magic mismatch");
  }
  uint32_t version = 0;
  BIORANK_RETURN_IF_ERROR(in.GetU32(version));
  if (version != kVersion) {
    return Status::DataLoss("snapshot version " + std::to_string(version) +
                            " is not supported");
  }
  SnapshotState state;
  BIORANK_RETURN_IF_ERROR(in.GetU64(state.fingerprint));
  if (state.fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "snapshot belongs to a differently-configured server "
        "(fingerprint mismatch)");
  }
  BIORANK_RETURN_IF_ERROR(in.GetU64(state.wal_lsn));
  BIORANK_RETURN_IF_ERROR(in.GetU64(state.next_session_id));
  uint64_t n = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, 3 * sizeof(uint64_t)));
  state.sessions.resize(static_cast<size_t>(n));
  for (auto& session : state.sessions) {
    BIORANK_RETURN_IF_ERROR(GetSession(in, session));
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(uint64_t) + 4 * 8 + 2));
  state.cache_entries.resize(static_cast<size_t>(n));
  for (auto& cached : state.cache_entries) {
    uint8_t has_value = 0;
    uint8_t exact = 0;
    BIORANK_RETURN_IF_ERROR(in.GetString(cached.repr));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(cached.entry.lower));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(cached.entry.upper));
    BIORANK_RETURN_IF_ERROR(in.GetU8(has_value));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(cached.entry.value));
    BIORANK_RETURN_IF_ERROR(in.GetU8(exact));
    BIORANK_RETURN_IF_ERROR(in.GetI64(cached.entry.trials));
    BIORANK_RETURN_IF_ERROR(in.GetI64(cached.entry.tally));
    cached.entry.has_value = has_value != 0;
    cached.entry.exact = exact != 0;
  }
  if (!in.AtEnd()) {
    return Status::DataLoss("snapshot has trailing bytes after its payload");
  }
  return state;
}

std::string SnapshotFileName(uint64_t lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "snapshot-%016llx.brsnap",
                static_cast<unsigned long long>(lsn));
  return name;
}

Status WriteSnapshotFile(const std::string& dir, const SnapshotState& state,
                         std::string* path_out, uint64_t* bytes_out) {
  std::string path = dir + "/" + SnapshotFileName(state.wal_lsn);
  std::string image = EncodeSnapshot(state);
  BIORANK_RETURN_IF_ERROR(util::AtomicFileWrite(path, image));
  if (path_out != nullptr) *path_out = path;
  if (bytes_out != nullptr) *bytes_out = image.size();
  return Status::OK();
}

std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return found;
  while (struct dirent* entry = ::readdir(handle)) {
    std::string name = entry->d_name;
    const std::string prefix = "snapshot-";
    const std::string suffix = ".brsnap";
    if (name.size() != prefix.size() + 16 + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    uint64_t lsn = 0;
    bool valid = true;
    for (size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
      char c = name[i];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a' + 10);
      } else {
        valid = false;
        break;
      }
      lsn = (lsn << 4) | digit;
    }
    if (valid) found.emplace_back(lsn, dir + "/" + name);
  }
  ::closedir(handle);
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace biorank::storage
