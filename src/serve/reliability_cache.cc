#include "serve/reliability_cache.h"

#include <algorithm>

namespace biorank::serve {

ReliabilityCache::ReliabilityCache(ReliabilityCacheOptions options)
    : options_(options) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
  options_.shards = std::max(1, options_.shards);
  // A shard count above the capacity would make some shards zero-sized.
  options_.shards = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(options_.shards), options_.capacity));
  per_shard_capacity_ =
      (options_.capacity + static_cast<size_t>(options_.shards) - 1) /
      static_cast<size_t>(options_.shards);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ReliabilityCache::Shard& ReliabilityCache::ShardFor(const CanonicalKey& key) {
  return *shards_[key.hash % shards_.size()];
}

std::optional<CacheEntry> ReliabilityCache::Get(const CanonicalKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.repr);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ReliabilityCache::Put(const CanonicalKey& key, const CacheEntry& entry) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.repr);
  if (it != shard.index.end()) {
    it->second->second = entry;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key.repr, entry);
  shard.index.emplace(key.repr, shard.lru.begin());
  ++shard.insertions;
  while (shard.index.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

bool ReliabilityCache::Erase(const CanonicalKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.repr);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.invalidations;
  return true;
}

size_t ReliabilityCache::InvalidateKeys(const std::vector<CanonicalKey>& keys) {
  size_t erased = 0;
  for (const CanonicalKey& key : keys) {
    if (Erase(key)) ++erased;
  }
  return erased;
}

CacheStats ReliabilityCache::Stats() const {
  // Hold every shard lock at once so the aggregated snapshot is a true
  // point-in-time state, not a smear across in-flight mutations. Stats()
  // is the only site locking more than one shard, so the fixed ascending
  // order cannot deadlock against the single-shard operations.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  CacheStats stats;
  for (const auto& shard : shards_) {
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.invalidations += shard->invalidations;
    stats.entries += shard->index.size();
  }
  return stats;
}

std::vector<std::pair<std::string, CacheEntry>>
ReliabilityCache::Export() const {
  std::vector<std::pair<std::string, CacheEntry>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Reverse iteration: LRU list is most-recent-first, so walking
    // backwards emits oldest first.
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      out.push_back(*it);
    }
  }
  return out;
}

void ReliabilityCache::Restore(
    const std::vector<std::pair<std::string, CacheEntry>>& entries) {
  for (const auto& [repr, entry] : entries) {
    CanonicalKey key;
    key.repr = repr;
    key.hash = Fnv1a64(repr);
    Put(key, entry);
  }
}

void ReliabilityCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->invalidations += shard->index.size();
    shard->lru.clear();
    shard->index.clear();
  }
}

}  // namespace biorank::serve
