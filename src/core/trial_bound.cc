#include "core/trial_bound.h"

#include <cmath>

namespace biorank {

Result<int64_t> RequiredMcTrials(double epsilon, double delta) {
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double one_plus = 1.0 + epsilon;
  double n = one_plus * one_plus * one_plus /
             (epsilon * epsilon * (1.0 + epsilon / 3.0)) *
             std::log(1.0 / delta);
  return static_cast<int64_t>(std::ceil(n));
}

Result<std::vector<int64_t>> PlanTrialShards(int64_t trials,
                                             int64_t shard_trials) {
  if (trials < 1) {
    return Status::InvalidArgument("trial shards: trials must be >= 1");
  }
  if (shard_trials < 1) {
    return Status::InvalidArgument("trial shards: shard_trials must be >= 1");
  }
  std::vector<int64_t> shards(
      static_cast<size_t>(trials / shard_trials), shard_trials);
  if (int64_t remainder = trials % shard_trials; remainder > 0) {
    shards.push_back(remainder);
  }
  return shards;
}

}  // namespace biorank
