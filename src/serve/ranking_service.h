// The serving-shaped hot path: batched top-k ranking of a query graph's
// answer set by reliability, scheduled so that most candidates never pay
// for an exact or Monte Carlo computation. Per candidate the trace is
//
//   canonicalize (core/canonical) -> reliability_cache lookup
//     -> deterministic bounds (core/reliability_bounds)
//     -> prune against the top-k cut
//     -> exact factoring on reducible residues, else shared-pool MC
//        on the RNG stream derived from the canonical hash.
//
// Output is bit-identical at any thread count and with the cache on or
// off: every resolved value is a pure function of the candidate's
// canonical key, and pruning only ever discards candidates that are
// provably outside the top k.

#ifndef BIORANK_SERVE_RANKING_SERVICE_H_
#define BIORANK_SERVE_RANKING_SERVICE_H_

#include <cstdint>
#include <vector>

#include "core/canonical.h"
#include "core/query_graph.h"
#include "core/reliability_bounds.h"
#include "obs/metrics.h"
#include "serve/reliability_cache.h"
#include "util/parallel.h"
#include "util/status.h"

namespace biorank::serve {

/// How one candidate's reliability was obtained in a request.
enum class Resolution {
  kCacheValue,   ///< Canonical key had a resolved value (cache or request-local memo).
  kPruned,       ///< Bounds proved it outside the top k; never resolved.
  kBoundExact,   ///< Bounds closed (lower == upper within tolerance): value free.
  kExact,        ///< Factoring on the reduced canonical graph.
  kMonteCarlo,   ///< Seeded shared-pool MC on the canonical graph.
  kRefining,     ///< Anytime: MC in progress, value still a bracket.
};

/// One ranked answer of a request.
struct RankedCandidate {
  NodeId node = kInvalidNode;  ///< Answer node id in the *request's* graph.
  double reliability = 0.0;
  /// The deterministic reliability bracket the scheduler held for this
  /// candidate (lower == upper == reliability for exact resolutions;
  /// MC estimates are clamped into [lower, upper]).
  double lower = 0.0;
  double upper = 1.0;
  bool exact = false;          ///< False when the value is a converged MC estimate.
  Resolution resolution = Resolution::kPruned;
};

/// The one ranking order of the serving stack: descending reliability,
/// ties broken by ascending answer node id (a strict total order — node
/// ids are distinct within a request). The service's phase-8 sort and
/// the shard router's cross-shard merge both compare through this
/// template, so the monolith and a scatter–gather deployment can never
/// disagree on tie-breaks. Works on any pair of candidate types exposing
/// `reliability` and `node` (serve::RankedCandidate, api::RankedAnswer).
template <typename CandidateA, typename CandidateB>
inline bool RanksBefore(const CandidateA& a, const CandidateB& b) {
  if (a.reliability != b.reliability) return a.reliability > b.reliability;
  return a.node < b.node;
}

/// Per-request scheduler counters.
struct RequestStats {
  int candidates = 0;       ///< Answer nodes in the request.
  int cache_hits = 0;       ///< Lookups served by the cache or request memo.
  int cache_misses = 0;     ///< Lookups that had to canonicalize-and-bound.
  int pruned = 0;           ///< Misses eliminated by the top-k cut.
  int bound_exact = 0;      ///< Misses resolved by closed bounds.
  int exact = 0;            ///< Misses resolved by factoring.
  int monte_carlo = 0;      ///< Misses resolved by Monte Carlo.
  int64_t mc_trials = 0;    ///< Total MC trials spent.

  void Add(const RequestStats& other) {
    candidates += other.candidates;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    pruned += other.pruned;
    bound_exact += other.bound_exact;
    exact += other.exact;
    monte_carlo += other.monte_carlo;
    mc_trials += other.mc_trials;
  }

  double CacheHitRate() const {
    int lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }

  /// Of the candidates that reached the prune gate (misses and
  /// bounds-only hits), the fraction the bounds eliminated before any
  /// exact/MC spend.
  double PrunedFraction() const {
    int gated = pruned + bound_exact + exact + monte_carlo;
    return gated == 0 ? 0.0 : static_cast<double>(pruned) / gated;
  }
};

/// Configuration for RankingService.
struct RankingServiceOptions {
  CanonicalizeOptions canonicalize;
  ReliabilityCacheOptions cache;
  ReliabilityBoundsOptions bounds;
  /// Bounds whose width is at most this resolve the candidate outright
  /// (covers fully-reduced single-edge residues, where lower and upper
  /// agree up to rounding).
  double bound_resolve_epsilon = 1e-12;
  /// Surviving candidates whose reduced canonical graph has at most this
  /// many edges are resolved exactly by factoring; larger residues go to
  /// Monte Carlo. The factoring call budget below caps pathological
  /// cases (on FailedPrecondition the candidate falls through to MC).
  int exact_max_edges = 24;
  int64_t exact_max_calls = 200000;
  /// Theorem 3.1 parameters for the MC trial count: relative error
  /// epsilon with confidence 1 - delta (0.02 / 0.05 -> 7,896 trials).
  double mc_epsilon = 0.02;
  double mc_delta = 0.05;
  int64_t mc_shard_trials = 512;
  /// Root seed. Candidate c simulates on the stream derived from
  /// (seed, canonical hash of c) — never from request order — so cached
  /// and recomputed values are bit-identical.
  uint64_t seed = 42;
  /// Parallelism for canonicalize/bound/resolve fan-out and the MC
  /// shards: 0 = shared pool, 1 = inline, k = cap (McOptions semantics).
  int num_threads = 0;
  ThreadPool* pool = nullptr;
  /// Disable to measure the cache's contribution; results are identical.
  bool enable_cache = true;
  /// Metrics sink (obs/metrics.h), borrowed and must outlive the
  /// service. When set, the pipeline records scheduler counters
  /// (biorank_serve_*_total) and the bounds/MC phase latency histograms
  /// (biorank_serve_bounds_seconds, biorank_serve_mc_seconds) into it;
  /// null (the default) records nothing. api::Server injects its own
  /// registry here; a bare RankingService stays metrics-free.
  obs::Registry* registry = nullptr;
};

/// The result of one top-k request: surviving candidates sorted by
/// descending reliability (ties by ascending NodeId), truncated to k.
struct TopKResult {
  std::vector<RankedCandidate> top;
  RequestStats stats;
};

/// A candidate whose canonicalization the caller already holds. The
/// ingest layer keeps one CanonicalCandidate per live answer across
/// deltas and re-canonicalizes only the answers a delta dirtied; ranking
/// through RankPrepared then skips phase 1 for every clean answer while
/// sharing the bound/prune/resolve pipeline (and therefore bit-identical
/// output) with RankTopK.
struct PreparedCandidate {
  NodeId node = kInvalidNode;  ///< Answer id in the caller's graph.
  const CanonicalCandidate* canonical = nullptr;  ///< Non-null, caller-owned.
};

/// Per-unique-canonical-key resolution state. All resolution work happens
/// at this level: candidates sharing a key share one computation. The
/// blocking pipeline (RankPrepared) builds these transiently; the anytime
/// path (serve/refinement.h) holds them across Refine increments — the
/// entry's `trials`/`tally` pair is the resumable MC position.
struct UniqueState {
  const CanonicalCandidate* canonical = nullptr;
  CacheEntry entry;
  bool have_bounds = false;
  bool exact_attempted = false;  ///< Factoring tried (pay its budget once).
  int64_t trials_spent = 0;      ///< MC trials this caller ran (vs adopted).
  Resolution resolution = Resolution::kPruned;
  Status status;
};

/// Thread-compatible ranking service; one instance owns the process-wide
/// reliability cache. RankTopK / RankPrepared may be called from multiple
/// threads (all request state is local and the cache is sharded); the
/// parallelism of one request fans out across candidates and MC shards.
class RankingService {
 public:
  explicit RankingService(RankingServiceOptions options = {});

  /// Ranks `query_graph`'s answer set by reliability and returns the top
  /// k (clamped to the answer count; k < 1 is an error).
  Result<TopKResult> RankTopK(const QueryGraph& query_graph, int k);

  /// Ranks only `targets` — a distinct subset of `query_graph.answers` —
  /// through the identical pipeline. This is the shard-serving entry: a
  /// shard ranks the answers its partition owns, and because every
  /// resolved value is a pure function of the candidate's canonical key
  /// (never of which other candidates share the request), the values it
  /// returns are bit-identical to the same answers ranked inside the
  /// full, unsharded request. The top-k cut is computed within `targets`
  /// (a weaker cut than the full request's — a shard may resolve
  /// candidates the monolith pruned — but pruning only ever discards
  /// candidates provably outside the local top k, so the shard's top-k
  /// list is exact for its partition).
  Result<TopKResult> RankTopK(const QueryGraph& query_graph,
                              const std::vector<NodeId>& targets, int k);

  /// Same pipeline starting from caller-held canonicalizations (phases
  /// 2-8 of RankTopK). Because every resolved value is a pure function of
  /// the canonical key, the output for a graph is bit-identical whether
  /// the canonicals were computed fresh (RankTopK) or carried across
  /// deltas by the ingest layer.
  Result<TopKResult> RankPrepared(
      const std::vector<PreparedCandidate>& candidates, int k);

  /// Ingest invalidation hook: erases the given canonical keys from the
  /// reliability cache (the keys an applied EvidenceDelta orphaned) and
  /// returns how many live entries were dropped. Everything else in the
  /// cache stays warm — this is the "invalidate exactly the affected
  /// entries instead of flushing" contract. Exactness is per live graph:
  /// a caller's orphan may be isomorphic to an answer of *another* live
  /// graph on this service, in which case that graph re-resolves it on
  /// its next request — wasted work, never a wrong value (keys are pure
  /// functions of the subgraph). A service-wide key refcount would close
  /// this; at current sharing rates the conservative drop is cheaper.
  size_t OnDelta(const std::vector<CanonicalKey>& stale_keys);

  /// Canonicalizes `targets` of `graph` in parallel over the
  /// service-configured pool (pure per target; deterministic at any
  /// thread count), writing `out[i]` for `targets[i]`. RankTopK's phase
  /// 1 and the ingest applier's dirty-answer re-canonicalization share
  /// this one fan-out, so pool selection, parallelism caps, and error
  /// propagation cannot drift apart. `graph_csr`, when non-null, is an
  /// unmasked flat snapshot of `graph` shared read-only by every target's
  /// restriction traversal (RankTopK builds one per request; the ingest
  /// applier maintains one across deltas); null falls back to walking the
  /// pointer graph per target.
  Status CanonicalizeTargets(const QueryGraph& graph,
                             const std::vector<NodeId>& targets,
                             const CanonicalizeOptions& canonicalize,
                             std::vector<CanonicalCandidate>& out,
                             const CsrSnapshot* graph_csr = nullptr);

  // --- Pipeline phases, exposed for the anytime path ------------------
  //
  // RankPrepared is recomposed from these four steps; serve/refinement.h
  // calls them individually so the bounds-only prepare, each Refine
  // increment, and the blocking path execute the *same* code — which is
  // what makes a fully-refined anytime ranking bit-identical to the
  // one-shot answer.

  /// Phases 2–3: dedup `candidates` by canonical repr, look unique keys
  /// up in the cache (when the service cache is enabled), and compute
  /// deterministic bounds for every unique that has none. `unique_index`
  /// maps candidate position -> position in `uniques`. Sequential over
  /// the dedup/lookup (deterministic hit accounting and LRU order),
  /// parallel over the bounds.
  Status BuildUniqueStates(const std::vector<PreparedCandidate>& candidates,
                           std::vector<UniqueState>& uniques,
                           std::vector<int>& unique_index,
                           RequestStats& stats);

  /// Phases 4–5: compute the top-k cut (k-th largest per-candidate lower
  /// bound, resolved values standing in as tight lowers; `k` must already
  /// be clamped to the candidate count) and classify every unresolved
  /// unique: prune below the cut, close tight bounds for free, and append
  /// the rest to `survivors`. Returns the threshold.
  double ClassifySurvivors(const std::vector<int>& unique_index,
                           std::vector<UniqueState>& uniques, int k,
                           RequestStats& stats, std::vector<int>& survivors);

  /// Phase 6a: exact factoring on a survivor whose reduced residue is
  /// within the configured edge budget. At most one attempt per unique
  /// (the result is deterministic, so retrying cannot change it); a
  /// FailedPrecondition (budget blown) falls through to MC silently.
  /// No-op when the entry already has a value or partial MC trials.
  Status TryResolveExact(UniqueState& u);

  /// Phase 6b: advance a survivor's Monte Carlo state by whole shards of
  /// the deterministic schedule PlanTrialShards(McTrialsPerCandidate(),
  /// mc_shard_trials), resuming at the entry's `trials` position.
  /// `trial_budget` <= 0 runs to convergence; otherwise the increment
  /// covers the fewest whole shards totalling >= trial_budget trials.
  /// Because shard i always draws from the stream derived from (seed,
  /// canonical hash, i) and tallies are integers, any increment sequence
  /// reaching full coverage yields the bit-identical converged value the
  /// blocking path computes. On convergence sets the value (clamped to
  /// the bounds) and Resolution::kMonteCarlo; otherwise kRefining.
  Status AdvanceMonteCarlo(UniqueState& u, int64_t trial_budget);

  /// Phase 7: publish every changed unique to the cache in order
  /// (sequential, so the LRU state is a deterministic function of the
  /// request sequence). Partial (still-refining) entries publish too:
  /// their tally/trials prefix is adoptable by any later request on the
  /// same key. No-op when the service cache is disabled.
  void PublishEntries(const std::vector<UniqueState>& uniques);

  /// Validates that `targets` is a distinct subset of `graph.answers`
  /// (the shard-serving and anytime entry contract).
  static Status ValidateTargets(const QueryGraph& graph,
                                const std::vector<NodeId>& targets);

  ReliabilityCache& cache() { return cache_; }
  const ReliabilityCache& cache() const { return cache_; }
  const RankingServiceOptions& options() const { return options_; }

  /// Monte Carlo trial count per irreducible candidate (Theorem 3.1
  /// applied to the configured epsilon/delta).
  int64_t McTrialsPerCandidate() const { return mc_trials_; }

 private:
  /// Resolved once at construction when options.registry is set; all
  /// null otherwise (one branch per record site on the hot path).
  struct Metrics {
    obs::Counter* candidates = nullptr;
    obs::Counter* pruned = nullptr;
    obs::Counter* bound_exact = nullptr;
    obs::Counter* exact = nullptr;
    obs::Counter* monte_carlo = nullptr;
    obs::Counter* mc_trials = nullptr;
    obs::Histogram* bounds_seconds = nullptr;
    obs::Histogram* mc_seconds = nullptr;
  };

  RankingServiceOptions options_;
  ReliabilityCache cache_;
  int64_t mc_trials_ = 0;
  Metrics metrics_;
};

}  // namespace biorank::serve

#endif  // BIORANK_SERVE_RANKING_SERVICE_H_
