#include "storage/codec.h"

namespace biorank::storage {

void EncodeDelta(const ingest::EvidenceDelta& delta, ByteWriter& out) {
  out.PutU64(delta.add_nodes.size());
  for (const auto& op : delta.add_nodes) {
    out.PutDouble(op.p);
    out.PutString(op.label);
    out.PutString(op.entity_set);
  }
  out.PutU64(delta.add_edges.size());
  for (const auto& op : delta.add_edges) {
    out.PutI32(op.from);
    out.PutI32(op.to);
    out.PutDouble(op.q);
  }
  out.PutU64(delta.remove_edges.size());
  for (const auto& op : delta.remove_edges) out.PutI32(op.edge);
  out.PutU64(delta.reweight_edges.size());
  for (const auto& op : delta.reweight_edges) {
    out.PutI32(op.edge);
    out.PutDouble(op.q);
  }
  out.PutU64(delta.revise_node_probs.size());
  for (const auto& op : delta.revise_node_probs) {
    out.PutI32(op.node);
    out.PutDouble(op.p);
  }
  out.PutU64(delta.revise_source_priors.size());
  for (const auto& op : delta.revise_source_priors) {
    out.PutString(op.entity_set);
    out.PutDouble(op.ratio);
  }
}

Status DecodeDelta(ByteReader& in, ingest::EvidenceDelta& delta) {
  uint64_t n = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(double) + 2 * sizeof(uint64_t)));
  delta.add_nodes.resize(static_cast<size_t>(n));
  for (auto& op : delta.add_nodes) {
    BIORANK_RETURN_IF_ERROR(in.GetDouble(op.p));
    BIORANK_RETURN_IF_ERROR(in.GetString(op.label));
    BIORANK_RETURN_IF_ERROR(in.GetString(op.entity_set));
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, 2 * sizeof(int32_t) + sizeof(double)));
  delta.add_edges.resize(static_cast<size_t>(n));
  for (auto& op : delta.add_edges) {
    BIORANK_RETURN_IF_ERROR(in.GetI32(op.from));
    BIORANK_RETURN_IF_ERROR(in.GetI32(op.to));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(op.q));
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(int32_t)));
  delta.remove_edges.resize(static_cast<size_t>(n));
  for (auto& op : delta.remove_edges) {
    BIORANK_RETURN_IF_ERROR(in.GetI32(op.edge));
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(int32_t) + sizeof(double)));
  delta.reweight_edges.resize(static_cast<size_t>(n));
  for (auto& op : delta.reweight_edges) {
    BIORANK_RETURN_IF_ERROR(in.GetI32(op.edge));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(op.q));
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(int32_t) + sizeof(double)));
  delta.revise_node_probs.resize(static_cast<size_t>(n));
  for (auto& op : delta.revise_node_probs) {
    BIORANK_RETURN_IF_ERROR(in.GetI32(op.node));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(op.p));
  }
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(uint64_t) + sizeof(double)));
  delta.revise_source_priors.resize(static_cast<size_t>(n));
  for (auto& op : delta.revise_source_priors) {
    BIORANK_RETURN_IF_ERROR(in.GetString(op.entity_set));
    BIORANK_RETURN_IF_ERROR(in.GetDouble(op.ratio));
  }
  return Status::OK();
}

void EncodeQuery(const ExploratoryQuery& query, ByteWriter& out) {
  out.PutString(query.entity_set);
  out.PutString(query.attribute);
  out.PutString(query.value);
  out.PutU64(query.output_sets.size());
  for (const auto& set : query.output_sets) out.PutString(set);
}

Status DecodeQuery(ByteReader& in, ExploratoryQuery& query) {
  BIORANK_RETURN_IF_ERROR(in.GetString(query.entity_set));
  BIORANK_RETURN_IF_ERROR(in.GetString(query.attribute));
  BIORANK_RETURN_IF_ERROR(in.GetString(query.value));
  uint64_t n = 0;
  BIORANK_RETURN_IF_ERROR(in.GetCount(n, sizeof(uint64_t)));
  query.output_sets.resize(static_cast<size_t>(n));
  for (auto& set : query.output_sets) {
    BIORANK_RETURN_IF_ERROR(in.GetString(set));
  }
  return Status::OK();
}

}  // namespace biorank::storage
