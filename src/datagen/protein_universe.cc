#include "datagen/protein_universe.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace biorank {

namespace {

/// Synthesizes an "ABCC8"-style gene symbol: 3-5 uppercase letters plus a
/// digit suffix, unique via the running counter.
std::string MakeGeneSymbol(Rng& rng, int counter) {
  int letters = 3 + static_cast<int>(rng.NextBounded(3));
  std::string symbol;
  for (int i = 0; i < letters; ++i) {
    symbol += static_cast<char>('A' + rng.NextBounded(26));
  }
  symbol += std::to_string(counter % 10);
  return symbol;
}

/// Draws `count` distinct values from `pool` (without replacement).
std::vector<int> SampleDistinct(const std::vector<int>& pool, int count,
                                Rng& rng) {
  std::vector<int> shuffled = pool;
  rng.Shuffle(shuffled);
  if (count > static_cast<int>(shuffled.size())) {
    count = static_cast<int>(shuffled.size());
  }
  shuffled.resize(count);
  return shuffled;
}

}  // namespace

ProteinUniverse ProteinUniverse::Generate(const UniverseOptions& options) {
  ProteinUniverse universe;
  universe.options_ = options;
  Rng rng(options.seed);
  universe.ontology_ = GoOntology::Generate(options.num_go_terms, rng);

  // Per-family shared function pools: proteins in a family draw their true
  // functions mostly from the family pool (sequence similarity implies
  // functional similarity — the premise of BLAST-based annotation
  // transfer).
  std::vector<int> all_terms(options.num_go_terms);
  for (int i = 0; i < options.num_go_terms; ++i) all_terms[i] = i;
  std::vector<std::vector<int>> family_pools;
  for (int f = 0; f < options.num_families; ++f) {
    family_pools.push_back(
        SampleDistinct(all_terms, options.family_function_pool, rng));
  }

  universe.families_.assign(options.num_families, {});
  std::vector<bool> family_sparse(options.num_families, false);
  int symbol_counter = 0;
  std::set<std::string> used_symbols;

  auto add_protein = [&](int family, StudyLevel level) -> int {
    Protein protein;
    int index = static_cast<int>(universe.proteins_.size());
    char accession[16];
    std::snprintf(accession, sizeof(accession), "BRP%05d", index);
    protein.accession = accession;
    do {
      protein.gene_symbol = MakeGeneSymbol(rng, symbol_counter++);
    } while (!used_symbols.insert(protein.gene_symbol).second);
    protein.family = family;
    protein.study_level = level;

    // Background proteins preferentially share the functions already
    // curated for earlier family members (homologs really do have the
    // same biology) — this is the redundancy that makes counting-based
    // ranking work on well-known functions (Figure 9a).
    std::vector<int> pool = family_pools[family];
    if (level == StudyLevel::kBackground) {
      std::set<int> established;
      for (int member : universe.families_[family]) {
        const Protein& peer = universe.proteins_[member];
        established.insert(peer.curated_functions.begin(),
                           peer.curated_functions.end());
      }
      std::vector<int> weighted = pool;
      for (int term : pool) {
        if (established.count(term) > 0) {
          weighted.push_back(term);  // Weight 3 via duplication.
          weighted.push_back(term);
        }
      }
      pool = std::move(weighted);
    }
    int curated = 0;
    switch (level) {
      case StudyLevel::kWellStudied:
        curated = static_cast<int>(
            rng.NextInt(options.min_curated, options.max_curated));
        break;
      case StudyLevel::kBackground:
        curated = static_cast<int>(
            family_sparse[family]
                ? rng.NextInt(options.sparse_background_min_curated,
                              options.sparse_background_max_curated)
                : rng.NextInt(options.background_min_curated,
                              options.background_max_curated));
        break;
      case StudyLevel::kHypothetical:
        curated = 0;
        break;
    }
    // Weighted draw without replacement (duplicates in `pool` act as
    // weights).
    {
      std::set<int> chosen;
      for (int tries = 0;
           static_cast<int>(chosen.size()) < curated && tries < 800 &&
           !pool.empty();
           ++tries) {
        chosen.insert(pool[rng.NextBounded(pool.size())]);
      }
      protein.curated_functions.assign(chosen.begin(), chosen.end());
    }

    // Extra true-but-uncurated functions (weak leakage via predictions).
    std::set<int> taken(protein.curated_functions.begin(),
                        protein.curated_functions.end());
    int extra = static_cast<int>(
        rng.NextInt(options.min_extra_true, options.max_extra_true));
    for (int tries = 0; extra > 0 && tries < 200; ++tries) {
      int term = pool[rng.NextBounded(pool.size())];
      if (taken.insert(term).second) --extra;
    }
    protein.true_functions.assign(taken.begin(), taken.end());

    universe.families_[family].push_back(index);
    universe.by_name_[protein.gene_symbol] = index;
    universe.by_name_[protein.accession] = index;
    universe.proteins_.push_back(std::move(protein));
    return index;
  };

  // Well-studied proteins, one per family for the first families so their
  // BLAST neighbourhoods don't overlap too much.
  for (int i = 0; i < options.num_well_studied; ++i) {
    int family = i % options.num_families;
    universe.well_studied_.push_back(
        add_protein(family, StudyLevel::kWellStudied));
  }
  // Hypothetical proteins in the later families, which are smaller and
  // sparsely annotated.
  for (int i = 0; i < options.num_hypothetical; ++i) {
    int family = (options.num_well_studied + i) % options.num_families;
    family_sparse[family] = true;
    universe.hypothetical_.push_back(
        add_protein(family, StudyLevel::kHypothetical));
  }
  // Background proteins fill every family to its target size.
  for (int f = 0; f < options.num_families; ++f) {
    int target = family_sparse[f] ? options.hypothetical_family_size
                                  : options.proteins_per_family;
    while (static_cast<int>(universe.families_[f].size()) < target) {
      add_protein(f, StudyLevel::kBackground);
    }
  }

  // Recently-published functions for the first few well-studied proteins:
  // true functions of the protein that no curated source lists. Drawn from
  // *outside* the family pool — genuinely novel biology that homology
  // transfer cannot reach, so the only evidence is the single fresh
  // experimental record (Figure 9b's shape).
  for (size_t i = 0; i < options.recent_function_counts.size() &&
                     i < universe.well_studied_.size();
       ++i) {
    Protein& protein = universe.proteins_[universe.well_studied_[i]];
    std::set<int> family_pool(family_pools[protein.family].begin(),
                              family_pools[protein.family].end());
    std::set<int> chosen;
    int wanted = options.recent_function_counts[i];
    for (int tries = 0; static_cast<int>(chosen.size()) < wanted &&
                        tries < 500;
         ++tries) {
      int term = static_cast<int>(rng.NextBounded(options.num_go_terms));
      if (family_pool.count(term) == 0) chosen.insert(term);
    }
    protein.recent_functions.assign(chosen.begin(), chosen.end());
    for (int term : protein.recent_functions) {
      if (std::find(protein.true_functions.begin(),
                    protein.true_functions.end(),
                    term) == protein.true_functions.end()) {
        protein.true_functions.push_back(term);
      }
    }
  }

  // Expert-validated functions for hypothetical proteins ("generally only
  // one in bacteria", Table 3).
  for (int index : universe.hypothetical_) {
    Protein& protein = universe.proteins_[index];
    const std::vector<int>& pool = family_pools[protein.family];
    protein.expert_functions = {pool[rng.NextBounded(pool.size())]};
    protein.true_functions.push_back(protein.expert_functions[0]);
  }

  return universe;
}

const std::vector<int>& ProteinUniverse::FamilyMembers(int family) const {
  return families_[family];
}

Result<int> ProteinUniverse::FindProtein(
    const std::string& symbol_or_accession) const {
  auto it = by_name_.find(symbol_or_accession);
  if (it == by_name_.end()) {
    return Status::NotFound("protein: " + symbol_or_accession);
  }
  return it->second;
}

}  // namespace biorank
