#include "core/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace biorank {

namespace {

constexpr const char* kHeader = "biorank-graph 1";

std::string FormatProb(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

}  // namespace

std::string SerializeQueryGraph(const QueryGraph& query_graph) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  std::ostringstream out;
  out << kHeader << "\n";

  // Dense renumbering of alive nodes.
  std::vector<NodeId> dense(graph.node_capacity(), kInvalidNode);
  NodeId next = 0;
  for (NodeId id : graph.AliveNodes()) dense[id] = next++;

  for (NodeId id : graph.AliveNodes()) {
    const GraphNode& node = graph.node(id);
    out << "node " << dense[id] << " " << FormatProb(node.p) << " "
        << (node.entity_set.empty() ? "-" : node.entity_set);
    if (!node.label.empty()) out << " " << node.label;
    out << "\n";
  }
  for (EdgeId e : graph.AliveEdges()) {
    const GraphEdge& edge = graph.edge(e);
    out << "edge " << dense[edge.from] << " " << dense[edge.to] << " "
        << FormatProb(edge.q) << "\n";
  }
  out << "source " << dense[query_graph.source] << "\n";
  out << "answers";
  for (NodeId t : query_graph.answers) out << " " << dense[t];
  out << "\n";
  return out.str();
}

Result<QueryGraph> ParseQueryGraph(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kHeader) {
    return Status::InvalidArgument("graph io: missing or bad header");
  }

  QueryGraph result;
  std::vector<NodeId> id_map;  // dense file id -> graph id.
  bool have_source = false;

  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::istringstream fields(trimmed);
    std::string directive;
    fields >> directive;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("graph io: line " +
                                     std::to_string(line_number) + ": " +
                                     why);
    };
    if (directive == "node") {
      int64_t id;
      double p;
      std::string entity_set;
      if (!(fields >> id >> p >> entity_set)) {
        return fail("malformed node");
      }
      if (id != static_cast<int64_t>(id_map.size())) {
        return fail("node ids must be dense and ascending");
      }
      std::string label;
      std::getline(fields, label);
      label = std::string(Trim(label));
      if (entity_set == "-") entity_set.clear();
      id_map.push_back(result.graph.AddNode(p, label, entity_set));
    } else if (directive == "edge") {
      int64_t from, to;
      double q;
      if (!(fields >> from >> to >> q)) return fail("malformed edge");
      if (from < 0 || to < 0 ||
          from >= static_cast<int64_t>(id_map.size()) ||
          to >= static_cast<int64_t>(id_map.size())) {
        return fail("edge endpoint out of range");
      }
      Result<EdgeId> added =
          result.graph.AddEdge(id_map[from], id_map[to], q);
      if (!added.ok()) return added.status();
    } else if (directive == "source") {
      int64_t id;
      if (!(fields >> id) || id < 0 ||
          id >= static_cast<int64_t>(id_map.size())) {
        return fail("bad source id");
      }
      result.source = id_map[id];
      have_source = true;
    } else if (directive == "answers") {
      int64_t id;
      while (fields >> id) {
        if (id < 0 || id >= static_cast<int64_t>(id_map.size())) {
          return fail("answer id out of range");
        }
        result.answers.push_back(id_map[id]);
      }
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  if (!have_source) {
    return Status::InvalidArgument("graph io: no source line");
  }
  BIORANK_RETURN_IF_ERROR(result.Validate());
  return result;
}

Status WriteQueryGraphFile(const QueryGraph& query_graph,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("graph io: cannot open " + path);
  }
  out << SerializeQueryGraph(query_graph);
  if (!out) return Status::Internal("graph io: write failed: " + path);
  return Status::OK();
}

Result<QueryGraph> ReadQueryGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("graph io: cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseQueryGraph(buffer.str());
}

}  // namespace biorank
