// Checked narrowing casts for the flat CSR snapshot layer. The snapshot
// packs node and edge ids into uint32_t arrays; a graph past 2^32 nodes
// or edges must fail loudly at build time, never truncate silently into
// aliased ids.

#ifndef BIORANK_UTIL_CHECKED_CAST_H_
#define BIORANK_UTIL_CHECKED_CAST_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace biorank {

/// True iff `value` is representable as uint32_t (non-negative and at
/// most UINT32_MAX). Works for any integral type without triggering
/// sign-compare warnings.
template <typename T>
constexpr bool FitsUint32(T value) {
  static_assert(std::is_integral_v<T>, "FitsUint32 takes integers");
  if constexpr (std::is_signed_v<T>) {
    if (value < 0) return false;
    return static_cast<uint64_t>(value) <= UINT64_C(0xFFFFFFFF);
  } else {
    return static_cast<uint64_t>(value) <= UINT64_C(0xFFFFFFFF);
  }
}

/// Casts `value` to uint32_t, aborting with a message naming `context`
/// when the value does not fit. Overflow here is a programming error (a
/// graph the snapshot format cannot represent), not a runtime state to
/// propagate: every caller would have to treat it as fatal anyway, and a
/// Status return on the hot build path would tax the common case.
template <typename T>
inline uint32_t CheckedUint32Cast(T value, const char* context) {
  if (!FitsUint32(value)) {
    std::fprintf(stderr,
                 "biorank: checked cast to uint32_t overflowed in %s\n",
                 context != nullptr ? context : "(unknown)");
    std::abort();
  }
  return static_cast<uint32_t>(value);
}

}  // namespace biorank

#endif  // BIORANK_UTIL_CHECKED_CAST_H_
