#include "eval/average_precision.h"

namespace biorank {

Result<double> AveragePrecision(const std::vector<bool>& relevance) {
  int relevant_total = 0;
  for (bool r : relevance) relevant_total += r ? 1 : 0;
  if (relevant_total == 0) {
    return Status::InvalidArgument(
        "average precision undefined: no relevant items");
  }
  double sum = 0.0;
  int relevant_so_far = 0;
  for (size_t i = 0; i < relevance.size(); ++i) {
    if (relevance[i]) {
      ++relevant_so_far;
      sum += static_cast<double>(relevant_so_far) /
             static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant_total);
}

Result<double> PrecisionAt(const std::vector<bool>& relevance, int i) {
  if (i < 1 || static_cast<size_t>(i) > relevance.size()) {
    return Status::OutOfRange("precision cut out of range");
  }
  int relevant = 0;
  for (int j = 0; j < i; ++j) relevant += relevance[j] ? 1 : 0;
  return static_cast<double>(relevant) / static_cast<double>(i);
}

}  // namespace biorank
