#include "core/reliability_mc.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "core/trial_bound.h"
#include "util/parallel.h"

namespace biorank {
namespace {

TEST(McTest, SingleCertainEdgeIsAlwaysReached) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 1.0);
  QueryGraph g = std::move(b).Build({t});
  McOptions options;
  options.trials = 100;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().scores[t], 1.0);
  EXPECT_DOUBLE_EQ(r.value().scores[g.source], 1.0);
}

TEST(McTest, ZeroEdgeNeverReached) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.0);
  QueryGraph g = std::move(b).Build({t});
  McOptions options;
  options.trials = 100;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().scores[t], 0.0);
}

TEST(McTest, ConvergesToFig4aReliability) {
  QueryGraph g = MakeFig4aSerialParallel();
  McOptions options;
  options.trials = 200000;
  options.seed = 7;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scores[g.answers[0]], 0.5, 0.005);
}

TEST(McTest, ConvergesToBridgeReliability) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions options;
  options.trials = 200000;
  options.seed = 11;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scores[g.answers[0]], 15.0 / 32.0, 0.005);
}

TEST(McTest, NaiveAndTraversalAgreeInDistribution) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions traversal;
  traversal.trials = 100000;
  traversal.seed = 13;
  traversal.mode = McOptions::Mode::kTraversal;
  McOptions naive = traversal;
  naive.mode = McOptions::Mode::kNaive;
  Result<McEstimate> rt = EstimateReliabilityMc(g, traversal);
  Result<McEstimate> rn = EstimateReliabilityMc(g, naive);
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_NEAR(rt.value().scores[g.answers[0]],
              rn.value().scores[g.answers[0]], 0.01);
}

TEST(McTest, UncertainTargetNodeCountsPresence) {
  // r(t) = P[reachable AND present] = q * p = 0.5 * 0.6.
  QueryGraphBuilder b;
  NodeId t = b.Node(0.6, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  McOptions options;
  options.trials = 200000;
  options.seed = 17;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scores[t], 0.3, 0.005);
}

TEST(McTest, DeterministicForFixedSeed) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions options;
  options.trials = 5000;
  options.seed = 99;
  Result<McEstimate> r1 = EstimateReliabilityMc(g, options);
  Result<McEstimate> r2 = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().scores, r2.value().scores);
}

TEST(McTest, DifferentSeedsDiffer) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions a;
  a.trials = 5000;
  a.seed = 1;
  McOptions b = a;
  b.seed = 2;
  Result<McEstimate> r1 = EstimateReliabilityMc(g, a);
  Result<McEstimate> r2 = EstimateReliabilityMc(g, b);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1.value().scores[g.answers[0]], r2.value().scores[g.answers[0]]);
}

TEST(McTest, MultithreadedMatchesAccuracy) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions options;
  options.trials = 100000;
  options.seed = 23;
  options.num_threads = 4;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scores[g.answers[0]], 15.0 / 32.0, 0.01);
}

TEST(McTest, MultithreadedIsDeterministicGivenThreadCount) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions options;
  options.trials = 20000;
  options.seed = 29;
  options.num_threads = 3;
  Result<McEstimate> r1 = EstimateReliabilityMc(g, options);
  Result<McEstimate> r2 = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().scores, r2.value().scores);
}

TEST(McTest, BitIdenticalAcrossThreadCounts) {
  // The sharded engine's contract: for a fixed seed the estimate depends
  // only on (seed, trials, shard_trials, mode), never on thread count.
  // Trials span many shards (20000 / 512 -> 40 shards) so real work
  // interleaves differently per pool, yet the counts must agree exactly.
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions options;
  options.trials = 20000;
  options.seed = 29;
  options.num_threads = 1;  // Pure inline single-thread reference.
  Result<McEstimate> reference = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(reference.ok());

  for (int threads : {2, 8}) {
    ThreadPool pool(threads - 1);
    McOptions parallel = options;
    parallel.num_threads = threads;
    parallel.pool = &pool;
    Result<McEstimate> r = EstimateReliabilityMc(g, parallel);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().scores, reference.value().scores)
        << "thread count " << threads << " changed the estimate";
  }
}

TEST(McTest, ShardTrialsIsPartOfTheReproducibilityKey) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions a;
  a.trials = 5000;
  a.seed = 3;
  a.shard_trials = 512;
  McOptions b = a;
  b.shard_trials = 100;
  Result<McEstimate> ra = EstimateReliabilityMc(g, a);
  Result<McEstimate> rb = EstimateReliabilityMc(g, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Different shard schedules draw from different stream sets.
  EXPECT_NE(ra.value().scores[g.answers[0]], rb.value().scores[g.answers[0]]);
  // But both still converge to the same quantity.
  EXPECT_NEAR(ra.value().scores[g.answers[0]],
              rb.value().scores[g.answers[0]], 0.05);
}

TEST(McTest, AutoThreadsMatchesExplicitPool) {
  QueryGraph g = MakeFig4aSerialParallel();
  McOptions auto_options;
  auto_options.trials = 4000;
  auto_options.seed = 41;
  auto_options.num_threads = 0;  // Shared pool, whatever its size.
  ThreadPool pool(3);
  McOptions pool_options = auto_options;
  pool_options.pool = &pool;
  Result<McEstimate> r1 = EstimateReliabilityMc(g, auto_options);
  Result<McEstimate> r2 = EstimateReliabilityMc(g, pool_options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().scores, r2.value().scores);
}

TEST(McTest, NaiveModeIsAlsoThreadCountInvariant) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  McOptions options;
  options.trials = 6000;
  options.seed = 53;
  options.mode = McOptions::Mode::kNaive;
  options.num_threads = 1;
  Result<McEstimate> reference = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(reference.ok());
  ThreadPool pool(3);
  McOptions parallel = options;
  parallel.num_threads = 4;
  parallel.pool = &pool;
  Result<McEstimate> r = EstimateReliabilityMc(g, parallel);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().scores, reference.value().scores);
}

TEST(McTest, RejectsNonPositiveTrials) {
  QueryGraph g = MakeFig4aSerialParallel();
  McOptions options;
  options.trials = 0;
  EXPECT_FALSE(EstimateReliabilityMc(g, options).ok());
}

TEST(McTest, RejectsInvalidThreadCount) {
  QueryGraph g = MakeFig4aSerialParallel();
  McOptions options;
  options.num_threads = -1;  // 0 means "full shared pool" and is valid.
  EXPECT_FALSE(EstimateReliabilityMc(g, options).ok());
}

TEST(McTest, RejectsInvalidShardTrials) {
  QueryGraph g = MakeFig4aSerialParallel();
  McOptions options;
  options.shard_trials = 0;
  EXPECT_FALSE(EstimateReliabilityMc(g, options).ok());
}

TEST(McTest, RejectsInvalidQueryGraph) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0);
  QueryGraph g = std::move(b).Build({t, t});  // Duplicate answer.
  EXPECT_FALSE(EstimateReliabilityMc(g).ok());
}

TEST(McTest, HandlesCyclesWithoutHanging) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, t, 0.5);
  b.Edge(t, a, 0.5);  // Cycle a <-> t.
  QueryGraph g = std::move(b).Build({t});
  McOptions options;
  options.trials = 10000;
  Result<McEstimate> r = EstimateReliabilityMc(g, options);
  ASSERT_TRUE(r.ok());
  // Reliability of t: edge(s,a) and edge(a,t) both present = 0.25. The
  // cycle back-edge changes nothing.
  EXPECT_NEAR(r.value().scores[t], 0.25, 0.02);
}

TEST(TrialBoundTest, PaperExampleRoundsBelowTenThousand) {
  Result<int64_t> n = RequiredMcTrials(0.02, 0.05);
  ASSERT_TRUE(n.ok());
  // Appendix A with eps=.02, delta=.05 gives 7,896; the paper rounds to
  // "10,000 trials should be enough".
  EXPECT_EQ(n.value(), 7896);
  EXPECT_LE(n.value(), 10000);
}

TEST(TrialBoundTest, MonotoneInEpsilonAndDelta) {
  int64_t loose = RequiredMcTrials(0.05, 0.05).value();
  int64_t tight_eps = RequiredMcTrials(0.01, 0.05).value();
  int64_t tight_delta = RequiredMcTrials(0.05, 0.001).value();
  EXPECT_GT(tight_eps, loose);
  EXPECT_GT(tight_delta, loose);
}

TEST(TrialBoundTest, RejectsBadArguments) {
  EXPECT_FALSE(RequiredMcTrials(0.0, 0.05).ok());
  EXPECT_FALSE(RequiredMcTrials(-0.1, 0.05).ok());
  EXPECT_FALSE(RequiredMcTrials(1.5, 0.05).ok());
  EXPECT_FALSE(RequiredMcTrials(0.02, 0.0).ok());
  EXPECT_FALSE(RequiredMcTrials(0.02, 1.0).ok());
}

}  // namespace
}  // namespace biorank
