#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/parallel.h"

namespace biorank::shard {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

/// Accounts one query attempt against the inflight cap. Construction
/// admits or rejects; destruction releases the slot either way (a
/// rejected attempt occupies its slot only for the duration of the
/// rejection, so the gauge never drifts).
class ShardRouter::AdmissionTicket {
 public:
  explicit AdmissionTicket(ShardRouter& router) : router_(router) {
    uint64_t now =
        router_.inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    admitted_ = router_.options_.max_inflight == 0 ||
                now <= router_.options_.max_inflight;
    if (admitted_) {
      router_.queries_.fetch_add(1, std::memory_order_relaxed);
      uint64_t peak = router_.peak_inflight_.load(std::memory_order_relaxed);
      while (now > peak && !router_.peak_inflight_.compare_exchange_weak(
                               peak, now, std::memory_order_relaxed)) {
      }
    } else {
      router_.admission_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ~AdmissionTicket() {
    router_.inflight_.fetch_sub(1, std::memory_order_relaxed);
  }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const { return admitted_; }

 private:
  ShardRouter& router_;
  bool admitted_ = false;
};

ShardRouter::ShardRouter(api::Server& front, Transport& transport,
                         ShardRouterOptions options)
    : front_(front),
      transport_(transport),
      options_(options),
      partitioner_(options.partition),
      obs_registry_(&front.registry()) {
  rpc_seconds_ = obs_registry_->GetHistogram(
      "biorank_shard_rpc_seconds", "Shard RPC latency, all shards pooled");
  const uint32_t num_shards = transport_.shard_count();
  shard_rpc_seconds_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_rpc_seconds_.push_back(obs_registry_->GetHistogram(
        "biorank_shard_rpc_shard" + std::to_string(s) + "_seconds",
        "Shard RPC latency, shard " + std::to_string(s)));
  }
  // RouterStats stays the atomic source of truth; the collector is its
  // snapshot view on the shared exporter surface.
  collector_token_ = obs_registry_->AddCollector([this](
                                                     obs::Snapshot& snapshot) {
    snapshot.counters.push_back({"biorank_shard_queries_total",
                                 "Router queries admitted",
                                 queries_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back({"biorank_shard_queries_ok_total",
                                 "Router queries that returned a merge",
                                 queries_ok_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back(
        {"biorank_shard_admission_rejected_total",
         "Router queries rejected by the inflight cap",
         admission_rejected_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back({"biorank_shard_calls_total",
                                 "Transport calls issued",
                                 shard_calls_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back(
        {"biorank_shard_errors_total", "Transport calls that failed",
         shard_errors_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back(
        {"biorank_shard_empty_slices_total",
         "Shards skipped because they owned no answers",
         empty_slices_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back(
        {"biorank_shard_merged_candidates_total",
         "Candidates gathered from shard replies",
         merged_candidates_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back(
        {"biorank_shard_short_circuited_total",
         "Shards retired by the bounds cutoff",
         shards_short_circuited_.load(std::memory_order_relaxed)});
    snapshot.counters.push_back(
        {"biorank_shard_short_circuited_candidates_total",
         "Unmerged leftovers of bound-retired shards",
         short_circuited_candidates_.load(std::memory_order_relaxed)});
    snapshot.gauges.push_back(
        {"biorank_shard_inflight", "Router queries being served right now",
         static_cast<double>(inflight_.load(std::memory_order_relaxed))});
    snapshot.gauges.push_back(
        {"biorank_shard_peak_inflight", "Peak concurrent router queries",
         static_cast<double>(peak_inflight_.load(std::memory_order_relaxed))});
  });
}

ShardRouter::~ShardRouter() {
  obs_registry_->RemoveCollector(collector_token_);
}

Status ShardRouter::ScatterGather(const QueryGraph& graph, int top_k,
                                  api::QueryResponse& response) {
  const uint32_t num_shards = transport_.shard_count();
  if (partitioner_.num_shards() != num_shards) {
    return Status::InvalidArgument(
        "shard: partitioner is configured for " +
        std::to_string(partitioner_.num_shards()) +
        " shards but the transport has " + std::to_string(num_shards));
  }
  const int answers = static_cast<int>(graph.answers.size());
  if (answers == 0) return Status::OK();  // Nothing to rank.
  const int k = top_k > 0 ? std::min(top_k, answers) : answers;

  // Partition, then scatter to every shard that owns answers. Shards
  // with empty slices are never called — on a socket transport that is
  // a saved round trip, here it is a saved graph walk.
  std::vector<std::vector<NodeId>> slices = partitioner_.PartitionAnswers(graph);
  std::vector<uint32_t> active;
  active.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (!slices[s].empty()) active.push_back(s);
  }
  empty_slices_.fetch_add(num_shards - active.size(),
                          std::memory_order_relaxed);

  std::vector<ShardReply> replies(active.size());
  std::vector<Status> errors(active.size());
  shard_calls_.fetch_add(active.size(), std::memory_order_relaxed);
  // Scatter workers run on pool threads with no inherited trace
  // binding, so the parent span index crosses the seam explicitly
  // inside each ShardQuery. Tracing and latency recording happen after
  // (around) each call — never inside any ranking decision.
  obs::Trace* trace = obs::CurrentTrace();
  obs::SpanScope scatter(trace, "shard.scatter");
  scatter.Counter("shards", static_cast<int64_t>(active.size()));
  const int scatter_parent = scatter.index();
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(active.size()),
      [&](int, int64_t i) {
        const uint32_t s = active[static_cast<size_t>(i)];
        ShardQuery query;
        query.graph = &graph;
        query.answers = std::move(slices[s]);
        query.options.top_k = k;
        query.options.trace = trace;
        query.trace_parent = scatter_parent;
        SteadyClock::time_point call_start = SteadyClock::now();
        Result<ShardReply> reply = transport_.Call(s, query);
        const double call_s = SecondsSince(call_start);
        rpc_seconds_->Observe(call_s);
        if (s < shard_rpc_seconds_.size()) {
          shard_rpc_seconds_[s]->Observe(call_s);
        }
        if (reply.ok()) {
          replies[static_cast<size_t>(i)] = std::move(reply.value());
        } else {
          errors[static_cast<size_t>(i)] = reply.status();
        }
      },
      ThreadPool::kUnlimitedParallelism);
  scatter.End();

  uint64_t failed = 0;
  for (const Status& status : errors) {
    if (!status.ok()) ++failed;
  }
  if (failed > 0) {
    shard_errors_.fetch_add(failed, std::memory_order_relaxed);
    // First (lowest shard index) error wins — a partial merge is never
    // returned. Scheduling-class codes (deadline, cancellation,
    // backpressure) pass through so callers can react in kind; anything
    // else is wrapped as the router's typed unavailability.
    for (size_t i = 0; i < errors.size(); ++i) {
      if (!errors[i].ok()) {
        const std::string detail = "shard " + std::to_string(active[i]) +
                                   " failed: " + errors[i].ToString();
        switch (errors[i].code()) {
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kCancelled:
          case StatusCode::kResourceExhausted:
            return Status(errors[i].code(), detail);
          default:
            return Status::Unavailable(detail);
        }
      }
    }
  }

  // Gather accounting + the k-way merge in serve::RanksBefore order —
  // the monolith's phase-8 comparator, so cross-shard ties break
  // identically. Per-shard lists are themselves RanksBefore-sorted, so
  // the merge consumes a prefix of each and stops after k takes.
  obs::SpanScope merge(trace, "shard.merge");
  size_t gathered = 0;
  for (const ShardReply& reply : replies) gathered += reply.top.size();
  merged_candidates_.fetch_add(gathered, std::memory_order_relaxed);
  merge.Counter("gathered", static_cast<int64_t>(gathered));

  std::vector<size_t> next(replies.size(), 0);
  std::vector<serve::RankedCandidate> merged;
  merged.reserve(static_cast<size_t>(k));
  while (static_cast<int>(merged.size()) < k) {
    int best = -1;
    for (size_t i = 0; i < replies.size(); ++i) {
      if (next[i] >= replies[i].top.size()) continue;
      if (best < 0 ||
          serve::RanksBefore(replies[i].top[next[i]],
                             replies[static_cast<size_t>(best)]
                                 .top[next[static_cast<size_t>(best)]])) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // Union exhausted (k exceeds it).
    merged.push_back(
        replies[static_cast<size_t>(best)].top[next[static_cast<size_t>(best)]]);
    ++next[static_cast<size_t>(best)];
  }

  // Bounds-based short-circuit accounting (Bernecker et al.): with k
  // candidates merged, the global cutoff L is the k-th largest lower
  // bound over everything gathered — at least k candidates hold
  // reliability >= lower >= L, so the k-th best reliability is >= L. A
  // shard whose best remaining upper bound is below L provably cannot
  // place another candidate (reliability <= upper < L), so its leftover
  // list — and, on a refinement transport, its remaining MC work — is
  // retired. Single-round gather makes this an observable counter; the
  // same L is what a streaming protocol would push back to the shards.
  if (static_cast<int>(merged.size()) == k && gathered > merged.size()) {
    std::vector<double> lowers;
    lowers.reserve(gathered);
    for (const ShardReply& reply : replies) {
      for (const serve::RankedCandidate& candidate : reply.top) {
        lowers.push_back(candidate.lower);
      }
    }
    std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                     std::greater<double>());
    const double cutoff = lowers[static_cast<size_t>(k - 1)];
    for (size_t i = 0; i < replies.size(); ++i) {
      const size_t remaining = replies[i].top.size() - next[i];
      if (remaining == 0) continue;
      double best_upper = 0.0;
      for (size_t j = next[i]; j < replies[i].top.size(); ++j) {
        best_upper = std::max(best_upper, replies[i].top[j].upper);
      }
      if (best_upper < cutoff) {
        shards_short_circuited_.fetch_add(1, std::memory_order_relaxed);
        short_circuited_candidates_.fetch_add(remaining,
                                              std::memory_order_relaxed);
      }
    }
  }

  response.top.reserve(merged.size());
  for (const serve::RankedCandidate& candidate : merged) {
    api::RankedAnswer answer;
    answer.node = candidate.node;
    answer.label = graph.graph.node(candidate.node).label;
    answer.reliability = candidate.reliability;
    answer.lower = candidate.lower;
    answer.upper = candidate.upper;
    answer.exact = candidate.exact;
    answer.resolution = candidate.resolution;
    response.top.push_back(std::move(answer));
  }
  for (const ShardReply& reply : replies) {
    response.stats.Add(reply.stats);
  }
  return Status::OK();
}

api::Result<api::QueryResponse> ShardRouter::Query(
    const api::QueryRequest& request) {
  AdmissionTicket ticket(*this);
  if (!ticket.admitted()) {
    return Status::ResourceExhausted(
        "shard: router at its admission cap of " +
        std::to_string(options_.max_inflight) + " inflight queries");
  }
  if (request.options.seed != 0 &&
      request.options.seed != front_.options().ranking.seed) {
    return Status::InvalidArgument(
        "shard: the fleet serves through per-shard canonical caches and "
        "must use the configured MC seed (leave options.seed = 0)");
  }
  SteadyClock::time_point start = SteadyClock::now();
  const SteadyClock::time_point deadline =
      request.options.DeadlineOrMax(start);
  // Binds the caller's trace (if any) so the front server's
  // materialization span and the scatter/merge/rpc spans all nest
  // under one shard.query root.
  obs::SpanScope root(request.options.trace, "shard.query");
  api::QueryRequest probe = request;
  probe.options.rank = false;
  api::Result<api::QueryResponse> materialized = front_.Query(probe);
  if (!materialized.ok()) return materialized.status();
  api::QueryResponse response = std::move(materialized.value());
  if (request.options.rank) {
    // The router enforces the request deadline at scatter time: a query
    // whose deadline fired during materialization never fans out.
    if (SteadyClock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "shard: request deadline passed before the scatter");
    }
    SteadyClock::time_point rank_start = SteadyClock::now();
    Status ranked = ScatterGather(response.result.query_graph,
                                  request.options.top_k, response);
    if (!ranked.ok()) return ranked;
    response.timing.rank_s = SecondsSince(rank_start);
  }
  response.timing.total_s = SecondsSince(start);
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

api::Result<api::QueryResponse> ShardRouter::RankGraph(const QueryGraph& graph,
                                                       int top_k) {
  AdmissionTicket ticket(*this);
  if (!ticket.admitted()) {
    return Status::ResourceExhausted(
        "shard: router at its admission cap of " +
        std::to_string(options_.max_inflight) + " inflight queries");
  }
  SteadyClock::time_point start = SteadyClock::now();
  obs::SpanScope root(obs::CurrentTrace(), "shard.rank_graph");
  api::QueryResponse response;
  BIORANK_RETURN_IF_ERROR(ScatterGather(graph, top_k, response));
  response.timing.rank_s = SecondsSince(start);
  response.timing.total_s = response.timing.rank_s;
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

RouterStats ShardRouter::Stats() const {
  RouterStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  stats.admission_rejected =
      admission_rejected_.load(std::memory_order_relaxed);
  stats.shard_calls = shard_calls_.load(std::memory_order_relaxed);
  stats.shard_errors = shard_errors_.load(std::memory_order_relaxed);
  stats.empty_slices = empty_slices_.load(std::memory_order_relaxed);
  stats.merged_candidates = merged_candidates_.load(std::memory_order_relaxed);
  stats.shards_short_circuited =
      shards_short_circuited_.load(std::memory_order_relaxed);
  stats.short_circuited_candidates =
      short_circuited_candidates_.load(std::memory_order_relaxed);
  stats.inflight = inflight_.load(std::memory_order_relaxed);
  stats.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  stats.shard_rpc.reserve(shard_rpc_seconds_.size());
  for (size_t s = 0; s < shard_rpc_seconds_.size(); ++s) {
    const obs::Histogram& histogram = *shard_rpc_seconds_[s];
    obs::HistogramSnapshot snapshot;
    snapshot.name = "biorank_shard_rpc_shard" + std::to_string(s) + "_seconds";
    snapshot.bounds = histogram.bounds();
    snapshot.counts = histogram.BucketCounts();
    for (uint64_t c : snapshot.counts) snapshot.count += c;
    snapshot.sum = histogram.Sum();
    stats.shard_rpc.push_back(std::move(snapshot));
  }
  return stats;
}

}  // namespace biorank::shard
