// Synthetic protein/gene universe with gold-standard annotations -
// the ground truth the evaluation scenarios measure rankings against.

#ifndef BIORANK_DATAGEN_PROTEIN_UNIVERSE_H_
#define BIORANK_DATAGEN_PROTEIN_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/go_ontology.h"
#include "util/rng.h"
#include "util/status.h"

namespace biorank {

/// How thoroughly a synthetic protein has been characterized. Drives which
/// scenario uses it and how much redundant evidence the sources hold.
enum class StudyLevel {
  kWellStudied,  ///< Scenario 1/2: rich curated annotations (iProClass-like).
  kBackground,   ///< Fills families; provides BLAST neighbours.
  kHypothetical, ///< Scenario 3: no curated annotations at all.
};

/// One synthetic protein with its ground truth.
struct Protein {
  std::string accession;    ///< "BRP00042", unique.
  std::string gene_symbol;  ///< "ABCC8"-style synthetic symbol, unique.
  int family = 0;           ///< Sequence-similarity cluster id.
  StudyLevel study_level = StudyLevel::kBackground;

  /// Well-known functions recorded in curated databases — the iProClass
  /// gold standard of scenario 1.
  std::vector<int> curated_functions;
  /// True functions reported only in very recent publications, absent from
  /// all curated records — the scenario 2 gold standard. Non-empty only
  /// for a few designated well-studied proteins.
  std::vector<int> recent_functions;
  /// Function assigned by the expert protocol of Louie et al. — the
  /// scenario 3 gold standard. Non-empty only for hypothetical proteins.
  std::vector<int> expert_functions;
  /// Every true function (superset of the above plus shared family
  /// biology); sources may leak weak evidence for any of these.
  std::vector<int> true_functions;
};

/// Knobs for universe generation; defaults mirror the paper's scale
/// (Table 1: 20 reference proteins with 7-35 curated functions each;
/// Table 3: 11 hypothetical proteins; query graphs of ~520 nodes).
struct UniverseOptions {
  uint64_t seed = 20090401;
  int num_go_terms = 600;
  int num_families = 34;
  int proteins_per_family = 7;
  /// Families hosting a hypothetical protein are smaller and sparsely
  /// annotated (bacterial genomes at the research frontier).
  int hypothetical_family_size = 3;
  int family_function_pool = 32;  ///< Shared functions per family.
  int num_well_studied = 20;
  int min_curated = 7;
  int max_curated = 30;
  /// Curated-annotation counts for background (family-filler) proteins.
  int background_min_curated = 8;
  int background_max_curated = 18;
  int sparse_background_min_curated = 2;
  int sparse_background_max_curated = 5;
  /// How many well-studied proteins carry recently published functions
  /// and how many each (paper: 3 proteins with 3 + 2 + 2 functions).
  std::vector<int> recent_function_counts = {3, 2, 2};
  int num_hypothetical = 11;
  /// Extra true-but-uncurated functions per protein (weak leakage).
  int min_extra_true = 2;
  int max_extra_true = 6;
};

/// The synthetic biological world: a GO vocabulary plus proteins grouped
/// into sequence-similarity families with correlated functions. All
/// downstream sources (sources/) derive their records deterministically
/// from this universe, so a (seed, options) pair pins every experiment.
class ProteinUniverse {
 public:
  static ProteinUniverse Generate(const UniverseOptions& options = {});

  const UniverseOptions& options() const { return options_; }
  const GoOntology& ontology() const { return ontology_; }

  int num_proteins() const { return static_cast<int>(proteins_.size()); }
  const Protein& protein(int index) const { return proteins_[index]; }
  const std::vector<Protein>& proteins() const { return proteins_; }

  /// Protein indices belonging to `family`.
  const std::vector<int>& FamilyMembers(int family) const;

  int num_families() const { return static_cast<int>(families_.size()); }

  /// Lookup by gene symbol or accession (both unique). NotFound if absent.
  Result<int> FindProtein(const std::string& symbol_or_accession) const;

  /// Indices of the designated well-studied / hypothetical proteins, in
  /// generation order (scenario construction uses these).
  const std::vector<int>& well_studied() const { return well_studied_; }
  const std::vector<int>& hypothetical() const { return hypothetical_; }

 private:
  UniverseOptions options_;
  GoOntology ontology_;
  std::vector<Protein> proteins_;
  std::vector<std::vector<int>> families_;
  std::vector<int> well_studied_;
  std::vector<int> hypothetical_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace biorank

#endif  // BIORANK_DATAGEN_PROTEIN_UNIVERSE_H_
