// Typed request/response value objects of the biorank front door
// (api::Server). A QueryRequest carries the query *shape*
// (integrate/exploratory_query.h) plus a QueryOptions block holding
// every per-request serving knob — top_k, MC seed, rank toggle, serving
// mode, deadline/budgets — that used to be baked into the query or
// hand-threaded through the serving stack. A QueryResponse carries the
// ranked answers (reliability values *and* the deterministic bounds the
// scheduler held), a completeness summary, a refinement handle for
// anytime requests, per-phase timing, and the request's cache hit/miss
// counters, so callers observe the serving layer without touching it.

#ifndef BIORANK_API_QUERY_H_
#define BIORANK_API_QUERY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "integrate/exploratory_query.h"
#include "integrate/mediator.h"
#include "serve/ranking_service.h"
#include "serve/refinement.h"
#include "util/status.h"

namespace biorank::obs {
class Trace;
}  // namespace biorank::obs

namespace biorank::api {

/// The api layer speaks the library's Status/Result vocabulary; the
/// aliases make the front-door surface self-contained for callers that
/// include only api/ headers.
using Status = ::biorank::Status;
using StatusCode = ::biorank::StatusCode;
template <typename T>
using Result = ::biorank::Result<T>;

/// How a request trades answer finality against latency.
enum class QueryMode {
  /// Resolve every surviving candidate to its final value before
  /// returning — the pre-anytime semantics and the default.
  kBlocking,
  /// Return as soon as the deterministic bounds phase (plus whatever MC
  /// the deadline/budget allowed) is done. Unresolved answers come back
  /// as brackets with Resolution::kRefining, and the response carries a
  /// RefinementHandle that Server::Refine advances incrementally. A
  /// fully refined anytime ranking is bit-identical to kBlocking.
  kAnytime,
};

/// Per-request serving knobs, factored out of QueryRequest so transports
/// (shard fan-out, batch runners) forward one block instead of loose
/// fields.
struct QueryOptions {
  /// How many top-ranked answers to return; <= 0 ranks the full answer
  /// set (both clamp to the answer count).
  int top_k = 0;
  /// Monte Carlo root seed for irreducible residues. 0 = the server's
  /// canonical seed, served through the shared reliability cache. A
  /// different explicit seed is served by a request-private ranking
  /// service (cached values are pure functions of (key, seed), so a
  /// foreign seed must never read or publish through the shared cache).
  uint64_t seed = 0;
  /// When false, only materialize the integrated query graph (the
  /// Mediator::Run half); the response carries no ranking.
  bool rank = true;
  /// Blocking (default) vs anytime serving; see QueryMode.
  QueryMode mode = QueryMode::kBlocking;
  /// Per-request latency budget in seconds, counted from when the server
  /// accepts the call; <= 0 means no budget. Combined with `deadline`
  /// (below) the effective deadline is whichever fires first.
  double budget_s = 0.0;
  /// Absolute steady-clock deadline; the epoch default means none.
  /// Admission rejects a request whose deadline passes while queued with
  /// kDeadlineExceeded; in kAnytime mode the refinement loop stops at
  /// the deadline and returns whatever is settled.
  std::chrono::steady_clock::time_point deadline{};
  /// kAnytime only: MC trials to spend per surviving candidate per
  /// increment (initial call and each Refine). <= 0 with no deadline
  /// means bounds-only (spend nothing); <= 0 with a deadline means
  /// refine to convergence or deadline, whichever first.
  int64_t mc_trial_budget = 0;
  /// Request tracing (obs/trace.h): when non-null, the serving layers
  /// record nested spans (admit, integrate, bounds, prune, MC, shard
  /// fan-out/merge, refinement increments) into this caller-owned
  /// trace. Borrowed for the duration of the call; crossing the shard
  /// Transport in-process forwards the pointer (a socket transport
  /// would serialize only the trace id). Zero-perturbation contract:
  /// tracing only observes — rankings are bit-identical with or
  /// without it. Null (the default) costs one branch per span site.
  obs::Trace* trace = nullptr;

  bool has_deadline() const {
    return budget_s > 0.0 ||
           deadline != std::chrono::steady_clock::time_point{};
  }
  /// The effective absolute deadline for a request accepted at `start`:
  /// min(deadline, start + budget_s), or time_point::max() when neither
  /// is set.
  std::chrono::steady_clock::time_point DeadlineOrMax(
      std::chrono::steady_clock::time_point start) const {
    auto effective = std::chrono::steady_clock::time_point::max();
    if (deadline != std::chrono::steady_clock::time_point{}) {
      effective = deadline;
    }
    if (budget_s > 0.0) {
      auto budgeted =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(budget_s));
      if (budgeted < effective) effective = budgeted;
    }
    return effective;
  }
};

/// One typed query request against api::Server.
struct QueryRequest {
  /// The exploratory query shape (Definition 2.2): input entity match and
  /// output entity sets. Shape only — serving knobs live in `options`.
  ExploratoryQuery query;
  /// Every per-request serving knob (top-k, seed, mode, deadline...).
  QueryOptions options;
};

/// One ranked answer of a response: the serve-layer resolution plus the
/// answer node's label, so session responses are useful without a graph.
struct RankedAnswer {
  NodeId node = kInvalidNode;
  std::string label;           ///< The answer record's label (GO term id).
  double reliability = 0.0;
  double lower = 0.0;          ///< Deterministic reliability bracket the
  double upper = 1.0;          ///< scheduler held (== value when exact).
  bool exact = false;
  serve::Resolution resolution = serve::Resolution::kPruned;
};

/// Wall-clock spent per pipeline phase of one request.
struct PhaseTiming {
  double queue_s = 0.0;      ///< Waiting in the admission queue.
  double integrate_s = 0.0;  ///< Source fan-out + graph stitching.
  double rank_s = 0.0;       ///< Serving-layer bounds + blocking top-k.
  double refine_s = 0.0;     ///< Incremental anytime MC (this call's share).
  double total_s = 0.0;
};

/// Caller-side handle to a server-resident anytime refinement. id == 0
/// means "nothing to refine" (blocking responses, and anytime responses
/// that resolved completely). Handles are never reused; a finished or
/// cancelled handle fails Server::Refine with NotFound / kCancelled.
struct RefinementHandle {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// The typed response to a QueryRequest (or a session query).
struct QueryResponse {
  /// The materialized integration result: query graph, GO-term -> node
  /// map, matched-protein count. Session queries fill only
  /// matched_proteins: the live graph stays resident server-side (use
  /// Server::SessionSnapshot for a copy) and the go_node map was already
  /// delivered once by OpenSession's SessionInfo.
  ExploratoryQueryResult result;
  std::vector<RankedAnswer> top;
  /// Scheduler counters of the ranking pass (cache hits/misses, pruned,
  /// per-phase resolution counts). Zero when the request skipped ranking.
  serve::RequestStats stats;
  PhaseTiming timing;
  /// How settled the ranking is. Blocking responses are always complete;
  /// anytime responses may carry open brackets (see `top`'s kRefining
  /// entries and `refinement`).
  serve::Completeness completeness;
  /// Valid iff this anytime ranking still has refining answers; pass to
  /// Server::Refine to advance it.
  RefinementHandle refinement;
};

/// A live query session handle. Handles are never reused; a stale handle
/// (closed or evicted session) fails lookups with NotFound.
using SessionId = uint64_t;

/// What OpenSession returns: the handle plus the crawl bookkeeping a
/// delta-building caller needs.
struct SessionInfo {
  SessionId id = 0;
  int answers = 0;             ///< Answer-set size (fixed for the session).
  int matched_proteins = 0;
  /// GO-term ontology index -> answer node id in the live graph.
  std::unordered_map<int, NodeId> go_node;
};

/// The paper's canonical request: the k highest-reliability functions of
/// a protein (k <= 0 ranks all). Replaces the removed
/// MakeProteinFunctionTopKQuery + ExploratoryQuery::top_k pairing.
QueryRequest MakeProteinFunctionRequest(const std::string& gene_symbol,
                                        int top_k = 0);

/// The (node, reliability) pairs of a response — the bit-identity
/// fingerprint every determinism gate compares (RunBatch vs serial,
/// session vs from-scratch rebuild, cached vs cache-off). One shared
/// definition so the gates can never diverge in what they compare.
std::vector<std::pair<NodeId, double>> RankingFingerprint(
    const QueryResponse& response);

}  // namespace biorank::api

#endif  // BIORANK_API_QUERY_H_
