#include "core/ranking.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace biorank {
namespace {

TEST(RankAnswersTest, SortsByScoreDescending) {
  std::vector<NodeId> answers = {1, 2, 3};
  std::vector<double> scores = {0.0, 0.2, 0.9, 0.5};
  std::vector<RankedAnswer> ranked = RankAnswers(answers, scores);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].node, 2);
  EXPECT_EQ(ranked[1].node, 3);
  EXPECT_EQ(ranked[2].node, 1);
  EXPECT_EQ(ranked[0].rank_lo, 1);
  EXPECT_EQ(ranked[0].rank_hi, 1);
  EXPECT_EQ(ranked[2].rank_lo, 3);
}

TEST(RankAnswersTest, TiesShareRankInterval) {
  std::vector<NodeId> answers = {1, 2, 3, 4};
  std::vector<double> scores = {0.0, 0.5, 0.5, 0.9, 0.5};
  std::vector<RankedAnswer> ranked = RankAnswers(answers, scores);
  // Node 3 first; nodes 1, 2, 4 tied across ranks 2-4.
  EXPECT_EQ(ranked[0].node, 3);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(ranked[i].rank_lo, 2);
    EXPECT_EQ(ranked[i].rank_hi, 4);
  }
}

TEST(RankAnswersTest, AllTiedSpanWholeList) {
  std::vector<NodeId> answers = {1, 2, 3};
  std::vector<double> scores = {0, 0.4, 0.4, 0.4};
  std::vector<RankedAnswer> ranked = RankAnswers(answers, scores);
  for (const RankedAnswer& a : ranked) {
    EXPECT_EQ(a.rank_lo, 1);
    EXPECT_EQ(a.rank_hi, 3);
  }
}

TEST(RankAnswersTest, EpsilonGroupsNearTies) {
  std::vector<NodeId> answers = {1, 2};
  std::vector<double> scores = {0, 0.5, 0.5 + 1e-12};
  std::vector<RankedAnswer> ranked = RankAnswers(answers, scores, 1e-9);
  EXPECT_EQ(ranked[0].rank_lo, 1);
  EXPECT_EQ(ranked[0].rank_hi, 2);
}

TEST(RankAnswersTest, ZeroEpsilonSeparatesNearTies) {
  std::vector<NodeId> answers = {1, 2};
  std::vector<double> scores = {0, 0.5, 0.5 + 1e-12};
  std::vector<RankedAnswer> ranked = RankAnswers(answers, scores, 0.0);
  EXPECT_EQ(ranked[0].rank_hi, 1);
  EXPECT_EQ(ranked[1].rank_lo, 2);
}

TEST(RankAnswersTest, MissingScoreTreatedAsZero) {
  std::vector<NodeId> answers = {1, 7};
  std::vector<double> scores = {0, 0.5};  // Node 7 out of range.
  std::vector<RankedAnswer> ranked = RankAnswers(answers, scores);
  EXPECT_EQ(ranked[0].node, 1);
  EXPECT_DOUBLE_EQ(ranked[1].score, 0.0);
}

TEST(RankingMethodTest, NamesMatchPaperFigures) {
  EXPECT_STREQ(RankingMethodName(RankingMethod::kReliability), "Rel");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kPropagation), "Prop");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kDiffusion), "Diff");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kInEdge), "InEdge");
  EXPECT_STREQ(RankingMethodName(RankingMethod::kPathCount), "PathC");
  EXPECT_EQ(AllRankingMethods().size(), 5u);
}

TEST(RankerTest, AllFiveMethodsScoreFig4a) {
  QueryGraph g = MakeFig4aSerialParallel();
  Ranker ranker;
  // The five Figure 4a values in one sweep.
  struct Expected {
    RankingMethod method;
    double value;
  };
  const Expected expected[] = {
      {RankingMethod::kReliability, 0.5},
      {RankingMethod::kPropagation, 0.75},
      {RankingMethod::kDiffusion, 1.0 / 9},
      {RankingMethod::kInEdge, 2.0},
      {RankingMethod::kPathCount, 2.0},
  };
  for (const Expected& e : expected) {
    Result<std::vector<double>> scores = ranker.ScoreAllNodes(g, e.method);
    ASSERT_TRUE(scores.ok()) << RankingMethodName(e.method);
    EXPECT_NEAR(scores.value()[g.answers[0]], e.value, 1e-6)
        << RankingMethodName(e.method);
  }
}

TEST(RankerTest, AutoEngineFallsBackToMcOnBridge) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  RankerOptions options;
  options.mc.trials = 200000;
  options.mc.seed = 3;
  Ranker ranker(options);
  Result<std::vector<double>> scores =
      ranker.ScoreAllNodes(g, RankingMethod::kReliability);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[g.answers[0]], 15.0 / 32.0, 0.01);
}

TEST(RankerTest, ClosedFormEngineFailsOnBridge) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  RankerOptions options;
  options.reliability_engine = ReliabilityEngine::kClosedForm;
  Ranker ranker(options);
  EXPECT_FALSE(ranker.ScoreAllNodes(g, RankingMethod::kReliability).ok());
}

TEST(RankerTest, ExactEngineMatchesTruthOnBridge) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  RankerOptions options;
  options.reliability_engine = ReliabilityEngine::kExact;
  Ranker ranker(options);
  Result<std::vector<double>> scores =
      ranker.ScoreAllNodes(g, RankingMethod::kReliability);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[g.answers[0]], 15.0 / 32.0, 1e-12);
}

TEST(RankerTest, McWithReductionsMatchesTruth) {
  QueryGraph g = MakeFig4aSerialParallel();
  RankerOptions options;
  options.reliability_engine = ReliabilityEngine::kMonteCarlo;
  options.reduce_before_mc = true;
  options.mc.trials = 100000;
  Ranker ranker(options);
  Result<std::vector<double>> scores =
      ranker.ScoreAllNodes(g, RankingMethod::kReliability);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores.value()[g.answers[0]], 0.5, 0.01);
}

TEST(RankerTest, RankProducesTieIntervals) {
  // Two answers reached by the same certain structure tie exactly.
  QueryGraphBuilder b;
  NodeId t1 = b.Node(1.0, "t1");
  NodeId t2 = b.Node(1.0, "t2");
  NodeId t3 = b.Node(1.0, "t3");
  b.Edge(b.Source(), t1, 0.5);
  b.Edge(b.Source(), t2, 0.5);
  b.Edge(b.Source(), t3, 0.9);
  QueryGraph g = std::move(b).Build({t1, t2, t3});
  Ranker ranker;
  Result<std::vector<RankedAnswer>> ranked =
      ranker.Rank(g, RankingMethod::kReliability);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked.value()[0].node, t3);
  EXPECT_EQ(ranked.value()[1].rank_lo, 2);
  EXPECT_EQ(ranked.value()[1].rank_hi, 3);
  EXPECT_EQ(ranked.value()[2].rank_lo, 2);
  EXPECT_EQ(ranked.value()[2].rank_hi, 3);
}

TEST(RankerTest, PathCountErrorPropagates) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, t, 0.5);
  b.Edge(t, a, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Ranker ranker;
  EXPECT_FALSE(ranker.Rank(g, RankingMethod::kPathCount).ok());
}

}  // namespace
}  // namespace biorank
