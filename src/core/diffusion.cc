#include "core/diffusion.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace biorank {

namespace {

double SolveAnalytic(std::vector<std::pair<double, double>>& parents) {
  // Sort by parent score descending; only parents with r > t contribute.
  std::sort(parents.begin(), parents.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double weighted_sum = 0.0;  // sum_{i<=m} r_i q_i
  double weight = 0.0;        // sum_{i<=m} q_i
  for (size_t m = 0; m < parents.size(); ++m) {
    weighted_sum += parents[m].first * parents[m].second;
    weight += parents[m].second;
    double t = weighted_sum / (1.0 + weight);
    double next_r = (m + 1 < parents.size()) ? parents[m + 1].first : 0.0;
    // Consistency: every included parent flows (r_m >= t), every excluded
    // parent does not (t >= r_{m+1}).
    if (parents[m].first >= t && t >= next_r) return t;
  }
  return 0.0;
}

double SolveBisection(const std::vector<std::pair<double, double>>& parents,
                      int steps) {
  double hi = 0.0;
  for (const auto& [r, q] : parents) hi += std::max(r, 0.0) * q;
  if (hi <= 0.0) return 0.0;
  auto f = [&](double t) {
    double sum = 0.0;
    for (const auto& [r, q] : parents) sum += std::max((r - t) * q, 0.0);
    return sum;
  };
  double lo = 0.0;
  for (int i = 0; i < steps; ++i) {
    double mid = 0.5 * (lo + hi);
    if (f(mid) > mid) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double SolveDiffusionInflow(const std::vector<double>& parent_scores,
                            const std::vector<double>& edge_probs,
                            DiffusionInnerSolver solver,
                            int bisection_steps) {
  std::vector<std::pair<double, double>> parents;
  parents.reserve(parent_scores.size());
  for (size_t i = 0; i < parent_scores.size() && i < edge_probs.size(); ++i) {
    if (edge_probs[i] > 0.0 && parent_scores[i] > 0.0) {
      parents.emplace_back(parent_scores[i], edge_probs[i]);
    }
  }
  if (parents.empty()) return 0.0;
  if (solver == DiffusionInnerSolver::kAnalytic) {
    return SolveAnalytic(parents);
  }
  return SolveBisection(parents, bisection_steps);
}

Result<IterativeScores> DiffuseOnSnapshot(const CsrQuerySnapshot& snapshot,
                                          const DiffusionOptions& options) {
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("diffusion: max_iterations must be >= 1");
  }
  const CsrSnapshot& csr = snapshot.csr;
  const uint32_t source = snapshot.source;
  if (source == kCsrInvalid || source >= csr.num_nodes()) {
    return Status::InvalidArgument("diffusion snapshot has no valid source");
  }
  const uint32_t n = csr.num_nodes();

  // Dense sweep state; expanded back to original NodeId indexing at the
  // end. Dropped (dead) nodes would compute 0 every iteration in the
  // pointer path, so skipping them changes neither scores nor max_delta.
  std::vector<double> scores(n, 0.0);
  scores[source] = 1.0;
  std::vector<double> next(n, 0.0);
  std::vector<std::pair<double, double>> parents;

  IterativeScores result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (uint32_t y = 0; y < n; ++y) {
      if (y == source) {
        next[y] = 1.0;
        continue;
      }
      if (csr.node_p[y] <= 0.0) {
        next[y] = 0.0;
        continue;
      }
      parents.clear();
      const uint32_t end = csr.in_offset[y + 1];
      for (uint32_t i = csr.in_offset[y]; i < end; ++i) {
        const double r = scores[csr.in_from[i]];
        const double q = csr.in_q[i];
        if (r > 0.0 && q > 0.0) parents.emplace_back(r, q);
      }
      double inflow;
      if (parents.empty()) {
        inflow = 0.0;
      } else if (options.solver == DiffusionInnerSolver::kAnalytic) {
        inflow = SolveAnalytic(parents);
      } else {
        inflow = SolveBisection(parents, options.bisection_steps);
      }
      next[y] = inflow * csr.node_p[y];
      max_delta = std::max(max_delta, std::abs(next[y] - scores[y]));
    }
    std::swap(scores, next);
    result.iterations = iter + 1;
    if (max_delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores.assign(static_cast<size_t>(csr.orig_capacity()), 0.0);
  for (uint32_t d = 0; d < n; ++d) {
    result.scores[static_cast<size_t>(csr.orig_id[d])] = scores[d];
  }
  return result;
}

Result<IterativeScores> Diffuse(const QueryGraph& query_graph,
                                const DiffusionOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("diffusion: max_iterations must be >= 1");
  }
  if (options.backend == DiffusionOptions::Backend::kCsrSnapshot) {
    Result<CsrQuerySnapshot> snapshot = BuildCsrQuerySnapshot(query_graph);
    if (!snapshot.ok()) return snapshot.status();
    return DiffuseOnSnapshot(snapshot.value(), options);
  }

  CompactGraphView view = CompactGraphView::FromGraph(query_graph.graph);
  const int n = view.node_count();
  const NodeId source = query_graph.source;

  IterativeScores result;
  result.scores.assign(n, 0.0);
  result.scores[source] = 1.0;
  std::vector<double> next(n, 0.0);
  std::vector<std::pair<double, double>> parents;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (NodeId y = 0; y < n; ++y) {
      if (y == source) {
        next[y] = 1.0;
        continue;
      }
      if (view.node_p[y] <= 0.0) {
        next[y] = 0.0;
        continue;
      }
      parents.clear();
      for (int32_t i = view.in_offset[y]; i < view.in_offset[y + 1]; ++i) {
        double r = result.scores[view.edge_from[i]];
        double q = view.in_edge_q[i];
        if (r > 0.0 && q > 0.0) parents.emplace_back(r, q);
      }
      double inflow;
      if (parents.empty()) {
        inflow = 0.0;
      } else if (options.solver == DiffusionInnerSolver::kAnalytic) {
        inflow = SolveAnalytic(parents);
      } else {
        inflow = SolveBisection(parents, options.bisection_steps);
      }
      next[y] = inflow * view.node_p[y];
      max_delta = std::max(max_delta, std::abs(next[y] - result.scores[y]));
    }
    std::swap(result.scores, next);
    result.iterations = iter + 1;
    if (max_delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace biorank
