// Exporters for obs snapshots and captured traces.
//
//   RenderPrometheusText  — Prometheus text exposition format 0.0.4:
//     # HELP / # TYPE comment pairs, counters as `name value`,
//     histograms as cumulative `name_bucket{le="..."}` series plus
//     `name_sum` / `name_count`. What api::Server::MetricsText()
//     returns and what the bench-smoke metrics-shape gate parses.
//   RenderJson            — the same snapshot as one JSON object
//     (api::Server::MetricsJson()), machine-diffable in tests.
//   RenderTraceTree       — a captured slow-query trace as an indented
//     span tree with durations and per-span counters, for logs and the
//     explore_cli --metrics dump.

#ifndef BIORANK_OBS_EXPORT_H_
#define BIORANK_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace biorank::obs {

std::string RenderPrometheusText(const Snapshot& snapshot);

std::string RenderJson(const Snapshot& snapshot);

std::string RenderTraceTree(const CapturedTrace& trace);

}  // namespace biorank::obs

#endif  // BIORANK_OBS_EXPORT_H_
