#include "core/propagation.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace biorank {
namespace {

TEST(PropagationTest, SourceIsPinnedAtOne) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().scores[g.source], 1.0);
}

TEST(PropagationTest, Fig4aMatchesPaper) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  // Two "independent" 0.5 paths: 1 - 0.5^2 = 0.75 (Figure 4a).
  EXPECT_NEAR(r.value().scores[g.answers[0]], 0.75, 1e-9);
  EXPECT_TRUE(r.value().converged);
}

TEST(PropagationTest, WheatstoneBridgeMatchesPaper) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  // r(a)=0.5, r(b)=1-(1-0.25)(1-0.5*0.5)... = 0.625,
  // r(u)=1-(1-0.25)(1-0.3125) = 0.484375 (Figure 4b).
  EXPECT_NEAR(r.value().scores[g.answers[0]], 0.484375, 1e-9);
}

TEST(PropagationTest, ChainMultipliesProbabilities) {
  QueryGraphBuilder b;
  NodeId m = b.Node(0.5, "m");
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), m, 0.9);
  b.Edge(m, t, 0.7);
  QueryGraph g = std::move(b).Build({t});
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scores[t], 0.9 * 0.5 * 0.7 * 0.8, 1e-9);
}

TEST(PropagationTest, NodeProbabilityScalesScore) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.25, "t");
  b.Edge(b.Source(), t, 1.0);
  QueryGraph g = std::move(b).Build({t});
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().scores[t], 0.25, 1e-9);
}

TEST(PropagationTest, UnreachableNodeScoresZero) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.9, "t");
  NodeId island = b.Node(0.9, "island");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t, island});
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().scores[island], 0.0);
}

TEST(PropagationTest, ConvergesOnCycleWithDamping) {
  // Cycle a <-> b below the source; scores must converge geometrically.
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId bb = b.Node(1.0, "b");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, bb, 0.8);
  b.Edge(bb, a, 0.8);
  QueryGraph g = std::move(b).Build({a, bb});
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().converged);
  // The cycle boosts a above its single-path value 0.5 (the paper's noted
  // artifact of treating cyclic paths as independent).
  EXPECT_GT(r.value().scores[a], 0.5);
  EXPECT_LE(r.value().scores[a], 1.0);
}

TEST(PropagationTest, IterationCapRespected) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  PropagationOptions options;
  options.max_iterations = 1;
  Result<IterativeScores> r = Propagate(g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().iterations, 1);
  // After one synchronous step only direct children of s have scores.
  EXPECT_DOUBLE_EQ(r.value().scores[g.answers[0]], 0.0);
}

TEST(PropagationTest, DagConvergesWithinLongestPathPlusOne) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<IterativeScores> r = Propagate(g);
  ASSERT_TRUE(r.ok());
  // Longest path s->a->b->u has 3 edges; one extra pass detects the
  // fixpoint.
  EXPECT_LE(r.value().iterations, 5);
}

TEST(PropagationTest, RejectsBadOptions) {
  QueryGraph g = MakeFig4aSerialParallel();
  PropagationOptions options;
  options.max_iterations = 0;
  EXPECT_FALSE(Propagate(g, options).ok());
}

TEST(PropagationTest, ScoreIsMonotoneInEdgeProbability) {
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    QueryGraphBuilder b;
    NodeId t = b.Node(1.0, "t");
    b.Edge(b.Source(), t, q);
    QueryGraph g = std::move(b).Build({t});
    Result<IterativeScores> r = Propagate(g);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.value().scores[t], q, 1e-9);
  }
}

}  // namespace
}  // namespace biorank
