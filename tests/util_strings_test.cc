#include "util/strings.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(StringsTest, FormatDoubleFixedPrecision) {
  EXPECT_EQ(FormatDouble(0.5, 4), "0.5000");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

TEST(StringsTest, FormatCompactStripsTrailingZeros) {
  EXPECT_EQ(FormatCompact(0.5, 4), "0.5");
  EXPECT_EQ(FormatCompact(0.46875, 5), "0.46875");
  EXPECT_EQ(FormatCompact(2.0, 4), "2");
  EXPECT_EQ(FormatCompact(0.1 + 0.2, 4), "0.3");
}

TEST(StringsTest, JoinBasics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringsTest, SplitJoinRoundTrip) {
  std::string original = "GO:0008281,GO:0006813,GO:0005524";
  EXPECT_EQ(Join(Split(original, ','), ","), original);
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("GO:0008281", "GO:"));
  EXPECT_FALSE(StartsWith("XO:0008281", "GO:"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t x \n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("none"), "none");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(StringsTest, FormatRankIntervalMatchesPaperTables) {
  // Table 2 renders unique ranks bare and ties as ranges.
  EXPECT_EQ(FormatRankInterval(17, 17), "17");
  EXPECT_EQ(FormatRankInterval(21, 22), "21-22");
  EXPECT_EQ(FormatRankInterval(34, 97), "34-97");
}

}  // namespace
}  // namespace biorank
