#include "sources/source_registry.h"

#include <set>

#include <gtest/gtest.h>

namespace biorank {
namespace {

class SourcesTest : public ::testing::Test {
 protected:
  SourcesTest() : universe_(ProteinUniverse::Generate()),
                  registry_(universe_) {}

  ProteinUniverse universe_;
  SourceRegistry registry_;
};

TEST_F(SourcesTest, RegistryExposesElevenSources) {
  std::vector<const DataSource*> all = registry_.AllSources();
  EXPECT_EQ(all.size(), 11u);
  std::set<std::string> names;
  for (const DataSource* source : all) names.insert(source->name());
  EXPECT_EQ(names.size(), 11u);
}

TEST_F(SourcesTest, EntityAndRelationshipCountsMatchPaperTable) {
  // The Section 2 source table: name -> (#E, #R).
  struct Expected {
    const char* name;
    int entities;
    int relationships;
  };
  const Expected expected[] = {
      {"AmiGO", 1, 4},      {"NCBIBlast", 2, 3}, {"CDD", 3, 1},
      {"EntrezGene", 2, 3}, {"EntrezProtein", 1, 11}, {"PDB", 1, 0},
      {"Pfam", 2, 2},       {"PIRSF", 2, 2},     {"UniProt", 2, 2},
      {"SuperFamily", 3, 1}, {"TIGRFAM", 2, 2},
  };
  for (const Expected& e : expected) {
    bool found = false;
    for (const DataSource* source : registry_.AllSources()) {
      if (source->name() == e.name) {
        EXPECT_EQ(source->entity_set_count(), e.entities) << e.name;
        EXPECT_EQ(source->relationship_count(), e.relationships) << e.name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << e.name;
  }
}

TEST_F(SourcesTest, EntrezProteinLookupBySymbolAndAccession) {
  const Protein& protein = universe_.protein(3);
  std::vector<ProteinRecord> by_symbol =
      registry_.entrez_protein().Lookup(protein.gene_symbol);
  ASSERT_EQ(by_symbol.size(), 1u);
  EXPECT_EQ(by_symbol[0].protein_index, 3);
  std::vector<ProteinRecord> by_accession =
      registry_.entrez_protein().Lookup(protein.accession);
  ASSERT_EQ(by_accession.size(), 1u);
  EXPECT_EQ(by_accession[0].seq_id, 3);
  EXPECT_TRUE(registry_.entrez_protein().Lookup("UNKNOWN").empty());
}

TEST_F(SourcesTest, EntrezProteinBySeqIdBounds) {
  EXPECT_NE(registry_.entrez_protein().BySeqId(0), nullptr);
  EXPECT_EQ(registry_.entrez_protein().BySeqId(-1), nullptr);
  EXPECT_EQ(registry_.entrez_protein().BySeqId(1 << 20), nullptr);
}

TEST_F(SourcesTest, BlastReturnsFamilyMembers) {
  int query = universe_.well_studied()[0];
  const Protein& protein = universe_.protein(query);
  std::set<int> family(universe_.FamilyMembers(protein.family).begin(),
                       universe_.FamilyMembers(protein.family).end());
  int family_hits = 0;
  for (const BlastHit& hit : registry_.ncbi_blast().Similar(query)) {
    EXPECT_NE(hit.seq2, query);  // Self-hits are not emitted.
    EXPECT_GT(hit.e_value, 0.0);
    EXPECT_LT(hit.e_value, 1.0);
    if (family.count(hit.seq2) > 0) ++family_hits;
  }
  EXPECT_EQ(family_hits,
            static_cast<int>(family.size()) - 1);  // All other members.
}

TEST_F(SourcesTest, BlastFamilyHitsAreStrongerThanNoise) {
  int query = universe_.well_studied()[1];
  const Protein& protein = universe_.protein(query);
  std::set<int> family(universe_.FamilyMembers(protein.family).begin(),
                       universe_.FamilyMembers(protein.family).end());
  double worst_family = 0.0;
  double best_noise = 1.0;
  for (const BlastHit& hit : registry_.ncbi_blast().Similar(query)) {
    if (family.count(hit.seq2) > 0) {
      worst_family = std::max(worst_family, hit.e_value);
    } else {
      best_noise = std::min(best_noise, hit.e_value);
    }
  }
  EXPECT_LT(worst_family, best_noise);
}

TEST_F(SourcesTest, EntrezGeneCoversMostCuratedFunctions) {
  int total_curated = 0, covered = 0;
  for (int index : universe_.well_studied()) {
    const Protein& protein = universe_.protein(index);
    std::set<int> annotated;
    for (const GeneAnnotation& ann :
         registry_.entrez_gene().AnnotationsFor(index)) {
      annotated.insert(ann.go_index);
    }
    for (int go : protein.curated_functions) {
      ++total_curated;
      if (annotated.count(go) > 0) ++covered;
    }
  }
  // Nominal curated coverage is 0.70, and skipped functions can leak back
  // as computational predictions (0.7 + 0.3 * 0.7 ~ 0.91); the row set
  // must stay incomplete either way.
  double coverage = static_cast<double>(covered) / total_curated;
  EXPECT_GT(coverage, 0.75);
  EXPECT_LT(coverage, 0.97);
}

TEST_F(SourcesTest, EntrezGeneHasNothingForHypotheticalProteins) {
  for (int index : universe_.hypothetical()) {
    EXPECT_TRUE(registry_.entrez_gene().AnnotationsFor(index).empty());
  }
}

TEST_F(SourcesTest, RecentFunctionsAbsentFromEntrezGene) {
  for (int index : universe_.well_studied()) {
    const Protein& protein = universe_.protein(index);
    std::set<int> recent(protein.recent_functions.begin(),
                         protein.recent_functions.end());
    for (const GeneAnnotation& ann :
         registry_.entrez_gene().AnnotationsFor(index)) {
      EXPECT_EQ(recent.count(ann.go_index), 0u);
    }
  }
}

TEST_F(SourcesTest, TigrfamCarriesRecentFunctionEvidence) {
  // Every recent function must be reachable through a dedicated TIGRFAM
  // model hit with a very strong e-value.
  const ProfileDatabase& db = registry_.tigrfam().db();
  for (int index : universe_.well_studied()) {
    const Protein& protein = universe_.protein(index);
    if (protein.recent_functions.empty()) continue;
    std::set<int> reachable;
    double best_e = 1.0;
    for (const ProfileHit& hit : db.HitsFor(index)) {
      for (int go : db.GoTermsFor(hit.profile_id)) {
        if (reachable.insert(go).second || true) {
          // Track the strongest hit covering a recent function.
        }
      }
      best_e = std::min(best_e, hit.e_value);
    }
    for (int go : protein.recent_functions) {
      EXPECT_EQ(reachable.count(go), 1u) << "recent GO " << go;
    }
    EXPECT_LT(best_e, 1e-200);  // The dedicated hit is very strong.
  }
}

TEST_F(SourcesTest, DedicatedModelsCoverExpertFunctions) {
  const ProfileDatabase& tigr = registry_.tigrfam().db();
  const ProfileDatabase& pfam = registry_.pfam().db();
  for (int index : universe_.hypothetical()) {
    const Protein& protein = universe_.protein(index);
    int expert = protein.expert_functions[0];
    bool tigr_covers = false, pfam_covers = false;
    for (const ProfileHit& hit : tigr.HitsFor(index)) {
      for (int go : tigr.GoTermsFor(hit.profile_id)) {
        if (go == expert) tigr_covers = true;
      }
    }
    for (const ProfileHit& hit : pfam.HitsFor(index)) {
      for (int go : pfam.GoTermsFor(hit.profile_id)) {
        if (go == expert) pfam_covers = true;
      }
    }
    EXPECT_TRUE(tigr_covers) << protein.gene_symbol;
    EXPECT_TRUE(pfam_covers) << protein.gene_symbol;
  }
}

TEST_F(SourcesTest, DedicatedMappingsAreCertain) {
  const ProfileDatabase& db = registry_.tigrfam().db();
  bool saw_dedicated = false, saw_regular = false;
  for (int p = 0; p < db.num_profiles(); ++p) {
    double qr = db.MappingQr(p);
    if (qr == 1.0) saw_dedicated = true;
    if (qr < 1.0) saw_regular = true;
    EXPECT_GT(qr, 0.0);
    EXPECT_LE(qr, 1.0);
  }
  EXPECT_TRUE(saw_dedicated);
  EXPECT_TRUE(saw_regular);
}

TEST_F(SourcesTest, ProfileNamesUsePrefixes) {
  EXPECT_EQ(registry_.pfam().db().ProfileName(0).substr(0, 2), "PF");
  EXPECT_EQ(registry_.tigrfam().db().ProfileName(0).substr(0, 4), "TIGR");
  EXPECT_EQ(registry_.pirsf().db().ProfileName(0).substr(0, 5), "PIRSF");
}

TEST_F(SourcesTest, PdbStructuresSkewTowardWellStudied) {
  int well_structures = 0, hypothetical_structures = 0;
  for (int index : universe_.well_studied()) {
    well_structures +=
        static_cast<int>(registry_.pdb().StructuresFor(index).size());
  }
  for (int index : universe_.hypothetical()) {
    hypothetical_structures +=
        static_cast<int>(registry_.pdb().StructuresFor(index).size());
  }
  EXPECT_GT(well_structures, hypothetical_structures);
}

TEST_F(SourcesTest, UniProtSkipsHypotheticalProteins) {
  for (int index : universe_.hypothetical()) {
    EXPECT_TRUE(registry_.uniprot().AnnotationsFor(index).empty());
  }
}

TEST_F(SourcesTest, GenerationIsDeterministic) {
  SourceRegistry second(universe_);
  int query = universe_.well_studied()[0];
  const auto& hits_a = registry_.ncbi_blast().Similar(query);
  const auto& hits_b = second.ncbi_blast().Similar(query);
  ASSERT_EQ(hits_a.size(), hits_b.size());
  for (size_t i = 0; i < hits_a.size(); ++i) {
    EXPECT_EQ(hits_a[i].seq2, hits_b[i].seq2);
    EXPECT_DOUBLE_EQ(hits_a[i].e_value, hits_b[i].e_value);
  }
}

TEST_F(SourcesTest, OutOfRangeQueriesReturnEmpty) {
  EXPECT_TRUE(registry_.ncbi_blast().Similar(-1).empty());
  EXPECT_TRUE(registry_.entrez_gene().AnnotationsFor(1 << 20).empty());
  EXPECT_TRUE(registry_.amigo().AnnotationsFor(-5).empty());
  EXPECT_TRUE(registry_.pfam().db().HitsFor(1 << 20).empty());
  EXPECT_TRUE(registry_.pdb().StructuresFor(-1).empty());
}

}  // namespace
}  // namespace biorank
