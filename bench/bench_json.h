// Machine-readable perf output for the bench binaries: every bench emits
// a BENCH_<name>.json file (wall time, thread count, bench-specific
// metrics such as trials/sec and speedup vs 1 thread, plus its result
// rows) so CI and later scaling PRs can track the perf trajectory
// without scraping text tables. Schema documented in
// docs/ARCHITECTURE.md ("BENCH_*.json schema").

#ifndef BIORANK_BENCH_BENCH_JSON_H_
#define BIORANK_BENCH_BENCH_JSON_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace biorank::bench {

/// Wall-clock stopwatch for bench timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One JSON scalar: number, integer, string, or bool.
class JsonScalar {
 public:
  JsonScalar(double value);       // NOLINT: implicit by design.
  JsonScalar(int64_t value);      // NOLINT
  JsonScalar(int value);          // NOLINT
  JsonScalar(bool value);         // NOLINT
  JsonScalar(const char* value);  // NOLINT
  JsonScalar(std::string value);  // NOLINT

  /// Renders the scalar as a JSON token (string escaping per RFC 8259;
  /// non-finite numbers become null).
  std::string ToJson() const;

 private:
  enum class Kind { kNumber, kInt, kBool, kString };
  Kind kind_;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool bool_ = false;
  std::string string_;
};

/// An ordered key -> scalar map rendered as one JSON object. Used both
/// for the top-level metrics and for result rows.
using JsonFields = std::vector<std::pair<std::string, JsonScalar>>;

/// Accumulates one bench run and writes `BENCH_<name>.json`.
///
///   bench::JsonReport report("fig7_mc_convergence");
///   report.SetMetric("trials_per_sec", rate);
///   report.AddRow({{"trials", trials}, {"mean_ap", ap}});
///   report.SetWallTime(timer.Seconds());
///   report.Write();   // -> $BIORANK_BENCH_JSON_DIR/BENCH_<name>.json
///                     //    (or the current directory when unset)
class JsonReport {
 public:
  explicit JsonReport(std::string name);

  /// Wall time of the measured section, emitted as "wall_time_s".
  void SetWallTime(double seconds) { wall_time_s_ = seconds; }
  /// Thread count the bench ran with, emitted as "threads". Defaults to
  /// the shared pool's parallelism.
  void SetThreads(int threads) { threads_ = threads; }
  /// A named top-level metric (e.g. "trials_per_sec",
  /// "speedup_vs_1thread").
  void SetMetric(const std::string& key, JsonScalar value);
  /// One result row (a table line, a sweep point, ...).
  void AddRow(JsonFields row);

  /// Renders the full document.
  std::string ToJson() const;

  /// Writes BENCH_<name>.json into `BIORANK_BENCH_JSON_DIR` (the current
  /// directory when unset) and logs the path; on failure, logs to stderr.
  /// Returns the write status.
  Status Write() const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  double wall_time_s_ = 0.0;
  int threads_ = 0;
  JsonFields metrics_;
  std::vector<JsonFields> rows_;
};

/// JSON string escaping per RFC 8259 (quotes, backslashes, control
/// characters); exposed for tests.
std::string JsonEscape(const std::string& text);

/// Writes METRICS_<name>.prom (a Prometheus exposition dump, typically
/// api::Server::MetricsText()) next to the BENCH_*.json reports so
/// compare_baselines.py can gate the metrics surface's shape.
Status WriteMetricsDump(const std::string& name, const std::string& text);

}  // namespace biorank::bench

#endif  // BIORANK_BENCH_BENCH_JSON_H_
