#include "ingest/dependency_index.h"

#include <algorithm>

namespace biorank::ingest {

namespace {

/// Inserts `value` into sorted `list` (no duplicates).
void SortedInsert(std::vector<int>& list, int value) {
  auto it = std::lower_bound(list.begin(), list.end(), value);
  if (it == list.end() || *it != value) list.insert(it, value);
}

void SortedErase(std::vector<int>& list, int value) {
  auto it = std::lower_bound(list.begin(), list.end(), value);
  if (it != list.end() && *it == value) list.erase(it);
}

}  // namespace

void DependencyIndex::Register(int answer_index, const CanonicalKey& key,
                               const CandidateProvenance& provenance,
                               const QueryGraph& graph) {
  Unregister(answer_index);
  AnswerEntry entry;
  entry.key = key;
  entry.nodes = provenance.nodes;
  entry.edges = provenance.edges;
  for (NodeId id : provenance.nodes) {
    const std::string& set = graph.graph.node(id).entity_set;
    if (!set.empty()) entry.entity_sets.push_back(set);
  }
  std::sort(entry.entity_sets.begin(), entry.entity_sets.end());
  entry.entity_sets.erase(
      std::unique(entry.entity_sets.begin(), entry.entity_sets.end()),
      entry.entity_sets.end());

  for (NodeId id : entry.nodes) SortedInsert(by_node_[id], answer_index);
  for (EdgeId e : entry.edges) SortedInsert(by_edge_[e], answer_index);
  for (const std::string& set : entry.entity_sets) {
    SortedInsert(by_entity_set_[set], answer_index);
  }
  SortedInsert(by_key_[key.repr], answer_index);
  by_answer_[answer_index] = std::move(entry);
}

void DependencyIndex::Unregister(int answer_index) {
  auto it = by_answer_.find(answer_index);
  if (it == by_answer_.end()) return;
  const AnswerEntry& entry = it->second;
  for (NodeId id : entry.nodes) {
    auto posting = by_node_.find(id);
    if (posting == by_node_.end()) continue;
    SortedErase(posting->second, answer_index);
    if (posting->second.empty()) by_node_.erase(posting);
  }
  for (EdgeId e : entry.edges) {
    auto posting = by_edge_.find(e);
    if (posting == by_edge_.end()) continue;
    SortedErase(posting->second, answer_index);
    if (posting->second.empty()) by_edge_.erase(posting);
  }
  for (const std::string& set : entry.entity_sets) {
    auto posting = by_entity_set_.find(set);
    if (posting == by_entity_set_.end()) continue;
    SortedErase(posting->second, answer_index);
    if (posting->second.empty()) by_entity_set_.erase(posting);
  }
  auto users = by_key_.find(entry.key.repr);
  if (users != by_key_.end()) {
    SortedErase(users->second, answer_index);
    if (users->second.empty()) by_key_.erase(users);
  }
  by_answer_.erase(it);
}

const CanonicalKey* DependencyIndex::KeyOf(int answer_index) const {
  auto it = by_answer_.find(answer_index);
  return it == by_answer_.end() ? nullptr : &it->second.key;
}

std::vector<int> DependencyIndex::AffectedAnswers(
    const EvidenceDelta& delta, const AppliedDelta& applied,
    const QueryGraph& updated_graph) const {
  std::vector<int> affected;
  auto add_postings = [&](const std::vector<int>* postings) {
    if (postings == nullptr) return;
    affected.insert(affected.end(), postings->begin(), postings->end());
  };
  auto find = [](const auto& map, const auto& key) -> const std::vector<int>* {
    auto it = map.find(key);
    return it == map.end() ? nullptr : &it->second;
  };

  for (const EvidenceDelta::RemoveEdge& op : delta.remove_edges) {
    add_postings(find(by_edge_, op.edge));
  }
  for (const EvidenceDelta::ReweightEdge& op : delta.reweight_edges) {
    add_postings(find(by_edge_, op.edge));
  }
  for (const EvidenceDelta::ReviseNodeProb& op : delta.revise_node_probs) {
    add_postings(find(by_node_, op.node));
  }
  for (const EvidenceDelta::ReviseSourcePrior& op :
       delta.revise_source_priors) {
    add_postings(find(by_entity_set_, op.entity_set));
  }

  // Add-edge rule: every answer reachable from the new edge's head in the
  // updated graph. Any subgraph change caused by an added edge (u, v) is
  // witnessed by a path through that edge continuing v -> ... -> t, so
  // the affected targets are exactly a subset of v's descendants.
  if (!applied.new_edges.empty()) {
    const ProbabilisticEntityGraph& graph = updated_graph.graph;
    std::unordered_map<NodeId, int> answer_of;
    answer_of.reserve(updated_graph.answers.size());
    for (size_t i = 0; i < updated_graph.answers.size(); ++i) {
      answer_of.emplace(updated_graph.answers[i], static_cast<int>(i));
    }
    std::vector<bool> visited(
        static_cast<size_t>(graph.node_capacity()), false);
    std::vector<NodeId> stack;
    for (EdgeId e : applied.new_edges) {
      NodeId head = graph.edge(e).to;
      if (!graph.IsValidNode(head) || visited[static_cast<size_t>(head)]) {
        continue;
      }
      visited[static_cast<size_t>(head)] = true;
      stack.push_back(head);
    }
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      auto hit = answer_of.find(x);
      if (hit != answer_of.end()) affected.push_back(hit->second);
      graph.ForEachOutEdge(x, [&](EdgeId e) {
        NodeId y = graph.edge(e).to;
        if (!visited[static_cast<size_t>(y)]) {
          visited[static_cast<size_t>(y)] = true;
          stack.push_back(y);
        }
      });
    }
  }

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

std::vector<CanonicalKey> DependencyIndex::ExclusiveKeys(
    const std::vector<int>& answers) const {
  std::vector<CanonicalKey> keys;
  std::vector<std::string> seen;
  for (int answer : answers) {
    auto it = by_answer_.find(answer);
    if (it == by_answer_.end()) continue;
    const std::string& repr = it->second.key.repr;
    if (std::binary_search(seen.begin(), seen.end(), repr)) continue;
    auto users = by_key_.find(repr);
    if (users == by_key_.end()) continue;
    bool exclusive = true;
    for (int user : users->second) {
      if (!std::binary_search(answers.begin(), answers.end(), user)) {
        exclusive = false;
        break;
      }
    }
    if (exclusive) {
      keys.push_back(it->second.key);
      seen.insert(std::lower_bound(seen.begin(), seen.end(), repr), repr);
    }
  }
  return keys;
}

void DependencyIndex::Clear() {
  by_answer_.clear();
  by_node_.clear();
  by_edge_.clear();
  by_entity_set_.clear();
  by_key_.clear();
}

}  // namespace biorank::ingest
