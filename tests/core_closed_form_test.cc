#include "core/closed_form.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "core/reliability_exact.h"

namespace biorank {
namespace {

TEST(ClosedFormTest, SingleEdge) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ClosedFormReliability(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.4, 1e-12);
}

TEST(ClosedFormTest, Fig4aReduces) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<double> r = ClosedFormReliability(g, g.answers[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.5, 1e-12);
}

TEST(ClosedFormTest, WheatstoneBridgeIsIrreducible) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<double> r = ClosedFormReliability(g, g.answers[0]);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ClosedFormTest, UnreachableTargetIsZero) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.9, "t");
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ClosedFormReliability(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(ClosedFormTest, DiamondMatchesExact) {
  QueryGraphBuilder b;
  NodeId a = b.Node(0.9, "a");
  NodeId bb = b.Node(0.8, "b");
  NodeId t = b.Node(0.95, "t");
  b.Edge(b.Source(), a, 0.7);
  b.Edge(a, t, 0.6);
  b.Edge(b.Source(), bb, 0.5);
  b.Edge(bb, t, 0.4);
  QueryGraph g = std::move(b).Build({t});
  Result<double> closed = ClosedFormReliability(g, t);
  Result<double> exact = ExactReliabilityBruteForce(g, t);
  ASSERT_TRUE(closed.ok()) << closed.status();
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(closed.value(), exact.value(), 1e-12);
}

TEST(ClosedFormTest, PerTargetSubgraphsReduceEvenWhenWholeGraphDoesNot) {
  // The paper's key observation (Sect 4, "Efficiency"): an [n:m] final
  // relationship makes the *whole* graph irreducible, but each individual
  // answer's subgraph reduces. Two answers sharing a middle layer:
  //   s -> m1 -> t1, s -> m1 -> t2, s -> m2 -> t1, s -> m2 -> t2.
  // Per-target restriction yields a diamond, which reduces fully.
  QueryGraphBuilder b;
  NodeId m1 = b.Node(0.9, "m1");
  NodeId m2 = b.Node(0.8, "m2");
  NodeId t1 = b.Node(1.0, "t1");
  NodeId t2 = b.Node(1.0, "t2");
  b.Edge(b.Source(), m1, 0.7);
  b.Edge(b.Source(), m2, 0.6);
  b.Edge(m1, t1, 0.5);
  b.Edge(m1, t2, 0.4);
  b.Edge(m2, t1, 0.3);
  b.Edge(m2, t2, 0.2);
  QueryGraph g = std::move(b).Build({t1, t2});

  Result<std::vector<double>> all = ClosedFormReliabilityAllAnswers(g);
  ASSERT_TRUE(all.ok()) << all.status();
  Result<double> e1 = ExactReliabilityBruteForce(g, t1);
  Result<double> e2 = ExactReliabilityBruteForce(g, t2);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_NEAR(all.value()[0], e1.value(), 1e-12);
  EXPECT_NEAR(all.value()[1], e2.value(), 1e-12);
}

TEST(ClosedFormTest, AllAnswersFailsIfAnyIrreducible) {
  // Bridge target plus a trivially reachable second answer.
  QueryGraph g = MakeFig4bWheatstoneBridge();
  QueryGraphBuilder b;
  // Rebuild with an extra answer branch.
  NodeId a = b.Node(1.0, "a");
  NodeId bb = b.Node(1.0, "b");
  NodeId u = b.Node(1.0, "u");
  NodeId easy = b.Node(1.0, "easy");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(b.Source(), bb, 0.5);
  b.Edge(a, bb, 0.5);
  b.Edge(a, u, 0.5);
  b.Edge(bb, u, 0.5);
  b.Edge(b.Source(), easy, 0.9);
  QueryGraph g2 = std::move(b).Build({u, easy});
  Result<std::vector<double>> all = ClosedFormReliabilityAllAnswers(g2);
  EXPECT_FALSE(all.ok());
  (void)g;
}

TEST(ClosedFormTest, InvalidTargetRejected) {
  QueryGraph g = MakeFig4aSerialParallel();
  EXPECT_FALSE(ClosedFormReliability(g, 999).ok());
}

}  // namespace
}  // namespace biorank
