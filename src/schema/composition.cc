#include "schema/composition.h"

namespace biorank {

Cardinality Compose(Cardinality first, Cardinality second) {
  if (first == Cardinality::kOneToOne) return second;
  if (second == Cardinality::kOneToOne) return first;
  if (first == Cardinality::kManyToMany ||
      second == Cardinality::kManyToMany) {
    return Cardinality::kManyToMany;
  }
  if (first == second) return first;  // [1:n]o[1:n] or [n:1]o[n:1].
  // Mixed [1:n] o [n:1] (or the reverse): ambiguous without domain
  // knowledge; the safe answer is [m:n].
  return Cardinality::kManyToMany;
}

void CompositionOracle::Declare(const std::string& first_rel,
                                const std::string& second_rel,
                                Cardinality result) {
  overrides_[{first_rel, second_rel}] = result;
}

Cardinality CompositionOracle::Resolve(const RelationshipDef& first,
                                       const RelationshipDef& second) const {
  auto it = overrides_.find({first.name, second.name});
  if (it != overrides_.end()) return it->second;
  return Compose(first.cardinality, second.cardinality);
}

}  // namespace biorank
