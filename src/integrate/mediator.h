// The mediator of Section 2 / Figure 1: fans an exploratory query
// out across registered sources, stitches results into one query
// graph, applies reductions, and ranks the answers.

#ifndef BIORANK_INTEGRATE_MEDIATOR_H_
#define BIORANK_INTEGRATE_MEDIATOR_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "core/query_graph.h"
#include "ingest/delta.h"
#include "ingest/update_applier.h"
#include "integrate/exploratory_query.h"
#include "schema/metrics.h"
#include "serve/ranking_service.h"
#include "sources/source_registry.h"
#include "util/status.h"

namespace biorank {

/// The default BioRank parameters: set-level confidences ps/qs for every
/// entity set and relationship the mediator materializes. These are the
/// "determined after extensive discussions with our collaborators"
/// numbers of Section 2 — user-tunable via MediatorOptions::metrics.
ProbabilisticMetrics MakeDefaultBioRankMetrics();

/// Mediator configuration.
struct MediatorOptions {
  ProbabilisticMetrics metrics = MakeDefaultBioRankMetrics();
  /// Also crawl PIRSF, SuperFamily, CDD, UniProt, and PDB. The paper's
  /// quality study restricts itself to the Figure 1 sources; enabling
  /// this enriches graphs (PDB adds sink nodes).
  bool include_minor_sources = false;
};

/// The materialized result of an exploratory query: the probabilistic
/// query graph plus bookkeeping that maps records back to graph nodes.
struct ExploratoryQueryResult {
  QueryGraph query_graph;
  /// GO-term ontology index -> answer node id (for gold-standard lookup).
  std::unordered_map<int, NodeId> go_node;
  int matched_proteins = 0;
};

/// A fully served exploratory query: the materialized query graph plus
/// the serving layer's top-k reliability ranking and scheduler counters.
struct RankedExploratoryResult {
  ExploratoryQueryResult result;
  serve::TopKResult ranked;
};

/// The BioRank mediator: executes exploratory queries against the source
/// registry by crawling the Figure 1 integration plan and labeling every
/// record node with p = ps * pr and every link edge with q = qs * qr
/// (Section 2's graph construction).
///
/// Node identity is by record key, so evidence converges: all paths that
/// support the same GO term meet at one answer node, all BLAST hits on
/// the same protein meet at one EntrezProtein node.
class Mediator {
 public:
  explicit Mediator(const SourceRegistry& sources,
                    MediatorOptions options = {});

  /// Runs an exploratory query. Currently the one query family of the
  /// paper is supported: input EntrezProtein matched on name/accession,
  /// output AmiGO (GO terms). Anything else is Unimplemented.
  Result<ExploratoryQueryResult> Run(const ExploratoryQuery& query) const;

  /// Runs an exploratory query and answers it through the serving layer:
  /// the answer set is ranked by reliability via `service` (canonical
  /// cache, deterministic bounds, top-k pruning). `top_k` <= 0 (or
  /// anything larger than the answer set) ranks every answer. The
  /// serving-layer knobs travel with the request (`api::QueryRequest`),
  /// never inside the query shape itself.
  Result<RankedExploratoryResult> RunRanked(
      const ExploratoryQuery& query, int top_k,
      serve::RankingService& service) const;

  /// A live served query: the materialized graph wrapped in an ingest
  /// UpdateApplier bound to `service`, plus the crawl bookkeeping. Where
  /// RunRanked answers once and forgets, a live query stays resident so
  /// evidence deltas can be applied between rankings.
  struct LiveExploratoryQuery {
    std::unique_ptr<ingest::UpdateApplier> applier;
    /// GO-term ontology index -> answer node id (for building deltas and
    /// gold-standard lookups against the live graph).
    std::unordered_map<int, NodeId> go_node;
    /// Answer node id -> record label, captured at materialization (the
    /// answer set is fixed for the session, so labels never go stale).
    /// Lets the api layer label session responses without snapshotting
    /// the live graph.
    std::unordered_map<NodeId, std::string> answer_labels;
    int matched_proteins = 0;
  };

  /// Materializes `query` and stands it up as a live served graph on
  /// `service`. `service` must outlive the returned session.
  Result<LiveExploratoryQuery> ServeLive(
      const ExploratoryQuery& query, serve::RankingService& service) const;

  /// Applies one evidence delta to a live query, validating it against
  /// this mediator's schema metrics first (a revised source prior must
  /// name a registered entity set — see ingest::ValidateDelta). The
  /// applier invalidates exactly the orphaned reliability-cache keys and
  /// re-canonicalizes exactly the dirtied answers.
  Result<ingest::ApplyReport> ApplyDelta(
      LiveExploratoryQuery& live, const ingest::EvidenceDelta& delta) const;

  const MediatorOptions& options() const { return options_; }

 private:
  const SourceRegistry& sources_;
  MediatorOptions options_;
};

}  // namespace biorank

#endif  // BIORANK_INTEGRATE_MEDIATOR_H_
