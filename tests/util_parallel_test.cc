#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  ThreadPool pool(3);
  const int64_t shards = 1000;
  std::vector<std::atomic<int>> hits(shards);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(shards, [&](int, int64_t shard) {
    hits[static_cast<size_t>(shard)].fetch_add(1);
  });
  for (int64_t i = 0; i < shards; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "shard " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeShardCountsReturnImmediately) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int, int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, WorkerlessPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
  EXPECT_EQ(pool.slot_count(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int slot, int64_t shard) {
    EXPECT_EQ(slot, 0);
    order.push_back(shard);
  });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, SlotsStayWithinSlotCount) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.ParallelFor(200, [&](int slot, int64_t) {
    if (slot < 0 || slot >= pool.slot_count()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int, int64_t shard) {
                         if (shard == 57) {
                           throw std::runtime_error("shard 57 failed");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionsPropagateOnTheInlinePathToo) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.ParallelFor(
                   3, [](int, int64_t) { throw std::logic_error("boom"); }),
               std::logic_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   10, [](int, int64_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, [&](int, int64_t shard) { sum.fetch_add(shard); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ReusableAcrossManySequentialLoops) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(8, [&](int, int64_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 8);
}

TEST(ThreadPoolTest, NestedSamePoolLoopsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> inner_runs{0};
  std::atomic<bool> saw_in_shard{false};
  pool.ParallelFor(6, [&](int, int64_t) {
    if (pool.InShard()) saw_in_shard.store(true);
    // Same-pool nesting must not deadlock on the pool's busy workers.
    pool.ParallelFor(4, [&](int, int64_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 6 * 4);
  EXPECT_TRUE(saw_in_shard.load());
  EXPECT_FALSE(pool.InShard());
}

TEST(ThreadPoolTest, MaxParallelismCapStillRunsEveryShard) {
  ThreadPool pool(7);
  for (int cap : {1, 2, 3}) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(
        100, [&](int, int64_t shard) { sum.fetch_add(shard); }, cap);
    EXPECT_EQ(sum.load(), 99 * 100 / 2) << "cap " << cap;
  }
}

TEST(ThreadPoolTest, ParallelReduceCombinesInShardOrder) {
  // A non-commutative combine (string concatenation) exposes any
  // order dependence; the contract is combination in shard order.
  ThreadPool pool(3);
  std::string joined = pool.ParallelReduce<std::string>(
      8, std::string(),
      [](int, int64_t shard) { return std::to_string(shard); },
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(joined, "01234567");
}

TEST(ThreadPoolTest, ParallelReduceSumsLargeRanges) {
  ThreadPool pool(3);
  int64_t sum = pool.ParallelReduce<int64_t>(
      5000, int64_t{0}, [](int, int64_t shard) { return shard; },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, int64_t{5000} * 4999 / 2);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  const char* saved = std::getenv("BIORANK_THREADS");
  std::string saved_value = saved != nullptr ? saved : "";

  setenv("BIORANK_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 5);
  setenv("BIORANK_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);  // Falls back to hardware.
  setenv("BIORANK_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);

  if (saved != nullptr) {
    setenv("BIORANK_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("BIORANK_THREADS");
  }
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int64_t> sum{0};
  ThreadPool::Global().ParallelFor(
      32, [&](int, int64_t shard) { sum.fetch_add(shard); });
  EXPECT_EQ(sum.load(), 31 * 32 / 2);
}

}  // namespace
}  // namespace biorank
