// Canonicalization of reduced per-answer query graphs: the key that
// lets the serving layer share one reliability computation across every
// tuple (and every successive exploratory query) whose reduced evidence
// subgraph is isomorphic — the reuse opportunity motivating the
// serve/reliability_cache memo.

#ifndef BIORANK_CORE_CANONICAL_H_
#define BIORANK_CORE_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/csr_snapshot.h"
#include "core/query_graph.h"
#include "core/reduction.h"
#include "util/status.h"

namespace biorank {

/// Identity of a reduced query graph up to node relabeling.
///
/// `repr` is a full canonical serialization (topology + exact probability
/// bit patterns + source/target roles), so equal reprs imply genuinely
/// identical probabilistic graphs — a cache keyed on `repr` can never
/// return the reliability of a *different* graph. Isomorphic graphs map
/// to the same repr whenever the canonical labeling search converges
/// (always, for graphs within CanonicalizeOptions::max_label_leaves; see
/// CanonicalizeOptions); a missed identification only costs a cache miss,
/// never a wrong value.
struct CanonicalKey {
  std::string repr;  ///< Canonical serialization; equality = same graph.
  uint64_t hash = 0; ///< FNV-1a of repr: shard selector and MC stream id.
};

/// Options for canonicalization.
struct CanonicalizeOptions {
  /// Reduction rules applied to the per-answer subgraph before labeling.
  ReductionOptions reduction;
  /// Canonical labeling individualizes one node of the first ambiguous
  /// color class and recurses; this caps the total number of candidate
  /// labelings explored. Within the cap the labeling is truly canonical
  /// (isomorphic graphs collide); beyond it the search keeps only the
  /// first branch per class — still deterministic and still
  /// collision-free, but two isomorphic graphs may then receive
  /// different keys (a cache miss, not a bug). Reduced evidence graphs
  /// are tiny, so the cap is effectively never hit on real workloads.
  int max_label_leaves = 64;
  /// Record which original-graph nodes and edges the candidate's
  /// *pre-reduction* restricted subgraph contains (the ingest layer's
  /// dependency index consumes this). Off by default: provenance does not
  /// affect the key, and pure serving callers should not pay for it.
  bool collect_provenance = false;
};

/// The original-graph footprint of one candidate: every node and alive
/// edge of the restricted (pre-reduction) evidence subgraph, by the ids
/// of the *request's* graph. An evidence update can change the
/// candidate's canonical key only if it touches this set (or adds an
/// edge from which the target becomes newly reachable — the one growth
/// case, handled by ingest/dependency_index's AddEdge rule).
struct CandidateProvenance {
  std::vector<NodeId> nodes;  ///< Ascending original node ids.
  std::vector<EdgeId> edges;  ///< Ascending original edge ids.
};

/// One answer node's cacheable resolution unit: the canonical form of its
/// reduced evidence subgraph.
struct CanonicalCandidate {
  CanonicalKey key;
  /// The reduced subgraph rebuilt in canonical node order with
  /// `answers = {target}`. Every isomorphic input yields this exact
  /// graph (bit-identical probabilities, same node numbering), so any
  /// computation run on it — bounds, factoring, seeded Monte Carlo — is
  /// a pure function of `key`. Labels and entity sets are dropped; they
  /// do not affect reliability.
  QueryGraph canonical;
  /// The canonical id of the answer node (== canonical.answers[0]).
  NodeId target = kInvalidNode;
  /// Counters from the reduction pass.
  ReductionStats reduction_stats;
  /// Original-graph footprint; populated only when
  /// CanonicalizeOptions::collect_provenance is set.
  CandidateProvenance provenance;
};

/// Restricts `query_graph` to the evidence subgraph of one answer node
/// (nodes on some source -> target path), applies the Section 3.1
/// reductions with only the source and `target` protected, and computes
/// the canonical form. Fails on invalid query graphs or if `target` is
/// not one of the answers.
///
/// `graph_csr`, when given, must be an unmasked flat snapshot of
/// `query_graph.graph` (core/csr_snapshot.h); the per-target restriction
/// traversal then runs over its packed arrays instead of the pointer
/// adjacency. Callers canonicalizing many targets against one graph (the
/// serving fan-out, ingest recanonicalization) build the snapshot once
/// and pass it to every call; the produced candidate is identical either
/// way.
Result<CanonicalCandidate> CanonicalizeCandidate(
    const QueryGraph& query_graph, NodeId target,
    const CanonicalizeOptions& options = {},
    const CsrSnapshot* graph_csr = nullptr);

/// Canonical key of a query graph as-is (no restriction, no reduction).
/// The graph must validate; all answers are marked with the target role.
Result<CanonicalKey> CanonicalQueryGraphKey(
    const QueryGraph& query_graph, const CanonicalizeOptions& options = {});

/// FNV-1a 64-bit hash, exposed for tests and the cache's shard selector.
uint64_t Fnv1a64(const std::string& text);

}  // namespace biorank

#endif  // BIORANK_CORE_CANONICAL_H_
