// Simulated Entrez Protein wrapper: protein records linked from gene
// records (Figure 1 pipeline).

#ifndef BIORANK_SOURCES_ENTREZ_PROTEIN_H_
#define BIORANK_SOURCES_ENTREZ_PROTEIN_H_

#include <string>
#include <vector>

#include "datagen/protein_universe.h"
#include "sources/data_source.h"

namespace biorank {

/// One EntrezProtein entry: EntrezProtein(name, seq). Sequences are
/// abstracted to integer ids (the ranking pipeline only ever joins on
/// them; actual residues would be dead weight).
struct ProteinRecord {
  int protein_index = 0;   ///< Index into the universe.
  std::string accession;
  std::string name;        ///< Gene symbol, the attribute queries match.
  int seq_id = 0;          ///< Foreign key used by BLAST/Pfam/TIGRFAM.
};

/// Simulated EntrezProtein: the entry point of every exploratory query
/// (Figure 1's input entity set).
class EntrezProteinSource : public DataSource {
 public:
  explicit EntrezProteinSource(const ProteinUniverse& universe);

  std::string name() const override { return "EntrezProtein"; }
  int entity_set_count() const override { return 1; }
  int relationship_count() const override { return 11; }

  /// Records whose name or accession matches `query` exactly.
  std::vector<ProteinRecord> Lookup(const std::string& query) const;

  /// Record by sequence id; nullptr if out of range.
  const ProteinRecord* BySeqId(int seq_id) const;

  int record_count() const { return static_cast<int>(records_.size()); }

 private:
  const ProteinUniverse& universe_;
  std::vector<ProteinRecord> records_;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_ENTREZ_PROTEIN_H_
