#include "sources/ncbi_blast.h"

#include "util/rng.h"

namespace biorank {

NcbiBlastSource::NcbiBlastSource(const ProteinUniverse& universe,
                                 const EvidenceModel& evidence,
                                 const NcbiBlastOptions& options) {
  Rng rng(universe.options().seed ^ 0xB1A57ULL);
  hits_.resize(universe.num_proteins());
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    // Genuine homologues: the other members of the protein's family.
    for (int member : universe.FamilyMembers(protein.family)) {
      if (member == i) continue;
      hits_[i].push_back(
          BlastHit{member, member, evidence.SampleTrueHitEValue(rng)});
    }
    // Spurious hits against random other proteins.
    int noise = static_cast<int>(
        rng.NextInt(options.min_noise_hits, options.max_noise_hits));
    for (int hit = 0; hit < noise; ++hit) {
      int other = static_cast<int>(rng.NextBounded(universe.num_proteins()));
      if (other == i) continue;
      hits_[i].push_back(
          BlastHit{other, other, evidence.SampleWeakHitEValue(rng)});
    }
  }
}

const std::vector<BlastHit>& NcbiBlastSource::Similar(int seq_id) const {
  if (seq_id < 0 || seq_id >= static_cast<int>(hits_.size())) return empty_;
  return hits_[seq_id];
}

}  // namespace biorank
