// Ablation: the diffusion inner solver. The paper's Algorithm 3.3 solves
// the implicit inflow equation iteratively; this library adds an exact
// analytic solve (sort parents, pick the consistent prefix). The two
// agree to 1e-9; this bench measures the speed difference on the
// scenario-1 query graphs.

#include <benchmark/benchmark.h>

#include "api/server.h"
#include "bench_gbench_json.h"

#include "core/diffusion.h"
#include "integrate/scenario_harness.h"

using namespace biorank;

namespace {

const std::vector<ScenarioQuery>& Scenario1Queries() {
  static const std::vector<ScenarioQuery>* queries = [] {
    static api::Server server;
    auto result = server.harness().BuildQueries(ScenarioId::kScenario1WellKnown);
    return new std::vector<ScenarioQuery>(std::move(result.value()));
  }();
  return *queries;
}

void BM_DiffusionAnalyticInnerSolve(benchmark::State& state) {
  DiffusionOptions options;
  options.solver = DiffusionInnerSolver::kAnalytic;
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      benchmark::DoNotOptimize(Diffuse(q.graph, options));
    }
  }
}
BENCHMARK(BM_DiffusionAnalyticInnerSolve)->Unit(benchmark::kMillisecond);

void BM_DiffusionBisectionInnerSolve(benchmark::State& state) {
  DiffusionOptions options;
  options.solver = DiffusionInnerSolver::kBisection;
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      benchmark::DoNotOptimize(Diffuse(q.graph, options));
    }
  }
}
BENCHMARK(BM_DiffusionBisectionInnerSolve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return biorank::bench::RunBenchmarksWithJson("ablation_diffusion", argc, argv);
}
