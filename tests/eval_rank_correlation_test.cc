#include "eval/rank_correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace biorank {
namespace {

TEST(KendallTauTest, IdenticalOrderIsOne) {
  std::vector<double> a = {4, 3, 2, 1};
  EXPECT_NEAR(KendallTauB(a, a).value(), 1.0, 1e-12);
}

TEST(KendallTauTest, ReversedOrderIsMinusOne) {
  std::vector<double> a = {4, 3, 2, 1};
  std::vector<double> b = {1, 2, 3, 4};
  EXPECT_NEAR(KendallTauB(a, b).value(), -1.0, 1e-12);
}

TEST(KendallTauTest, MonotoneTransformIsInvariant) {
  std::vector<double> a = {0.1, 0.9, 0.4, 0.7};
  std::vector<double> b = {1, 81, 16, 49};  // Squared * 100: same order.
  EXPECT_NEAR(KendallTauB(a, b).value(), 1.0, 1e-12);
}

TEST(KendallTauTest, KnownSmallExample) {
  // a: 1,2,3,4 ; b: 1,3,2,4 — one discordant pair of six: tau = 4/6.
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {1, 3, 2, 4};
  EXPECT_NEAR(KendallTauB(a, b).value(), 4.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, TauBHandlesTies) {
  // a has a tie; tau-b discounts the tied pair from the denominator.
  std::vector<double> a = {1, 1, 2};
  std::vector<double> b = {1, 2, 3};
  // Pairs: (0,1) tied in a; (0,2) concordant; (1,2) concordant.
  // tau-b = 2 / sqrt((3-1) * 3) = 0.8165.
  EXPECT_NEAR(KendallTauB(a, b).value(), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTauTest, AllTiedSideGivesZero) {
  std::vector<double> a = {5, 5, 5};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(KendallTauB(a, b).value(), 0.0);
}

TEST(KendallTauTest, IndependentRandomScoresNearZero) {
  Rng rng(99);
  std::vector<double> a(500), b(500);
  for (int i = 0; i < 500; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  EXPECT_NEAR(KendallTauB(a, b).value(), 0.0, 0.1);
}

TEST(KendallTauTest, RejectsBadInput) {
  EXPECT_FALSE(KendallTauB({1, 2}, {1}).ok());
  EXPECT_FALSE(KendallTauB({1}, {1}).ok());
  EXPECT_FALSE(KendallTauB({}, {}).ok());
}

TEST(RankingTauTest, MatchesByNodeId) {
  std::vector<RankedAnswer> a = {
      {10, 0.9, 1, 1}, {11, 0.5, 2, 2}, {12, 0.1, 3, 3}};
  // Same order, different node order in the vector.
  std::vector<RankedAnswer> b = {
      {12, 0.2, 3, 3}, {10, 0.8, 1, 1}, {11, 0.6, 2, 2}};
  EXPECT_NEAR(RankingKendallTau(a, b).value(), 1.0, 1e-12);
}

TEST(RankingTauTest, DetectsSwaps) {
  std::vector<RankedAnswer> a = {
      {10, 0.9, 1, 1}, {11, 0.5, 2, 2}, {12, 0.1, 3, 3}};
  std::vector<RankedAnswer> b = {
      {10, 0.1, 3, 3}, {11, 0.5, 2, 2}, {12, 0.9, 1, 1}};
  EXPECT_NEAR(RankingKendallTau(a, b).value(), -1.0, 1e-12);
}

TEST(RankingTauTest, RejectsMismatchedAnswerSets) {
  std::vector<RankedAnswer> a = {{10, 0.9, 1, 1}, {11, 0.5, 2, 2}};
  std::vector<RankedAnswer> b = {{10, 0.9, 1, 1}, {99, 0.5, 2, 2}};
  EXPECT_FALSE(RankingKendallTau(a, b).ok());
}

}  // namespace
}  // namespace biorank
