#include "storage/recovery.h"

#include "util/file.h"

namespace biorank::storage {

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

Result<SnapshotLoadResult> LoadNewestValidSnapshot(const std::string& dir,
                                                   uint64_t fingerprint) {
  SnapshotLoadResult result;
  for (const auto& [lsn, path] : ListSnapshots(dir)) {
    (void)lsn;
    Result<std::string> bytes = util::ReadFileToString(path);
    if (!bytes.ok()) {
      ++result.corrupt_skipped;
      continue;
    }
    Result<SnapshotState> decoded = DecodeSnapshot(bytes.value(), fingerprint);
    if (decoded.ok()) {
      result.found = true;
      result.state = std::move(decoded).value();
      result.path = path;
      return result;
    }
    if (decoded.status().code() == StatusCode::kFailedPrecondition) {
      // Not corruption: the directory belongs to another configuration.
      // Booting over it would silently change every ranking.
      return decoded.status();
    }
    ++result.corrupt_skipped;
  }
  return result;
}

}  // namespace biorank::storage
