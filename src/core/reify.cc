#include "core/reify.h"

namespace biorank {

ReifiedGraph ReifyNodeFailures(const QueryGraph& query_graph) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  ReifiedGraph out;
  out.in_node.assign(graph.node_capacity(), kInvalidNode);
  out.out_node.assign(graph.node_capacity(), kInvalidNode);

  for (NodeId i = 0; i < graph.node_capacity(); ++i) {
    if (!graph.IsValidNode(i)) continue;
    const GraphNode& node = graph.node(i);
    if (node.p >= 1.0) {
      NodeId id = out.query_graph.graph.AddNode(1.0, node.label,
                                                node.entity_set);
      out.in_node[i] = id;
      out.out_node[i] = id;
    } else {
      NodeId vin = out.query_graph.graph.AddNode(1.0, node.label + "/in",
                                                 node.entity_set);
      NodeId vout = out.query_graph.graph.AddNode(1.0, node.label + "/out",
                                                  node.entity_set);
      out.query_graph.graph.AddEdge(vin, vout, node.p).value();
      out.in_node[i] = vin;
      out.out_node[i] = vout;
    }
  }
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.IsValidEdge(e)) continue;
    const GraphEdge& edge = graph.edge(e);
    out.query_graph.graph
        .AddEdge(out.out_node[edge.from], out.in_node[edge.to], edge.q)
        .value();
  }
  out.query_graph.source = out.in_node[query_graph.source];
  for (NodeId t : query_graph.answers) {
    out.query_graph.answers.push_back(out.out_node[t]);
  }
  return out;
}

}  // namespace biorank
