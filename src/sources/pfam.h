// Simulated Pfam wrapper: protein family and domain hits (Figure 1
// pipeline).

#ifndef BIORANK_SOURCES_PFAM_H_
#define BIORANK_SOURCES_PFAM_H_

#include "sources/data_source.h"
#include "sources/profile_db.h"

namespace biorank {

/// Simulated Pfam: protein domain families matched by profile HMMs that
/// take amino-acid adjacency into account (hence a higher qs than raw
/// BLAST in the default metrics). Exports Figure 1's Pfam1 (sequence ->
/// domain hit with e-value) and Pfam2GO (domain -> GO terms).
class PfamSource : public DataSource {
 public:
  PfamSource(const ProteinUniverse& universe, const EvidenceModel& evidence);

  std::string name() const override { return "Pfam"; }
  int entity_set_count() const override { return 2; }
  int relationship_count() const override { return 2; }

  const ProfileDatabase& db() const { return db_; }

 private:
  static ProfileDatabaseConfig Config();
  ProfileDatabase db_;
};

/// Simulated TIGRFAM: curated protein-family HMMs. Coarser coverage than
/// Pfam but carries the dedicated models that make scenario 3's
/// hypothetical proteins annotatable at all.
class TigrFamSource : public DataSource {
 public:
  TigrFamSource(const ProteinUniverse& universe,
                const EvidenceModel& evidence);

  std::string name() const override { return "TIGRFAM"; }
  int entity_set_count() const override { return 2; }
  int relationship_count() const override { return 2; }

  const ProfileDatabase& db() const { return db_; }

 private:
  static ProfileDatabaseConfig Config();
  ProfileDatabase db_;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_PFAM_H_
