#include "datagen/go_ontology.h"

#include <cstdio>

namespace biorank {

namespace {

constexpr const char* kProcessWords[] = {
    "ATP",        "potassium",  "sodium",   "calcium",    "sulphonylurea",
    "glutamate",  "chloride",   "membrane", "ubiquitin",  "kinase",
    "phosphatase", "ribosome",  "histone",  "cytochrome", "zinc",
    "heme",       "lipid",      "glycogen", "proton",     "electron",
};

constexpr const char* kActivityWords[] = {
    "binding",        "transport",     "receptor activity",
    "channel activity", "conductance", "catalytic activity",
    "transferase activity", "hydrolase activity", "oxidoreductase activity",
    "ligase activity", "carrier activity", "biosynthesis",
    "degradation",    "regulation",    "signaling",
};

}  // namespace

GoOntology GoOntology::Generate(int num_terms, Rng& rng) {
  GoOntology ontology;
  ontology.terms_.reserve(num_terms);
  constexpr int kNumProcess =
      static_cast<int>(sizeof(kProcessWords) / sizeof(kProcessWords[0]));
  constexpr int kNumActivity =
      static_cast<int>(sizeof(kActivityWords) / sizeof(kActivityWords[0]));
  for (int i = 0; i < num_terms; ++i) {
    GoTerm term;
    char id[16];
    // Deterministic, unique 7-digit ids spaced out like real GO ids.
    std::snprintf(id, sizeof(id), "GO:%07d", 1000 + i * 13);
    term.id = id;
    term.name = std::string(kProcessWords[rng.NextBounded(kNumProcess)]) +
                " " + kActivityWords[rng.NextBounded(kNumActivity)];
    ontology.index_[term.id] = i;
    ontology.terms_.push_back(std::move(term));
  }
  return ontology;
}

Result<int> GoOntology::IndexOf(const std::string& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return Status::NotFound("GO term: " + id);
  return it->second;
}

}  // namespace biorank
