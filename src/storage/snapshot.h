// Versioned checkpoint files: one file serializes the server's whole
// durable state — every live session's exact graph (tombstones and all)
// plus its maintained CsrSnapshot flat arrays verbatim, the resolved
// entries of the canonical reliability cache, and the covering WAL LSN
// the state is consistent with. Loading is a bounds-checked read back
// into the same structs; the CSR arrays in particular round-trip
// byte-identically (asserted with core::CsrBytesEqual in tests), which
// is what makes a recovered server's rankings bit-identical to the
// never-killed one.
//
// File layout:
//
//   magic "BRSNAP01" | u32 version | payload | u32 crc32c(everything before)
//
// The whole-file checksum makes torn or bit-flipped snapshot files a
// typed kDataLoss on load; recovery then falls back to the next-older
// valid snapshot (the WAL is never truncated, so an older snapshot just
// means a longer replay, not lost data). Files are written with
// util::AtomicFileWrite and named snapshot-<lsn, 16 hex digits>.brsnap,
// so lexicographic filename order is LSN order.

#ifndef BIORANK_STORAGE_SNAPSHOT_H_
#define BIORANK_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/csr_snapshot.h"
#include "core/query_graph.h"
#include "serve/reliability_cache.h"
#include "util/status.h"

namespace biorank::storage {

/// One resolved reliability-cache entry, keyed by canonical repr (the
/// hash is recomputed on load — it is a pure function of the repr).
struct SnapshotCacheEntry {
  std::string repr;
  serve::CacheEntry entry;
};

/// One live session's durable state.
struct SnapshotSession {
  uint64_t id = 0;
  /// LSN of the last delta applied to this session at capture time. May
  /// exceed the state's global wal_lsn (a delta can land between the
  /// checkpoint capturing the global LSN and freezing this session);
  /// replay skips exactly the deltas with lsn <= applied_lsn.
  uint64_t applied_lsn = 0;
  int32_t matched_proteins = 0;
  std::unordered_map<int, NodeId> go_node;
  std::unordered_map<NodeId, std::string> answer_labels;
  /// The exact live graph: node/edge capacities, tombstones, and
  /// probabilities are preserved id-for-id, so replayed deltas address
  /// the same ids they were logged against.
  QueryGraph graph;
  /// The applier's maintained flat view, serialized verbatim.
  CsrSnapshot csr;
};

/// Everything one checkpoint file holds.
struct SnapshotState {
  /// Configuration fingerprint (api::Server computes it over the options
  /// that determine ranking values); load refuses a mismatch.
  uint64_t fingerprint = 0;
  /// Covering LSN: every session-lifecycle record with lsn <= wal_lsn is
  /// reflected in `sessions`; replay starts past it.
  uint64_t wal_lsn = 0;
  uint64_t next_session_id = 1;
  std::vector<SnapshotSession> sessions;
  /// Resolved cache entries, LRU-oldest first per shard, so restoring
  /// with Put() in order reproduces the recency order.
  std::vector<SnapshotCacheEntry> cache_entries;
};

/// Serializes `state` into the full file image (header + payload +
/// whole-file checksum).
std::string EncodeSnapshot(const SnapshotState& state);

/// Parses and verifies a snapshot file image. kDataLoss on a checksum,
/// magic, bounds, or structural-invariant failure (the CSR arrays are
/// re-validated against each other); kFailedPrecondition when the file's
/// fingerprint differs from `expected_fingerprint`.
Result<SnapshotState> DecodeSnapshot(const std::string& bytes,
                                     uint64_t expected_fingerprint);

/// "snapshot-<lsn as 16 hex digits>.brsnap".
std::string SnapshotFileName(uint64_t lsn);

/// Encodes and atomically writes `state` to its canonical filename under
/// `dir`. Outputs the path and encoded size when the pointers are set.
Status WriteSnapshotFile(const std::string& dir, const SnapshotState& state,
                         std::string* path_out = nullptr,
                         uint64_t* bytes_out = nullptr);

/// Snapshot files under `dir` as (lsn, full path), newest (highest LSN)
/// first. A missing directory is an empty list, not an error.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir);

/// Structural validation of a deserialized CsrSnapshot: array sizes
/// consistent, offsets monotone and covering the edge arrays, all dense
/// ids in range. Returns kDataLoss on violation — this is the
/// bounds-check that makes loading the flat arrays verbatim safe.
Status ValidateCsr(const CsrSnapshot& csr);

}  // namespace biorank::storage

#endif  // BIORANK_STORAGE_SNAPSHOT_H_
