#include "util/csv.h"

#include "util/file.h"

namespace biorank {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvEscape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

void AppendRow(std::string& out, const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(cells[i]);
  }
  out += '\n';
}

}  // namespace

std::string CsvWriter::ToString() const {
  std::string out;
  AppendRow(out, headers_);
  for (const auto& row : rows_) AppendRow(out, row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  // Temp-file + rename: a crash mid-write leaves the previous file
  // intact instead of a truncated CSV.
  return util::AtomicFileWrite(path, ToString());
}

}  // namespace biorank
