// Theorem 3.2 schema reducibility: decides from the mediated schema
// alone whether every query graph it admits reduces to closed form
// (one-to-many forest criterion), with a witness when it does not.

#ifndef BIORANK_SCHEMA_REDUCIBILITY_H_
#define BIORANK_SCHEMA_REDUCIBILITY_H_

#include <string>
#include <vector>

#include "schema/composition.h"
#include "schema/er_schema.h"

namespace biorank {

/// Outcome of the Theorem 3.2 decision procedure.
struct ReducibilityResult {
  /// True if the theorem proves every data instance of the schema fully
  /// reducible by the Section 3.1 graph transformation rules. The theorem
  /// is sufficient, not necessary: `false` means "not provably reducible"
  /// (e.g. Figure 2d's benign [m:n] is out of the theorem's reach).
  bool reducible = false;
  /// Human-readable contraction steps / the reason the procedure stopped.
  std::vector<std::string> trace;
};

/// Decides schema reducibility per Theorem 3.2:
///   A) a rooted forest whose relationships are all [1:n] (or [1:1]) is
///      reducible;
///   B) if some entity set P has exactly one incoming relationship Q of
///      type [1:n] and exactly one outgoing relationship Q' of type [n:1]
///      (with [1:1] admissible as either), and Q o Q' resolves to [1:n] or
///      [n:1] (not [m:n]), then S is reducible iff S with P contracted is.
/// The oracle supplies domain knowledge for otherwise-ambiguous
/// compositions (the key of part B-a).
ReducibilityResult CheckSchemaReducibility(
    const ErSchema& schema, const CompositionOracle& oracle = {});

/// Part A's base case on its own: every relationship is [1:n] or [1:1],
/// every entity set has at most one incoming relationship, and there is no
/// directed cycle.
bool IsOneToManyForest(const ErSchema& schema);

}  // namespace biorank

#endif  // BIORANK_SCHEMA_REDUCIBILITY_H_
