// End-to-end regression tests for the paper's three headline findings
// (Section 7). These run the full pipeline — universe, sources, mediator,
// ranking, tied AP — and assert the qualitative results that the
// reproduction must preserve:
//   1. All methods beat random ordering on well-known functions, and the
//      probabilistic/deterministic gap is small there.
//   2. Probabilistic methods clearly beat the deterministic counting
//      measures on less-known and unknown functions.
//   3. Rankings are robust to log-odds noise on all input probabilities.

#include <gtest/gtest.h>

#include "api/server.h"
#include "eval/perturbation.h"
#include "integrate/scenario_harness.h"
#include "util/rng.h"
#include "util/stats.h"

namespace biorank {
namespace {

const ScenarioHarness& Harness() {
  // One server (and so one world + one reliability cache) for the whole
  // file; BuildQueries does the crawling.
  static api::Server* server = new api::Server();
  return server->harness();
}

double MeanAp(const std::vector<ScenarioQuery>& queries,
              RankingMethod method) {
  std::vector<double> aps;
  for (const ScenarioQuery& query : queries) {
    if (query.relevant.empty()) continue;
    Result<double> ap = Harness().ApForQuery(query, method);
    if (ap.ok()) aps.push_back(ap.value());
  }
  return Mean(aps);
}

double MeanRandom(const std::vector<ScenarioQuery>& queries) {
  std::vector<double> aps;
  for (const ScenarioQuery& query : queries) {
    if (query.relevant.empty()) continue;
    Result<double> ap = Harness().RandomBaselineAp(query);
    if (ap.ok()) aps.push_back(ap.value());
  }
  return Mean(aps);
}

TEST(FindingsTest, Scenario1AllMethodsBeatRandomClearly) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  double random = MeanRandom(queries);
  for (RankingMethod method : AllRankingMethods()) {
    double ap = MeanAp(queries, method);
    EXPECT_GT(ap, random + 0.25) << RankingMethodName(method);
  }
}

TEST(FindingsTest, Scenario1DeterministicIsCompetitive) {
  // "The deterministic ranking methods are as good as, or slightly better
  // than the best probabilistic ones" for well-known functions: the gap
  // must be small (our calibration leaves reliability a touch ahead).
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  double inedge = MeanAp(queries, RankingMethod::kInEdge);
  double reliability = MeanAp(queries, RankingMethod::kReliability);
  EXPECT_GT(inedge, 0.7);
  EXPECT_LT(reliability - inedge, 0.15);
}

TEST(FindingsTest, Scenario2ProbabilisticBeatsDeterministic) {
  // The paper's core claim: for less-known functions the deterministic
  // counting measures are barely better than random while probabilistic
  // scores separate the single strong evidence from the noise.
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario2LessKnown).value();
  double reliability = MeanAp(queries, RankingMethod::kReliability);
  double diffusion = MeanAp(queries, RankingMethod::kDiffusion);
  double inedge = MeanAp(queries, RankingMethod::kInEdge);
  double pathcount = MeanAp(queries, RankingMethod::kPathCount);
  double random = MeanRandom(queries);

  EXPECT_GT(reliability, 2.0 * inedge);
  EXPECT_GT(diffusion, 2.0 * inedge);
  EXPECT_GT(reliability, random);
  EXPECT_LT(inedge, random + 0.05);  // Deterministic ~ random here.
  EXPECT_LT(pathcount, random + 0.05);
}

TEST(FindingsTest, Scenario2DiffusionExcelsOnShortStrongPaths) {
  // Table 2: diffusion places the new functions at the very top because
  // their single strong record sits on a shorter connection.
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario2LessKnown).value();
  double diffusion = MeanAp(queries, RankingMethod::kDiffusion);
  double reliability = MeanAp(queries, RankingMethod::kReliability);
  EXPECT_GT(diffusion, reliability);
}

TEST(FindingsTest, Scenario3ProbabilisticWins) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario3Hypothetical).value();
  double reliability = MeanAp(queries, RankingMethod::kReliability);
  double propagation = MeanAp(queries, RankingMethod::kPropagation);
  double inedge = MeanAp(queries, RankingMethod::kInEdge);
  double random = MeanRandom(queries);
  EXPECT_GT(reliability, inedge + 0.2);
  EXPECT_GT(propagation, inedge + 0.2);
  EXPECT_GT(inedge, random);  // Counting still beats random ordering.
}

TEST(FindingsTest, RankingsAreRobustToModerateNoise) {
  // Figure 6's observation at sigma = 1: quality within a few points of
  // the unperturbed default.
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  double base = MeanAp(queries, RankingMethod::kReliability);
  Rng rng(123);
  std::vector<double> perturbed_aps;
  for (int rep = 0; rep < 3; ++rep) {
    for (const ScenarioQuery& query : queries) {
      QueryGraph perturbed = query.graph;
      PerturbationOptions options;
      options.sigma = 1.0;
      PerturbQueryGraph(perturbed, options, rng);
      Result<double> ap = Harness().ApForGraph(perturbed, query.relevant,
                                               RankingMethod::kReliability);
      if (ap.ok()) perturbed_aps.push_back(ap.value());
    }
  }
  double perturbed = Mean(perturbed_aps);
  EXPECT_GT(perturbed, base - 0.08);
}

TEST(FindingsTest, HeavyNoiseDegradesButStaysAboveRandom) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  double random = MeanRandom(queries);
  Rng rng(321);
  std::vector<double> perturbed_aps;
  for (const ScenarioQuery& query : queries) {
    QueryGraph perturbed = query.graph;
    PerturbationOptions options;
    options.sigma = 3.0;
    PerturbQueryGraph(perturbed, options, rng);
    Result<double> ap = Harness().ApForGraph(perturbed, query.relevant,
                                             RankingMethod::kReliability);
    if (ap.ok()) perturbed_aps.push_back(ap.value());
  }
  EXPECT_GT(Mean(perturbed_aps), random + 0.15);
}

}  // namespace
}  // namespace biorank
