// Reproduces Theorem 3.1: the trial-count bound for correct Monte Carlo
// ranking. Prints the bound n(eps, delta) over a grid (the paper's
// example: eps = 0.02, delta = 0.05 -> 7,896, rounded to "10,000 trials
// should be enough") and then validates it empirically: with n bounded
// trials, the observed misranking frequency stays below delta.

#include <iostream>

#include "bench_util.h"
#include "core/trial_bound.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Theorem 3.1: Monte Carlo trial bound ===\n\n";

  TextTable grid({"eps \\ delta", "0.10", "0.05", "0.01"});
  CsvWriter csv({"eps", "delta", "bound_n"});
  for (double eps : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    std::vector<std::string> row = {FormatCompact(eps, 2)};
    for (double delta : {0.10, 0.05, 0.01}) {
      int64_t n = RequiredMcTrials(eps, delta).value();
      row.push_back(std::to_string(n));
      csv.AddRow({FormatCompact(eps, 2), FormatCompact(delta, 2),
                  std::to_string(n)});
    }
    grid.AddRow(row);
  }
  grid.Print(std::cout);
  std::cout << "\nPaper: n(0.02, 0.05) rounds up to 10,000.\n\n";

  // Empirical validation: two Bernoulli "nodes" eps apart, n trials each,
  // repeated; count how often the estimates invert the true order.
  std::cout << "Empirical misranking frequency at the bound (300 "
               "repetitions each):\n";
  TextTable empirical({"eps", "delta", "n", "observed misrank rate",
                       "within bound?"});
  Rng rng(31);
  for (double eps : {0.05, 0.1, 0.2}) {
    for (double delta : {0.1, 0.05}) {
      int64_t n = RequiredMcTrials(eps, delta).value();
      double r_hi = 0.5 + eps / 2;
      double r_lo = 0.5 - eps / 2;
      const int repetitions = 300;
      int misranked = 0;
      for (int rep = 0; rep < repetitions; ++rep) {
        int64_t hits_hi = 0, hits_lo = 0;
        for (int64_t i = 0; i < n; ++i) {
          if (rng.NextBernoulli(r_hi)) ++hits_hi;
          if (rng.NextBernoulli(r_lo)) ++hits_lo;
        }
        if (hits_lo >= hits_hi) ++misranked;
      }
      double rate = static_cast<double>(misranked) / repetitions;
      empirical.AddRow({FormatCompact(eps, 2), FormatCompact(delta, 2),
                        std::to_string(n), FormatDouble(rate, 4),
                        rate <= delta ? "yes" : "NO"});
    }
  }
  empirical.Print(std::cout);
  std::cout << "\nThe Bennett-inequality bound is conservative: observed "
               "rates sit well below delta.\n";
  bench::MaybeWriteCsv(csv, "theorem31_bound");
  return 0;
}
