#include "shard/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "api/query.h"
#include "core/query_graph.h"
#include "serve/ranking_service.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank::shard {
namespace {

using biorank::testing::MakeRandomLayeredDag;
using biorank::testing::RandomDagOptions;

/// One shared two-shard transport: server construction generates a full
/// synthetic universe, so the read-only tests share one fleet.
InProcessTransport& SharedTransport() {
  static InProcessTransport* transport = new InProcessTransport(2);
  return *transport;
}

QueryGraph MakeDag(uint64_t seed, int answers) {
  Rng rng(seed);
  RandomDagOptions options;
  options.answers = answers;
  return MakeRandomLayeredDag(rng, options);
}

ShardQuery MakeQuery(const QueryGraph& graph, int top_k) {
  ShardQuery query;
  query.graph = &graph;
  query.answers = graph.answers;
  query.options.top_k = top_k;
  return query;
}

TEST(ShardTransportTest, ReportsShardCountAndClampsToOne) {
  EXPECT_EQ(SharedTransport().shard_count(), 2u);
  InProcessTransport degenerate(0);
  EXPECT_EQ(degenerate.shard_count(), 1u);
}

TEST(ShardTransportTest, OutOfRangeShardIsInvalidArgument) {
  QueryGraph graph = MakeDag(11, 3);
  Result<ShardReply> reply = SharedTransport().Call(2, MakeQuery(graph, 1));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardTransportTest, NullGraphIsInvalidArgument) {
  ShardQuery query;
  query.answers = {1};
  query.options.top_k = 1;
  Result<ShardReply> reply = SharedTransport().Call(0, query);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardTransportTest, RanksTheSliceInServingOrder) {
  QueryGraph graph = MakeDag(12, 6);
  // A strict subset of the answers: the shard slice.
  std::vector<NodeId> slice(graph.answers.begin(), graph.answers.begin() + 4);
  ShardQuery query;
  query.graph = &graph;
  query.answers = slice;
  query.options.top_k = 3;
  Result<ShardReply> reply = SharedTransport().Call(0, query);
  ASSERT_TRUE(reply.ok()) << reply.status();
  const ShardReply& r = reply.value();
  ASSERT_EQ(r.top.size(), 3u);
  EXPECT_EQ(r.stats.candidates, 4);
  for (size_t i = 0; i < r.top.size(); ++i) {
    const serve::RankedCandidate& candidate = r.top[i];
    // Only slice members may appear.
    EXPECT_NE(std::find(slice.begin(), slice.end(), candidate.node),
              slice.end());
    EXPECT_GE(candidate.reliability, candidate.lower - 1e-15);
    EXPECT_LE(candidate.reliability, candidate.upper + 1e-15);
    if (i > 0) {
      EXPECT_TRUE(serve::RanksBefore(r.top[i - 1], candidate));
    }
  }
}

TEST(ShardTransportTest, NonAnswerSliceMemberIsInvalidArgument) {
  QueryGraph graph = MakeDag(13, 3);
  ShardQuery query;
  query.graph = &graph;
  query.answers = {graph.source};  // The source is never an answer.
  query.options.top_k = 1;
  Result<ShardReply> reply = SharedTransport().Call(0, query);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardTransportTest, FaultInjectionFailsFastAndClears) {
  InProcessTransport& transport = SharedTransport();
  QueryGraph graph = MakeDag(14, 3);
  const uint64_t calls_before = transport.calls(1);
  transport.InjectFault(1, Status::Internal("injected shard outage"));
  Result<ShardReply> faulted = transport.Call(1, MakeQuery(graph, 1));
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  // Faulted calls still count as attempts.
  EXPECT_EQ(transport.calls(1), calls_before + 1);
  transport.InjectFault(1, Status::OK());
  Result<ShardReply> healed = transport.Call(1, MakeQuery(graph, 1));
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(transport.calls(1), calls_before + 2);
}

TEST(ShardTransportTest, SameSliceSameValuesOnEveryShard) {
  // Every shard is built from the same options, so the same slice ranks
  // bit-identically everywhere — the property the router's merge rests on.
  InProcessTransport& transport = SharedTransport();
  QueryGraph graph = MakeDag(15, 5);
  Result<ShardReply> a = transport.Call(0, MakeQuery(graph, 0));
  Result<ShardReply> b = transport.Call(1, MakeQuery(graph, 0));
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a.value().top.size(), b.value().top.size());
  for (size_t i = 0; i < a.value().top.size(); ++i) {
    EXPECT_EQ(a.value().top[i].node, b.value().top[i].node);
    EXPECT_EQ(a.value().top[i].reliability, b.value().top[i].reliability);
  }
}

TEST(ShardTransportTest, ConcurrentCallsAndFaultFlipsAreSafe) {
  InProcessTransport& transport = SharedTransport();
  QueryGraph graph = MakeDag(16, 4);
  Result<ShardReply> reference = transport.Call(0, MakeQuery(graph, 0));
  ASSERT_TRUE(reference.ok()) << reference.status();

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  std::atomic<bool> stop{false};
  // One thread flips shard 1 in and out of a faulted state while the
  // callers hammer both shards.
  threads.emplace_back([&] {
    while (!stop.load()) {
      transport.InjectFault(1, Status::Internal("flip"));
      transport.InjectFault(1, Status::OK());
    }
  });
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const uint32_t shard = static_cast<uint32_t>((t + i) % 2);
        Result<ShardReply> reply = transport.Call(shard, MakeQuery(graph, 0));
        if (!reply.ok()) {
          // Only the injected fault may surface.
          if (reply.status().code() != StatusCode::kInternal) ++mismatches;
          continue;
        }
        if (reply.value().top.size() != reference.value().top.size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < reply.value().top.size(); ++j) {
          if (reply.value().top[j].node != reference.value().top[j].node ||
              reply.value().top[j].reliability !=
                  reference.value().top[j].reliability) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[0].join();
  EXPECT_EQ(mismatches.load(), 0);
  transport.InjectFault(1, Status::OK());
}

}  // namespace
}  // namespace biorank::shard
