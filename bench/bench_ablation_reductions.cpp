// Ablation: the contribution of each graph reduction rule (Section 3.1)
// to shrinking scenario-1 query graphs. Disables one rule at a time and
// reports the residual graph size — showing that serial collapse and
// parallel merge carry most of the reduction, with sink/orphan deletion
// cleaning up the noise fringe.

#include <iostream>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/reduction.h"
#include "integrate/scenario_harness.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

double MeanRemovedFraction(const std::vector<ScenarioQuery>& queries,
                           const ReductionOptions& options) {
  std::vector<double> removed;
  for (const ScenarioQuery& query : queries) {
    QueryGraph reduced = query.graph;
    ReductionStats stats = ReduceQueryGraph(reduced, options);
    removed.push_back(stats.RemovedFraction());
  }
  return Mean(removed);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: reduction rule contributions ===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport json("ablation_reductions");
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  TextTable table({"Configuration", "Mean removed (nodes+edges)"});
  CsvWriter csv({"configuration", "mean_removed_fraction"});
  auto report = [&](const std::string& name,
                    const ReductionOptions& options) {
    double removed = MeanRemovedFraction(queries.value(), options);
    table.AddRow({name, FormatDouble(removed * 100, 1) + "%"});
    csv.AddRow({name, FormatDouble(removed, 4)});
    json.AddRow({{"configuration", name},
                 {"mean_removed_fraction", removed}});
  };

  report("all rules", ReductionOptions{});
  {
    ReductionOptions options;
    options.collapse_serial = false;
    report("without serial collapse", options);
  }
  {
    ReductionOptions options;
    options.merge_parallel = false;
    report("without parallel merge", options);
  }
  {
    ReductionOptions options;
    options.delete_sinks = false;
    report("without sink deletion", options);
  }
  {
    ReductionOptions options;
    options.delete_orphans = false;
    report("without orphan deletion", options);
  }
  {
    ReductionOptions options;
    options.collapse_serial = false;
    options.merge_parallel = false;
    report("deletions only", options);
  }
  table.Print(std::cout);
  std::cout << "\nThe full rule set reproduces the paper's ~78% shrinkage; "
               "serial collapse\nis the workhorse on workflow-shaped "
               "graphs.\n";
  bench::MaybeWriteCsv(csv, "ablation_reductions");
  json.SetWallTime(total_timer.Seconds());
  return json.Write().ok() ? 0 : 1;
}
