// Dependency-index semantics: provenance registration, reverse postings
// by node/edge/entity set, the affected-answer cover for every delta op
// (including the add-edge descendant rule, where the affected answer's
// subgraph contains neither endpoint of the new edge), and exclusive-key
// extraction for cache invalidation.

#include "ingest/dependency_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/canonical.h"
#include "core/query_graph.h"

namespace biorank::ingest {
namespace {

/// Two answers with disjoint evidence paths plus one stranded node:
///
///   s -(e_sa)-> a -(e_at1)-> t1        (answer 0)
///   s -(e_st2)-> t2                    (answer 1)
///   x -(e_xt1)-> t1    with x NOT reachable from s
///
/// x and e_xt1 are in nobody's restricted subgraph until an update
/// connects s to x.
struct Fixture {
  QueryGraph graph;
  NodeId a, t1, t2, x;
  EdgeId e_sa, e_at1, e_st2, e_xt1;
  CanonicalCandidate c0, c1;
  DependencyIndex index;
};

Fixture Make() {
  Fixture f;
  QueryGraphBuilder b;
  NodeId s = b.Source();
  f.a = b.Node(0.9, "ann", "AmiGO");
  f.t1 = b.Node(1.0, "go1", "GO");
  f.t2 = b.Node(1.0, "go2", "GO");
  f.x = b.Node(0.8, "stranded", "PfamDomain");
  f.e_sa = b.Edge(s, f.a, 0.5);
  f.e_at1 = b.Edge(f.a, f.t1, 0.8);
  f.e_st2 = b.Edge(s, f.t2, 0.7);
  f.e_xt1 = b.Edge(f.x, f.t1, 0.6);
  f.graph = std::move(b).Build({f.t1, f.t2});

  CanonicalizeOptions options;
  options.collect_provenance = true;
  f.c0 = CanonicalizeCandidate(f.graph, f.t1, options).value();
  f.c1 = CanonicalizeCandidate(f.graph, f.t2, options).value();
  f.index.Register(0, f.c0.key, f.c0.provenance, f.graph);
  f.index.Register(1, f.c1.key, f.c1.provenance, f.graph);
  return f;
}

TEST(DependencyIndexTest, ProvenanceCoversExactlyTheRestrictedSubgraph) {
  Fixture f = Make();
  // Answer 0's evidence subgraph is {s, a, t1} / {e_sa, e_at1}: the
  // stranded x and its edge are excluded, as is t2's path.
  EXPECT_EQ(f.c0.provenance.nodes,
            (std::vector<NodeId>{f.graph.source, f.a, f.t1}));
  EXPECT_EQ(f.c0.provenance.edges, (std::vector<EdgeId>{f.e_sa, f.e_at1}));
  EXPECT_EQ(f.c1.provenance.nodes,
            (std::vector<NodeId>{f.graph.source, f.t2}));
  EXPECT_EQ(f.c1.provenance.edges, (std::vector<EdgeId>{f.e_st2}));
}

TEST(DependencyIndexTest, ProvenanceIsOffByDefault) {
  Fixture f = Make();
  CanonicalCandidate plain =
      CanonicalizeCandidate(f.graph, f.t1, {}).value();
  EXPECT_TRUE(plain.provenance.nodes.empty());
  EXPECT_TRUE(plain.provenance.edges.empty());
  EXPECT_EQ(plain.key.repr, f.c0.key.repr)
      << "provenance collection must not change the canonical key";
}

TEST(DependencyIndexTest, EdgeOpsAffectExactlyTheContainingAnswers) {
  Fixture f = Make();
  AppliedDelta applied;
  EvidenceDelta reweight;
  reweight.reweight_edges.push_back({f.e_at1, 0.9});
  EXPECT_EQ(f.index.AffectedAnswers(reweight, applied, f.graph),
            (std::vector<int>{0}));

  EvidenceDelta remove;
  remove.remove_edges.push_back({f.e_st2});
  EXPECT_EQ(f.index.AffectedAnswers(remove, applied, f.graph),
            (std::vector<int>{1}));

  EvidenceDelta untracked;
  untracked.reweight_edges.push_back({f.e_xt1, 0.1});
  EXPECT_TRUE(f.index.AffectedAnswers(untracked, applied, f.graph).empty())
      << "an edge in no answer's subgraph dirties nothing";
}

TEST(DependencyIndexTest, NodeAndSourcePriorOpsUsePostings) {
  Fixture f = Make();
  AppliedDelta applied;
  EvidenceDelta revise;
  revise.revise_node_probs.push_back({f.a, 0.5});
  EXPECT_EQ(f.index.AffectedAnswers(revise, applied, f.graph),
            (std::vector<int>{0}));

  EvidenceDelta prior;
  prior.revise_source_priors.push_back({"GO", 0.9});
  EXPECT_EQ(f.index.AffectedAnswers(prior, applied, f.graph),
            (std::vector<int>{0, 1}));

  EvidenceDelta amigo;
  amigo.revise_source_priors.push_back({"AmiGO", 0.9});
  EXPECT_EQ(f.index.AffectedAnswers(amigo, applied, f.graph),
            (std::vector<int>{0}));

  EvidenceDelta stranded;
  stranded.revise_source_priors.push_back({"PfamDomain", 0.9});
  EXPECT_TRUE(f.index.AffectedAnswers(stranded, applied, f.graph).empty());
}

TEST(DependencyIndexTest, AddedEdgeDirtiesDescendantAnswersOnly) {
  Fixture f = Make();
  // Connect the stranded x to the source: t1 is newly supported through
  // x -> t1 even though neither endpoint of the new edge was in t1's
  // subgraph (x was unreachable; s is in *every* subgraph, but the rule
  // must not use endpoint postings or it would dirty t2 as well).
  EvidenceDelta delta;
  delta.add_edges.push_back({f.graph.source, f.x, 0.4});
  AppliedDelta applied = ApplyDeltaToGraph(delta, f.graph).value();
  EXPECT_EQ(f.index.AffectedAnswers(delta, applied, f.graph),
            (std::vector<int>{0}));
}

TEST(DependencyIndexTest, ExclusiveKeysSpareSharedOnes) {
  // Two isomorphic answers share one canonical key; a third differs.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId t1 = b.Node(1.0, "", "GO");
  NodeId t2 = b.Node(1.0, "", "GO");
  NodeId t3 = b.Node(1.0, "", "GO");
  b.Edge(s, t1, 0.5);
  b.Edge(s, t2, 0.5);
  b.Edge(s, t3, 0.9);
  QueryGraph g = std::move(b).Build({t1, t2, t3});
  CanonicalizeOptions options;
  options.collect_provenance = true;
  DependencyIndex index;
  std::vector<CanonicalCandidate> c;
  for (size_t i = 0; i < g.answers.size(); ++i) {
    c.push_back(CanonicalizeCandidate(g, g.answers[i], options).value());
    index.Register(static_cast<int>(i), c.back().key, c.back().provenance,
                   g);
  }
  ASSERT_EQ(c[0].key.repr, c[1].key.repr);
  ASSERT_NE(c[0].key.repr, c[2].key.repr);

  // Dirtying only answer 0 must spare the shared key (answer 1 still
  // uses it).
  EXPECT_TRUE(index.ExclusiveKeys({0}).empty());
  // Dirtying both sharers orphans it.
  std::vector<CanonicalKey> both = index.ExclusiveKeys({0, 1});
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].repr, c[0].key.repr);
  // Dirtying everything orphans both distinct keys, deduplicated.
  EXPECT_EQ(index.ExclusiveKeys({0, 1, 2}).size(), 2u);
}

TEST(DependencyIndexTest, UnregisterDropsPostings) {
  Fixture f = Make();
  EXPECT_EQ(f.index.registered(), 2);
  f.index.Unregister(0);
  EXPECT_EQ(f.index.registered(), 1);
  EXPECT_EQ(f.index.KeyOf(0), nullptr);
  ASSERT_NE(f.index.KeyOf(1), nullptr);
  AppliedDelta applied;
  EvidenceDelta revise;
  revise.revise_node_probs.push_back({f.a, 0.5});
  EXPECT_TRUE(f.index.AffectedAnswers(revise, applied, f.graph).empty());
  // Re-registration restores them.
  f.index.Register(0, f.c0.key, f.c0.provenance, f.graph);
  EXPECT_EQ(f.index.AffectedAnswers(revise, applied, f.graph),
            (std::vector<int>{0}));
}

}  // namespace
}  // namespace biorank::ingest
