#include "core/query_graph.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(QueryGraphTest, BuilderProducesValidGraph) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.5, "t");
  b.Edge(b.Source(), t, 0.7);
  QueryGraph g = std::move(b).Build({t});
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.graph.num_nodes(), 2);
  EXPECT_EQ(g.graph.num_edges(), 1);
}

TEST(QueryGraphTest, SourceHasProbabilityOne) {
  QueryGraphBuilder b;
  QueryGraph g = std::move(b).Build({});
  EXPECT_DOUBLE_EQ(g.graph.node(g.source).p, 1.0);
}

TEST(QueryGraphTest, ValidateRejectsDeadSource) {
  QueryGraphBuilder b;
  QueryGraph g = std::move(b).Build({});
  g.graph.RemoveNode(g.source);
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QueryGraphTest, ValidateRejectsDeadAnswer) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.5);
  QueryGraph g = std::move(b).Build({t});
  g.graph.RemoveNode(t);
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QueryGraphTest, ValidateRejectsDuplicateAnswers) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.5);
  QueryGraph g = std::move(b).Build({t, t});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QueryGraphTest, ValidateRejectsSourceAsAnswer) {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  QueryGraph g = std::move(b).Build({s});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(Fig4aTest, HasDocumentedShape) {
  QueryGraph g = MakeFig4aSerialParallel();
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.graph.num_nodes(), 5);
  EXPECT_EQ(g.graph.num_edges(), 5);
  ASSERT_EQ(g.answers.size(), 1u);
  EXPECT_EQ(g.graph.InDegree(g.answers[0]), 2);
}

TEST(Fig4bTest, HasDocumentedShape) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.graph.num_nodes(), 4);
  EXPECT_EQ(g.graph.num_edges(), 5);
  ASSERT_EQ(g.answers.size(), 1u);
  EXPECT_EQ(g.graph.InDegree(g.answers[0]), 2);
  // All edges carry probability 0.5.
  for (EdgeId e : g.graph.AliveEdges()) {
    EXPECT_DOUBLE_EQ(g.graph.edge(e).q, 0.5);
  }
}

}  // namespace
}  // namespace biorank
