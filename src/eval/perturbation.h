// Log-odds perturbation of probabilities for the Section 4
// sensitivity experiments: jitter inputs, re-rank, measure stability.

#ifndef BIORANK_EVAL_PERTURBATION_H_
#define BIORANK_EVAL_PERTURBATION_H_

#include "core/query_graph.h"
#include "util/rng.h"

namespace biorank {

/// Options for the multi-way sensitivity analysis of Section 4.
struct PerturbationOptions {
  /// Standard deviation of the Gaussian noise added in log-odds space
  /// (the paper sweeps sigma in {0.5, 1, 2, 3}).
  double sigma = 1.0;
  /// Probabilities are clamped into [clamp, 1 - clamp] before the
  /// log-odds transform so that the boundary values 0 and 1 stay finite
  /// (Henrion et al.'s construction assumes interior probabilities).
  double clamp = 1e-3;
  /// Leave the query node untouched (it is an artifact of the mediator,
  /// not a data item).
  bool skip_source = true;
};

/// One perturbed probability by the log-odds method of Henrion et al.
/// (UAI 1996) used in the paper:
///   p' = Lo^-1( Lo(p) + Normal(0, sigma) )
/// "avoids the need for range checks and enables control over the amount
/// of noise added."
double PerturbProbabilityLogOdds(double p, const PerturbationOptions& options,
                                 Rng& rng);

/// Perturbs every node probability p and edge probability q of the query
/// graph in place (simultaneous multi-way perturbation, representative of
/// all parameters being imprecise at once).
void PerturbQueryGraph(QueryGraph& query_graph,
                       const PerturbationOptions& options, Rng& rng);

/// Repetition `rep` of a repeated-perturbation experiment rooted at
/// `seed`: returns a perturbed copy of the query graph drawn from the
/// independent RNG stream (seed, rep). Because the noise depends only on
/// (seed, rep), repetitions can run in parallel in any order and still
/// reproduce the sequential experiment exactly.
QueryGraph PerturbedCopy(const QueryGraph& query_graph,
                         const PerturbationOptions& options, uint64_t seed,
                         uint64_t rep);

/// Log-odds of p (p must be in (0,1)); exposed for tests.
double LogOdds(double p);

/// Inverse log-odds (the logistic function); exposed for tests.
double InverseLogOdds(double lo);

}  // namespace biorank

#endif  // BIORANK_EVAL_PERTURBATION_H_
