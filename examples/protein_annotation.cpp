// Full-pipeline example: the paper's motivating workflow through the
// api::Server front door. Generate the synthetic biological world, ask
// the server for a well-studied protein's functions (the exploratory
// query (EntrezProtein.name = <symbol>, AmiGO) served through the
// canonical reliability cache), mark the gold standard, and compare all
// five relevance functions offline via the evaluation harness.
//
// Run:  ./build/protein_annotation

#include <iostream>

#include "api/server.h"
#include "core/ranking.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "== BioRank protein function annotation ==\n\n";

  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << "failed to build queries: " << queries.status() << "\n";
    return 1;
  }
  const ScenarioQuery& query = queries.value().front();

  // The Section 2 result listing, served: top functions by reliability
  // through the shared ranking service.
  api::Result<api::QueryResponse> served = server.Query(
      api::MakeProteinFunctionRequest(query.spec.gene_symbol, 10));
  if (!served.ok()) {
    std::cerr << "serving failed: " << served.status() << "\n";
    return 1;
  }
  const api::QueryResponse& response = served.value();
  std::cout << "Query: (EntrezProtein.name = \"" << query.spec.gene_symbol
            << "\", AmiGO)\n"
            << "Integrated query graph: "
            << response.result.query_graph.graph.num_nodes() << " nodes, "
            << response.result.query_graph.graph.num_edges() << " edges, "
            << query.answer_count << " candidate functions\n"
            << "Curated (gold) functions retrieved: " << query.gold_retrieved
            << " of " << query.gold_total << "\n\n";

  std::cout << "Top 10 candidate functions by served reliability:\n";
  TextTable top({"#", "GO term", "r score", "via", "gold?"});
  for (size_t i = 0; i < response.top.size(); ++i) {
    const api::RankedAnswer& answer = response.top[i];
    top.AddRow({std::to_string(i + 1), answer.label,
                FormatDouble(answer.reliability, 4),
                answer.exact ? "exact" : "MC",
                query.relevant.count(answer.node) > 0 ? "yes" : ""});
  }
  top.Print(std::cout);
  std::cout << "Serving: " << FormatCompact(response.timing.rank_s * 1e3, 3)
            << " ms rank phase, " << response.stats.cache_hits
            << " cache hits / " << response.stats.cache_misses
            << " misses, " << response.stats.pruned
            << " candidates pruned by bounds.\n";

  std::cout << "\nRanking quality (tied average precision at 100% recall) "
               "of all five methods on this protein:\n";
  TextTable quality({"Method", "AP"});
  for (RankingMethod method : AllRankingMethods()) {
    Result<double> ap = harness.ApForQuery(query, method);
    quality.AddRow({RankingMethodName(method),
                    ap.ok() ? FormatDouble(ap.value(), 3)
                            : ap.status().ToString()});
  }
  Result<double> random = harness.RandomBaselineAp(query);
  if (random.ok()) {
    quality.AddRow({"Random", FormatDouble(random.value(), 3)});
  }
  quality.Print(std::cout);
  return 0;
}
