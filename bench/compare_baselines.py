#!/usr/bin/env python3
"""Perf-trend gate: compare a directory of BENCH_*.json reports against
the committed snapshots in bench/baselines/.

Writes a per-bench delta table (markdown) to stdout and, when the
GITHUB_STEP_SUMMARY environment variable is set, appends it to the CI
job summary. Exit status is nonzero when

  * any bench's wall_time_s regressed by more than --max-ratio (default
    2.0x) against its baseline, provided both sides are above
    --min-seconds (tiny smoke timings are noise-dominated and never
    gate), or
  * the serve bench's cache_hit_rate / pruned_fraction fall below their
    acceptance floors (0.5 / 0.3), or
  * the ingest bench's preserved_hit_rate falls below its 0.5 floor or
    its output diverged from the from-scratch rebuild, or
  * the api bench's mixed_hit_rate falls below its 0.5 floor, its
    RunBatch output diverged from serial single-request execution, or
    its live sessions diverged from their from-scratch rebuilds, or
  * an MC bench's CSR backend diverged bitwise from the pointer-view
    reference (csr_bit_identical false), or its csr_speedup fell below
    the floor (3.0x, clamped to 1.0x on single-core runners where the
    duel measures little beyond RNG inlining), or
  * a baseline bench produced no report at all (a silently skipped bench
    would otherwise look like a perf win).

A bench with no committed baseline yet only *warns*: new benches land in
the same PR as their first baseline snapshot, and a branch state where
the report exists before the snapshot must not fail the gate.

Refreshing baselines after an intentional perf change:

    cmake -B build -S . && cmake --build build -j
    mkdir -p /tmp/bench-json
    cd /tmp/bench-json
    BIORANK_REPS=2 BIORANK_BENCH_JSON_DIR=$PWD <run every build/bench_*>
    cp BENCH_*.json <repo>/bench/baselines/

and commit the result (see docs/ARCHITECTURE.md, "Perf-trend gate").
"""

import argparse
import json
import os
import sys
from pathlib import Path

HIT_RATE_FLOOR = 0.5
PRUNED_FRACTION_FLOOR = 0.3
PRESERVED_HIT_RATE_FLOOR = 0.5
MIXED_HIT_RATE_FLOOR = 0.5
# CSR-vs-pointer duel floor. On a single-core runner the pointer path is
# already CSR-shaped (CompactGraphView), so the duel only measures the
# inlined sampler and threshold tables — clamp the floor to 1.0 there
# rather than institutionalising a number the hardware cannot produce.
CSR_SPEEDUP_FLOOR = 3.0
CSR_SPEEDUP_FLOOR_SINGLE_CORE = 1.0
CSR_DUEL_BENCHES = ("parallel_scaling", "fig7_mc_convergence")

# Benches that may legitimately be absent from a run (Google-Benchmark
# harnesses are skipped when libbenchmark-dev is not installed).
OPTIONAL_BENCHES = {
    "fig8a_reliability_methods",
    "fig8b_method_times",
    "ablation_diffusion",
}

# Headline metrics worth a column when both sides have them.
TRACKED_METRICS = ("cache_hit_rate", "pruned_fraction", "trials_per_sec",
                   "preserved_hit_rate", "update_latency_ms_mean",
                   "mixed_hit_rate", "batch_s_mean", "csr_speedup")


def load_reports(directory: Path):
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as f:
            data = json.load(f)
        reports[data.get("bench", path.stem)] = data
    return reports


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run_dir", type=Path,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baselines", type=Path,
                        default=Path(__file__).parent / "baselines")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when wall_time_s exceeds baseline by this")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore wall-time ratios when either side is "
                             "below this (noise floor)")
    args = parser.parse_args()

    current = load_reports(args.run_dir)
    baseline = load_reports(args.baselines)
    if not baseline:
        print(f"error: no baselines found under {args.baselines}",
              file=sys.stderr)
        return 2

    failures = []
    warnings = []
    lines = [
        "## Perf trend vs committed baselines",
        "",
        f"(wall-time gate: >{args.max_ratio:g}x regression fails; "
        f"timings under {args.min_seconds:g}s never gate)",
        "",
        "| bench | baseline s | current s | ratio | metric deltas | gate |",
        "|---|---|---|---|---|---|",
    ]

    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if cur is None:
            if name in OPTIONAL_BENCHES:
                lines.append(f"| {name} | {fmt(base['wall_time_s'])} | "
                             f"missing (optional) | - | - | skipped |")
            else:
                failures.append(f"{name}: bench produced no report")
                lines.append(f"| {name} | {fmt(base['wall_time_s'])} | "
                             f"MISSING | - | - | **FAIL** |")
            continue
        if base is None:
            warnings.append(
                f"{name}: no committed baseline under bench/baselines/ — "
                f"commit this run's BENCH_{name}.json with the bench")
            lines.append(f"| {name} | new | {fmt(cur['wall_time_s'])} | - | "
                         f"- | warn (no baseline) |")
            continue

        base_s = float(base.get("wall_time_s", 0.0))
        cur_s = float(cur.get("wall_time_s", 0.0))
        # Gate whenever the *current* run is above the noise floor; a
        # sub-floor baseline must not exempt a bench from the gate (it
        # could regress unboundedly otherwise). The ratio denominator is
        # floored so tiny baselines do not inflate it.
        gated = cur_s >= args.min_seconds
        denominator = max(base_s, args.min_seconds)
        ratio = cur_s / denominator if denominator > 0 else float("inf")
        verdict = "ok"
        if gated and ratio > args.max_ratio:
            verdict = "**FAIL**"
            failures.append(
                f"{name}: wall_time_s {cur_s:.3f}s is {ratio:.2f}x the "
                f"baseline {base_s:.3f}s (max {args.max_ratio:g}x)")
        elif not gated:
            verdict = "ok (noise floor)"

        deltas = []
        base_metrics = base.get("metrics", {})
        cur_metrics = cur.get("metrics", {})
        for key in TRACKED_METRICS:
            if key in base_metrics and key in cur_metrics:
                deltas.append(
                    f"{key}: {fmt(base_metrics[key])} -> "
                    f"{fmt(cur_metrics[key])}")
        lines.append(f"| {name} | {base_s:.3f} | {cur_s:.3f} | {ratio:.2f}x "
                     f"| {'; '.join(deltas) or '-'} | {verdict} |")

    serve = current.get("serve_topk")
    if serve is not None:
        metrics = serve.get("metrics", {})
        hit_rate = float(metrics.get("cache_hit_rate", 0.0))
        pruned = float(metrics.get("pruned_fraction", 0.0))
        if hit_rate <= HIT_RATE_FLOOR:
            failures.append(f"serve_topk: cache_hit_rate {hit_rate:.3f} is "
                            f"at or below the {HIT_RATE_FLOOR} floor")
        if pruned <= PRUNED_FRACTION_FLOOR:
            failures.append(f"serve_topk: pruned_fraction {pruned:.3f} is "
                            f"at or below the {PRUNED_FRACTION_FLOOR} floor")
        if not metrics.get("deterministic_output", False):
            failures.append("serve_topk: output diverged from the "
                            "cache-off single-thread reference")

    ingest = current.get("ingest_updates")
    if ingest is not None:
        metrics = ingest.get("metrics", {})
        preserved = float(metrics.get("preserved_hit_rate", 0.0))
        if preserved <= PRESERVED_HIT_RATE_FLOOR:
            failures.append(
                f"ingest_updates: preserved_hit_rate {preserved:.3f} is at "
                f"or below the {PRESERVED_HIT_RATE_FLOOR} floor")
        if float(metrics.get("touched_fraction_max", 1.0)) > 0.10:
            failures.append("ingest_updates: deltas touched more than 10% "
                            "of tuples (workload cap)")
        if not metrics.get("deterministic_output", False):
            failures.append("ingest_updates: incremental output diverged "
                            "from the from-scratch rebuild")

    for name in CSR_DUEL_BENCHES:
        duel = current.get(name)
        if duel is None:
            continue
        metrics = duel.get("metrics", {})
        if "csr_speedup" not in metrics:
            continue
        if not metrics.get("csr_bit_identical", False):
            failures.append(f"{name}: CSR backend scores diverged bitwise "
                            f"from the pointer-view reference")
        single_core = int(metrics.get("hardware_concurrency", 0)) <= 1
        floor = (CSR_SPEEDUP_FLOOR_SINGLE_CORE if single_core
                 else CSR_SPEEDUP_FLOOR)
        speedup = float(metrics.get("csr_speedup", 0.0))
        if speedup < floor:
            failures.append(
                f"{name}: csr_speedup {speedup:.2f}x is below the "
                f"{floor:g}x floor"
                + (" (clamped for a single-core runner)" if single_core
                   else ""))

    api = current.get("api_server")
    if api is not None:
        metrics = api.get("metrics", {})
        mixed = float(metrics.get("mixed_hit_rate", 0.0))
        if mixed <= MIXED_HIT_RATE_FLOOR:
            failures.append(f"api_server: mixed_hit_rate {mixed:.3f} is at "
                            f"or below the {MIXED_HIT_RATE_FLOOR} floor")
        if not metrics.get("deterministic_batch", False):
            failures.append("api_server: RunBatch output diverged from "
                            "serial single-request execution")
        if not metrics.get("session_rebuild_identical", False):
            failures.append("api_server: live-session output diverged from "
                            "the from-scratch rebuild")

    lines.append("")
    if warnings:
        lines.append("### Warnings (non-fatal)")
        lines.extend(f"- {w}" for w in warnings)
        lines.append("")
    if failures:
        lines.append("### Failures")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("All benches within the gate.")

    table = "\n".join(lines) + "\n"
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(table)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
