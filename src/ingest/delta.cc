#include "ingest/delta.h"

#include <algorithm>
#include <string>

namespace biorank::ingest {

namespace {

bool InUnit(double value) { return value >= 0.0 && value <= 1.0; }

std::string OpRef(const char* group, size_t index) {
  return std::string("ingest: ") + group + "[" + std::to_string(index) + "]";
}

/// Checks one AddEdge endpoint: a live node id or an in-delta NewNodeRef.
Status CheckEndpoint(NodeId id, size_t op_index, const char* which,
                     const EvidenceDelta& delta, const QueryGraph& graph) {
  int new_index = EvidenceDelta::NewNodeIndex(id);
  if (new_index >= 0) {
    if (new_index >= static_cast<int>(delta.add_nodes.size())) {
      return Status::OutOfRange(OpRef("add_edges", op_index) + ": " + which +
                                " references add_nodes[" +
                                std::to_string(new_index) +
                                "] beyond the delta");
    }
    return Status::OK();
  }
  if (!graph.graph.IsValidNode(id)) {
    return Status::NotFound(OpRef("add_edges", op_index) + ": " + which +
                            " node " + std::to_string(id) + " is not alive");
  }
  return Status::OK();
}

}  // namespace

Status ValidateDelta(const EvidenceDelta& delta, const QueryGraph& graph) {
  BIORANK_RETURN_IF_ERROR(graph.Validate());
  for (size_t i = 0; i < delta.add_nodes.size(); ++i) {
    if (!InUnit(delta.add_nodes[i].p)) {
      return Status::InvalidArgument(OpRef("add_nodes", i) +
                                     ": p must be in [0,1]");
    }
  }
  for (size_t i = 0; i < delta.add_edges.size(); ++i) {
    const EvidenceDelta::AddEdge& op = delta.add_edges[i];
    if (!InUnit(op.q)) {
      return Status::InvalidArgument(OpRef("add_edges", i) +
                                     ": q must be in [0,1]");
    }
    BIORANK_RETURN_IF_ERROR(CheckEndpoint(op.from, i, "from", delta, graph));
    BIORANK_RETURN_IF_ERROR(CheckEndpoint(op.to, i, "to", delta, graph));
    if (op.to == graph.source) {
      return Status::InvalidArgument(OpRef("add_edges", i) +
                                     ": the query source has no in-edges");
    }
    if (op.from == op.to) {
      return Status::InvalidArgument(OpRef("add_edges", i) +
                                     ": self-loop evidence is meaningless");
    }
  }
  std::vector<EdgeId> removed;
  for (size_t i = 0; i < delta.remove_edges.size(); ++i) {
    EdgeId e = delta.remove_edges[i].edge;
    if (!graph.graph.IsValidEdge(e)) {
      return Status::NotFound(OpRef("remove_edges", i) + ": edge " +
                              std::to_string(e) + " is not alive");
    }
    removed.push_back(e);
  }
  std::sort(removed.begin(), removed.end());
  for (size_t i = 0; i < delta.reweight_edges.size(); ++i) {
    const EvidenceDelta::ReweightEdge& op = delta.reweight_edges[i];
    if (!graph.graph.IsValidEdge(op.edge)) {
      return Status::NotFound(OpRef("reweight_edges", i) + ": edge " +
                              std::to_string(op.edge) + " is not alive");
    }
    // Removes apply before reweights, so a delta naming the same edge in
    // both groups would silently drop the reweight — reject it instead
    // (this is what keeps the post-validation mutation loop infallible).
    if (std::binary_search(removed.begin(), removed.end(), op.edge)) {
      return Status::InvalidArgument(OpRef("reweight_edges", i) +
                                     ": edge " + std::to_string(op.edge) +
                                     " is also removed by this delta");
    }
    if (!InUnit(op.q)) {
      return Status::InvalidArgument(OpRef("reweight_edges", i) +
                                     ": q must be in [0,1]");
    }
  }
  for (size_t i = 0; i < delta.revise_node_probs.size(); ++i) {
    const EvidenceDelta::ReviseNodeProb& op = delta.revise_node_probs[i];
    if (!graph.graph.IsValidNode(op.node)) {
      return Status::NotFound(OpRef("revise_node_probs", i) + ": node " +
                              std::to_string(op.node) + " is not alive");
    }
    if (op.node == graph.source) {
      return Status::InvalidArgument(
          OpRef("revise_node_probs", i) +
          ": the query source's presence is certain by construction");
    }
    if (!InUnit(op.p)) {
      return Status::InvalidArgument(OpRef("revise_node_probs", i) +
                                     ": p must be in [0,1]");
    }
  }
  for (size_t i = 0; i < delta.revise_source_priors.size(); ++i) {
    const EvidenceDelta::ReviseSourcePrior& op = delta.revise_source_priors[i];
    if (op.entity_set.empty()) {
      return Status::InvalidArgument(OpRef("revise_source_priors", i) +
                                     ": entity set must be named");
    }
    if (!(op.ratio >= 0.0)) {  // Also rejects NaN.
      return Status::InvalidArgument(OpRef("revise_source_priors", i) +
                                     ": ratio must be >= 0");
    }
  }
  return Status::OK();
}

Status ValidateDeltaSchema(const EvidenceDelta& delta,
                           const ProbabilisticMetrics& metrics) {
  for (size_t i = 0; i < delta.add_nodes.size(); ++i) {
    const std::string& set = delta.add_nodes[i].entity_set;
    if (!set.empty() && !metrics.HasSourceConfidence(set)) {
      return Status::NotFound(OpRef("add_nodes", i) + ": entity set '" + set +
                              "' has no registered source confidence");
    }
  }
  for (size_t i = 0; i < delta.revise_source_priors.size(); ++i) {
    const std::string& set = delta.revise_source_priors[i].entity_set;
    if (!metrics.HasSourceConfidence(set)) {
      return Status::NotFound(OpRef("revise_source_priors", i) +
                              ": entity set '" + set +
                              "' has no registered source confidence");
    }
  }
  return Status::OK();
}

Status ValidateDelta(const EvidenceDelta& delta, const QueryGraph& graph,
                     const ProbabilisticMetrics& metrics) {
  BIORANK_RETURN_IF_ERROR(ValidateDelta(delta, graph));
  return ValidateDeltaSchema(delta, metrics);
}

Result<AppliedDelta> ApplyDeltaToGraph(const EvidenceDelta& delta,
                                       QueryGraph& graph) {
  BIORANK_RETURN_IF_ERROR(ValidateDelta(delta, graph));
  AppliedDelta applied;
  applied.new_nodes.reserve(delta.add_nodes.size());
  applied.new_edges.reserve(delta.add_edges.size());
  for (const EvidenceDelta::AddNode& op : delta.add_nodes) {
    applied.new_nodes.push_back(
        graph.graph.AddNode(op.p, op.label, op.entity_set));
  }
  auto resolve = [&](NodeId id) {
    int new_index = EvidenceDelta::NewNodeIndex(id);
    return new_index >= 0 ? applied.new_nodes[static_cast<size_t>(new_index)]
                          : id;
  };
  for (const EvidenceDelta::AddEdge& op : delta.add_edges) {
    applied.new_edges.push_back(
        graph.graph.AddEdge(resolve(op.from), resolve(op.to), op.q).value());
  }
  // Pre-validated: none of the remaining mutations can fail.
  for (const EvidenceDelta::RemoveEdge& op : delta.remove_edges) {
    graph.graph.RemoveEdge(op.edge);
  }
  for (const EvidenceDelta::ReweightEdge& op : delta.reweight_edges) {
    graph.graph.SetEdgeProb(op.edge, op.q);
  }
  for (const EvidenceDelta::ReviseNodeProb& op : delta.revise_node_probs) {
    graph.graph.SetNodeProb(op.node, op.p);
  }
  for (const EvidenceDelta::ReviseSourcePrior& op :
       delta.revise_source_priors) {
    for (NodeId id : graph.graph.AliveNodes()) {
      if (id == graph.source) continue;
      if (graph.graph.node(id).entity_set != op.entity_set) continue;
      double p = std::min(1.0, graph.graph.node(id).p * op.ratio);
      graph.graph.SetNodeProb(id, p);
    }
  }
  return applied;
}

}  // namespace biorank::ingest
