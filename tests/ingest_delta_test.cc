// EvidenceDelta validation and application semantics: ids and
// probability ranges checked up front, schema-layer entity-set checks,
// in-delta new-node references, and the fixed deterministic apply order.

#include "ingest/delta.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "integrate/mediator.h"

namespace biorank::ingest {
namespace {

/// s -(0.5)-> a -(0.8)-> t, with entity sets on a and t.
struct SmallGraph {
  QueryGraph graph;
  NodeId a = kInvalidNode;
  NodeId t = kInvalidNode;
  EdgeId sa = -1;
  EdgeId at = -1;
};

SmallGraph MakeSmall() {
  SmallGraph g;
  QueryGraphBuilder b;
  NodeId s = b.Source();
  g.a = b.Node(0.9, "ann", "AmiGO");
  g.t = b.Node(1.0, "go", "GO");
  g.sa = b.Edge(s, g.a, 0.5);
  g.at = b.Edge(g.a, g.t, 0.8);
  g.graph = std::move(b).Build({g.t});
  return g;
}

TEST(EvidenceDeltaTest, EmptyDeltaIsValidAndEmpty) {
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.size(), 0);
  EXPECT_TRUE(ValidateDelta(delta, g.graph).ok());
  Result<AppliedDelta> applied = ApplyDeltaToGraph(delta, g.graph);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied.value().new_nodes.empty());
}

TEST(EvidenceDeltaTest, ProbabilityRangesAreChecked) {
  SmallGraph g = MakeSmall();
  EvidenceDelta bad_node;
  bad_node.add_nodes.push_back({1.5, "x", "AmiGO"});
  EXPECT_EQ(ValidateDelta(bad_node, g.graph).code(),
            StatusCode::kInvalidArgument);

  EvidenceDelta bad_reweight;
  bad_reweight.reweight_edges.push_back({g.sa, -0.1});
  EXPECT_EQ(ValidateDelta(bad_reweight, g.graph).code(),
            StatusCode::kInvalidArgument);

  EvidenceDelta bad_ratio;
  bad_ratio.revise_source_priors.push_back({"AmiGO", -1.0});
  EXPECT_EQ(ValidateDelta(bad_ratio, g.graph).code(),
            StatusCode::kInvalidArgument);
}

TEST(EvidenceDeltaTest, DeadIdsAreRejected) {
  SmallGraph g = MakeSmall();
  EvidenceDelta bad_edge;
  bad_edge.remove_edges.push_back({99});
  EXPECT_EQ(ValidateDelta(bad_edge, g.graph).code(), StatusCode::kNotFound);

  EvidenceDelta bad_node;
  bad_node.revise_node_probs.push_back({42, 0.5});
  EXPECT_EQ(ValidateDelta(bad_node, g.graph).code(), StatusCode::kNotFound);

  EvidenceDelta bad_endpoint;
  bad_endpoint.add_edges.push_back({g.a, 42, 0.5});
  EXPECT_EQ(ValidateDelta(bad_endpoint, g.graph).code(),
            StatusCode::kNotFound);
}

TEST(EvidenceDeltaTest, SourceNodeIsProtected) {
  SmallGraph g = MakeSmall();
  EvidenceDelta revise_source;
  revise_source.revise_node_probs.push_back({g.graph.source, 0.5});
  EXPECT_EQ(ValidateDelta(revise_source, g.graph).code(),
            StatusCode::kInvalidArgument);

  EvidenceDelta edge_into_source;
  edge_into_source.add_edges.push_back({g.a, g.graph.source, 0.5});
  EXPECT_EQ(ValidateDelta(edge_into_source, g.graph).code(),
            StatusCode::kInvalidArgument);
}

TEST(EvidenceDeltaTest, NewNodeRefsResolveWithinTheDelta) {
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  delta.add_nodes.push_back({0.7, "fresh-ann", "AmiGO"});
  delta.add_edges.push_back(
      {g.graph.source, EvidenceDelta::NewNodeRef(0), 0.6});
  delta.add_edges.push_back({EvidenceDelta::NewNodeRef(0), g.t, 0.4});
  ASSERT_TRUE(ValidateDelta(delta, g.graph).ok());

  EvidenceDelta out_of_range;
  out_of_range.add_edges.push_back(
      {g.graph.source, EvidenceDelta::NewNodeRef(3), 0.6});
  EXPECT_EQ(ValidateDelta(out_of_range, g.graph).code(),
            StatusCode::kOutOfRange);

  int nodes_before = g.graph.graph.num_nodes();
  int edges_before = g.graph.graph.num_edges();
  Result<AppliedDelta> applied = ApplyDeltaToGraph(delta, g.graph);
  ASSERT_TRUE(applied.ok()) << applied.status();
  ASSERT_EQ(applied.value().new_nodes.size(), 1u);
  ASSERT_EQ(applied.value().new_edges.size(), 2u);
  EXPECT_EQ(g.graph.graph.num_nodes(), nodes_before + 1);
  EXPECT_EQ(g.graph.graph.num_edges(), edges_before + 2);
  NodeId fresh = applied.value().new_nodes[0];
  EXPECT_DOUBLE_EQ(g.graph.graph.node(fresh).p, 0.7);
  EXPECT_EQ(g.graph.graph.node(fresh).entity_set, "AmiGO");
  EXPECT_EQ(g.graph.graph.edge(applied.value().new_edges[1]).from, fresh);
  EXPECT_EQ(g.graph.graph.edge(applied.value().new_edges[1]).to, g.t);
}

TEST(EvidenceDeltaTest, SelfLoopEvidenceIsRejected) {
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  delta.add_edges.push_back({g.a, g.a, 0.5});
  EXPECT_EQ(ValidateDelta(delta, g.graph).code(),
            StatusCode::kInvalidArgument);
  EvidenceDelta new_self;
  new_self.add_nodes.push_back({0.5, "", ""});
  new_self.add_edges.push_back(
      {EvidenceDelta::NewNodeRef(0), EvidenceDelta::NewNodeRef(0), 0.5});
  EXPECT_EQ(ValidateDelta(new_self, g.graph).code(),
            StatusCode::kInvalidArgument);
}

TEST(EvidenceDeltaTest, RemoveAndReweightOfOneEdgeIsRejected) {
  // Removes apply before reweights; allowing both on one edge would
  // silently drop the reweight, so validation rejects the combination.
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  delta.remove_edges.push_back({g.at});
  delta.reweight_edges.push_back({g.at, 0.9});
  EXPECT_EQ(ValidateDelta(delta, g.graph).code(),
            StatusCode::kInvalidArgument);
}

TEST(EvidenceDeltaTest, ApplyMutatesInFixedGroupOrder) {
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  delta.reweight_edges.push_back({g.sa, 0.25});
  delta.remove_edges.push_back({g.at});
  delta.revise_node_probs.push_back({g.a, 0.4});
  Result<AppliedDelta> applied = ApplyDeltaToGraph(delta, g.graph);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_DOUBLE_EQ(g.graph.graph.edge(g.sa).q, 0.25);
  EXPECT_FALSE(g.graph.graph.IsValidEdge(g.at));
  EXPECT_DOUBLE_EQ(g.graph.graph.node(g.a).p, 0.4);
}

TEST(EvidenceDeltaTest, SourcePriorScalesEveryNodeOfTheSetClamped) {
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  delta.revise_source_priors.push_back({"AmiGO", 0.5});
  delta.revise_source_priors.push_back({"GO", 1.5});  // Clamps at 1.
  ASSERT_TRUE(ApplyDeltaToGraph(delta, g.graph).ok());
  EXPECT_DOUBLE_EQ(g.graph.graph.node(g.a).p, 0.45);  // 0.9 * 0.5.
  EXPECT_DOUBLE_EQ(g.graph.graph.node(g.t).p, 1.0);   // min(1, 1 * 1.5).
}

TEST(EvidenceDeltaTest, SchemaValidationRequiresRegisteredEntitySets) {
  SmallGraph g = MakeSmall();
  ProbabilisticMetrics metrics = MakeDefaultBioRankMetrics();
  EvidenceDelta unknown_prior;
  unknown_prior.revise_source_priors.push_back({"NoSuchSource", 0.9});
  EXPECT_TRUE(ValidateDelta(unknown_prior, g.graph).ok())
      << "structural validation does not know the schema";
  EXPECT_EQ(ValidateDelta(unknown_prior, g.graph, metrics).code(),
            StatusCode::kNotFound);

  EvidenceDelta unknown_node;
  unknown_node.add_nodes.push_back({0.5, "x", "NoSuchSource"});
  EXPECT_EQ(ValidateDelta(unknown_node, g.graph, metrics).code(),
            StatusCode::kNotFound);

  EvidenceDelta known;
  known.revise_source_priors.push_back({"AmiGO", 0.9});
  known.add_nodes.push_back({0.5, "x", "PfamDomain"});
  EXPECT_TRUE(ValidateDelta(known, g.graph, metrics).ok());
}

TEST(EvidenceDeltaTest, ValidationFailureLeavesTheGraphUntouched) {
  SmallGraph g = MakeSmall();
  EvidenceDelta delta;
  delta.reweight_edges.push_back({g.sa, 0.25});  // Valid...
  delta.revise_node_probs.push_back({42, 0.5});  // ...but this is not.
  ASSERT_FALSE(ApplyDeltaToGraph(delta, g.graph).ok());
  EXPECT_DOUBLE_EQ(g.graph.graph.edge(g.sa).q, 0.5) << "partial apply";
}

}  // namespace
}  // namespace biorank::ingest
