// Warm-boot orchestration: pick the newest *valid* snapshot in a
// storage directory (corrupt files fall back to the next-older one — the
// WAL is never truncated, so an older snapshot only means a longer
// replay), then hand the api layer everything it needs to rebuild the
// live state: the decoded snapshot plus the WAL replay records. The
// replay protocol (who skips what) lives with the state owner:
//
//   session open/close records with lsn <= snapshot.wal_lsn  -> skip
//     (the snapshot's session list already reflects them)
//   delta records for a snapshotted session with
//     lsn <= that session's applied_lsn                      -> skip
//   delta records whose session does not exist               -> skip
//     (the session was closed; its whole history is settled)
//   everything else                                          -> apply
//
// api::Server implements the loop (it owns the mediator and service the
// replayed opens/deltas go through); this module owns discovery,
// validation, and the recovery report the server exposes via Stats().

#ifndef BIORANK_STORAGE_RECOVERY_H_
#define BIORANK_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/status.h"

namespace biorank::storage {

/// The WAL's canonical location inside a storage directory.
std::string WalPath(const std::string& dir);

/// The outcome of a snapshot search.
struct SnapshotLoadResult {
  bool found = false;          ///< False when no valid snapshot exists.
  SnapshotState state;         ///< Valid iff `found`.
  std::string path;            ///< File the state was loaded from.
  int corrupt_skipped = 0;     ///< Unreadable/corrupt snapshots passed over.
};

/// Scans `dir` newest-first and returns the first snapshot that decodes
/// and checksums cleanly. Corrupt or unreadable files are skipped (and
/// counted), never fatal — except a fingerprint mismatch, which means
/// the directory belongs to a differently-configured server and aborts
/// the search with kFailedPrecondition.
Result<SnapshotLoadResult> LoadNewestValidSnapshot(const std::string& dir,
                                                   uint64_t fingerprint);

/// What one warm boot did — surfaced through api::Server::Stats() and
/// the biorank_storage_* metrics.
struct RecoveryReport {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;        ///< Covering LSN of the loaded snapshot.
  int corrupt_snapshots_skipped = 0;
  uint64_t replayed_records = 0;    ///< WAL records applied past the snapshot.
  uint64_t skipped_records = 0;     ///< WAL records the snapshot already covered.
  uint64_t wal_truncated_bytes = 0; ///< Torn-tail bytes dropped on open.
  bool wal_torn_tail = false;
  uint64_t sessions_recovered = 0;
  uint64_t cache_entries_restored = 0;
  double seconds = 0.0;             ///< Wall time of the whole boot.
};

}  // namespace biorank::storage

#endif  // BIORANK_STORAGE_RECOVERY_H_
