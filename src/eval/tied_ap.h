// Expected average precision under tied scores (Definition 4.1):
// exact expectation over permutations within tie groups, plus a
// sampling cross-check.

#ifndef BIORANK_EVAL_TIED_AP_H_
#define BIORANK_EVAL_TIED_AP_H_

#include <unordered_set>
#include <vector>

#include "core/ranking.h"
#include "util/rng.h"
#include "util/status.h"

namespace biorank {

/// One maximal run of equal scores in a ranked list: `size` items of which
/// `relevant` are relevant under the gold standard.
struct TiedGroup {
  int size = 0;
  int relevant = 0;
};

/// Expected average precision over all within-group permutations of a tied
/// ranking — the analytic method of McSherry & Najork (ECIR 2008) that the
/// paper adopts for scoring functions with ties (Section 4).
///
/// Derivation: condition on a relevant item of group g landing at offset j
/// (uniform over the group). The other relevant items of the group are
/// exchangeable, so the expected number of relevant items at or before it
/// is K_g + 1 + (k_g - 1)(j - 1)/(n_g - 1), where K_g counts relevant
/// items in strictly earlier groups; the precision denominator s_g + j is
/// deterministic given j. Averaging over j and summing over groups gives
/// the exact expectation (Definition 4.1 is the one-group special case).
///
/// Fails if no group contains a relevant item or counts are inconsistent.
Result<double> ExpectedApWithTies(const std::vector<TiedGroup>& groups);

/// Builds tied groups from a tie-aware ranking (core/ranking.h) and the
/// set of relevant nodes, in rank order.
std::vector<TiedGroup> GroupsFromRanking(
    const std::vector<RankedAnswer>& ranking,
    const std::unordered_set<NodeId>& relevant);

/// Convenience: expected tied AP of a ranking against a gold standard.
Result<double> ApForRanking(const std::vector<RankedAnswer>& ranking,
                            const std::unordered_set<NodeId>& relevant);

/// Monte Carlo estimate of the same expectation by sampling uniform
/// within-group permutations. Exists to property-test the analytic
/// formula; quadratically slower.
Result<double> SampleApOverPermutations(const std::vector<TiedGroup>& groups,
                                        Rng& rng, int samples);

}  // namespace biorank

#endif  // BIORANK_EVAL_TIED_AP_H_
