#include "core/reliability_bounds.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "core/reliability_exact.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

TEST(BoundsTest, SingleEdgeIsTight) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<ReliabilityBounds> bounds = BoundReliability(g, t);
  ASSERT_TRUE(bounds.ok());
  EXPECT_NEAR(bounds.value().lower, 0.4, 1e-9);
  EXPECT_NEAR(bounds.value().upper, 0.4, 1e-9);
}

TEST(BoundsTest, BracketsExactOnBridge) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<ReliabilityBounds> bounds = BoundReliability(g, g.answers[0]);
  ASSERT_TRUE(bounds.ok());
  double exact = 15.0 / 32.0;
  EXPECT_LE(bounds.value().lower, exact + 1e-9);
  EXPECT_GE(bounds.value().upper, exact - 1e-9);
  // With all 3 paths the lower bound IS the exact reliability.
  EXPECT_NEAR(bounds.value().lower, exact, 1e-9);
  // The upper bound is the propagation score.
  EXPECT_NEAR(bounds.value().upper, 0.484375, 1e-9);
}

TEST(BoundsTest, UnreachableTargetHasZeroBounds) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.9, "t");
  QueryGraph g = std::move(b).Build({t});
  Result<ReliabilityBounds> bounds = BoundReliability(g, t);
  ASSERT_TRUE(bounds.ok());
  EXPECT_DOUBLE_EQ(bounds.value().lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.value().upper, 0.0);
  EXPECT_EQ(bounds.value().paths_used, 0);
}

TEST(BoundsTest, MorePathsTightenTheLowerBound) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  double previous = -1.0;
  for (int k : {1, 2, 3}) {
    ReliabilityBoundsOptions options;
    options.max_paths = k;
    Result<ReliabilityBounds> bounds =
        BoundReliability(g, g.answers[0], options);
    ASSERT_TRUE(bounds.ok());
    EXPECT_GE(bounds.value().lower, previous - 1e-12);
    previous = bounds.value().lower;
  }
  // k=1 gives exactly the single best path probability: 0.25.
  ReliabilityBoundsOptions one;
  one.max_paths = 1;
  EXPECT_NEAR(BoundReliability(g, g.answers[0], one).value().lower, 0.25,
              1e-9);
}

TEST(BoundsTest, RejectsBadArguments) {
  QueryGraph g = MakeFig4aSerialParallel();
  EXPECT_FALSE(BoundReliability(g, 999).ok());
  ReliabilityBoundsOptions options;
  options.max_paths = 0;
  EXPECT_FALSE(BoundReliability(g, g.answers[0], options).ok());
}

class BoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundsProperty, BracketsExactReliabilityOnRandomDags) {
  Rng rng(4200 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 3;
  options.answers = 2;
  options.edge_density = 0.5;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  for (NodeId t : g.answers) {
    Result<double> exact = ExactReliabilityFactoring(g, t);
    ASSERT_TRUE(exact.ok()) << exact.status();
    Result<ReliabilityBounds> bounds = BoundReliability(g, t);
    ASSERT_TRUE(bounds.ok()) << bounds.status();
    EXPECT_LE(bounds.value().lower, exact.value() + 1e-9);
    EXPECT_GE(bounds.value().upper, exact.value() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace biorank
