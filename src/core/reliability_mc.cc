#include "core/reliability_mc.h"

#include <algorithm>

#include "core/trial_bound.h"
#include "util/rng.h"

namespace biorank {

namespace {

/// Per-executor scratch reused across every shard a thread runs, so shard
/// granularity costs no allocations. Reach counts are integers, which is
/// what makes the cross-shard sum order-independent and the final estimate
/// bit-identical for any thread count.
struct TrialWorkspace {
  std::vector<int64_t> reach_count;
  /// `last_sim[x] == epoch` marks x as simulated in the current trial.
  /// The epoch increments monotonically across trials *and shards*, so
  /// reuse needs no clearing.
  std::vector<int64_t> last_sim;
  std::vector<NodeId> stack;
  int64_t epoch = 0;
  // Naive-mode buffers (unused in traversal mode).
  std::vector<uint8_t> node_present;
  std::vector<uint8_t> edge_present;

  void Init(int node_count, int edge_count, McOptions::Mode mode) {
    reach_count.assign(node_count, 0);
    last_sim.assign(node_count, -1);
    stack.reserve(64);
    if (mode == McOptions::Mode::kNaive) {
      node_present.assign(node_count, 0);
      edge_present.assign(edge_count, 0);
    }
  }
};

/// Runs `trials` traversal trials (Algorithm 3.1), accumulating per-node
/// reach counts into `ws.reach_count`.
void RunTraversalTrials(const CompactGraphView& view, NodeId source,
                        int64_t trials, Rng rng, TrialWorkspace& ws) {
  for (int64_t trial = 0; trial < trials; ++trial) {
    const int64_t epoch = ++ws.epoch;
    ws.stack.clear();
    ws.last_sim[source] = epoch;
    if (rng.NextBernoulli(view.node_p[source])) {
      ++ws.reach_count[source];
      ws.stack.push_back(source);
    }
    while (!ws.stack.empty()) {
      NodeId x = ws.stack.back();
      ws.stack.pop_back();
      for (int32_t i = view.out_offset[x]; i < view.out_offset[x + 1]; ++i) {
        // One coin per edge per trial: x expands at most once per trial.
        if (!rng.NextBernoulli(view.edge_q[i])) continue;
        NodeId y = view.edge_to[i];
        if (ws.last_sim[y] == epoch) continue;
        ws.last_sim[y] = epoch;
        if (rng.NextBernoulli(view.node_p[y])) {
          ++ws.reach_count[y];
          ws.stack.push_back(y);
        }
      }
    }
  }
}

/// Runs `trials` naive trials: every element flips a coin, then a DFS over
/// the sampled subgraph counts reached-and-present nodes.
void RunNaiveTrials(const CompactGraphView& view, NodeId source,
                    int64_t trials, Rng rng, TrialWorkspace& ws) {
  const int n = static_cast<int>(view.node_p.size());
  const int m = static_cast<int>(view.edge_q.size());
  for (int64_t trial = 0; trial < trials; ++trial) {
    const int64_t epoch = ++ws.epoch;
    for (int i = 0; i < n; ++i) {
      ws.node_present[i] = rng.NextBernoulli(view.node_p[i]) ? 1 : 0;
    }
    for (int i = 0; i < m; ++i) {
      ws.edge_present[i] = rng.NextBernoulli(view.edge_q[i]) ? 1 : 0;
    }
    if (!ws.node_present[source]) continue;
    ws.stack.clear();
    ws.stack.push_back(source);
    ws.last_sim[source] = epoch;
    ++ws.reach_count[source];
    while (!ws.stack.empty()) {
      NodeId x = ws.stack.back();
      ws.stack.pop_back();
      for (int32_t i = view.out_offset[x]; i < view.out_offset[x + 1]; ++i) {
        if (!ws.edge_present[i]) continue;
        NodeId y = view.edge_to[i];
        if (ws.last_sim[y] == epoch || !ws.node_present[y]) continue;
        ws.last_sim[y] = epoch;
        ++ws.reach_count[y];
        ws.stack.push_back(y);
      }
    }
  }
}

}  // namespace

Result<McEstimate> EstimateReliabilityMc(const QueryGraph& query_graph,
                                         const McOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (options.trials <= 0) {
    return Status::InvalidArgument("MC trials must be positive");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument(
        "MC num_threads must be >= 0 (0 = full shared pool)");
  }
  if (options.shard_trials < 1) {
    return Status::InvalidArgument("MC shard_trials must be >= 1");
  }

  CompactGraphView view = CompactGraphView::FromGraph(query_graph.graph);
  const int n = view.node_count();
  const int m = static_cast<int>(view.edge_q.size());

  // Fixed shard schedule: shard i runs shards[i] trials on RNG stream
  // (seed, i). Which thread runs which shard never affects the counts.
  Result<std::vector<int64_t>> plan =
      PlanTrialShards(options.trials, options.shard_trials);
  if (!plan.ok()) return plan.status();
  const std::vector<int64_t>& shards = plan.value();

  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Global();
  const int max_parallelism = options.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options.num_threads;

  std::vector<TrialWorkspace> workspaces(pool.slot_count());
  pool.ParallelFor(
      static_cast<int64_t>(shards.size()),
      [&](int slot, int64_t shard) {
        TrialWorkspace& ws = workspaces[slot];
        if (ws.reach_count.empty()) ws.Init(n, m, options.mode);
        Rng rng = Rng::ForStream(options.seed, static_cast<uint64_t>(shard));
        if (options.mode == McOptions::Mode::kTraversal) {
          RunTraversalTrials(view, query_graph.source, shards[shard], rng, ws);
        } else {
          RunNaiveTrials(view, query_graph.source, shards[shard], rng, ws);
        }
      },
      max_parallelism);

  McEstimate estimate;
  estimate.trials = options.trials;
  estimate.scores.assign(n, 0.0);
  std::vector<int64_t> totals(n, 0);
  for (const TrialWorkspace& ws : workspaces) {
    if (ws.reach_count.empty()) continue;
    for (int i = 0; i < n; ++i) totals[i] += ws.reach_count[i];
  }
  for (int i = 0; i < n; ++i) {
    estimate.scores[i] = static_cast<double>(totals[i]) /
                         static_cast<double>(options.trials);
  }
  return estimate;
}

}  // namespace biorank
