#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(StatsTest, EmptySampleIsZeroed) {
  SampleStats s = ComputeStats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(StatsTest, SingleValue) {
  SampleStats s = ComputeStats({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
}

TEST(StatsTest, KnownSample) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population sd 2, sample sd ~2.138.
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  SampleStats s = ComputeStats(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(StatsTest, Ci95ShrinksWithSampleSize) {
  std::vector<double> small = {1, 2, 3, 4, 5};
  std::vector<double> large;
  for (int rep = 0; rep < 100; ++rep) {
    for (double v : small) large.push_back(v);
  }
  EXPECT_GT(ComputeStats(small).ci95_half_width,
            ComputeStats(large).ci95_half_width);
}

TEST(StatsTest, MeanOfConstants) {
  EXPECT_DOUBLE_EQ(Mean({3.0, 3.0, 3.0}), 3.0);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({3.0, 3.0, 3.0}), 0.0);
}

TEST(StatsTest, PercentileEndpointsAndMedian) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 75), 7.5);
}

TEST(StatsTest, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectAntiCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, PearsonSizeMismatchIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats r;
  for (double x : v) r.Add(x);
  SampleStats batch = ComputeStats(v);
  EXPECT_EQ(r.count(), batch.count);
  EXPECT_NEAR(r.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(r.stddev(), batch.stddev, 1e-12);
  EXPECT_EQ(r.min(), batch.min);
  EXPECT_EQ(r.max(), batch.max);
}

TEST(RunningStatsTest, VarianceOfFewerThanTwoIsZero) {
  RunningStats r;
  EXPECT_EQ(r.variance(), 0.0);
  r.Add(5.0);
  EXPECT_EQ(r.variance(), 0.0);
}

}  // namespace
}  // namespace biorank
