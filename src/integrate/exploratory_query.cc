#include "integrate/exploratory_query.h"

namespace biorank {

ExploratoryQuery MakeProteinFunctionQuery(const std::string& gene_symbol) {
  ExploratoryQuery query;
  query.entity_set = "EntrezProtein";
  query.attribute = "name";
  query.value = gene_symbol;
  query.output_sets = {"AmiGO"};
  return query;
}

ExploratoryQuery MakeProteinFunctionTopKQuery(const std::string& gene_symbol,
                                              int top_k) {
  ExploratoryQuery query = MakeProteinFunctionQuery(gene_symbol);
  query.top_k = top_k;
  return query;
}

}  // namespace biorank
