#include "schema/transforms.h"

#include <cmath>

namespace biorank {

const char* GeneStatusToString(GeneStatus status) {
  switch (status) {
    case GeneStatus::kReviewed:
      return "Reviewed";
    case GeneStatus::kValidated:
      return "Validated";
    case GeneStatus::kProvisional:
      return "Provisional";
    case GeneStatus::kPredicted:
      return "Predicted";
    case GeneStatus::kModel:
      return "Model";
    case GeneStatus::kInferred:
      return "Inferred";
  }
  return "?";
}

const char* EvidenceCodeToString(EvidenceCode code) {
  switch (code) {
    case EvidenceCode::kIDA:
      return "IDA";
    case EvidenceCode::kTAS:
      return "TAS";
    case EvidenceCode::kIGI:
      return "IGI";
    case EvidenceCode::kIMP:
      return "IMP";
    case EvidenceCode::kIPI:
      return "IPI";
    case EvidenceCode::kIEP:
      return "IEP";
    case EvidenceCode::kISS:
      return "ISS";
    case EvidenceCode::kRCA:
      return "RCA";
    case EvidenceCode::kIC:
      return "IC";
    case EvidenceCode::kNAS:
      return "NAS";
    case EvidenceCode::kIEA:
      return "IEA";
    case EvidenceCode::kND:
      return "ND";
    case EvidenceCode::kNR:
      return "NR";
  }
  return "?";
}

double GeneStatusToPr(GeneStatus status) {
  switch (status) {
    case GeneStatus::kReviewed:
      return 1.0;
    case GeneStatus::kValidated:
      return 0.8;
    case GeneStatus::kProvisional:
      return 0.7;
    case GeneStatus::kPredicted:
      return 0.4;
    case GeneStatus::kModel:
      return 0.3;
    case GeneStatus::kInferred:
      return 0.2;
  }
  return 0.0;
}

double EvidenceCodeToPr(EvidenceCode code) {
  switch (code) {
    case EvidenceCode::kIDA:
    case EvidenceCode::kTAS:
      return 1.0;
    case EvidenceCode::kIGI:
    case EvidenceCode::kIMP:
    case EvidenceCode::kIPI:
      return 0.9;
    case EvidenceCode::kIEP:
    case EvidenceCode::kISS:
    case EvidenceCode::kRCA:
      return 0.7;
    case EvidenceCode::kIC:
      return 0.6;
    case EvidenceCode::kNAS:
      return 0.5;
    case EvidenceCode::kIEA:
      return 0.3;
    case EvidenceCode::kND:
    case EvidenceCode::kNR:
      return 0.2;
  }
  return 0.0;
}

Result<double> GeneStatusStringToPr(std::string_view status) {
  static constexpr struct {
    const char* name;
    GeneStatus status;
  } kTable[] = {
      {"Reviewed", GeneStatus::kReviewed},
      {"Validated", GeneStatus::kValidated},
      {"Provisional", GeneStatus::kProvisional},
      {"Predicted", GeneStatus::kPredicted},
      {"Model", GeneStatus::kModel},
      {"Inferred", GeneStatus::kInferred},
  };
  for (const auto& entry : kTable) {
    if (status == entry.name) return GeneStatusToPr(entry.status);
  }
  return Status::NotFound("unknown EntrezGene status code: " +
                          std::string(status));
}

Result<double> EvidenceCodeStringToPr(std::string_view code) {
  static constexpr struct {
    const char* name;
    EvidenceCode code;
  } kTable[] = {
      {"IDA", EvidenceCode::kIDA}, {"TAS", EvidenceCode::kTAS},
      {"IGI", EvidenceCode::kIGI}, {"IMP", EvidenceCode::kIMP},
      {"IPI", EvidenceCode::kIPI}, {"IEP", EvidenceCode::kIEP},
      {"ISS", EvidenceCode::kISS}, {"RCA", EvidenceCode::kRCA},
      {"IC", EvidenceCode::kIC},   {"NAS", EvidenceCode::kNAS},
      {"IEA", EvidenceCode::kIEA}, {"ND", EvidenceCode::kND},
      {"NR", EvidenceCode::kNR},
  };
  for (const auto& entry : kTable) {
    if (code == entry.name) return EvidenceCodeToPr(entry.code);
  }
  return Status::NotFound("unknown GO evidence code: " + std::string(code));
}

double EValueToQr(double e_value) {
  if (e_value <= 0.0) return 1.0;  // Better than any representable match.
  if (e_value >= 1.0) return 0.0;
  double qr = -std::log10(e_value) / 300.0;
  if (qr > 1.0) return 1.0;
  if (qr < 0.0) return 0.0;
  return qr;
}

}  // namespace biorank
