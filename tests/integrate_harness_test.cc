#include "integrate/scenario_harness.h"

#include <gtest/gtest.h>

#include "api/server.h"

#include "core/closed_form.h"
#include "core/reliability_mc.h"
#include "eval/perturbation.h"
#include "util/rng.h"

namespace biorank {
namespace {

const ScenarioHarness& Harness() {
  // One server (and so one world + one reliability cache) for the whole
  // file; BuildQueries does the crawling.
  static api::Server* server = new api::Server();
  return server->harness();
}

TEST(HarnessTest, BuildsAllThreeScenarios) {
  EXPECT_EQ(
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value().size(),
      20u);
  EXPECT_EQ(
      Harness().BuildQueries(ScenarioId::kScenario2LessKnown).value().size(),
      3u);
  EXPECT_EQ(Harness()
                .BuildQueries(ScenarioId::kScenario3Hypothetical)
                .value()
                .size(),
            11u);
}

TEST(HarnessTest, GoldRetrievalIsComplete) {
  for (ScenarioId scenario : {ScenarioId::kScenario2LessKnown,
                              ScenarioId::kScenario3Hypothetical}) {
    std::vector<ScenarioQuery> queries =
        Harness().BuildQueries(scenario).value();
    for (const ScenarioQuery& query : queries) {
      // Scenario 2/3 gold is injected with guaranteed evidence paths.
      EXPECT_EQ(query.gold_retrieved, query.gold_total)
          << query.spec.gene_symbol;
      EXPECT_EQ(query.relevant.size(),
                static_cast<size_t>(query.gold_retrieved));
    }
  }
}

TEST(HarnessTest, ApValuesAreInUnitInterval) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  for (RankingMethod method : AllRankingMethods()) {
    Result<double> ap = Harness().ApForQuery(queries[0], method);
    ASSERT_TRUE(ap.ok()) << RankingMethodName(method);
    EXPECT_GE(ap.value(), 0.0);
    EXPECT_LE(ap.value(), 1.0);
  }
}

TEST(HarnessTest, RandomBaselineMatchesDefinition41Bounds) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  for (const ScenarioQuery& query : queries) {
    Result<double> random = Harness().RandomBaselineAp(query);
    ASSERT_TRUE(random.ok());
    double fraction = static_cast<double>(query.relevant.size()) /
                      query.answer_count;
    // APrand is at least the relevant fraction and at most 1.
    EXPECT_GE(random.value(), fraction - 1e-9);
    EXPECT_LE(random.value(), 1.0);
  }
}

TEST(HarnessTest, AnswerCountsSpanTable1Range) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  int min_answers = 1 << 30, max_answers = 0;
  for (const ScenarioQuery& query : queries) {
    min_answers = std::min(min_answers, query.answer_count);
    max_answers = std::max(max_answers, query.answer_count);
  }
  EXPECT_GE(min_answers, 10);
  EXPECT_LE(max_answers, 140);
  EXPECT_GT(max_answers, min_answers);  // Sizes vary per protein.
}

TEST(HarnessTest, ClosedFormCoversEveryScenario1Target) {
  // The paper's efficiency observation: each individual answer subgraph
  // reduces to a closed solution on Figure 1 query graphs.
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  const ScenarioQuery& query = queries[0];
  Result<std::vector<double>> closed =
      ClosedFormReliabilityAllAnswers(query.graph);
  EXPECT_TRUE(closed.ok()) << closed.status();
}

TEST(HarnessTest, McAgreesWithClosedFormOnRealGraph) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario1WellKnown).value();
  const ScenarioQuery& query = queries[1];
  Result<std::vector<double>> closed =
      ClosedFormReliabilityAllAnswers(query.graph);
  ASSERT_TRUE(closed.ok());
  McOptions mc;
  mc.trials = 20000;
  mc.seed = 77;
  Result<McEstimate> estimate = EstimateReliabilityMc(query.graph, mc);
  ASSERT_TRUE(estimate.ok());
  for (size_t i = 0; i < query.graph.answers.size(); ++i) {
    EXPECT_NEAR(estimate.value().scores[query.graph.answers[i]],
                closed.value()[i], 0.02)
        << "answer " << i;
  }
}

TEST(HarnessTest, PerturbedRepsAreThreadCountInvariant) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario3Hypothetical).value();
  const ScenarioQuery& query = queries[0];
  PerturbationOptions options;
  options.sigma = 1.0;
  ThreadPool inline_pool(0);
  ThreadPool wide_pool(3);
  Result<std::vector<double>> serial = Harness().ApForPerturbedReps(
      query, RankingMethod::kReliability, options, 6, 99, &inline_pool);
  Result<std::vector<double>> parallel = Harness().ApForPerturbedReps(
      query, RankingMethod::kReliability, options, 6, 99, &wide_pool);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(serial.value().size(), 6u);
  EXPECT_EQ(serial.value(), parallel.value());
  for (double ap : serial.value()) {
    EXPECT_GE(ap, 0.0);
    EXPECT_LE(ap, 1.0);
  }
}

TEST(HarnessTest, McRepsAreThreadCountInvariant) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario3Hypothetical).value();
  const ScenarioQuery& query = queries[0];
  ThreadPool inline_pool(0);
  ThreadPool wide_pool(3);
  Result<std::vector<double>> serial =
      Harness().ApForMcReps(query, 2000, 5, 7, &inline_pool);
  Result<std::vector<double>> parallel =
      Harness().ApForMcReps(query, 2000, 5, 7, &wide_pool);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial.value(), parallel.value());
}

TEST(HarnessTest, RepeatedExperimentsRejectNonPositiveReps) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario3Hypothetical).value();
  EXPECT_FALSE(
      Harness().ApForMcReps(queries[0], 100, 0, 1).ok());
  EXPECT_FALSE(Harness()
                   .ApForPerturbedReps(queries[0],
                                       RankingMethod::kReliability, {}, -1, 1)
                   .ok());
}

TEST(HarnessTest, PerturbedGraphStillScores) {
  std::vector<ScenarioQuery> queries =
      Harness().BuildQueries(ScenarioId::kScenario3Hypothetical).value();
  const ScenarioQuery& query = queries[0];
  QueryGraph perturbed = query.graph;
  Rng rng(5);
  PerturbationOptions options;
  options.sigma = 2.0;
  PerturbQueryGraph(perturbed, options, rng);
  Result<double> ap = Harness().ApForGraph(perturbed, query.relevant,
                                           RankingMethod::kReliability);
  ASSERT_TRUE(ap.ok()) << ap.status();
  EXPECT_GE(ap.value(), 0.0);
  EXPECT_LE(ap.value(), 1.0);
}

}  // namespace
}  // namespace biorank
