#ifndef BIORANK_BENCH_BENCH_UTIL_H_
#define BIORANK_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/csv.h"

namespace biorank::bench {

/// Repetition count for repeated-experiment benches. The paper uses
/// m = 100; the default here keeps the full bench suite fast. Raise via
/// the BIORANK_REPS environment variable to reproduce at paper scale.
/// Malformed values (garbage, trailing junk, non-positive, overflow) are
/// rejected with a warning instead of being silently coerced.
inline int Repetitions(int default_reps = 10) {
  const char* env = std::getenv("BIORANK_REPS");
  if (env == nullptr) return default_reps;
  char* end = nullptr;
  errno = 0;
  long value = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0' || value < 1 ||
      value > INT_MAX) {
    std::cerr << "warning: ignoring malformed BIORANK_REPS=\"" << env
              << "\" (want a positive integer); using " << default_reps
              << "\n";
    return default_reps;
  }
  return static_cast<int>(value);
}

/// Writes a CSV copy of a bench table when BIORANK_CSV_DIR is set.
inline void MaybeWriteCsv(const CsvWriter& csv, const std::string& name) {
  const char* dir = std::getenv("BIORANK_CSV_DIR");
  if (dir == nullptr) return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  Status status = csv.WriteToFile(path);
  if (status.ok()) {
    std::cout << "(csv written to " << path << ")\n";
  } else {
    std::cerr << "csv write failed: " << status << "\n";
  }
}

}  // namespace biorank::bench

#endif  // BIORANK_BENCH_BENCH_UTIL_H_
