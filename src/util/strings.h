// String helpers: number formatting, join/split/trim, prefix tests.

#ifndef BIORANK_UTIL_STRINGS_H_
#define BIORANK_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace biorank {

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Formats `value` compactly: up to `precision` significant decimals with
/// trailing zeros stripped ("0.5", "0.469", "17").
std::string FormatCompact(double value, int precision = 4);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Pads `text` on the left with spaces to at least `width` characters.
std::string PadLeft(std::string_view text, size_t width);

/// Pads `text` on the right with spaces to at least `width` characters.
std::string PadRight(std::string_view text, size_t width);

/// Renders a rank interval like the paper's tables: "17" for a unique rank,
/// "21-22" for a tie spanning ranks 21 through 22 (1-based, inclusive).
std::string FormatRankInterval(int lo, int hi);

}  // namespace biorank

#endif  // BIORANK_UTIL_STRINGS_H_
