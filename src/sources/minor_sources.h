// Smaller simulated sources rounding out the Section 2 federation.

#ifndef BIORANK_SOURCES_MINOR_SOURCES_H_
#define BIORANK_SOURCES_MINOR_SOURCES_H_

#include <string>
#include <vector>

#include "sources/data_source.h"
#include "sources/profile_db.h"

namespace biorank {

/// The remaining registered sources of the paper's Section 2 table. The
/// paper's quality study uses only Pfam/TIGRFAM/NCBIBlast/Entrez; these
/// five are wired into the mediator behind an option and mainly enrich
/// graph shapes (PDB contributes sink nodes, exercising the
/// delete-inaccessible-nodes reduction rule).

/// PIRSF: whole-protein family classification; regarded as more accurate
/// than Pfam by the paper's collaborators, hence the higher default ps.
class PirsfSource : public DataSource {
 public:
  PirsfSource(const ProteinUniverse& universe, const EvidenceModel& evidence);
  std::string name() const override { return "PIRSF"; }
  int entity_set_count() const override { return 2; }
  int relationship_count() const override { return 2; }
  const ProfileDatabase& db() const { return db_; }

 private:
  ProfileDatabase db_;
};

/// SuperFamily: structural (SCOP-derived) superfamily assignments;
/// deliberately coarse (several sequence families per superfamily).
class SuperFamilySource : public DataSource {
 public:
  SuperFamilySource(const ProteinUniverse& universe,
                    const EvidenceModel& evidence);
  std::string name() const override { return "SuperFamily"; }
  int entity_set_count() const override { return 3; }
  int relationship_count() const override { return 1; }
  const ProfileDatabase& db() const { return db_; }

 private:
  ProfileDatabase db_;
};

/// CDD: NCBI conserved domains; broad but noisy.
class CddSource : public DataSource {
 public:
  CddSource(const ProteinUniverse& universe, const EvidenceModel& evidence);
  std::string name() const override { return "CDD"; }
  int entity_set_count() const override { return 3; }
  int relationship_count() const override { return 1; }
  const ProfileDatabase& db() const { return db_; }

 private:
  ProfileDatabase db_;
};

/// One UniProt GO annotation row (mirrors a curated subset).
struct UniProtAnnotation {
  int go_index = 0;
  bool reviewed = false;  ///< Swiss-Prot (reviewed) vs TrEMBL.
};

/// UniProt: curated protein knowledge base keyed 1:1 by protein.
class UniProtSource : public DataSource {
 public:
  UniProtSource(const ProteinUniverse& universe,
                const EvidenceModel& evidence);
  std::string name() const override { return "UniProt"; }
  int entity_set_count() const override { return 2; }
  int relationship_count() const override { return 2; }

  /// Annotation rows of one protein; empty when uncovered.
  const std::vector<UniProtAnnotation>& AnnotationsFor(int protein) const;

 private:
  std::vector<std::vector<UniProtAnnotation>> annotations_;
  std::vector<UniProtAnnotation> empty_;
};

/// PDB: experimental structure depositions. Exports one entity set and no
/// relationships (#R = 0 in the paper's table): structure records are
/// terminal nodes of the query graph.
class PdbSource : public DataSource {
 public:
  PdbSource(const ProteinUniverse& universe, const EvidenceModel& evidence);
  std::string name() const override { return "PDB"; }
  int entity_set_count() const override { return 1; }
  int relationship_count() const override { return 0; }

  /// PDB ids ("1ABC"-style) deposited for one protein; often empty.
  const std::vector<std::string>& StructuresFor(int protein) const;

 private:
  std::vector<std::vector<std::string>> structures_;
  std::vector<std::string> empty_;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_MINOR_SOURCES_H_
