// Fixed-width text table renderer used by benches and examples to
// print paper-style tables.

#ifndef BIORANK_UTIL_TABLE_H_
#define BIORANK_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace biorank {

/// Plain-text table printer used by the benchmark harnesses to emit the
/// paper's tables and figure series in a stable, diffable format.
///
/// Example:
///   TextTable t({"Method", "Mean AP", "Stdv"});
///   t.AddRow({"Rel", "0.84", "0.09"});
///   t.Print(std::cout);
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept and
  /// widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator line at this position.
  void AddSeparator();

  size_t row_count() const { return rows_.size(); }

  /// Renders the table with aligned columns and a header rule.
  void Print(std::ostream& os) const;

  /// Renders to a string (convenience for tests).
  std::string ToString() const;

 private:
  static constexpr const char* kSeparatorMarker = "\x01--";

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace biorank

#endif  // BIORANK_UTIL_TABLE_H_
