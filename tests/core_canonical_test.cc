// Canonical keys for reduced per-answer subgraphs: isomorphic graphs
// must collide (that is the cache's sharing opportunity), distinct
// probabilistic graphs must not, and the canonical rebuild must preserve
// reliability exactly.

#include "core/canonical.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "core/reliability_exact.h"

namespace biorank {
namespace {

// s -(0.5)-> m -(0.8)-> t, plus a decoy branch that reduction removes.
QueryGraph MakeChain(double q1, double q2, bool decoy_first) {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId decoy = kInvalidNode;
  if (decoy_first) decoy = b.Node(0.9, "decoy");
  NodeId m = b.Node(1.0, "m");
  NodeId t = b.Node(1.0, "t");
  if (!decoy_first) decoy = b.Node(0.9, "decoy");
  b.Edge(s, m, q1);
  b.Edge(m, t, q2);
  b.Edge(s, decoy, 0.3);  // Dead-end sink: reduction deletes it.
  return std::move(b).Build({t});
}

TEST(CanonicalTest, IsomorphicGraphsCollideAcrossInsertionOrders) {
  QueryGraph a = MakeChain(0.5, 0.8, /*decoy_first=*/false);
  QueryGraph b = MakeChain(0.5, 0.8, /*decoy_first=*/true);
  Result<CanonicalCandidate> ka = CanonicalizeCandidate(a, a.answers[0]);
  Result<CanonicalCandidate> kb = CanonicalizeCandidate(b, b.answers[0]);
  ASSERT_TRUE(ka.ok()) << ka.status();
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_EQ(ka.value().key.repr, kb.value().key.repr);
  EXPECT_EQ(ka.value().key.hash, kb.value().key.hash);
}

TEST(CanonicalTest, SymmetricAnswersOfOneGraphShareAKey) {
  // Two answers with mirror-image evidence: one canonical key serves both.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId m1 = b.Node(0.9, "m1");
  NodeId m2 = b.Node(0.9, "m2");
  NodeId t1 = b.Node(0.8, "t1");
  NodeId t2 = b.Node(0.8, "t2");
  b.Edge(s, m1, 0.7);
  b.Edge(s, m2, 0.7);
  b.Edge(m1, t1, 0.6);
  b.Edge(m2, t2, 0.6);
  QueryGraph g = std::move(b).Build({t1, t2});
  Result<CanonicalCandidate> k1 = CanonicalizeCandidate(g, g.answers[0]);
  Result<CanonicalCandidate> k2 = CanonicalizeCandidate(g, g.answers[1]);
  ASSERT_TRUE(k1.ok()) << k1.status();
  ASSERT_TRUE(k2.ok()) << k2.status();
  EXPECT_EQ(k1.value().key.repr, k2.value().key.repr);
}

TEST(CanonicalTest, DifferentProbabilitiesSplitKeys) {
  QueryGraph a = MakeChain(0.5, 0.8, false);
  QueryGraph b = MakeChain(0.5, 0.81, false);
  Result<CanonicalCandidate> ka = CanonicalizeCandidate(a, a.answers[0]);
  Result<CanonicalCandidate> kb = CanonicalizeCandidate(b, b.answers[0]);
  ASSERT_TRUE(ka.ok() && kb.ok());
  EXPECT_NE(ka.value().key.repr, kb.value().key.repr);
}

TEST(CanonicalTest, SerialParallelAndBridgeTopologiesSplitKeys) {
  QueryGraph a = MakeFig4aSerialParallel();
  QueryGraph b = MakeFig4bWheatstoneBridge();
  Result<CanonicalCandidate> ka = CanonicalizeCandidate(a, a.answers[0]);
  Result<CanonicalCandidate> kb = CanonicalizeCandidate(b, b.answers[0]);
  ASSERT_TRUE(ka.ok() && kb.ok());
  EXPECT_NE(ka.value().key.repr, kb.value().key.repr);
}

TEST(CanonicalTest, CanonicalRebuildPreservesReliability) {
  for (const QueryGraph& g :
       {MakeFig4aSerialParallel(), MakeFig4bWheatstoneBridge()}) {
    Result<CanonicalCandidate> c = CanonicalizeCandidate(g, g.answers[0]);
    ASSERT_TRUE(c.ok()) << c.status();
    ASSERT_TRUE(c.value().canonical.Validate().ok());
    Result<double> original = ExactReliabilityBruteForce(g, g.answers[0]);
    Result<double> canonical = ExactReliabilityBruteForce(
        c.value().canonical, c.value().target);
    ASSERT_TRUE(original.ok() && canonical.ok());
    EXPECT_NEAR(original.value(), canonical.value(), 1e-12);
  }
}

TEST(CanonicalTest, ReductionStatsReportTheDecoyDeletion) {
  QueryGraph g = MakeChain(0.5, 0.8, false);
  Result<CanonicalCandidate> c = CanonicalizeCandidate(g, g.answers[0]);
  ASSERT_TRUE(c.ok());
  // The decoy sink is dropped by restriction/reduction; the chain
  // collapses to a single source -> target edge.
  EXPECT_EQ(c.value().canonical.graph.num_nodes(), 2);
  EXPECT_EQ(c.value().canonical.graph.num_edges(), 1);
}

TEST(CanonicalTest, UnreachableTargetYieldsIsolatedCanonicalAnswer) {
  QueryGraphBuilder b;
  NodeId m = b.Node(1.0, "m");
  NodeId t = b.Node(0.5, "t");
  b.Edge(t, m, 0.5);  // Only an edge *from* t: t unreachable from source.
  QueryGraph g = std::move(b).Build({t});
  Result<CanonicalCandidate> c = CanonicalizeCandidate(g, t);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_TRUE(c.value().canonical.Validate().ok());
  Result<double> r = ExactReliabilityBruteForce(c.value().canonical,
                                                c.value().target);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(CanonicalTest, NonAnswerTargetIsRejected) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<CanonicalCandidate> c = CanonicalizeCandidate(g, g.source);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
}

TEST(CanonicalTest, WholeGraphKeyInvariantUnderInsertionOrder) {
  QueryGraph a = MakeChain(0.4, 0.9, false);
  QueryGraph b = MakeChain(0.4, 0.9, true);
  Result<CanonicalKey> ka = CanonicalQueryGraphKey(a);
  Result<CanonicalKey> kb = CanonicalQueryGraphKey(b);
  ASSERT_TRUE(ka.ok() && kb.ok());
  EXPECT_EQ(ka.value().repr, kb.value().repr);
  EXPECT_EQ(Fnv1a64(ka.value().repr), ka.value().hash);
}

}  // namespace
}  // namespace biorank
