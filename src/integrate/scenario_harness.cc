#include "integrate/scenario_harness.h"

#include <atomic>

#include "core/reliability_mc.h"
#include "eval/random_ap.h"
#include "eval/tied_ap.h"
#include "util/rng.h"

namespace biorank {

namespace {

/// Fans `reps` repetitions of `run_rep` out over `pool` and returns the
/// per-rep values in repetition order. `run_rep(rep)` must be
/// deterministic in `rep` alone; the first error wins and is returned.
Result<std::vector<double>> RunRepeated(
    int reps, ThreadPool* pool,
    const std::function<Result<double>(int rep)>& run_rep) {
  if (reps < 1) {
    return Status::InvalidArgument("repeated experiment: reps must be >= 1");
  }
  ThreadPool& executor = pool != nullptr ? *pool : ThreadPool::Global();
  std::vector<double> values(static_cast<size_t>(reps), 0.0);
  std::vector<Status> errors(static_cast<size_t>(reps));
  std::atomic<bool> failed{false};
  executor.ParallelFor(reps, [&](int, int64_t rep) {
    Result<double> value = run_rep(static_cast<int>(rep));
    if (value.ok()) {
      values[static_cast<size_t>(rep)] = value.value();
    } else {
      errors[static_cast<size_t>(rep)] = value.status();
      failed.store(true, std::memory_order_relaxed);
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    for (const Status& status : errors) {
      if (!status.ok()) return status;
    }
  }
  return values;
}

}  // namespace

ScenarioHarness::ScenarioHarness(const ProteinUniverse& universe,
                                 const SourceRegistry& sources,
                                 const Mediator& mediator,
                                 RankerOptions ranker)
    : universe_(universe),
      sources_(sources),
      mediator_(mediator),
      ranker_(ranker) {}

Result<std::vector<ScenarioQuery>> ScenarioHarness::BuildQueries(
    ScenarioId scenario) const {
  std::vector<ScenarioQuery> queries;
  for (const ScenarioCase& spec : BuildScenarioCases(universe_, scenario)) {
    Result<ExploratoryQueryResult> run =
        mediator_.Run(MakeProteinFunctionQuery(spec.gene_symbol));
    if (!run.ok()) return run.status();
    ScenarioQuery query;
    query.spec = spec;
    query.answer_count =
        static_cast<int>(run.value().query_graph.answers.size());
    query.gold_total = static_cast<int>(spec.gold_functions.size());
    for (int go : spec.gold_functions) {
      auto it = run.value().go_node.find(go);
      if (it != run.value().go_node.end()) {
        query.relevant.insert(it->second);
        ++query.gold_retrieved;
      }
    }
    query.graph = std::move(run.value().query_graph);
    queries.push_back(std::move(query));
  }
  return queries;
}

Result<double> ScenarioHarness::ApForQuery(const ScenarioQuery& query,
                                           RankingMethod method) const {
  return ApForGraph(query.graph, query.relevant, method);
}

Result<double> ScenarioHarness::ApForGraph(
    const QueryGraph& graph, const std::unordered_set<NodeId>& relevant,
    RankingMethod method) const {
  Result<std::vector<RankedAnswer>> ranking = ranker_.Rank(graph, method);
  if (!ranking.ok()) return ranking.status();
  return ApForRanking(ranking.value(), relevant);
}

Result<double> ScenarioHarness::RandomBaselineAp(
    const ScenarioQuery& query) const {
  return RandomAveragePrecision(
      static_cast<int>(query.relevant.size()), query.answer_count);
}

Result<std::vector<double>> ScenarioHarness::ApForPerturbedReps(
    const ScenarioQuery& query, RankingMethod method,
    const PerturbationOptions& options, int reps, uint64_t seed,
    ThreadPool* pool) const {
  return RunRepeated(reps, pool, [&](int rep) -> Result<double> {
    QueryGraph perturbed = PerturbedCopy(query.graph, options, seed,
                                         static_cast<uint64_t>(rep));
    return ApForGraph(perturbed, query.relevant, method);
  });
}

Result<std::vector<double>> ScenarioHarness::ApForMcReps(
    const ScenarioQuery& query, int64_t trials, int reps, uint64_t seed,
    ThreadPool* pool) const {
  // One flat snapshot serves all repetitions — they simulate the same
  // graph and differ only in RNG stream.
  Result<CsrQuerySnapshot> snapshot = BuildCsrQuerySnapshot(query.graph);
  if (!snapshot.ok()) return snapshot.status();
  return RunRepeated(reps, pool, [&](int rep) -> Result<double> {
    McOptions mc;
    mc.trials = trials;
    mc.seed = DeriveStreamSeed(seed, static_cast<uint64_t>(rep));
    mc.pool = pool;
    Result<McEstimate> estimate =
        EstimateReliabilityMcOnSnapshot(snapshot.value(), mc);
    if (!estimate.ok()) return estimate.status();
    std::vector<RankedAnswer> ranked =
        RankAnswers(query.graph.answers, estimate.value().scores);
    return ApForRanking(ranked, query.relevant);
  });
}

}  // namespace biorank
