// Exploratory query description (Definition 2.2): the start entity
// and the answer entity set a scientist asks about.

#ifndef BIORANK_INTEGRATE_EXPLORATORY_QUERY_H_
#define BIORANK_INTEGRATE_EXPLORATORY_QUERY_H_

#include <string>
#include <vector>

namespace biorank {

/// An exploratory query (Definition 2.2): match records of an input
/// entity set on one attribute value, follow all links recursively, and
/// return every reachable record of the output entity sets, ranked by a
/// relevance function.
///
/// The paper's running example is
///   (EntrezProtein.name = "ABCC8", {AmiGO}).
struct ExploratoryQuery {
  std::string entity_set = "EntrezProtein";
  std::string attribute = "name";
  std::string value;
  std::vector<std::string> output_sets = {"AmiGO"};
  /// How many top-ranked answers the caller wants when the query is
  /// served through the ranking service (Mediator::RunRanked). 0 means
  /// rank the full answer set. Ignored by the graph-only Mediator::Run.
  int top_k = 0;
};

/// Builds the paper's canonical query shape, asking only for the k
/// highest-reliability functions (the serving-layer request shape).
ExploratoryQuery MakeProteinFunctionTopKQuery(const std::string& gene_symbol,
                                              int top_k);

/// Builds the paper's canonical query shape for a protein symbol.
ExploratoryQuery MakeProteinFunctionQuery(const std::string& gene_symbol);

}  // namespace biorank

#endif  // BIORANK_INTEGRATE_EXPLORATORY_QUERY_H_
