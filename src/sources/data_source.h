// Abstract interface each wrapped source implements (Section 2): a
// named source that answers lookup calls with probabilistic records
// for the mediator to stitch into a query graph.

#ifndef BIORANK_SOURCES_DATA_SOURCE_H_
#define BIORANK_SOURCES_DATA_SOURCE_H_

#include <string>

namespace biorank {

/// Base interface of a simulated biological data source. Each source owns
/// records derived deterministically from a ProteinUniverse (the stand-in
/// for the live 2007 web sources the paper integrated; see DESIGN.md's
/// substitution table) and exposes typed query methods on its concrete
/// class. The #E / #R counts mirror the paper's Section 2 source table.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Source name as registered with the mediator, e.g. "NCBIBlast".
  virtual std::string name() const = 0;

  /// Number of entity sets this source exports (paper's #E column).
  virtual int entity_set_count() const = 0;

  /// Number of relationships this source exports (paper's #R column).
  virtual int relationship_count() const = 0;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_DATA_SOURCE_H_
