#include "core/reduction.h"

#include <gtest/gtest.h>

#include "core/graph_algo.h"

namespace biorank {
namespace {

TEST(ReductionTest, SerialCollapseMultipliesProbabilities) {
  QueryGraphBuilder b;
  NodeId mid = b.Node(0.5, "mid");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), mid, 0.8);
  b.Edge(mid, t, 0.9);
  QueryGraph g = std::move(b).Build({t});
  ReductionStats stats = ReduceQueryGraph(g);
  EXPECT_EQ(stats.serial_collapses, 1);
  EXPECT_EQ(g.graph.num_nodes(), 2);
  EXPECT_EQ(g.graph.num_edges(), 1);
  std::vector<EdgeId> in = g.graph.InEdges(t);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_NEAR(g.graph.edge(in[0]).q, 0.8 * 0.5 * 0.9, 1e-12);
}

TEST(ReductionTest, ParallelMergeUsesInclusionExclusion) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReductionStats stats = ReduceQueryGraph(g);
  EXPECT_EQ(stats.parallel_merges, 1);
  EXPECT_EQ(g.graph.num_edges(), 1);
  std::vector<EdgeId> in = g.graph.InEdges(t);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_NEAR(g.graph.edge(in[0]).q, 0.75, 1e-12);
}

TEST(ReductionTest, SinkDeletionCascades) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  NodeId dead1 = b.Node(1.0, "dead1");
  NodeId dead2 = b.Node(1.0, "dead2");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(b.Source(), dead1, 0.5);
  b.Edge(dead1, dead2, 0.5);  // dead2 is a sink; removing it makes dead1 one.
  QueryGraph g = std::move(b).Build({t});
  ReductionOptions options;
  options.collapse_serial = false;  // Isolate the sink rule's cascade.
  ReductionStats stats = ReduceQueryGraph(g, options);
  EXPECT_EQ(stats.sink_deletions, 2);
  EXPECT_EQ(g.graph.num_nodes(), 2);
}

TEST(ReductionTest, AnswerSinkIsProtected) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReduceQueryGraph(g);
  EXPECT_TRUE(g.graph.IsValidNode(t));
}

TEST(ReductionTest, OrphanDeletion) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  NodeId orphan = b.Node(1.0, "orphan");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(orphan, t, 0.5);  // orphan has no in-edges: unreachable.
  QueryGraph g = std::move(b).Build({t});
  ReductionStats stats = ReduceQueryGraph(g);
  EXPECT_GE(stats.orphan_deletions, 1);
  EXPECT_FALSE(g.graph.IsValidNode(orphan));
}

TEST(ReductionTest, OrphanDeletionCanBeDisabled) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  NodeId orphan = b.Node(1.0, "orphan");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(orphan, t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReductionOptions options;
  options.delete_orphans = false;
  ReduceQueryGraph(g, options);
  EXPECT_TRUE(g.graph.IsValidNode(orphan));
}

TEST(ReductionTest, SelfLoopRemoved) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(t, t, 0.9);
  QueryGraph g = std::move(b).Build({t});
  ReductionStats stats = ReduceQueryGraph(g);
  EXPECT_EQ(stats.self_loop_deletions, 1);
  EXPECT_EQ(g.graph.num_edges(), 1);
}

TEST(ReductionTest, SerialThenParallelFullyReducesDiamond) {
  // s -> a -> t and s -> b -> t: serial collapses then parallel merge
  // leave a single edge; reliability reads off in closed form.
  QueryGraphBuilder b;
  NodeId a = b.Node(0.9, "a");
  NodeId bb = b.Node(0.8, "b");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), a, 0.7);
  b.Edge(a, t, 0.6);
  b.Edge(b.Source(), bb, 0.5);
  b.Edge(bb, t, 0.4);
  QueryGraph g = std::move(b).Build({t});
  ReduceQueryGraph(g);
  EXPECT_EQ(g.graph.num_nodes(), 2);
  EXPECT_EQ(g.graph.num_edges(), 1);
  double path_a = 0.7 * 0.9 * 0.6;
  double path_b = 0.5 * 0.8 * 0.4;
  double expected = 1.0 - (1.0 - path_a) * (1.0 - path_b);
  std::vector<EdgeId> in = g.graph.InEdges(t);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_NEAR(g.graph.edge(in[0]).q, expected, 1e-12);
}

TEST(ReductionTest, WheatstoneBridgeIsIrreducible) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  ReductionStats stats = ReduceQueryGraph(g);
  // The paper: reductions "get stuck on the Wheatstone Bridge graph".
  EXPECT_EQ(stats.serial_collapses, 0);
  EXPECT_EQ(stats.parallel_merges, 0);
  EXPECT_EQ(g.graph.num_nodes(), 4);
  EXPECT_EQ(g.graph.num_edges(), 5);
}

TEST(ReductionTest, Fig4aReducesToSingleEdge) {
  QueryGraph g = MakeFig4aSerialParallel();
  ReduceQueryGraph(g);
  EXPECT_EQ(g.graph.num_nodes(), 2);
  EXPECT_EQ(g.graph.num_edges(), 1);
  std::vector<EdgeId> in = g.graph.InEdges(g.answers[0]);
  ASSERT_EQ(in.size(), 1u);
  // Both paths have probability 0.5 each... but they share the 0.5 edge:
  // serial collapse folds each branch to q=1, parallel merge gives 1, and
  // the final serial collapse with the shared 0.5 edge yields 0.5.
  EXPECT_NEAR(g.graph.edge(in[0]).q, 0.5, 1e-12);
}

TEST(ReductionTest, IdempotentOnFixpoint) {
  QueryGraph g = MakeFig4aSerialParallel();
  ReduceQueryGraph(g);
  ReductionStats second = ReduceQueryGraph(g);
  EXPECT_EQ(second.serial_collapses, 0);
  EXPECT_EQ(second.parallel_merges, 0);
  EXPECT_EQ(second.sink_deletions, 0);
  EXPECT_EQ(second.nodes_before, second.nodes_after);
}

TEST(ReductionTest, StatsRemovedFraction) {
  QueryGraph g = MakeFig4aSerialParallel();
  ReductionStats stats = ReduceQueryGraph(g);
  // 10 elements before (5 nodes + 5 edges), 3 after (2 nodes + 1 edge).
  EXPECT_NEAR(stats.RemovedFraction(), 0.7, 1e-12);
}

TEST(ReductionTest, SerialCollapseSkipsProtectedNodes) {
  // s -> t1 -> t2 where t1 is itself an answer: t1 must survive.
  QueryGraphBuilder b;
  NodeId t1 = b.Node(0.9, "t1");
  NodeId t2 = b.Node(0.8, "t2");
  b.Edge(b.Source(), t1, 0.5);
  b.Edge(t1, t2, 0.5);
  QueryGraph g = std::move(b).Build({t1, t2});
  ReduceQueryGraph(g);
  EXPECT_TRUE(g.graph.IsValidNode(t1));
  EXPECT_TRUE(g.graph.IsValidNode(t2));
  EXPECT_EQ(g.graph.num_edges(), 2);
}

TEST(ReductionTest, CollapseToExistingParallelEdgeThenMerge) {
  // s -> t directly (0.3) and s -> mid -> t: the serial collapse creates a
  // parallel edge that must merge with the direct one.
  QueryGraphBuilder b;
  NodeId mid = b.Node(1.0, "mid");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.3);
  b.Edge(b.Source(), mid, 0.5);
  b.Edge(mid, t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReduceQueryGraph(g);
  EXPECT_EQ(g.graph.num_edges(), 1);
  std::vector<EdgeId> in = g.graph.InEdges(t);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_NEAR(g.graph.edge(in[0]).q, 1.0 - 0.7 * 0.75, 1e-12);
}

}  // namespace
}  // namespace biorank
