#!/usr/bin/env python3
"""Perf-trend gate: compare a directory of BENCH_*.json reports against
the committed snapshots in bench/baselines/.

Writes a per-bench delta table (markdown) to stdout and, when the
GITHUB_STEP_SUMMARY environment variable is set, appends it to the CI
job summary. Exit status is nonzero when

  * any bench's wall_time_s regressed by more than --max-ratio (default
    2.0x) against its baseline, provided both sides are above
    --min-seconds (tiny smoke timings are noise-dominated and never
    gate), or
  * any per-bench acceptance assertion in BENCH_GATES fails — the one
    schema-driven source of truth for every report's correctness bits
    and floor metrics (bit-identity flags, cache hit-rate floors, the
    CSR duel speedup, the shard-scaling floor). Most of these floors
    are also enforced by the bench binary's own exit code; this gate
    re-checks them against the report the artifact actually carries, or
  * a baseline bench produced no report at all (a silently skipped bench
    would otherwise look like a perf win).

A bench with no committed baseline yet only *warns*: new benches land in
the same PR as their first baseline snapshot, and a branch state where
the report exists before the snapshot must not fail the gate.

Refreshing baselines after an intentional perf change:

    cmake -B build -S . && cmake --build build -j
    mkdir -p /tmp/bench-json
    cd /tmp/bench-json
    BIORANK_REPS=2 BIORANK_BENCH_JSON_DIR=$PWD <run every build/bench_*>
    cp BENCH_*.json <repo>/bench/baselines/

and commit the result (see docs/ARCHITECTURE.md, "Perf-trend gate").
"""

import argparse
import json
import os
import re
import sys
from pathlib import Path

# Benches that may legitimately be absent from a run (Google-Benchmark
# harnesses are skipped when libbenchmark-dev is not installed).
OPTIONAL_BENCHES = {
    "fig8a_reliability_methods",
    "fig8b_method_times",
    "ablation_diffusion",
}


# --- Per-bench acceptance assertions -----------------------------------
#
# Each checker takes a report's metrics dict and returns a list of
# failure strings (empty = pass). BENCH_GATES maps bench name -> its
# checkers; gates run only when the bench produced a report (a missing
# report is handled by the baseline comparison above). This table is the
# single declarative home of every report assertion CI enforces — no
# inline per-report python in the workflow.

def flag(key, why):
    """metrics[key] must be truthy (a correctness bit)."""
    def check(metrics):
        if not metrics.get(key, False):
            return [f"{why} ({key} is not true)"]
        return []
    return check


def floor(key, minimum, strict=True):
    """metrics[key] must be above (or at, when strict=False) minimum."""
    def check(metrics):
        value = float(metrics.get(key, 0.0))
        if (value <= minimum) if strict else (value < minimum):
            bound = "at or below" if strict else "below"
            return [f"{key} {value:.3f} is {bound} the {minimum:g} floor"]
        return []
    return check


def ceiling(key, maximum):
    """metrics[key] must not exceed maximum."""
    def check(metrics):
        value = float(metrics.get(key, 0.0))
        if value > maximum:
            return [f"{key} {value:.3g} exceeds the {maximum:g} cap"]
        return []
    return check


def positive(key):
    """metrics[key] must be a positive count (the bench did real work)."""
    def check(metrics):
        if int(metrics.get(key, 0)) <= 0:
            return [f"{key} is {metrics.get(key, 0)} — the bench did no work"]
        return []
    return check


def csr_duel(metrics):
    """CSR-vs-pointer duel: bit-identical, and fast enough. On a
    single-core runner the pointer path is already CSR-shaped
    (CompactGraphView), so the duel only measures the inlined sampler
    and threshold tables — clamp the floor to 1.0 there rather than
    institutionalising a number the hardware cannot produce."""
    if "csr_speedup" not in metrics:
        return []
    failures = []
    if not metrics.get("csr_bit_identical", False):
        failures.append("CSR backend scores diverged bitwise from the "
                        "pointer-view reference")
    single_core = int(metrics.get("hardware_concurrency", 0)) <= 1
    speedup_floor = 1.0 if single_core else 3.0
    speedup = float(metrics.get("csr_speedup", 0.0))
    if speedup < speedup_floor:
        failures.append(
            f"csr_speedup {speedup:.2f}x is below the {speedup_floor:g}x "
            f"floor" + (" (clamped for a single-core runner)"
                        if single_core else ""))
    return failures


def shard_scaling_floor(metrics):
    """Near-linear 1 -> 4 shard cold-throughput floor. The scatter only
    parallelizes on >= 4 real cores; below that the sweep serializes and
    the report says so (scaling_clamped) instead of failing hardware."""
    if int(metrics.get("hardware_concurrency", 0)) < 4:
        return []
    scaling = float(metrics.get("scaling_1_to_4", 0.0))
    if scaling < 2.0:
        return [f"scaling_1_to_4 {scaling:.2f}x is below the 2.0x floor "
                f"on a >=4-core runner"]
    return []


def open_loop_slo(metrics):
    """Anytime tail-latency SLO: p99 under half the mean blocking service
    time. On a single-core runner the service-time measurement itself is
    time-sliced, so the absolute ceiling is report-only there — the
    relative p99_ratio floor still gates."""
    if int(metrics.get("hardware_concurrency", 0)) <= 1:
        return []
    p99 = float(metrics.get("anytime_p99_s", float("inf")))
    slo = float(metrics.get("slo_p99_s", 0.0))
    if p99 > slo:
        return [f"anytime_p99_s {p99:.4g}s exceeds the slo_p99_s "
                f"{slo:.4g}s ceiling"]
    return []


BENCH_GATES = {
    "serve_topk": [
        flag("deterministic_output",
             "output diverged from the cache-off single-thread reference"),
        floor("cache_hit_rate", 0.5),
        floor("pruned_fraction", 0.3),
        # obs_overhead_ratio itself stays report-only (a timing ratio is
        # flaky on shared 1-core hosts) but it must exist and be sane —
        # a zero would mean the A/B never ran.
        floor("obs_overhead_ratio", 0.0),
    ],
    "ingest_updates": [
        flag("deterministic_output",
             "incremental output diverged from the from-scratch rebuild"),
        floor("preserved_hit_rate", 0.5),
        ceiling("touched_fraction_max", 0.10),
        positive("updates"),
    ],
    "api_server": [
        flag("deterministic_batch",
             "RunBatch output diverged from serial single-request execution"),
        flag("session_rebuild_identical",
             "live-session output diverged from the from-scratch rebuild"),
        flag("anytime_identical",
             "refined anytime ranking diverged from the blocking answer"),
        flag("tracing_identical",
             "ranking with tracing on diverged from tracing off — the "
             "zero-perturbation contract broke"),
        floor("metrics_exposed", 20, strict=False),
        positive("hist_queries"),
        floor("mixed_hit_rate", 0.5),
        positive("batch_requests"),
        positive("deltas"),
    ],
    "open_loop": [
        floor("p99_ratio", 5.0, strict=False),
        open_loop_slo,
        positive("deadline_rejections"),
        positive("arrivals"),
        positive("hist_queries"),
    ],
    "parallel_scaling": [
        flag("deterministic_across_threads",
             "thread-sweep output diverged across thread counts"),
        csr_duel,
    ],
    "fig7_mc_convergence": [
        csr_duel,
    ],
    "shard_scaling": [
        flag("merged_bit_identical",
             "sharded merge diverged from the unsharded reference"),
        flag("query_path_identical",
             "router Query path diverged from the monolith"),
        shard_scaling_floor,
        positive("shard_calls"),
        positive("rpc_hist_count"),
    ],
    "durability": [
        flag("recovery_identical",
             "warm-booted rankings diverged bitwise from the pre-kill "
             "server"),
        flag("hit_rate_preserved",
             "post-recovery cache hit rate drifted more than 0.05 from "
             "the pre-kill pass"),
        # Group-fsync append path: even a slow CI disk batches fsyncs,
        # so the raw WAL append rate has a real floor.
        floor("wal_appends_per_sec", 1000.0),
        positive("replayed_records"),
        positive("checkpoint_bytes"),
        positive("cache_entries_restored"),
    ],
}

# Headline metrics worth a column when both sides have them.
TRACKED_METRICS = ("cache_hit_rate", "pruned_fraction", "trials_per_sec",
                   "preserved_hit_rate", "update_latency_ms_mean",
                   "mixed_hit_rate", "batch_s_mean", "csr_speedup",
                   "scaling_1_to_4", "p99_ratio", "anytime_p99_s",
                   "queue_s_total", "anytime_refine_s",
                   "obs_overhead_ratio", "hist_p50_ms", "hist_p99_ms",
                   "metrics_exposed", "recovery_seconds",
                   "wal_appends_per_sec", "checkpoint_mb_per_sec")


# --- Metrics-shape gate (METRICS_*.prom dumps) --------------------------
#
# bench_api_server dumps its server's full Prometheus exposition next to
# the JSON reports. This gate owns the *shape* of that surface: every
# family name obeys the biorank_<layer>_<name> grammar (layer in
# api/serve/shard/ingest/storage), counters end in _total, histograms end in
# _seconds and carry a complete cumulative _bucket series (with +Inf)
# plus _sum and _count, and the api_server dump is wide enough (>= 20
# families, >= 3 histograms) that a silently shrunken registry fails CI
# instead of rotting.

METRIC_NAME_RE = re.compile(
    r"^biorank_(api|serve|shard|ingest|storage)(_[a-z0-9]+)+$")
SAMPLE_LINE_RE = re.compile(
    r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (-?[0-9].*|[+-]?Inf|NaN)$")


def check_metrics_dump(path: Path):
    """Validates one Prometheus text dump; returns failure strings."""
    failures = []
    types = {}          # family -> counter|gauge|histogram
    sample_names = set()
    bucket_les = {}     # histogram family -> set of le labels seen
    suffixed = set()    # histogram families with _sum / _count seen
    for line_number, line in enumerate(path.read_text().splitlines(), 1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE"):
            parts = line.split()
            if len(parts) != 4:
                failures.append(f"line {line_number}: malformed TYPE line")
                continue
            types[parts[2]] = parts[3]
            continue
        match = SAMPLE_LINE_RE.match(line)
        if not match:
            failures.append(f"line {line_number}: not a metric sample: "
                            f"{line[:60]!r}")
            continue
        name, labels = match.group(1), match.group(2)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                base = name[:-len(suffix)]
                if suffix == "_bucket":
                    le = re.search(r'le="([^"]*)"', labels or "")
                    bucket_les.setdefault(base, set()).add(
                        le.group(1) if le else "")
                else:
                    suffixed.add(base)
                break
        sample_names.add(base)
        if not METRIC_NAME_RE.match(base):
            failures.append(
                f"line {line_number}: {base} violates the "
                f"biorank_<layer>_<name> grammar")
    for family, kind in types.items():
        if family not in sample_names:
            failures.append(f"{family}: TYPE declared but no samples")
        if kind == "counter" and not family.endswith("_total"):
            failures.append(f"{family}: counter must end in _total")
        if kind == "histogram":
            if not family.endswith("_seconds"):
                failures.append(f"{family}: histogram must end in _seconds")
            les = bucket_les.get(family, set())
            if "+Inf" not in les:
                failures.append(f"{family}: no le=\"+Inf\" bucket")
            if family not in suffixed:
                failures.append(f"{family}: missing _sum/_count series")
        if kind == "gauge" and family.endswith("_total"):
            failures.append(f"{family}: gauge must not end in _total")
    return failures, types


def check_metrics_shape(run_dir: Path, current):
    failures = []
    dumps = sorted(run_dir.glob("METRICS_*.prom"))
    if "api_server" in current and not any(
            d.name == "METRICS_api_server.prom" for d in dumps):
        failures.append("api_server: BENCH_api_server.json exists but "
                        "METRICS_api_server.prom was not dumped")
    for dump in dumps:
        dump_failures, types = check_metrics_dump(dump)
        failures.extend(f"{dump.name}: {f}" for f in dump_failures)
        if dump.name == "METRICS_api_server.prom" and not dump_failures:
            histograms = sum(1 for kind in types.values()
                             if kind == "histogram")
            if len(types) < 20:
                failures.append(
                    f"{dump.name}: only {len(types)} metric families "
                    f"(>= 20 required across api/serve/shard/ingest)")
            if histograms < 3:
                failures.append(
                    f"{dump.name}: only {histograms} latency histograms "
                    f"(>= 3 required)")
    return failures


def load_reports(directory: Path):
    reports = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as f:
            data = json.load(f)
        reports[data.get("bench", path.stem)] = data
    return reports


def fmt(value):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run_dir", type=Path,
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--baselines", type=Path,
                        default=Path(__file__).parent / "baselines")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when wall_time_s exceeds baseline by this")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore wall-time ratios when either side is "
                             "below this (noise floor)")
    args = parser.parse_args()

    current = load_reports(args.run_dir)
    baseline = load_reports(args.baselines)
    if not baseline:
        print(f"error: no baselines found under {args.baselines}",
              file=sys.stderr)
        return 2

    failures = []
    warnings = []
    lines = [
        "## Perf trend vs committed baselines",
        "",
        f"(wall-time gate: >{args.max_ratio:g}x regression fails; "
        f"timings under {args.min_seconds:g}s never gate)",
        "",
        "| bench | baseline s | current s | ratio | metric deltas | gate |",
        "|---|---|---|---|---|---|",
    ]

    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if cur is None:
            if name in OPTIONAL_BENCHES:
                lines.append(f"| {name} | {fmt(base['wall_time_s'])} | "
                             f"missing (optional) | - | - | skipped |")
            else:
                failures.append(f"{name}: bench produced no report")
                lines.append(f"| {name} | {fmt(base['wall_time_s'])} | "
                             f"MISSING | - | - | **FAIL** |")
            continue
        if base is None:
            warnings.append(
                f"{name}: no committed baseline under bench/baselines/ — "
                f"commit this run's BENCH_{name}.json with the bench")
            lines.append(f"| {name} | new | {fmt(cur['wall_time_s'])} | - | "
                         f"- | warn (no baseline) |")
            continue

        base_s = float(base.get("wall_time_s", 0.0))
        cur_s = float(cur.get("wall_time_s", 0.0))
        # Gate whenever the *current* run is above the noise floor; a
        # sub-floor baseline must not exempt a bench from the gate (it
        # could regress unboundedly otherwise). The ratio denominator is
        # floored so tiny baselines do not inflate it.
        gated = cur_s >= args.min_seconds
        denominator = max(base_s, args.min_seconds)
        ratio = cur_s / denominator if denominator > 0 else float("inf")
        verdict = "ok"
        if gated and ratio > args.max_ratio:
            verdict = "**FAIL**"
            failures.append(
                f"{name}: wall_time_s {cur_s:.3f}s is {ratio:.2f}x the "
                f"baseline {base_s:.3f}s (max {args.max_ratio:g}x)")
        elif not gated:
            verdict = "ok (noise floor)"

        deltas = []
        base_metrics = base.get("metrics", {})
        cur_metrics = cur.get("metrics", {})
        for key in TRACKED_METRICS:
            if key in base_metrics and key in cur_metrics:
                deltas.append(
                    f"{key}: {fmt(base_metrics[key])} -> "
                    f"{fmt(cur_metrics[key])}")
        lines.append(f"| {name} | {base_s:.3f} | {cur_s:.3f} | {ratio:.2f}x "
                     f"| {'; '.join(deltas) or '-'} | {verdict} |")

    for name, checkers in sorted(BENCH_GATES.items()):
        report = current.get(name)
        if report is None:
            continue
        metrics = report.get("metrics", {})
        for checker in checkers:
            failures.extend(f"{name}: {failure}"
                            for failure in checker(metrics))

    failures.extend(check_metrics_shape(args.run_dir, current))

    lines.append("")
    if warnings:
        lines.append("### Warnings (non-fatal)")
        lines.extend(f"- {w}" for w in warnings)
        lines.append("")
    if failures:
        lines.append("### Failures")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("All benches within the gate.")

    table = "\n".join(lines) + "\n"
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(table)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
