#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace biorank {

namespace {

/// The pool whose shard the current thread is executing, if any. Used to
/// run same-pool nested loops inline instead of deadlocking.
thread_local const ThreadPool* g_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int worker_count) {
  if (worker_count < 0) worker_count = 0;
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InShard() const { return g_current_pool == this; }

void ThreadPool::ParallelFor(int64_t shard_count, const ShardFn& fn,
                             int max_parallelism) {
  if (shard_count <= 0) return;
  if (max_parallelism < 1) max_parallelism = 1;
  // Inline paths: trivial loops, worker-less pools, capped-to-one calls,
  // and nested calls from inside one of this pool's own shards (which
  // would otherwise deadlock waiting on the pool's busy workers). No
  // pool state is touched, so exceptions propagate directly and an
  // external caller's nested loops may still use the pool.
  if (shard_count == 1 || workers_.empty() || max_parallelism == 1 ||
      InShard()) {
    for (int64_t shard = 0; shard < shard_count; ++shard) fn(0, shard);
    return;
  }

  std::lock_guard<std::mutex> call_lock(call_mu_);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    shard_count_ = shard_count;
    next_shard_ = 0;
    worker_limit_ = std::min<int64_t>(
        std::min<int64_t>(worker_count(), max_parallelism - 1),
        shard_count - 1);
    joined_workers_ = 0;
    first_error_ = nullptr;
    generation = ++generation_;
  }
  work_cv_.notify_all();

  // The caller claims shards too; its slot is after every worker's.
  RunShards(worker_count(), generation);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] {
    return next_shard_ >= shard_count_ && active_ == 0;
  });
  job_ = nullptr;
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop(int slot) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      if (joined_workers_ >= worker_limit_) continue;  // Over the cap.
      ++joined_workers_;
      ++active_;
    }
    RunShards(slot, seen_generation);
  }
}

void ThreadPool::RunShards(int slot, uint64_t generation) {
  const bool is_caller = slot == worker_count();
  if (is_caller) {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_;
  }
  const ThreadPool* previous = g_current_pool;
  g_current_pool = this;
  for (;;) {
    const ShardFn* job = nullptr;
    int64_t shard = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The generation check keeps a worker that overslept one job from
      // claiming the *next* job's shards under the old admission
      // accounting (which would let it slip past that job's
      // max_parallelism cap).
      if (generation_ != generation || next_shard_ >= shard_count_) break;
      shard = next_shard_++;
      job = job_;
    }
    try {
      (*job)(slot, shard);
    } catch (...) {
      RecordError(std::current_exception());
    }
  }
  g_current_pool = previous;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = --active_ == 0 && next_shard_ >= shard_count_;
  }
  if (last) done_cv_.notify_all();
}

void ThreadPool::RecordError(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!first_error_) first_error_ = error;
  // Abandon unclaimed shards so the loop fails fast.
  next_shard_ = shard_count_;
}

int ThreadPool::DefaultThreadCount() {
  const char* env = std::getenv("BIORANK_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 1 << 16) {
      return static_cast<int>(value);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount() - 1);
  return pool;
}

}  // namespace biorank
