// Simulated in-house profile database of the Figure 9b divergent-
// schema study.

#ifndef BIORANK_SOURCES_PROFILE_DB_H_
#define BIORANK_SOURCES_PROFILE_DB_H_

#include <string>
#include <vector>

#include "datagen/evidence_model.h"
#include "datagen/protein_universe.h"

namespace biorank {

/// One profile (domain family / HMM / protein family) hit against a query
/// sequence.
struct ProfileHit {
  int profile_id = 0;
  double e_value = 1.0;
};

/// Shared generation parameters for profile databases. Pfam, TIGRFAM,
/// PIRSF, SuperFamily, and CDD all have the same mechanics — a library of
/// sequence profiles, each annotated with GO terms, matched against query
/// sequences with an e-value — and differ only in granularity, coverage,
/// and reliability.
struct ProfileDatabaseConfig {
  uint64_t salt = 0;            ///< Mixed into the universe seed.
  std::string prefix = "PF";    ///< Profile accession prefix ("PF00012").
  int profiles_per_family = 2;  ///< Profile granularity.
  /// How many protein families share one profile library entry (1 =
  /// family-specific like TIGRFAM; 2+ = coarser like SuperFamily).
  int families_per_profile = 1;
  int go_min = 3;               ///< GO terms mapped per profile.
  int go_max = 8;
  /// Record-level confidence of a regular profile -> GO mapping (the
  /// mappings are curated guesses). Dedicated profiles carry 1.0: their
  /// mappings were just established by the discovering experiment.
  double go_mapping_qr = 0.75;
  double member_hit_prob = 0.9; ///< P(family member matches its profile).
  double spurious_hit_prob = 0.15;  ///< P(protein gets one random hit).
  /// Create one dedicated profile per hypothetical protein whose GO set
  /// contains the protein's expert-assigned function; this is how
  /// scenario 3 evidence reaches hypothetical proteins (their genes have
  /// no curated annotations anywhere). Dedicated hits carry very strong
  /// e-values: the expert protocol only trusts unambiguous matches.
  bool dedicated_hypothetical_profiles = false;
  /// Create one freshly-updated profile per protein that carries recently
  /// published functions, mapped to exactly those functions and matched
  /// with a very strong e-value. This is scenario 2's evidence shape
  /// (Figure 9b): one strong record on a short connection, no redundancy
  /// anywhere else — the paper's ABCC8 discoveries surfaced the same way
  /// through TigrFam.
  bool dedicated_recent_profiles = false;
};

/// Deterministic profile library + hit lists derived from a universe.
class ProfileDatabase {
 public:
  ProfileDatabase(const ProteinUniverse& universe,
                  const EvidenceModel& evidence,
                  const ProfileDatabaseConfig& config);

  int num_profiles() const { return static_cast<int>(profile_go_.size()); }

  /// "PF00012"-style accession of a profile.
  std::string ProfileName(int profile_id) const;

  /// Hits of a query sequence; empty for out-of-range ids.
  const std::vector<ProfileHit>& HitsFor(int seq_id) const;

  /// GO terms a profile is annotated with; empty for out-of-range ids.
  const std::vector<int>& GoTermsFor(int profile_id) const;

  /// Record-level confidence qr of this profile's GO mappings.
  double MappingQr(int profile_id) const;

 private:
  std::string prefix_;
  double go_mapping_qr_ = 0.75;
  std::vector<std::vector<int>> profile_go_;
  std::vector<bool> profile_dedicated_;
  std::vector<std::vector<ProfileHit>> hits_;
  std::vector<ProfileHit> empty_hits_;
  std::vector<int> empty_go_;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_PROFILE_DB_H_
