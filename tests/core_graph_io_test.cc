#include "core/graph_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "core/reliability_exact.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

void ExpectGraphsEquivalent(const QueryGraph& a, const QueryGraph& b) {
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  ASSERT_EQ(a.answers.size(), b.answers.size());
  // Semantically equivalent: identical reliability per answer.
  for (size_t i = 0; i < a.answers.size(); ++i) {
    Result<double> ra = ExactReliabilityFactoring(a, a.answers[i]);
    Result<double> rb = ExactReliabilityFactoring(b, b.answers[i]);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_NEAR(ra.value(), rb.value(), 1e-12);
  }
}

TEST(GraphIoTest, RoundTripsCanonicalGraphs) {
  for (QueryGraph g :
       {MakeFig4aSerialParallel(), MakeFig4bWheatstoneBridge()}) {
    std::string text = SerializeQueryGraph(g);
    Result<QueryGraph> parsed = ParseQueryGraph(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ExpectGraphsEquivalent(g, parsed.value());
  }
}

TEST(GraphIoTest, RoundTripsRandomGraphs) {
  Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    testing::RandomDagOptions options;
    options.layers = 2;
    options.nodes_per_layer = 3;
    options.answers = 2;
    QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
    Result<QueryGraph> parsed = ParseQueryGraph(SerializeQueryGraph(g));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ExpectGraphsEquivalent(g, parsed.value());
  }
}

TEST(GraphIoTest, PreservesLabelsWithSpaces) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.5, "potassium ion conductance", "AmiGO");
  b.Edge(b.Source(), t, 0.25);
  QueryGraph g = std::move(b).Build({t});
  Result<QueryGraph> parsed = ParseQueryGraph(SerializeQueryGraph(g));
  ASSERT_TRUE(parsed.ok());
  const GraphNode& node = parsed.value().graph.node(parsed.value().answers[0]);
  EXPECT_EQ(node.label, "potassium ion conductance");
  EXPECT_EQ(node.entity_set, "AmiGO");
  EXPECT_DOUBLE_EQ(node.p, 0.5);
}

TEST(GraphIoTest, CompactsTombstonedElements) {
  QueryGraphBuilder b;
  NodeId dead = b.Node(0.9, "dead");
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), dead, 0.5);
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  g.graph.RemoveNode(dead);
  Result<QueryGraph> parsed = ParseQueryGraph(SerializeQueryGraph(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().graph.num_nodes(), 2);
  EXPECT_EQ(parsed.value().graph.num_edges(), 1);
}

TEST(GraphIoTest, ExactProbabilityRoundTrip) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0 / 3.0, "t");
  b.Edge(b.Source(), t, 0.1234567890123456789);
  QueryGraph g = std::move(b).Build({t});
  Result<QueryGraph> parsed = ParseQueryGraph(SerializeQueryGraph(g));
  ASSERT_TRUE(parsed.ok());
  NodeId pt = parsed.value().answers[0];
  EXPECT_DOUBLE_EQ(parsed.value().graph.node(pt).p, 1.0 / 3.0);
  std::vector<EdgeId> in = parsed.value().graph.InEdges(pt);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.value().graph.edge(in[0]).q,
                   g.graph.edge(0).q);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseQueryGraph("").ok());
  EXPECT_FALSE(ParseQueryGraph("not-a-graph\n").ok());
  EXPECT_FALSE(
      ParseQueryGraph("biorank-graph 1\nnode 5 0.5 -\nsource 0\n").ok());
  EXPECT_FALSE(
      ParseQueryGraph("biorank-graph 1\nnode 0 0.5 -\nedge 0 9 0.5\n"
                      "source 0\n")
          .ok());
  EXPECT_FALSE(
      ParseQueryGraph("biorank-graph 1\nnode 0 0.5 -\nfrobnicate 1\n").ok());
  // Missing source.
  EXPECT_FALSE(ParseQueryGraph("biorank-graph 1\nnode 0 0.5 -\n").ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  QueryGraph g = MakeFig4aSerialParallel();
  std::string path = ::testing::TempDir() + "/biorank_graph_io_test.bg";
  ASSERT_TRUE(WriteQueryGraphFile(g, path).ok());
  Result<QueryGraph> parsed = ReadQueryGraphFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectGraphsEquivalent(g, parsed.value());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  Result<QueryGraph> parsed =
      ReadQueryGraphFile("/nonexistent_zzz/graph.bg");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace biorank
