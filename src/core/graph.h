// The probabilistic entity graph (Definition 2.1): nodes are data
// records present with probability p, directed edges are relationships
// that hold with probability q. Every layer above builds on this type.

#ifndef BIORANK_CORE_GRAPH_H_
#define BIORANK_CORE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace biorank {

/// Index of a node inside a ProbabilisticEntityGraph. Stable for the
/// lifetime of the graph (removal tombstones instead of renumbering).
using NodeId = int32_t;

/// Index of an edge inside a ProbabilisticEntityGraph. Stable likewise.
using EdgeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// A node of the probabilistic entity graph (Definition 2.1): one data
/// record from one entity set, present with probability `p`.
struct GraphNode {
  double p = 1.0;         ///< Presence probability, p(i) = ps(i) * pr(i).
  std::string label;      ///< Display label, e.g. "AmiGO:GO:0008281".
  std::string entity_set; ///< Mediated-schema entity set, e.g. "AmiGO".
  bool alive = true;      ///< False once removed (tombstone).
};

/// A directed edge of the probabilistic entity graph: one relationship
/// record, present with probability `q`.
struct GraphEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double q = 1.0;      ///< Presence probability, q(i,j) = qs(i,j) * qr(i,j).
  bool alive = true;   ///< False once removed (tombstone).
};

/// Labeled directed graph with probability labels on nodes and edges —
/// the paper's probabilistic entity graph G = (N, E, p, q) (Definition 2.1).
///
/// Mutations used by the reduction rules of Section 3.1 (removing nodes and
/// edges, adding bypass edges) are supported via tombstones; InducedSubgraph
/// (core/graph_algo.h) or the serializer (core/graph_io.h) rebuild dense
/// ids when needed. Parallel edges are allowed (serial collapses create
/// them; the parallel-merge rule removes them again).
class ProbabilisticEntityGraph {
 public:
  ProbabilisticEntityGraph() = default;

  /// Adds a node with presence probability `p` (clamped to [0,1]) and
  /// optional labels. Returns its id.
  NodeId AddNode(double p, std::string label = "", std::string entity_set = "");

  /// Adds a directed edge with presence probability `q` (clamped to [0,1]).
  /// Returns an error if either endpoint is invalid or dead.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, double q);

  /// Marks a node and all its incident edges dead. No-op if already dead.
  Status RemoveNode(NodeId id);

  /// Marks an edge dead. No-op if already dead.
  Status RemoveEdge(EdgeId id);

  /// Total ids ever allocated (including dead); valid ids are [0, size).
  NodeId node_capacity() const { return static_cast<NodeId>(nodes_.size()); }
  EdgeId edge_capacity() const { return static_cast<EdgeId>(edges_.size()); }

  /// Counts of alive nodes / edges.
  int num_nodes() const { return num_alive_nodes_; }
  int num_edges() const { return num_alive_edges_; }

  bool IsValidNode(NodeId id) const {
    return id >= 0 && id < node_capacity() && nodes_[id].alive;
  }
  bool IsValidEdge(EdgeId id) const {
    return id >= 0 && id < edge_capacity() && edges_[id].alive;
  }

  const GraphNode& node(NodeId id) const { return nodes_[id]; }
  const GraphEdge& edge(EdgeId id) const { return edges_[id]; }

  /// Sets a node's presence probability (clamped to [0,1]).
  Status SetNodeProb(NodeId id, double p);

  /// Sets an edge's presence probability (clamped to [0,1]).
  Status SetEdgeProb(EdgeId id, double q);

  /// Ids of alive outgoing / incoming edges of `id` (dead edges filtered).
  std::vector<EdgeId> OutEdges(NodeId id) const;
  std::vector<EdgeId> InEdges(NodeId id) const;

  /// Alive out-degree / in-degree (counting parallel edges).
  int OutDegree(NodeId id) const;
  int InDegree(NodeId id) const;

  /// All alive node ids, ascending.
  std::vector<NodeId> AliveNodes() const;

  /// All alive edge ids, ascending.
  std::vector<EdgeId> AliveEdges() const;

  /// Visits each alive out-edge id of `id`.
  template <typename Fn>
  void ForEachOutEdge(NodeId id, Fn&& fn) const {
    for (EdgeId e : out_[id]) {
      if (edges_[e].alive) fn(e);
    }
  }

  /// Visits each alive in-edge id of `id`.
  template <typename Fn>
  void ForEachInEdge(NodeId id, Fn&& fn) const {
    for (EdgeId e : in_[id]) {
      if (edges_[e].alive) fn(e);
    }
  }

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  int num_alive_nodes_ = 0;
  int num_alive_edges_ = 0;
};

/// Read-only CSR (compressed sparse row) snapshot of the alive part of a
/// graph. The Monte Carlo simulator and the iterative scoring algorithms
/// touch every edge up to 1e4 times per query, so they run on this dense
/// cache-friendly view instead of the mutable adjacency lists.
///
/// Dead nodes keep their ids (p forced to 0, no edges) so score vectors
/// returned by algorithms index directly by the original NodeId.
struct CompactGraphView {
  /// Node presence probabilities, indexed by NodeId; 0 for dead nodes.
  std::vector<double> node_p;
  /// CSR offsets into `edge_to` / `edge_q`, size node_capacity + 1.
  std::vector<int32_t> out_offset;
  std::vector<NodeId> edge_to;     ///< Flattened out-edge targets.
  std::vector<double> edge_q;      ///< Edge probabilities, parallel to edge_to.
  /// CSR for incoming edges (used by propagation / diffusion / InEdge).
  std::vector<int32_t> in_offset;
  std::vector<NodeId> edge_from;
  std::vector<double> in_edge_q;

  int node_count() const { return static_cast<int>(node_p.size()); }

  /// Builds the view from the alive part of `graph`.
  static CompactGraphView FromGraph(const ProbabilisticEntityGraph& graph);
};

}  // namespace biorank

#endif  // BIORANK_CORE_GRAPH_H_
