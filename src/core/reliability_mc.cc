#include "core/reliability_mc.h"

#include <thread>

#include "util/rng.h"

namespace biorank {

namespace {

/// Runs `trials` traversal trials (Algorithm 3.1), accumulating per-node
/// reach counts into `reach_count`.
void RunTraversalTrials(const CompactGraphView& view, NodeId source,
                        int64_t trials, Rng rng,
                        std::vector<int64_t>& reach_count) {
  const int n = view.node_count();
  // `last_sim[x] == trial` marks x as already simulated in this trial;
  // `present[x]` caches its coin. Unreached elements never flip a coin.
  std::vector<int64_t> last_sim(n, -1);
  std::vector<NodeId> stack;
  stack.reserve(64);

  for (int64_t trial = 0; trial < trials; ++trial) {
    stack.clear();
    last_sim[source] = trial;
    if (rng.NextBernoulli(view.node_p[source])) {
      ++reach_count[source];
      stack.push_back(source);
    }
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      for (int32_t i = view.out_offset[x]; i < view.out_offset[x + 1]; ++i) {
        // One coin per edge per trial: x expands at most once per trial.
        if (!rng.NextBernoulli(view.edge_q[i])) continue;
        NodeId y = view.edge_to[i];
        if (last_sim[y] == trial) continue;
        last_sim[y] = trial;
        if (rng.NextBernoulli(view.node_p[y])) {
          ++reach_count[y];
          stack.push_back(y);
        }
      }
    }
  }
}

/// Runs `trials` naive trials: every element flips a coin, then a DFS over
/// the sampled subgraph counts reached-and-present nodes.
void RunNaiveTrials(const CompactGraphView& view, NodeId source,
                    int64_t trials, Rng rng,
                    std::vector<int64_t>& reach_count) {
  const int n = view.node_count();
  const int m = static_cast<int>(view.edge_q.size());
  std::vector<uint8_t> node_present(n, 0);
  std::vector<uint8_t> edge_present(m, 0);
  std::vector<uint8_t> visited(n, 0);
  std::vector<NodeId> stack;

  for (int64_t trial = 0; trial < trials; ++trial) {
    for (int i = 0; i < n; ++i) {
      node_present[i] = rng.NextBernoulli(view.node_p[i]) ? 1 : 0;
    }
    for (int i = 0; i < m; ++i) {
      edge_present[i] = rng.NextBernoulli(view.edge_q[i]) ? 1 : 0;
    }
    std::fill(visited.begin(), visited.end(), 0);
    if (!node_present[source]) continue;
    stack.clear();
    stack.push_back(source);
    visited[source] = 1;
    ++reach_count[source];
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      for (int32_t i = view.out_offset[x]; i < view.out_offset[x + 1]; ++i) {
        if (!edge_present[i]) continue;
        NodeId y = view.edge_to[i];
        if (visited[y] || !node_present[y]) continue;
        visited[y] = 1;
        ++reach_count[y];
        stack.push_back(y);
      }
    }
  }
}

}  // namespace

Result<McEstimate> EstimateReliabilityMc(const QueryGraph& query_graph,
                                         const McOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (options.trials <= 0) {
    return Status::InvalidArgument("MC trials must be positive");
  }
  if (options.num_threads < 1) {
    return Status::InvalidArgument("MC num_threads must be >= 1");
  }

  CompactGraphView view = CompactGraphView::FromGraph(query_graph.graph);
  const int n = view.node_count();

  int num_threads = options.num_threads;
  if (static_cast<int64_t>(num_threads) > options.trials) {
    num_threads = static_cast<int>(options.trials);
  }

  // Derive one child generator per chunk from the root seed.
  Rng root(options.seed);
  std::vector<Rng> rngs;
  rngs.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) rngs.push_back(root.Split());

  std::vector<std::vector<int64_t>> counts(
      num_threads, std::vector<int64_t>(n, 0));
  int64_t per_chunk = options.trials / num_threads;
  int64_t remainder = options.trials % num_threads;

  auto run_chunk = [&](int worker) {
    int64_t chunk_trials = per_chunk + (worker < remainder ? 1 : 0);
    if (chunk_trials == 0) return;
    if (options.mode == McOptions::Mode::kTraversal) {
      RunTraversalTrials(view, query_graph.source, chunk_trials, rngs[worker],
                         counts[worker]);
    } else {
      RunNaiveTrials(view, query_graph.source, chunk_trials, rngs[worker],
                     counts[worker]);
    }
  };

  if (num_threads == 1) {
    run_chunk(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) workers.emplace_back(run_chunk, i);
    for (auto& w : workers) w.join();
  }

  McEstimate estimate;
  estimate.trials = options.trials;
  estimate.scores.assign(n, 0.0);
  for (int worker = 0; worker < num_threads; ++worker) {
    for (int i = 0; i < n; ++i) {
      estimate.scores[i] += static_cast<double>(counts[worker][i]);
    }
  }
  for (int i = 0; i < n; ++i) {
    estimate.scores[i] /= static_cast<double>(options.trials);
  }
  return estimate;
}

}  // namespace biorank
