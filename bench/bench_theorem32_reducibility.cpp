// Reproduces the Theorem 3.2 / Figures 2-3 analysis: which E/R schemas
// the decision procedure proves reducible, and the paper's Section 4
// observation that the full Figure 1 query graph is irreducible (its last
// relationship is [m:n]) while every per-target subgraph reduces to a
// closed form.

#include <iostream>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/closed_form.h"
#include "core/reduction.h"
#include "integrate/scenario_harness.h"
#include "schema/reducibility.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

ErSchema Chain(const std::vector<Cardinality>& types) {
  ErSchema schema;
  for (size_t i = 0; i <= types.size(); ++i) {
    schema.AddEntitySet({"E" + std::to_string(i), {}, 1.0});
  }
  for (size_t i = 0; i < types.size(); ++i) {
    schema.AddRelationship({"R" + std::to_string(i), "E" + std::to_string(i),
                            "E" + std::to_string(i + 1), types[i], 1.0});
  }
  return schema;
}

}  // namespace

int main() {
  std::cout << "=== Theorem 3.2: schema reducibility ===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport json("theorem32_reducibility");
  TextTable table({"Schema", "Verdict", "Paper"});
  CsvWriter csv({"schema", "reducible"});
  auto report = [&](const std::string& name, const ErSchema& schema,
                    const CompositionOracle& oracle,
                    const std::string& paper) {
    ReducibilityResult result = CheckSchemaReducibility(schema, oracle);
    table.AddRow({name, result.reducible ? "reducible" : "not provable",
                  paper});
    csv.AddRow({name, result.reducible ? "1" : "0"});
    json.AddRow({{"schema", name},
                 {"reducible", result.reducible},
                 {"paper", paper}});
  };

  report("[1:n] tree (Thm 3.2 A)",
         Chain({Cardinality::kOneToMany, Cardinality::kOneToMany}), {},
         "reducible");
  report("Fig 2a: [1:n][m:n][n:1]",
         Chain({Cardinality::kOneToMany, Cardinality::kManyToMany,
                Cardinality::kManyToOne}),
         {}, "irreducible");
  report("Fig 2b: [1:n][1:n][n:1][n:1]",
         Chain({Cardinality::kOneToMany, Cardinality::kOneToMany,
                Cardinality::kManyToOne, Cardinality::kManyToOne}),
         {}, "irreducible");
  {
    CompositionOracle oracle;
    oracle.Declare("R0", "R1", Cardinality::kOneToOne);
    oracle.Declare("R2", "R3", Cardinality::kOneToMany);
    report("Fig 3a: alternating + knowledge",
           Chain({Cardinality::kOneToMany, Cardinality::kManyToOne,
                  Cardinality::kOneToMany, Cardinality::kManyToOne}),
           oracle, "reducible");
  }
  {
    CompositionOracle oracle;
    oracle.Declare("R0", "R1", Cardinality::kManyToMany);
    report("Fig 3b: first composition [m:n]",
           Chain({Cardinality::kOneToMany, Cardinality::kManyToOne,
                  Cardinality::kOneToMany, Cardinality::kManyToOne}),
           oracle, "irreducible");
  }
  report("Fig 2d: [1:n][m:n][n:1] benign",
         Chain({Cardinality::kOneToMany, Cardinality::kManyToMany,
                Cardinality::kManyToOne}),
         {}, "data-reducible (beyond thm)");
  table.Print(std::cout);

  // The Section 4 observation on real query graphs.
  std::cout << "\nFigure 1 query graphs (scenario 1):\n";
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }
  int whole_graph_residuals = 0;
  int closed_form_targets = 0, total_targets = 0;
  for (const ScenarioQuery& query : queries.value()) {
    QueryGraph whole = query.graph;
    ReduceQueryGraph(whole);
    // Fully reduced would be 1 + |answers| nodes and |answers| edges.
    int residual_nodes =
        whole.graph.num_nodes() - 1 - static_cast<int>(whole.answers.size());
    if (residual_nodes > 0) ++whole_graph_residuals;
    for (NodeId t : query.graph.answers) {
      ++total_targets;
      if (ClosedFormReliability(query.graph, t).ok()) ++closed_form_targets;
    }
  }
  std::cout << "  whole-graph reduction left residual interior nodes on "
            << whole_graph_residuals << " / " << queries.value().size()
            << " graphs (final [m:n] relationship)\n"
            << "  per-target closed solution succeeded on "
            << closed_form_targets << " / " << total_targets
            << " targets\n"
            << "\nPaper: 'the total graph is not reducible due to the last "
               "[n:m] relation; the\nindividual queries, however, can be "
               "solved in a closed solution.'\n";
  bench::MaybeWriteCsv(csv, "theorem32_reducibility");
  json.SetWallTime(total_timer.Seconds());
  json.SetMetric("whole_graph_residuals", whole_graph_residuals);
  json.SetMetric("closed_form_targets", closed_form_targets);
  json.SetMetric("total_targets", total_targets);
  return json.Write().ok() ? 0 : 1;
}
