// Reproduces Figure 8b: wall-clock time of the five ranking methods over
// the 20 scenario-1 query graphs. Reliability uses the paper's benchmark
// configuration (reduction + 1,000-trial Monte Carlo, its overall
// fastest).
//
// Paper (ms per graph): Rel 17.9, Prop 5.2, Diff 5.8, InEdge 0.5,
// PathC 1.0 — probabilistic scoring costs 1-2 orders of magnitude more
// than the deterministic counts but stays well under 100 ms.

#include <benchmark/benchmark.h>

#include "api/server.h"
#include "bench_gbench_json.h"

#include "core/ranking.h"
#include "integrate/scenario_harness.h"

using namespace biorank;

namespace {

const std::vector<ScenarioQuery>& Scenario1Queries() {
  static const std::vector<ScenarioQuery>* queries = [] {
    static api::Server server;
    auto result = server.harness().BuildQueries(ScenarioId::kScenario1WellKnown);
    return new std::vector<ScenarioQuery>(std::move(result.value()));
  }();
  return *queries;
}

const Ranker& BenchRanker() {
  static const Ranker* ranker = [] {
    RankerOptions options;
    // The paper's benchmark reliability engine: reduction + MC 1000.
    options.reliability_engine = ReliabilityEngine::kMonteCarlo;
    options.reduce_before_mc = true;
    options.mc.trials = 1000;
    return new Ranker(options);
  }();
  return *ranker;
}

void RankAllGraphs(benchmark::State& state, RankingMethod method) {
  for (auto _ : state) {
    for (const ScenarioQuery& q : Scenario1Queries()) {
      benchmark::DoNotOptimize(BenchRanker().Rank(q.graph, method));
    }
  }
  state.counters["graphs"] =
      static_cast<double>(Scenario1Queries().size());
}

void BM_Reliability(benchmark::State& state) {
  RankAllGraphs(state, RankingMethod::kReliability);
}
BENCHMARK(BM_Reliability)->Unit(benchmark::kMillisecond);

void BM_Propagation(benchmark::State& state) {
  RankAllGraphs(state, RankingMethod::kPropagation);
}
BENCHMARK(BM_Propagation)->Unit(benchmark::kMillisecond);

void BM_Diffusion(benchmark::State& state) {
  RankAllGraphs(state, RankingMethod::kDiffusion);
}
BENCHMARK(BM_Diffusion)->Unit(benchmark::kMillisecond);

void BM_InEdge(benchmark::State& state) {
  RankAllGraphs(state, RankingMethod::kInEdge);
}
BENCHMARK(BM_InEdge)->Unit(benchmark::kMillisecond);

void BM_PathCount(benchmark::State& state) {
  RankAllGraphs(state, RankingMethod::kPathCount);
}
BENCHMARK(BM_PathCount)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return biorank::bench::RunBenchmarksWithJson("fig8b_method_times", argc, argv);
}
