// The one public entry point of the biorank serving system (the paper's
// Section 2 / Figure 1 mediator as a *service*): api::Server owns the
// whole integration stack — protein universe, source registry, mediator,
// the shared RankingService (canonical reliability cache + thread pool)
// — plus a concurrent session registry for live queries. Callers speak
// typed value objects (api/query.h) and never assemble the stack by
// hand:
//
//   Query     — one-shot: materialize the graph, rank top-k through the
//               shared cache, return values + bounds + timing + counters.
//   RunBatch  — N independent requests fanned across the shared pool;
//               output bit-identical to running them serially (every
//               ranking is a pure function of the request, never of
//               interleaving, thread count, or cache state).
//   OpenSession / ApplyDelta / QuerySession / CloseSession — a live
//               query held resident behind a handle: evidence deltas
//               apply incrementally (ingest/), rankings stay
//               bit-identical to a from-scratch rebuild, and any number
//               of sessions share the one canonical reliability cache.
//   RankGraph — the serving facade for a caller-provided graph (benches,
//               rebuild references).
//
// Thread safety: every public method may be called concurrently. The
// registry is a mutex-guarded handle map holding shared_ptr sessions, so
// a CloseSession racing an in-flight QuerySession is safe (the applier
// dies with its last reference); per-session reader/writer coordination
// is the UpdateApplier's shared_mutex; the cache is sharded. Idle
// sessions are evicted by server-operation age (a deterministic op
// clock, not wall time), so eviction is testable and replayable.

#ifndef BIORANK_API_SERVER_H_
#define BIORANK_API_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/query.h"
#include "core/ranking.h"
#include "datagen/protein_universe.h"
#include "ingest/delta.h"
#include "integrate/mediator.h"
#include "integrate/scenario_harness.h"
#include "serve/ranking_service.h"
#include "sources/source_registry.h"

namespace biorank::api {

/// Everything a server instance is built from. One options bundle, one
/// world: the universe seed determines the sources, the mediator metrics
/// determine every node/edge probability, and the ranking options
/// determine the shared service (canonical seed, cache capacity, pool).
struct ServerOptions {
  UniverseOptions universe;
  SourceRegistryOptions sources;
  MediatorOptions mediator;
  serve::RankingServiceOptions ranking;
  /// Offline scoring (the five relevance functions) used by the
  /// evaluation harness this server exposes via harness().
  RankerOptions ranker;
  /// Idle-session auto-eviction: on OpenSession, sessions untouched for
  /// more than this many server operations are closed first. 0 disables
  /// auto-eviction (EvictIdleSessions remains available).
  uint64_t session_idle_ops = 0;
};

/// Monotonic service counters plus a point-in-time cache snapshot.
struct ServerStats {
  uint64_t queries = 0;          ///< Query requests served OK (batched included).
  uint64_t batches = 0;          ///< RunBatch calls.
  uint64_t batch_requests = 0;   ///< Requests served inside batches.
  uint64_t graph_rankings = 0;   ///< RankGraph calls served OK.
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;  ///< Explicit CloseSession calls.
  uint64_t sessions_evicted = 0; ///< Idle-eviction closures.
  uint64_t session_queries = 0;  ///< QuerySession requests served OK.
  uint64_t deltas_applied = 0;
  uint64_t open_sessions = 0;    ///< Currently live sessions.
  serve::CacheStats cache;       ///< Shared reliability cache snapshot.
};

/// The front door. Construction generates the synthetic world and wires
/// the full stack; one instance is one deployment, shared by any number
/// of client threads.
class Server {
 public:
  explicit Server(ServerOptions options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one typed request end to end: mediator crawl, then (unless
  /// request.rank is false or the answer set is empty) a top-k ranking
  /// pass through the shared service — or through a request-private
  /// service when the request pins a foreign MC seed.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Fans `batch` (independent requests) across the shared pool and
  /// returns one response per request, in request order. Output is
  /// bit-identical to calling Query serially at any thread count; on any
  /// request failure the first (lowest-index) error is returned.
  Result<std::vector<QueryResponse>> RunBatch(
      const std::vector<QueryRequest>& batch);

  /// Ranks a caller-provided query graph through the shared service —
  /// the facade for pre-materialized or synthetic graphs. The response's
  /// `result` is empty (the caller holds the graph).
  Result<QueryResponse> RankGraph(const QueryGraph& graph, int top_k);

  /// Ranks only `answers` — a distinct subset of `graph.answers` — and
  /// returns its top `top_k`. This is the shard-serving entry point: a
  /// shard::ShardRouter partitions a query's answer set across N servers
  /// and each shard ranks exactly the slice it owns, with values
  /// bit-identical to the same answers inside an unsharded request
  /// (every resolved value is a pure function of the candidate's
  /// canonical key and the server's MC seed).
  Result<QueryResponse> RankGraph(const QueryGraph& graph,
                                  const std::vector<NodeId>& answers,
                                  int top_k);

  /// Stands `request.query` up as a live session: the materialized graph
  /// stays resident, evidence deltas apply incrementally, and queries
  /// ride the per-answer canonicals. `request.top_k` is ignored (k is
  /// per QuerySession call) and a foreign `request.seed` — nonzero and
  /// different from the server's canonical seed — is rejected: sessions
  /// share the canonical cache, which is only valid under that seed.
  Result<SessionInfo> OpenSession(const QueryRequest& request);

  /// Ranks a live session's answer set (top_k <= 0 ranks all). The
  /// response carries labeled answers and matched_proteins but no graph
  /// copy (see SessionSnapshot) and no go_node map (OpenSession's
  /// SessionInfo delivered it once; it is fixed for the session).
  Result<QueryResponse> QuerySession(SessionId id, int top_k = 0);

  /// Validates (graph + schema metrics) and applies one evidence delta
  /// to a live session; exactly the orphaned cache keys are invalidated
  /// and exactly the dirtied answers re-canonicalized.
  Result<ingest::ApplyReport> ApplyDelta(SessionId id,
                                         const ingest::EvidenceDelta& delta);

  /// Copy of a session's live graph (the from-scratch rebuild reference
  /// in tests/benches, and the base for building structural deltas).
  Result<QueryGraph> SessionSnapshot(SessionId id);

  /// Closes a session; its handle is never reused. In-flight requests
  /// holding the session finish safely. NotFound for stale handles.
  Status CloseSession(SessionId id);

  /// Closes every session idle for more than `min_idle_ops` server
  /// operations; returns how many were evicted.
  size_t EvictIdleSessions(uint64_t min_idle_ops);

  size_t session_count() const;

  ServerStats Stats() const;

  const ProteinUniverse& universe() const { return universe_; }
  const SourceRegistry& sources() const { return registry_; }
  const Mediator& mediator() const { return mediator_; }
  /// The evaluation harness over this server's world (scenario queries,
  /// AP scoring, perturbation/MC repetition loops). Borrowed; lives as
  /// long as the server.
  const ScenarioHarness& harness() const { return harness_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Session {
    Mediator::LiveExploratoryQuery live;
    /// Op-clock value of the last operation that touched this session.
    std::atomic<uint64_t> last_touch{0};
  };

  /// Bumps the op clock (every public operation is one tick).
  uint64_t Tick() { return op_clock_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Handle lookup; touches the session's idle clock on success.
  Result<std::shared_ptr<Session>> FindSession(SessionId id, uint64_t now);

  /// Ranks `graph`'s answers on `service` and appends labeled answers +
  /// stats to `response`. k <= 0 ranks the full answer set.
  Status RankAnswers(const QueryGraph& graph, int top_k,
                     serve::RankingService& service, QueryResponse& response);

  /// Same, restricted to the `answers` subset (the shard slice).
  Status RankAnswerSubset(const QueryGraph& graph,
                          const std::vector<NodeId>& answers, int top_k,
                          serve::RankingService& service,
                          QueryResponse& response);

  /// Evicts sessions idle for more than `min_idle_ops` at clock `now`.
  size_t EvictIdleLocked(uint64_t min_idle_ops, uint64_t now);

  ServerOptions options_;
  ProteinUniverse universe_;
  SourceRegistry registry_;
  Mediator mediator_;
  serve::RankingService service_;
  ScenarioHarness harness_;

  std::atomic<uint64_t> op_clock_{0};
  std::atomic<uint64_t> next_session_id_{1};
  mutable std::mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> graph_rankings_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> sessions_evicted_{0};
  std::atomic<uint64_t> session_queries_{0};
  std::atomic<uint64_t> deltas_applied_{0};
};

}  // namespace biorank::api

#endif  // BIORANK_API_SERVER_H_
