#include "core/reliability_exact.h"

#include <algorithm>

#include "core/graph_algo.h"
#include "core/reduction.h"
#include "core/reify.h"

namespace biorank {

namespace {

bool IsUncertain(double p) { return p > 0.0 && p < 1.0; }

/// Reachability from `start` over alive edges that pass `edge_ok` through
/// nodes that pass `node_ok`. `start` itself must pass `node_ok`.
template <typename NodeOk, typename EdgeOk>
bool Reaches(const ProbabilisticEntityGraph& graph, NodeId start,
             NodeId target, NodeOk&& node_ok, EdgeOk&& edge_ok) {
  if (!graph.IsValidNode(start) || !graph.IsValidNode(target)) return false;
  if (!node_ok(start)) return false;
  if (start == target) return true;
  std::vector<bool> visited(graph.node_capacity(), false);
  std::vector<NodeId> stack = {start};
  visited[start] = true;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    bool found = false;
    graph.ForEachOutEdge(x, [&](EdgeId e) {
      if (found || !edge_ok(e)) return;
      NodeId y = graph.edge(e).to;
      if (visited[y] || !node_ok(y)) return;
      if (y == target) {
        found = true;
        return;
      }
      visited[y] = true;
      stack.push_back(y);
    });
    if (found) return true;
  }
  return false;
}

struct FactoringContext {
  int64_t calls = 0;
  int64_t max_calls = 0;
  bool use_reductions = false;
  bool budget_exceeded = false;
};

/// Recursive edge-conditioning on a reified (edge-failures-only) graph.
double FactorRec(QueryGraph query_graph, FactoringContext& ctx) {
  if (ctx.budget_exceeded) return 0.0;
  if (++ctx.calls > ctx.max_calls) {
    ctx.budget_exceeded = true;
    return 0.0;
  }
  ProbabilisticEntityGraph& graph = query_graph.graph;
  NodeId s = query_graph.source;
  NodeId t = query_graph.answers[0];

  if (ctx.use_reductions) {
    ReduceQueryGraph(query_graph);
  }

  // Pruning 1: unreachable even if every uncertain edge were present.
  auto any_alive = [&](EdgeId e) { return graph.edge(e).q > 0.0; };
  auto all_nodes = [&](NodeId) { return true; };
  if (!Reaches(graph, s, t, all_nodes, any_alive)) return 0.0;

  // Pruning 2: reachable through certain edges alone.
  auto certain = [&](EdgeId e) { return graph.edge(e).q >= 1.0; };
  if (Reaches(graph, s, t, all_nodes, certain)) return 1.0;

  // Pick an uncertain edge to condition on: the first uncertain edge found
  // by a DFS from the source (it is guaranteed to lie in the reachable
  // region, keeping branches meaningful).
  EdgeId pivot = -1;
  {
    std::vector<bool> visited(graph.node_capacity(), false);
    std::vector<NodeId> stack = {s};
    visited[s] = true;
    while (!stack.empty() && pivot < 0) {
      NodeId x = stack.back();
      stack.pop_back();
      graph.ForEachOutEdge(x, [&](EdgeId e) {
        if (pivot >= 0) return;
        const GraphEdge& edge = graph.edge(e);
        if (IsUncertain(edge.q)) {
          pivot = e;
          return;
        }
        if (edge.q > 0.0 && !visited[edge.to]) {
          visited[edge.to] = true;
          stack.push_back(edge.to);
        }
      });
    }
  }
  if (pivot < 0) {
    // No uncertain edge on the frontier, yet pruning 2 failed: the target
    // sits behind uncertain edges unreachable via certain ones. Scan all.
    for (EdgeId e = 0; e < graph.edge_capacity() && pivot < 0; ++e) {
      if (graph.IsValidEdge(e) && IsUncertain(graph.edge(e).q)) pivot = e;
    }
    if (pivot < 0) return 0.0;  // Fully deterministic and not reachable.
  }

  double q = graph.edge(pivot).q;

  QueryGraph with_edge = query_graph;
  with_edge.graph.SetEdgeProb(pivot, 1.0);
  double r_present = FactorRec(std::move(with_edge), ctx);

  QueryGraph without_edge = std::move(query_graph);
  without_edge.graph.RemoveEdge(pivot);
  double r_absent = FactorRec(std::move(without_edge), ctx);

  return q * r_present + (1.0 - q) * r_absent;
}

}  // namespace

Result<double> ExactReliabilityBruteForce(const QueryGraph& query_graph,
                                          NodeId target,
                                          int max_uncertain_elements) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  if (!graph.IsValidNode(target)) {
    return Status::InvalidArgument("brute force: invalid target");
  }

  std::vector<NodeId> uncertain_nodes;
  std::vector<EdgeId> uncertain_edges;
  for (NodeId i : graph.AliveNodes()) {
    if (IsUncertain(graph.node(i).p)) uncertain_nodes.push_back(i);
  }
  for (EdgeId e : graph.AliveEdges()) {
    if (IsUncertain(graph.edge(e).q)) uncertain_edges.push_back(e);
  }
  int total = static_cast<int>(uncertain_nodes.size() + uncertain_edges.size());
  if (total > max_uncertain_elements) {
    return Status::FailedPrecondition(
        "brute force: " + std::to_string(total) +
        " uncertain elements exceed limit " +
        std::to_string(max_uncertain_elements));
  }

  std::vector<bool> node_present(graph.node_capacity(), false);
  std::vector<bool> edge_present(graph.edge_capacity(), false);
  // Deterministic elements keep fixed states.
  for (NodeId i : graph.AliveNodes()) node_present[i] = graph.node(i).p >= 1.0;
  for (EdgeId e : graph.AliveEdges()) edge_present[e] = graph.edge(e).q >= 1.0;

  double reliability = 0.0;
  uint64_t worlds = 1ULL << total;
  for (uint64_t world = 0; world < worlds; ++world) {
    double prob = 1.0;
    for (size_t i = 0; i < uncertain_nodes.size(); ++i) {
      bool present = (world >> i) & 1;
      node_present[uncertain_nodes[i]] = present;
      double p = graph.node(uncertain_nodes[i]).p;
      prob *= present ? p : (1.0 - p);
    }
    for (size_t i = 0; i < uncertain_edges.size(); ++i) {
      bool present = (world >> (uncertain_nodes.size() + i)) & 1;
      edge_present[uncertain_edges[i]] = present;
      double q = graph.edge(uncertain_edges[i]).q;
      prob *= present ? q : (1.0 - q);
    }
    bool connected = Reaches(
        graph, query_graph.source, target,
        [&](NodeId n) { return node_present[n]; },
        [&](EdgeId e) { return edge_present[e]; });
    if (connected) reliability += prob;
  }
  return reliability;
}

Result<double> ExactReliabilityFactoring(const QueryGraph& query_graph,
                                         NodeId target,
                                         const FactoringOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (!query_graph.graph.IsValidNode(target)) {
    return Status::InvalidArgument("factoring: invalid target");
  }

  // Work on the single-target query graph restricted to relevant nodes.
  QueryGraph single;
  single.graph = query_graph.graph;
  single.source = query_graph.source;
  single.answers = {target};
  QueryGraph restricted = RestrictToQueryRelevantSubgraph(single);

  // Remove node failures so the recursion only conditions edges.
  ReifiedGraph reified = ReifyNodeFailures(restricted);

  FactoringContext ctx;
  ctx.max_calls = options.max_calls;
  ctx.use_reductions = options.use_reductions;
  double value = FactorRec(std::move(reified.query_graph), ctx);
  if (ctx.budget_exceeded) {
    return Status::FailedPrecondition(
        "factoring: exceeded max_calls budget (graph too complex)");
  }
  return value;
}

Result<std::vector<double>> ExactReliabilityAllAnswers(
    const QueryGraph& query_graph, const FactoringOptions& options) {
  std::vector<double> scores;
  scores.reserve(query_graph.answers.size());
  for (NodeId t : query_graph.answers) {
    Result<double> r = ExactReliabilityFactoring(query_graph, t, options);
    if (!r.ok()) return r.status();
    scores.push_back(r.value());
  }
  return scores;
}

}  // namespace biorank
