#include "schema/er_schema.h"

namespace biorank {

const char* CardinalityToString(Cardinality c) {
  switch (c) {
    case Cardinality::kOneToOne:
      return "[1:1]";
    case Cardinality::kOneToMany:
      return "[1:n]";
    case Cardinality::kManyToOne:
      return "[n:1]";
    case Cardinality::kManyToMany:
      return "[m:n]";
  }
  return "[?]";
}

Status ErSchema::AddEntitySet(EntitySetDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("entity set name must be non-empty");
  }
  if (def.ps < 0.0 || def.ps > 1.0) {
    return Status::InvalidArgument("entity set ps must be in [0,1]: " +
                                   def.name);
  }
  if (HasEntitySet(def.name)) {
    return Status::InvalidArgument("duplicate entity set: " + def.name);
  }
  entity_sets_.push_back(std::move(def));
  return Status::OK();
}

Status ErSchema::AddRelationship(RelationshipDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("relationship name must be non-empty");
  }
  if (def.qs < 0.0 || def.qs > 1.0) {
    return Status::InvalidArgument("relationship qs must be in [0,1]: " +
                                   def.name);
  }
  if (!HasEntitySet(def.from)) {
    return Status::NotFound("relationship " + def.name +
                            ": unknown entity set " + def.from);
  }
  if (!HasEntitySet(def.to)) {
    return Status::NotFound("relationship " + def.name +
                            ": unknown entity set " + def.to);
  }
  for (const RelationshipDef& existing : relationships_) {
    if (existing.name == def.name) {
      return Status::InvalidArgument("duplicate relationship: " + def.name);
    }
  }
  relationships_.push_back(std::move(def));
  return Status::OK();
}

bool ErSchema::HasEntitySet(const std::string& name) const {
  for (const EntitySetDef& def : entity_sets_) {
    if (def.name == name) return true;
  }
  return false;
}

Result<EntitySetDef> ErSchema::GetEntitySet(const std::string& name) const {
  for (const EntitySetDef& def : entity_sets_) {
    if (def.name == name) return def;
  }
  return Status::NotFound("entity set: " + name);
}

Result<RelationshipDef> ErSchema::GetRelationship(
    const std::string& name) const {
  for (const RelationshipDef& def : relationships_) {
    if (def.name == name) return def;
  }
  return Status::NotFound("relationship: " + name);
}

std::vector<std::string> ErSchema::OutgoingRelationships(
    const std::string& entity_set) const {
  std::vector<std::string> names;
  for (const RelationshipDef& def : relationships_) {
    if (def.from == entity_set) names.push_back(def.name);
  }
  return names;
}

std::vector<std::string> ErSchema::IncomingRelationships(
    const std::string& entity_set) const {
  std::vector<std::string> names;
  for (const RelationshipDef& def : relationships_) {
    if (def.to == entity_set) names.push_back(def.name);
  }
  return names;
}

ErSchema MakeFigure1Schema() {
  ErSchema schema;
  // Entity sets; ps values are the BioRank defaults (user-tunable).
  schema.AddEntitySet({"EntrezProtein", {"name", "seq"}, 0.95});
  schema.AddEntitySet({"NCBIBlastHit", {"seq2", "e-value"}, 0.70});
  schema.AddEntitySet({"EntrezGene", {"StatusCode"}, 0.90});
  schema.AddEntitySet({"PfamDomain", {"e-value"}, 0.75});
  schema.AddEntitySet({"TigrFamModel", {"e-value"}, 0.80});
  schema.AddEntitySet({"AmiGO", {"EvidenceCode"}, 0.90});

  // Relationships; the cardinalities of Figure 1.
  schema.AddRelationship({"NCBIBlast1", "EntrezProtein", "NCBIBlastHit",
                          Cardinality::kOneToMany, 0.65});
  schema.AddRelationship({"NCBIBlast2", "NCBIBlastHit", "EntrezGene",
                          Cardinality::kManyToOne, 1.0});
  schema.AddRelationship({"Pfam1", "EntrezProtein", "PfamDomain",
                          Cardinality::kOneToMany, 0.80});
  schema.AddRelationship({"TigrFam1", "EntrezProtein", "TigrFamModel",
                          Cardinality::kOneToMany, 0.85});
  schema.AddRelationship({"EntrezGene1", "EntrezProtein", "EntrezGene",
                          Cardinality::kManyToOne, 1.0});
  schema.AddRelationship({"EntrezGene2GO", "EntrezGene", "AmiGO",
                          Cardinality::kManyToMany, 0.90});
  schema.AddRelationship({"Pfam2GO", "PfamDomain", "AmiGO",
                          Cardinality::kManyToMany, 0.75});
  schema.AddRelationship({"TigrFam2GO", "TigrFamModel", "AmiGO",
                          Cardinality::kManyToMany, 0.80});
  return schema;
}

}  // namespace biorank
