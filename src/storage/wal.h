// Append-only write-ahead log of the server's session lifecycle and
// every applied EvidenceDelta. Records are length-prefixed and
// CRC32C-framed with a monotonic log sequence number (LSN):
//
//   file   := header record*
//   header := magic "BRWAL001" | u64 options_fingerprint
//   record := u32 payload_len | u32 crc32c(payload) | payload
//   payload:= u64 lsn | u8 type | u64 session_id | body
//
// Torn-tail contract (the load-bearing recovery property): a crash can
// only tear the *last* record — appends are sequential and each record
// is written with one write(2). Open() therefore replays to the last
// complete, checksum-valid record and truncates anything after it as a
// clean no-op, never an error. A checksum failure that is *followed* by
// further parseable records cannot be a torn tail (the tail is by
// definition last), so it surfaces as typed kDataLoss — the
// kTolerateCorruptedTailRecords distinction.
//
// Durability: group fsync. Appends are synced every `fsync_every_n`
// records (and on explicit Sync(), which Checkpoint() calls before
// stamping a snapshot's covering LSN). Between syncs a crash may lose
// the un-synced suffix — which recovery then treats as a torn tail.

#ifndef BIORANK_STORAGE_WAL_H_
#define BIORANK_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace biorank::storage {

/// What one WAL record describes.
enum class WalRecordType : uint8_t {
  kOpenSession = 1,  ///< body = ExploratoryQuery (storage/codec.h).
  kApplyDelta = 2,   ///< body = EvidenceDelta (storage/codec.h).
  kCloseSession = 3, ///< empty body (explicit close or idle eviction).
};

/// One decoded record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kApplyDelta;
  uint64_t session_id = 0;
  std::string body;
};

/// Group-fsync knobs.
struct WalOptions {
  /// fsync after every n-th appended record; 1 = every append, 0
  /// disables count-based syncing (Sync()/interval only).
  uint64_t fsync_every_n = 32;
  /// Also fsync when this much wall time passed since the last sync
  /// (<= 0 disables the interval trigger).
  double fsync_interval_s = 0.0;
  /// Master switch; false skips fsync entirely (tests, benches that
  /// measure the append path alone).
  bool fsync = true;
  /// Metrics sink: when set, appends record into
  /// biorank_storage_wal_append_seconds / _wal_bytes_total /
  /// _wal_records_total / _wal_syncs_total. Borrowed, must outlive the
  /// Wal.
  obs::Registry* registry = nullptr;
};

/// Monotonic counters of one Wal instance (appends since Open).
struct WalStats {
  uint64_t records = 0;   ///< Records appended by this instance.
  uint64_t bytes = 0;     ///< Framed bytes appended by this instance.
  uint64_t syncs = 0;     ///< fsync calls issued.
  uint64_t last_lsn = 0;  ///< Highest LSN on disk (replayed + appended).
};

/// The result of opening a log: the writable handle plus everything the
/// scan recovered on the way to the end of the file.
struct WalReplay {
  std::vector<WalRecord> records;  ///< Every complete record, in order.
  uint64_t last_lsn = 0;           ///< LSN of the last complete record.
  uint64_t truncated_bytes = 0;    ///< Torn-tail bytes dropped by Open.
  bool torn_tail = false;          ///< Whether a torn tail was truncated.
};

/// The append-side handle. Thread-safe: Append/Sync serialize on an
/// internal mutex (appends are rare next to rankings; one lock keeps the
/// LSN, the file offset, and the group-sync counter consistent).
class Wal {
 public:
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  struct OpenResult {
    std::unique_ptr<Wal> wal;
    WalReplay replay;
  };

  /// Opens (or creates) the log at `path`, scans every complete record,
  /// physically truncates a torn tail, and positions the handle for
  /// appends. `fingerprint` is stamped into new files and checked
  /// against existing ones (mismatch → kFailedPrecondition: the log
  /// belongs to a differently-configured server and replaying it would
  /// silently change results). Mid-file corruption → kDataLoss.
  static Result<OpenResult> Open(const std::string& path,
                                 uint64_t fingerprint,
                                 WalOptions options = {});

  /// Appends one record, assigning the next LSN (returned). Group-fsync
  /// per the options. An I/O failure leaves the log unusable for further
  /// appends (fail-stop) and returns kInternal.
  Result<uint64_t> Append(WalRecordType type, uint64_t session_id,
                          const std::string& body);

  /// Forces an fsync of everything appended so far.
  Status Sync();

  WalStats stats() const;
  uint64_t last_lsn() const;

  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

 private:
  Wal(std::string path, int fd, uint64_t last_lsn, WalOptions options);

  Status SyncLocked();

  std::string path_;
  WalOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t last_lsn_ = 0;
  uint64_t unsynced_records_ = 0;
  double last_sync_monotonic_s_ = 0.0;
  bool broken_ = false;  ///< A write failed; later appends fail fast.
  WalStats stats_;

  obs::Histogram* append_seconds_ = nullptr;
  obs::Counter* bytes_total_ = nullptr;
  obs::Counter* records_total_ = nullptr;
  obs::Counter* syncs_total_ = nullptr;
};

/// Read-only scan of a log file (the testing/inspection entry; Open uses
/// the same parser). NotFound when the file does not exist;
/// kFailedPrecondition on a fingerprint mismatch; kDataLoss on mid-file
/// corruption. A torn tail is reported, not an error.
Result<WalReplay> ReadWal(const std::string& path, uint64_t fingerprint);

/// Frames one record exactly as Append writes it (exposed for tests that
/// construct corrupt logs byte by byte).
std::string FrameWalRecord(uint64_t lsn, WalRecordType type,
                           uint64_t session_id, const std::string& body);

/// The 16-byte header of a fresh log file.
std::string WalFileHeader(uint64_t fingerprint);

}  // namespace biorank::storage

#endif  // BIORANK_STORAGE_WAL_H_
