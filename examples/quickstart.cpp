// Quickstart: the api::Server front door in five minutes. Stand the
// whole BioRank stack up behind one object, ask for a protein's
// functions with a typed request, inspect the typed response (ranked
// answers with reliability values and bounds, per-phase timing, cache
// counters), fan a batch out, and keep a live session open across an
// evidence update.
//
// Run:  ./build/quickstart

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/server.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

const char* ResolutionName(serve::Resolution resolution) {
  switch (resolution) {
    case serve::Resolution::kCacheValue: return "cache";
    case serve::Resolution::kPruned: return "pruned";
    case serve::Resolution::kBoundExact: return "bounds";
    case serve::Resolution::kExact: return "exact";
    case serve::Resolution::kMonteCarlo: return "MC";
    case serve::Resolution::kRefining: return "refining";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "== BioRank quickstart: the api::Server front door ==\n\n";

  // One server is one deployment: it owns the synthetic universe, the
  // eleven federated sources, the mediator, and the shared ranking
  // service (canonical reliability cache + thread pool).
  api::Server server;
  const ProteinUniverse& universe = server.universe();
  std::string symbol =
      universe.protein(universe.well_studied()[0]).gene_symbol;

  // 1. A one-shot typed request: the paper's running question, top 8.
  api::QueryRequest request = api::MakeProteinFunctionRequest(symbol, 8);
  api::Result<api::QueryResponse> response = server.Query(request);
  if (!response.ok()) {
    std::cerr << response.status() << "\n";
    return 1;
  }
  const api::QueryResponse& r = response.value();
  std::cout << "Query (EntrezProtein.name = \"" << symbol << "\", AmiGO): "
            << r.result.query_graph.graph.num_nodes() << " nodes, "
            << r.result.query_graph.graph.num_edges() << " edges, "
            << r.result.query_graph.answers.size()
            << " candidate functions.\n\n";
  TextTable table({"#", "GO term", "reliability", "[lower, upper]", "via"});
  for (size_t i = 0; i < r.top.size(); ++i) {
    const api::RankedAnswer& answer = r.top[i];
    table.AddRow({std::to_string(i + 1), answer.label,
                  FormatDouble(answer.reliability, 4),
                  "[" + FormatCompact(answer.lower, 4) + ", " +
                      FormatCompact(answer.upper, 4) + "]",
                  ResolutionName(answer.resolution)});
  }
  table.Print(std::cout);
  std::cout << "Timing: integrate " << FormatCompact(r.timing.integrate_s, 4)
            << " s, rank " << FormatCompact(r.timing.rank_s, 4)
            << " s; scheduler saw " << r.stats.candidates << " candidates ("
            << r.stats.cache_hits << " cache hits, " << r.stats.pruned
            << " pruned by bounds).\n\n";

  // 2. The same request again: the canonical reliability cache answers.
  api::Result<api::QueryResponse> again = server.Query(request);
  if (again.ok()) {
    std::cout << "Repeated request: " << again.value().stats.cache_misses
              << " cache misses (hit rate "
              << FormatDouble(again.value().stats.CacheHitRate(), 3)
              << "), bit-identical ranking.\n\n";
  }

  // 3. A batch: independent requests fanned across the shared pool,
  // output bit-identical to running them one by one.
  std::vector<api::QueryRequest> batch;
  for (int i = 1; i <= 3; ++i) {
    batch.push_back(api::MakeProteinFunctionRequest(
        universe.protein(universe.well_studied()[static_cast<size_t>(i)])
            .gene_symbol,
        3));
  }
  api::Result<std::vector<api::QueryResponse>> fanned = server.RunBatch(batch);
  if (fanned.ok()) {
    std::cout << "RunBatch over " << fanned.value().size()
              << " proteins; best function of each:\n";
    for (size_t i = 0; i < fanned.value().size(); ++i) {
      const api::QueryResponse& b = fanned.value()[i];
      std::cout << "  " << batch[i].query.value << " -> "
                << (b.top.empty() ? "(none)" : b.top[0].label) << " ("
                << FormatCompact(b.top.empty() ? 0.0 : b.top[0].reliability, 4)
                << ")\n";
    }
    std::cout << "\n";
  }

  // 4. A live session: the graph stays resident server-side, evidence
  // deltas apply incrementally, rankings stay bit-identical to a
  // from-scratch rebuild.
  api::Result<api::SessionInfo> session =
      server.OpenSession(api::MakeProteinFunctionRequest(symbol));
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  ingest::EvidenceDelta delta;
  delta.revise_source_priors.push_back({"AmiGO", 0.9});
  api::Result<ingest::ApplyReport> applied =
      server.ApplyDelta(session.value().id, delta);
  api::Result<api::QueryResponse> live =
      server.QuerySession(session.value().id, 3);
  if (applied.ok() && live.ok()) {
    std::cout << "Live session " << session.value().id
              << ": revised the AmiGO prior; delta dirtied "
              << applied.value().dirty_answers << " of "
              << session.value().answers << " answers ("
              << applied.value().invalidated_entries
              << " cache entries invalidated). New best function: "
              << live.value().top[0].label << ".\n";
  }
  server.CloseSession(session.value().id).ok();

  // 5. An anytime ranking: the deterministic bounds come back
  // immediately (zero MC spend), then Refine advances the open answers
  // until the ranking is final — bit-identical to what a blocking call
  // returns. Protein queries resolve entirely at the bounds pass (their
  // residues reduce to single paths), so the demo serves the canonical
  // irreducible residue — the Wheatstone bridge — through RankGraph on
  // a server with factoring disabled.
  QueryGraph bridge = MakeFig4bWheatstoneBridge();
  api::ServerOptions mc_options;
  mc_options.ranking.exact_max_edges = 0;  // Monte Carlo only.
  api::Server mc_server(mc_options);
  api::QueryOptions anytime_options;
  anytime_options.mode = api::QueryMode::kAnytime;
  api::Result<api::QueryResponse> first =
      mc_server.RankGraph(bridge, anytime_options);
  if (first.ok()) {
    const api::QueryResponse& a = first.value();
    std::cout << "\nAnytime ranking (Wheatstone bridge): "
              << a.completeness.resolved << " resolved / "
              << a.completeness.bounded << " bounded / "
              << a.completeness.refining
              << " still refining (widest bracket "
              << FormatCompact(a.completeness.widest_bracket, 4)
              << ") after the bounds-only pass.\n";
    api::RefinementHandle handle = a.refinement;
    int increments = 0;
    while (handle.valid()) {
      api::QueryOptions step;
      step.mc_trial_budget = 2048;  // whole 512-trial shards per survivor
      api::Result<api::QueryResponse> refined = mc_server.Refine(handle, step);
      if (!refined.ok()) break;
      ++increments;
      handle = refined.value().refinement;
      if (refined.value().completeness.complete) {
        std::cout << "Refined to a final ranking in " << increments
                  << " increments; best answer "
                  << refined.value().top[0].label << " ("
                  << FormatCompact(refined.value().top[0].reliability, 4)
                  << "), bit-identical to the blocking answer.\n";
      }
    }
  }

  api::ServerStats stats = server.Stats();
  std::cout << "\nServer stats: " << stats.queries << " queries ("
            << stats.batch_requests << " batched), " << stats.session_queries
            << " session queries, " << stats.deltas_applied
            << " deltas; cache holds " << stats.cache.entries
            << " canonical entries (hit rate "
            << FormatDouble(stats.cache.HitRate(), 3) << ").\n";

  // 6. The metrics snapshot: everything above was also recorded into
  // the server's registry — counters, gauges, and latency histograms
  // with Prometheus-style names (biorank_<layer>_<name>). MetricsText()
  // is the scrape endpoint's payload; the JSON form adds derived
  // p50/p99/p999 per histogram. Here: the end-to-end latency histogram
  // and a few counters, straight from the snapshot.
  obs::Snapshot metrics = server.MetricsSnapshot();
  std::cout << "\nMetrics registry: " << metrics.MetricCount()
            << " metrics exported.\n";
  for (const obs::HistogramSnapshot& h : metrics.histograms) {
    if (h.name == "biorank_api_query_seconds") {
      std::cout << "  " << h.name << ": count " << h.count << ", p50 "
                << FormatCompact(h.Quantile(0.5) * 1e3, 3) << " ms, p99 "
                << FormatCompact(h.Quantile(0.99) * 1e3, 3) << " ms\n";
    }
  }
  for (const obs::CounterSnapshot& c : metrics.counters) {
    if (c.name == "biorank_serve_mc_trials_total" ||
        c.name == "biorank_serve_cache_hits_total" ||
        c.name == "biorank_ingest_deltas_total") {
      std::cout << "  " << c.name << " " << c.value << "\n";
    }
  }

  // 7. Durability: point a server at a directory and it logs every
  // session open/close and evidence delta to a write-ahead log before
  // applying it; Checkpoint() writes a versioned snapshot without
  // blocking readers. "Kill" the server (destroy it — a real kill -9
  // behaves the same, minus the un-fsynced WAL suffix) and the next
  // construction over the directory warm-boots: newest valid snapshot,
  // then the WAL tail, then the same session handle answers
  // bit-identically with a warm cache.
  std::string store = "/tmp/biorank_quickstart_store";
  for (const auto& [lsn, path] : storage::ListSnapshots(store)) {
    (void)lsn;
    std::remove(path.c_str());  // Scrub a previous run's state.
  }
  std::remove(storage::WalPath(store).c_str());
  api::ServerOptions durable_options;
  durable_options.storage_dir = store;
  api::SessionId persisted = 0;
  std::vector<api::RankedAnswer> before;
  {
    api::Server durable(durable_options);
    if (!durable.storage_status().ok()) {
      std::cerr << durable.storage_status() << "\n";
      return 1;
    }
    api::Result<api::SessionInfo> open =
        durable.OpenSession(api::MakeProteinFunctionRequest(symbol));
    if (!open.ok()) {
      std::cerr << open.status() << "\n";
      return 1;
    }
    persisted = open.value().id;
    // Resolve once before checkpointing so the snapshot carries real
    // cache entries, then let the delta ride the WAL alone.
    if (!durable.QuerySession(persisted, 3).ok()) return 1;
    if (!durable.Checkpoint().ok()) return 1;
    // Post-checkpoint history rides the WAL alone.
    ingest::EvidenceDelta revision;
    revision.revise_source_priors.push_back({"AmiGO", 0.95});
    if (!durable.ApplyDelta(persisted, revision).ok()) return 1;
    api::Result<api::QueryResponse> pre = durable.QuerySession(persisted, 3);
    if (!pre.ok()) return 1;
    before = pre.value().top;
  }  // Killed: state lives only in the snapshot + WAL now.

  api::Server rebooted(durable_options);
  const storage::RecoveryReport& recovery = rebooted.recovery_report();
  api::Result<api::QueryResponse> post = rebooted.QuerySession(persisted, 3);
  if (post.ok()) {
    bool identical = post.value().top.size() == before.size();
    for (size_t i = 0; identical && i < before.size(); ++i) {
      identical = post.value().top[i].node == before[i].node &&
                  post.value().top[i].reliability == before[i].reliability;
    }
    std::cout << "\nDurability (" << store << "): warm boot recovered "
              << recovery.sessions_recovered << " session in "
              << FormatCompact(recovery.seconds, 3) << " s ("
              << recovery.replayed_records << " WAL records replayed, "
              << recovery.cache_entries_restored
              << " cache entries restored); session " << persisted
              << " re-answered "
              << (identical ? "bit-identically" : "DIFFERENTLY — bug!")
              << ".\n";
  }
  return 0;
}
