// End-to-end durability: kill a server (destroy it), boot a fresh one
// over the same storage directory, and require the recovered rankings to
// be *bit-identical* to the never-killed server's — the acceptance bar
// the whole storage/ layer exists to clear. Plus the recovery edge
// cases: cold boots, stale snapshots with long WAL replays, corrupt
// snapshot fallback, torn WAL tails, and the ApplyDelta-while-Checkpoint
// hammer (this suite runs under the `concurrency` ctest label).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/server.h"
#include "core/csr_snapshot.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "testing/random_graphs.h"
#include "util/file.h"
#include "util/rng.h"

namespace biorank::api {
namespace {

/// A fresh per-test storage directory (leftovers from a previous run are
/// scrubbed so replays never cross test boundaries).
std::string FreshDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  for (const auto& [lsn, path] : storage::ListSnapshots(dir)) {
    (void)lsn;
    std::remove(path.c_str());
  }
  std::remove(storage::WalPath(dir).c_str());
  ::rmdir(dir.c_str());
  return dir;
}

ServerOptions DurableOptions(const std::string& dir) {
  ServerOptions options;
  options.storage_dir = dir;
  return options;
}

std::string WellStudiedSymbol(const Server& server, int index) {
  const ProteinUniverse& universe = server.universe();
  return universe.protein(universe.well_studied()[static_cast<size_t>(index)])
      .gene_symbol;
}

ingest::EvidenceDelta PriorDelta(double ratio) {
  ingest::EvidenceDelta delta;
  delta.revise_source_priors.push_back({"AmiGO", ratio});
  return delta;
}

std::vector<std::pair<NodeId, double>> SessionFingerprint(Server& server,
                                                          SessionId id) {
  Result<QueryResponse> response = server.QuerySession(id, 0);
  EXPECT_TRUE(response.ok()) << response.status();
  if (!response.ok()) return {};
  return RankingFingerprint(response.value());
}

TEST(StorageRecoveryTest, ColdBootOnEmptyDirectoryServesDurably) {
  std::string dir = FreshDir("recovery_cold");
  Server server(DurableOptions(dir));
  ASSERT_TRUE(server.storage_status().ok()) << server.storage_status();
  EXPECT_TRUE(server.durable());
  EXPECT_FALSE(server.recovery_report().snapshot_loaded);
  EXPECT_EQ(server.recovery_report().replayed_records, 0u);
  EXPECT_EQ(server.recovery_report().sessions_recovered, 0u);

  Result<SessionInfo> info = server.OpenSession(
      MakeProteinFunctionRequest(WellStudiedSymbol(server, 0)));
  ASSERT_TRUE(info.ok()) << info.status();
  ASSERT_TRUE(server.ApplyDelta(info.value().id, PriorDelta(0.9)).ok());
  Result<CheckpointReport> checkpoint = server.Checkpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint.value().sessions, 1u);
  EXPECT_GT(checkpoint.value().bytes, 0u);
  EXPECT_GT(checkpoint.value().wal_lsn, 0u);
  EXPECT_EQ(server.Stats().checkpoints, 1u);
}

TEST(StorageRecoveryTest, MemoryOnlyServerRefusesCheckpoint) {
  Server server;
  EXPECT_FALSE(server.durable());
  EXPECT_TRUE(server.storage_status().ok());
  EXPECT_EQ(server.Checkpoint().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StorageRecoveryTest, WarmBootIsBitIdenticalToNeverKilledServer) {
  std::string dir = FreshDir("recovery_warm");
  SessionId first = 0;
  SessionId second = 0;
  std::vector<std::pair<NodeId, double>> fp_first;
  std::vector<std::pair<NodeId, double>> fp_second;
  {
    Server server(DurableOptions(dir));
    ASSERT_TRUE(server.storage_status().ok()) << server.storage_status();
    Result<SessionInfo> a = server.OpenSession(
        MakeProteinFunctionRequest(WellStudiedSymbol(server, 0)));
    Result<SessionInfo> b = server.OpenSession(
        MakeProteinFunctionRequest(WellStudiedSymbol(server, 1)));
    ASSERT_TRUE(a.ok() && b.ok());
    first = a.value().id;
    second = b.value().id;
    ASSERT_TRUE(server.ApplyDelta(first, PriorDelta(0.9)).ok());
    ASSERT_TRUE(server.Checkpoint().ok());
    // Post-checkpoint history rides the WAL alone.
    ASSERT_TRUE(server.ApplyDelta(first, PriorDelta(0.95)).ok());
    ASSERT_TRUE(server.ApplyDelta(second, PriorDelta(0.85)).ok());
    fp_first = SessionFingerprint(server, first);
    fp_second = SessionFingerprint(server, second);
    ASSERT_FALSE(fp_first.empty());
    ASSERT_FALSE(fp_second.empty());
  }  // "Kill": destructor syncs the WAL; state lives only on disk now.

  Server recovered(DurableOptions(dir));
  ASSERT_TRUE(recovered.storage_status().ok()) << recovered.storage_status();
  const storage::RecoveryReport& report = recovered.recovery_report();
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.sessions_recovered, 2u);
  EXPECT_GE(report.replayed_records, 2u);  // The two post-checkpoint deltas.
  EXPECT_GT(report.skipped_records, 0u);   // The pre-checkpoint history.
  EXPECT_EQ(recovered.session_count(), 2u);

  // Same handles, bit-identical rankings.
  EXPECT_EQ(SessionFingerprint(recovered, first), fp_first);
  EXPECT_EQ(SessionFingerprint(recovered, second), fp_second);

  // The restored cache keeps serving: a second identical query is all
  // hits, and a *new* one-shot query for the same symbol reuses the
  // resolved entries where subgraphs agree.
  Result<QueryResponse> again = recovered.QuerySession(first, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().stats.cache_misses, 0);

  // New sessions never collide with recovered handles.
  Result<SessionInfo> fresh = recovered.OpenSession(
      MakeProteinFunctionRequest(WellStudiedSymbol(recovered, 2)));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value().id, second);
}

TEST(StorageRecoveryTest, StaleSnapshotReplaysLongWalTail) {
  std::string dir = FreshDir("recovery_stale");
  SessionId id = 0;
  std::vector<std::pair<NodeId, double>> expected;
  constexpr int kPostCheckpointDeltas = 6;
  {
    Server server(DurableOptions(dir));
    ASSERT_TRUE(server.storage_status().ok());
    Result<SessionInfo> info = server.OpenSession(
        MakeProteinFunctionRequest(WellStudiedSymbol(server, 0)));
    ASSERT_TRUE(info.ok());
    id = info.value().id;
    ASSERT_TRUE(server.Checkpoint().ok());  // Snapshot before any delta.
    for (int i = 0; i < kPostCheckpointDeltas; ++i) {
      ASSERT_TRUE(server.ApplyDelta(id, PriorDelta(0.99 - 0.01 * i)).ok());
    }
    expected = SessionFingerprint(server, id);
  }
  Server recovered(DurableOptions(dir));
  ASSERT_TRUE(recovered.storage_status().ok()) << recovered.storage_status();
  EXPECT_TRUE(recovered.recovery_report().snapshot_loaded);
  EXPECT_GE(recovered.recovery_report().replayed_records,
            static_cast<uint64_t>(kPostCheckpointDeltas));
  EXPECT_EQ(SessionFingerprint(recovered, id), expected);
}

TEST(StorageRecoveryTest, CorruptSnapshotFallsBackToOlderOne) {
  std::string dir = FreshDir("recovery_fallback");
  SessionId id = 0;
  std::vector<std::pair<NodeId, double>> expected;
  uint64_t first_checkpoint_lsn = 0;
  {
    Server server(DurableOptions(dir));
    ASSERT_TRUE(server.storage_status().ok());
    Result<SessionInfo> info = server.OpenSession(
        MakeProteinFunctionRequest(WellStudiedSymbol(server, 0)));
    ASSERT_TRUE(info.ok());
    id = info.value().id;
    Result<CheckpointReport> one = server.Checkpoint();
    ASSERT_TRUE(one.ok());
    first_checkpoint_lsn = one.value().wal_lsn;
    ASSERT_TRUE(server.ApplyDelta(id, PriorDelta(0.9)).ok());
    ASSERT_TRUE(server.Checkpoint().ok());
    expected = SessionFingerprint(server, id);
  }
  // Corrupt the newest snapshot (payload bit flip: checksum now fails).
  auto snapshots = storage::ListSnapshots(dir);
  ASSERT_EQ(snapshots.size(), 2u);
  {
    Result<std::string> bytes = util::ReadFileToString(snapshots[0].second);
    ASSERT_TRUE(bytes.ok());
    std::string corrupted = bytes.value();
    corrupted[corrupted.size() / 2] ^= 0x10;
    std::ofstream out(snapshots[0].second, std::ios::binary | std::ios::trunc);
    out.write(corrupted.data(),
              static_cast<std::streamsize>(corrupted.size()));
  }
  Server recovered(DurableOptions(dir));
  ASSERT_TRUE(recovered.storage_status().ok()) << recovered.storage_status();
  const storage::RecoveryReport& report = recovered.recovery_report();
  EXPECT_EQ(report.corrupt_snapshots_skipped, 1);
  EXPECT_EQ(report.snapshot_lsn, first_checkpoint_lsn);
  // The WAL is never truncated, so the older snapshot plus a longer
  // replay reconstructs the same state bit for bit.
  EXPECT_EQ(SessionFingerprint(recovered, id), expected);
}

TEST(StorageRecoveryTest, TornWalTailRecoversToLastCompleteRecord) {
  std::string dir = FreshDir("recovery_torn");
  SessionId id = 0;
  std::vector<std::pair<NodeId, double>> expected;
  {
    Server server(DurableOptions(dir));
    ASSERT_TRUE(server.storage_status().ok());
    Result<SessionInfo> info = server.OpenSession(
        MakeProteinFunctionRequest(WellStudiedSymbol(server, 0)));
    ASSERT_TRUE(info.ok());
    id = info.value().id;
    ASSERT_TRUE(server.ApplyDelta(id, PriorDelta(0.9)).ok());
    expected = SessionFingerprint(server, id);
  }
  {  // A crash mid-append: garbage after the last complete record.
    std::ofstream out(storage::WalPath(dir),
                      std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x13, 0x37};
    out.write(torn, sizeof(torn));
  }
  Server recovered(DurableOptions(dir));
  ASSERT_TRUE(recovered.storage_status().ok()) << recovered.storage_status();
  EXPECT_TRUE(recovered.recovery_report().wal_torn_tail);
  EXPECT_GT(recovered.recovery_report().wal_truncated_bytes, 0u);
  EXPECT_EQ(recovered.session_count(), 1u);
  EXPECT_EQ(SessionFingerprint(recovered, id), expected);
}

TEST(StorageRecoveryTest, FingerprintMismatchFallsBackToMemoryOnly) {
  std::string dir = FreshDir("recovery_fp");
  {
    Server server(DurableOptions(dir));
    ASSERT_TRUE(server.storage_status().ok());
  }
  ServerOptions other = DurableOptions(dir);
  other.universe.seed = 424242;  // A different world entirely.
  Server mismatched(other);
  EXPECT_EQ(mismatched.storage_status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(mismatched.durable());
  // The server still serves — memory-only.
  Result<QueryResponse> response = mismatched.Query(
      MakeProteinFunctionRequest(WellStudiedSymbol(mismatched, 0), 3));
  EXPECT_TRUE(response.ok()) << response.status();
}

TEST(StorageRecoveryTest, SnapshotCodecRoundTripsCsrByteIdentically) {
  // Pure codec check, no server: a graph with tombstones (removed node +
  // edge) must round-trip its CSR arrays verbatim, and the decoded graph
  // must rebuild the *same* CSR — the two halves of bit-identity.
  Rng rng(20260809);
  testing::RandomDagOptions options;
  options.layers = 3;
  options.nodes_per_layer = 5;
  options.answers = 4;
  QueryGraph graph = testing::MakeRandomLayeredDag(rng, options);
  // Tombstone an answer-layer node and one edge so capacities != counts.
  NodeId victim = graph.answers.back();
  graph.answers.pop_back();
  ASSERT_TRUE(graph.graph.RemoveNode(victim).ok());
  ASSERT_TRUE(graph.graph.RemoveEdge(0).ok());
  ASSERT_TRUE(graph.Validate().ok());

  storage::SnapshotState state;
  state.fingerprint = 99;
  state.wal_lsn = 7;
  state.next_session_id = 3;
  storage::SnapshotSession session;
  session.id = 2;
  session.applied_lsn = 7;
  session.matched_proteins = 1;
  session.answer_labels[graph.answers[0]] = "label-a";
  session.go_node[11] = graph.answers[0];
  session.graph = graph;
  session.csr = BuildCsrSnapshot(graph.graph);
  state.sessions.push_back(std::move(session));

  std::string bytes = storage::EncodeSnapshot(state);
  Result<storage::SnapshotState> decoded = storage::DecodeSnapshot(bytes, 99);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded.value().sessions.size(), 1u);
  const storage::SnapshotSession& back = decoded.value().sessions[0];
  EXPECT_TRUE(CsrBytesEqual(back.csr, state.sessions[0].csr));
  EXPECT_TRUE(CsrBytesEqual(BuildCsrSnapshot(back.graph.graph),
                            state.sessions[0].csr));
  EXPECT_EQ(back.answer_labels, state.sessions[0].answer_labels);
  EXPECT_EQ(back.go_node, state.sessions[0].go_node);

  // A flipped payload bit is typed data loss; a wrong fingerprint is a
  // configuration error, not corruption.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x04;
  EXPECT_EQ(storage::DecodeSnapshot(flipped, 99).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(storage::DecodeSnapshot(bytes, 100).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(StorageRecoveryTest, CheckpointUnderConcurrentDeltasRecoversCleanly) {
  std::string dir = FreshDir("recovery_hammer");
  SessionId id = 0;
  std::vector<std::pair<NodeId, double>> expected;
  {
    Server server(DurableOptions(dir));
    ASSERT_TRUE(server.storage_status().ok());
    Result<SessionInfo> info = server.OpenSession(
        MakeProteinFunctionRequest(WellStudiedSymbol(server, 0)));
    ASSERT_TRUE(info.ok());
    id = info.value().id;

    // One writer hammers deltas, one thread checkpoints mid-stream, one
    // reader queries throughout — none may deadlock, error, or block the
    // readers for the duration of a snapshot write.
    constexpr int kDeltas = 8;
    std::thread writer([&server, id] {
      for (int i = 0; i < kDeltas; ++i) {
        Result<ingest::ApplyReport> applied =
            server.ApplyDelta(id, PriorDelta(0.97));
        ASSERT_TRUE(applied.ok()) << applied.status();
      }
    });
    std::thread checkpointer([&server] {
      for (int i = 0; i < 3; ++i) {
        Result<CheckpointReport> checkpoint = server.Checkpoint();
        ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
      }
    });
    std::thread reader([&server, id] {
      for (int i = 0; i < 4; ++i) {
        Result<QueryResponse> response = server.QuerySession(id, 5);
        ASSERT_TRUE(response.ok()) << response.status();
      }
    });
    writer.join();
    checkpointer.join();
    reader.join();
    expected = SessionFingerprint(server, id);
  }
  Server recovered(DurableOptions(dir));
  ASSERT_TRUE(recovered.storage_status().ok()) << recovered.storage_status();
  EXPECT_EQ(SessionFingerprint(recovered, id), expected);
}

}  // namespace
}  // namespace biorank::api
