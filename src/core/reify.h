// Node-failure reification: folds node presence probabilities into
// edge probabilities so that two-terminal reliability algorithms only
// need to reason about edge failures.

#ifndef BIORANK_CORE_REIFY_H_
#define BIORANK_CORE_REIFY_H_

#include <vector>

#include "core/query_graph.h"

namespace biorank {

/// Result of reifying node failures (Section 3.1: "the generalized
/// source-target reliability problem with node failures can be reduced to
/// the standard network reliability problem by removing node failures and
/// reifying the graph").
struct ReifiedGraph {
  QueryGraph query_graph;        ///< All node probabilities are 1.
  /// For each original node: the id its *incoming* edges attach to.
  std::vector<NodeId> in_node;
  /// For each original node: the id its *outgoing* edges leave from.
  /// Equal to in_node for nodes that were already certain (p == 1).
  std::vector<NodeId> out_node;
};

/// Splits every uncertain node v (p(v) < 1) into v_in -> v_out connected by
/// an edge of probability p(v); certain nodes stay single. Incoming edges
/// re-attach to v_in, outgoing edges to v_out. The source maps to its
/// in-side and each answer to its *out*-side, so that "t reachable and
/// present" in the original graph is exactly "t_out reachable" in the
/// reified graph. Edge-only reliability algorithms (exact factoring, brute
/// force) run on the result.
ReifiedGraph ReifyNodeFailures(const QueryGraph& query_graph);

}  // namespace biorank

#endif  // BIORANK_CORE_REIFY_H_
