#include "serve/refinement.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/csr_snapshot.h"
#include "obs/trace.h"

namespace biorank::serve {

Result<RefinementState> PrepareAnytime(RankingService& service,
                                       const QueryGraph& graph,
                                       const std::vector<NodeId>& targets,
                                       int k) {
  BIORANK_RETURN_IF_ERROR(graph.Validate());
  if (k < 1) return Status::InvalidArgument("serve: k must be >= 1");
  if (service.McTrialsPerCandidate() <= 0) {
    return Status::InvalidArgument(
        "serve: mc_epsilon must be in (0,1] and mc_delta in (0,1)");
  }
  if (&targets != &graph.answers) {
    BIORANK_RETURN_IF_ERROR(RankingService::ValidateTargets(graph, targets));
  }

  RefinementState state;
  state.k = std::min(k, static_cast<int>(targets.size()));
  state.stats.candidates = static_cast<int>(targets.size());
  if (targets.empty()) return state;
  state.nodes = targets;

  // Phase 1 — canonicalize (same fan-out as the blocking RankTopK; one
  // flat snapshot serves every target's restriction traversal).
  const CsrSnapshot request_csr = BuildCsrSnapshot(graph.graph);
  BIORANK_RETURN_IF_ERROR(service.CanonicalizeTargets(
      graph, targets, service.options().canonicalize, state.canonicals,
      &request_csr));
  std::vector<PreparedCandidate> prepared(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    prepared[i].node = targets[i];
    prepared[i].canonical = &state.canonicals[i];
  }

  // Phases 2–5 — the deterministic prefix, shared verbatim with the
  // blocking pipeline. No factoring, no Monte Carlo.
  BIORANK_RETURN_IF_ERROR(service.BuildUniqueStates(
      prepared, state.uniques, state.unique_index, state.stats));
  state.threshold = service.ClassifySurvivors(
      state.unique_index, state.uniques, state.k, state.stats,
      state.refinable);

  // Phase 7 — bounds (and free bound-exact closures) are worth caching
  // even if this handle is never refined: the next request on an
  // isomorphic key skips straight to the prune gate.
  service.PublishEntries(state.uniques);
  return state;
}

Result<Completeness> RefineIncrement(
    RankingService& service, RefinementState& state, int64_t trial_budget,
    std::chrono::steady_clock::time_point deadline) {
  const bool use_cache = service.options().enable_cache;
  obs::SpanScope span(obs::CurrentTrace(), "serve.refine_increment");
  const int64_t trials_before = state.stats.mc_trials;
  std::vector<int> still;
  still.reserve(state.refinable.size());
  for (size_t idx = 0; idx < state.refinable.size(); ++idx) {
    const int ui = state.refinable[idx];
    UniqueState& u = state.uniques[static_cast<size_t>(ui)];
    // The deadline is checked between survivors, never mid-shard: an
    // increment that fires the deadline leaves a clean trials-so-far
    // position, and whatever schedule of increments eventually covers
    // the plan converges to the same integer sum.
    if (std::chrono::steady_clock::now() >= deadline) {
      still.push_back(ui);
      continue;
    }

    bool adopted = false;
    if (use_cache && !u.entry.has_value) {
      // Adopt progress another handle (or a blocking request) published
      // for this key. Values and tallies are pure functions of
      // (canonical key, seed, trials), so adopting never changes the
      // converged answer — it only skips coin flips already flipped.
      std::optional<CacheEntry> got = service.cache().Get(u.canonical->key);
      if (got.has_value() &&
          (got->has_value || got->trials > u.entry.trials)) {
        u.entry = *got;
        if (u.entry.has_value) {
          u.resolution = Resolution::kCacheValue;
          ++state.stats.cache_hits;
          adopted = true;
        }
      }
    }

    if (!u.entry.has_value) {
      BIORANK_RETURN_IF_ERROR(service.TryResolveExact(u));
    }
    if (!u.entry.has_value) {
      const int64_t spent_before = u.trials_spent;
      BIORANK_RETURN_IF_ERROR(service.AdvanceMonteCarlo(u, trial_budget));
      state.stats.mc_trials += u.trials_spent - spent_before;
    }
    if (use_cache && !adopted) {
      service.cache().Put(u.canonical->key, u.entry);
    }

    if (u.entry.has_value) {
      if (u.resolution == Resolution::kExact) {
        ++state.stats.exact;
      } else if (u.resolution == Resolution::kMonteCarlo) {
        ++state.stats.monte_carlo;
      }
    } else {
      still.push_back(ui);
    }
  }
  state.refinable.swap(still);
  span.Counter("trials", state.stats.mc_trials - trials_before);
  span.Counter("open", static_cast<int64_t>(state.refinable.size()));
  return Summarize(state);
}

std::vector<RankedCandidate> CurrentRanking(const RefinementState& state) {
  std::vector<RankedCandidate> top;
  top.reserve(state.nodes.size());
  for (size_t ci = 0; ci < state.nodes.size(); ++ci) {
    const UniqueState& u =
        state.uniques[static_cast<size_t>(state.unique_index[ci])];
    RankedCandidate ranked;
    ranked.node = state.nodes[ci];
    if (u.entry.has_value) {
      ranked.reliability = u.entry.value;
      ranked.lower = u.entry.exact ? u.entry.value : u.entry.lower;
      ranked.upper = u.entry.exact ? u.entry.value : u.entry.upper;
      ranked.exact = u.entry.exact;
      ranked.resolution = u.resolution;
    } else if (u.resolution == Resolution::kPruned) {
      continue;  // Provably outside the top k at any final value.
    } else {
      // Open bracket: rank on the midpoint so callers get a best-guess
      // order; the bracket itself rides along for the honest answer.
      ranked.reliability = 0.5 * (u.entry.lower + u.entry.upper);
      ranked.lower = u.entry.lower;
      ranked.upper = u.entry.upper;
      ranked.exact = false;
      ranked.resolution = Resolution::kRefining;
    }
    top.push_back(ranked);
  }
  std::sort(top.begin(), top.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return RanksBefore(a, b);
            });
  if (static_cast<int>(top.size()) > state.k) {
    top.resize(static_cast<size_t>(state.k));
  }
  return top;
}

Completeness Summarize(const RefinementState& state) {
  Completeness summary;
  for (size_t ci = 0; ci < state.nodes.size(); ++ci) {
    const UniqueState& u =
        state.uniques[static_cast<size_t>(state.unique_index[ci])];
    if (u.entry.has_value) {
      ++summary.resolved;
    } else if (u.resolution == Resolution::kPruned) {
      ++summary.bounded;
    } else {
      ++summary.refining;
      summary.widest_bracket =
          std::max(summary.widest_bracket, u.entry.upper - u.entry.lower);
    }
  }
  summary.complete = summary.refining == 0;
  return summary;
}

}  // namespace biorank::serve
