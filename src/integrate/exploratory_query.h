// Exploratory query description (Definition 2.2): the start entity
// and the answer entity set a scientist asks about.

#ifndef BIORANK_INTEGRATE_EXPLORATORY_QUERY_H_
#define BIORANK_INTEGRATE_EXPLORATORY_QUERY_H_

#include <string>
#include <vector>

namespace biorank {

/// An exploratory query (Definition 2.2): match records of an input
/// entity set on one attribute value, follow all links recursively, and
/// return every reachable record of the output entity sets, ranked by a
/// relevance function.
///
/// The paper's running example is
///   (EntrezProtein.name = "ABCC8", {AmiGO}).
/// The query describes only its *shape*; serving-layer knobs (how many
/// answers to return, which MC seed to use) live on `api::QueryRequest`,
/// the front door's request object.
struct ExploratoryQuery {
  std::string entity_set = "EntrezProtein";
  std::string attribute = "name";
  std::string value;
  std::vector<std::string> output_sets = {"AmiGO"};
};

/// Builds the paper's canonical query shape for a protein symbol.
ExploratoryQuery MakeProteinFunctionQuery(const std::string& gene_symbol);

}  // namespace biorank

#endif  // BIORANK_INTEGRATE_EXPLORATORY_QUERY_H_
