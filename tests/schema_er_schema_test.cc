#include "schema/er_schema.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(ErSchemaTest, AddAndLookupEntitySet) {
  ErSchema schema;
  ASSERT_TRUE(schema.AddEntitySet({"EntrezGene", {"StatusCode"}, 0.9}).ok());
  EXPECT_TRUE(schema.HasEntitySet("EntrezGene"));
  Result<EntitySetDef> def = schema.GetEntitySet("EntrezGene");
  ASSERT_TRUE(def.ok());
  EXPECT_DOUBLE_EQ(def.value().ps, 0.9);
  EXPECT_EQ(def.value().attributes.size(), 1u);
}

TEST(ErSchemaTest, RejectsDuplicateEntitySet) {
  ErSchema schema;
  ASSERT_TRUE(schema.AddEntitySet({"A", {}, 1.0}).ok());
  EXPECT_FALSE(schema.AddEntitySet({"A", {}, 0.5}).ok());
}

TEST(ErSchemaTest, RejectsBadPs) {
  ErSchema schema;
  EXPECT_FALSE(schema.AddEntitySet({"A", {}, 1.5}).ok());
  EXPECT_FALSE(schema.AddEntitySet({"B", {}, -0.1}).ok());
}

TEST(ErSchemaTest, RejectsEmptyName) {
  ErSchema schema;
  EXPECT_FALSE(schema.AddEntitySet({"", {}, 1.0}).ok());
}

TEST(ErSchemaTest, RelationshipNeedsBothEndpoints) {
  ErSchema schema;
  schema.AddEntitySet({"A", {}, 1.0});
  EXPECT_FALSE(
      schema.AddRelationship({"R", "A", "Missing", Cardinality::kOneToMany, 1.0})
          .ok());
  EXPECT_FALSE(
      schema.AddRelationship({"R", "Missing", "A", Cardinality::kOneToMany, 1.0})
          .ok());
}

TEST(ErSchemaTest, RejectsDuplicateRelationship) {
  ErSchema schema;
  schema.AddEntitySet({"A", {}, 1.0});
  schema.AddEntitySet({"B", {}, 1.0});
  ASSERT_TRUE(
      schema.AddRelationship({"R", "A", "B", Cardinality::kOneToMany, 1.0})
          .ok());
  EXPECT_FALSE(
      schema.AddRelationship({"R", "B", "A", Cardinality::kManyToOne, 1.0})
          .ok());
}

TEST(ErSchemaTest, IncomingOutgoingQueries) {
  ErSchema schema;
  schema.AddEntitySet({"A", {}, 1.0});
  schema.AddEntitySet({"B", {}, 1.0});
  schema.AddEntitySet({"C", {}, 1.0});
  schema.AddRelationship({"R1", "A", "B", Cardinality::kOneToMany, 1.0});
  schema.AddRelationship({"R2", "B", "C", Cardinality::kManyToOne, 1.0});
  schema.AddRelationship({"R3", "A", "C", Cardinality::kManyToMany, 1.0});
  EXPECT_EQ(schema.OutgoingRelationships("A"),
            (std::vector<std::string>{"R1", "R3"}));
  EXPECT_EQ(schema.IncomingRelationships("C"),
            (std::vector<std::string>{"R2", "R3"}));
  EXPECT_TRUE(schema.OutgoingRelationships("C").empty());
}

TEST(ErSchemaTest, CardinalityNames) {
  EXPECT_STREQ(CardinalityToString(Cardinality::kOneToOne), "[1:1]");
  EXPECT_STREQ(CardinalityToString(Cardinality::kOneToMany), "[1:n]");
  EXPECT_STREQ(CardinalityToString(Cardinality::kManyToOne), "[n:1]");
  EXPECT_STREQ(CardinalityToString(Cardinality::kManyToMany), "[m:n]");
}

TEST(Figure1SchemaTest, HasTheSixEntitySets) {
  ErSchema schema = MakeFigure1Schema();
  EXPECT_EQ(schema.entity_sets().size(), 6u);
  for (const char* name : {"EntrezProtein", "NCBIBlastHit", "EntrezGene",
                           "PfamDomain", "TigrFamModel", "AmiGO"}) {
    EXPECT_TRUE(schema.HasEntitySet(name)) << name;
  }
}

TEST(Figure1SchemaTest, AllRoutesLeadToAmiGO) {
  ErSchema schema = MakeFigure1Schema();
  std::vector<std::string> into_go = schema.IncomingRelationships("AmiGO");
  EXPECT_EQ(into_go.size(), 3u);  // EntrezGene2GO, Pfam2GO, TigrFam2GO.
}

TEST(Figure1SchemaTest, BlastForeignKeyIsCertain) {
  // NCBIBlast2 carries a foreign key into EntrezGene: qs = 1 (Sect 2).
  ErSchema schema = MakeFigure1Schema();
  Result<RelationshipDef> rel = schema.GetRelationship("NCBIBlast2");
  ASSERT_TRUE(rel.ok());
  EXPECT_DOUBLE_EQ(rel.value().qs, 1.0);
  EXPECT_EQ(rel.value().cardinality, Cardinality::kManyToOne);
}

}  // namespace
}  // namespace biorank
