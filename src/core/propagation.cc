#include "core/propagation.h"

#include <algorithm>
#include <cmath>

namespace biorank {

Result<IterativeScores> Propagate(const QueryGraph& query_graph,
                                  const PropagationOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("propagation: max_iterations must be >= 1");
  }

  CompactGraphView view = CompactGraphView::FromGraph(query_graph.graph);
  const int n = view.node_count();
  const NodeId source = query_graph.source;

  IterativeScores result;
  result.scores.assign(n, 0.0);
  result.scores[source] = 1.0;
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (NodeId y = 0; y < n; ++y) {
      if (y == source) {
        next[y] = 1.0;
        continue;
      }
      if (view.node_p[y] <= 0.0) {
        next[y] = 0.0;
        continue;
      }
      double fail_all = 1.0;
      for (int32_t i = view.in_offset[y]; i < view.in_offset[y + 1]; ++i) {
        fail_all *= 1.0 - result.scores[view.edge_from[i]] * view.in_edge_q[i];
      }
      next[y] = (1.0 - fail_all) * view.node_p[y];
      max_delta = std::max(max_delta, std::abs(next[y] - result.scores[y]));
    }
    std::swap(result.scores, next);
    result.iterations = iter + 1;
    if (max_delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace biorank
