// Reliability-preserving graph reductions of Section 3.1: sink and
// orphan deletion, serial collapse, parallel merge, self-loop removal,
// applied to fixpoint while protecting the source and answer nodes.

#ifndef BIORANK_CORE_REDUCTION_H_
#define BIORANK_CORE_REDUCTION_H_

#include "core/query_graph.h"

namespace biorank {

/// Which graph transformation rules ReduceQueryGraph applies. The first
/// three are the paper's rules (Section 3.1, "Graph Reductions"); the last
/// two are sound extras that the paper's "delete inaccessible nodes" rule
/// implies for source-target reliability. All rules preserve the
/// source-target reliability of every protected node exactly (verified by
/// property tests against brute-force exact reliability).
struct ReductionOptions {
  bool delete_sinks = true;      ///< Remove non-answer nodes with no out-edges.
  bool collapse_serial = true;   ///< Splice out 1-in/1-out interior nodes.
  bool merge_parallel = true;    ///< Combine parallel edges: 1 - prod(1 - q).
  bool delete_orphans = true;    ///< Remove non-source nodes with no in-edges.
  bool delete_self_loops = true; ///< Self-loops never affect reachability.
};

/// Counters describing one ReduceQueryGraph run.
struct ReductionStats {
  int nodes_before = 0;
  int edges_before = 0;
  int nodes_after = 0;
  int edges_after = 0;
  int sink_deletions = 0;
  int orphan_deletions = 0;
  int serial_collapses = 0;
  int parallel_merges = 0;
  int self_loop_deletions = 0;
  int passes = 0;

  /// Fraction of nodes+edges removed, in [0,1]. The paper reports -78% on
  /// its 20 scenario graphs.
  double RemovedFraction() const {
    int before = nodes_before + edges_before;
    if (before == 0) return 0.0;
    int after = nodes_after + edges_after;
    return static_cast<double>(before - after) / static_cast<double>(before);
  }
};

/// Applies the transformation rules repeatedly until none changes the
/// graph (Section 3.1). The source and all answer nodes are protected from
/// deletion and from serial collapse. Mutates `query_graph` in place
/// (tombstoning removed elements) and returns counters.
///
/// Rule semantics:
///  - Serial collapse of interior node x with unique in-edge (y,x) and
///    unique out-edge (x,z), y != x != z: replace with edge (y,z) of
///    probability q(y,x) * p(x) * q(x,z). When y == z the spliced path
///    returns to its origin and contributes nothing; x is simply deleted.
///  - Parallel merge of edges e1..ek from x to y: one edge with
///    probability 1 - prod_i (1 - q(ei)).
ReductionStats ReduceQueryGraph(QueryGraph& query_graph,
                                const ReductionOptions& options = {});

}  // namespace biorank

#endif  // BIORANK_CORE_REDUCTION_H_
