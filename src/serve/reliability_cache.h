// Sharded, thread-safe LRU memo mapping canonical reduced-graph keys to
// reliability results (deterministic bounds, and — once a candidate has
// been resolved — the exact or converged-Monte-Carlo value). This is the
// serving layer's cross-request reuse store: tuples and successive
// exploratory queries whose reduced evidence subgraphs are isomorphic
// resolve to one cached computation.

#ifndef BIORANK_SERVE_RELIABILITY_CACHE_H_
#define BIORANK_SERVE_RELIABILITY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/canonical.h"

namespace biorank::serve {

/// One cached resolution state for a canonical key. Entries are created
/// with bounds only (cheap, always available after the bounding pass) and
/// upgraded in place once a value is computed. Every field is a pure
/// function of the canonical key, which is what keeps service output
/// bit-identical with the cache on or off.
struct CacheEntry {
  double lower = 0.0;       ///< Deterministic lower reliability bound.
  double upper = 1.0;       ///< Deterministic upper reliability bound.
  bool has_value = false;   ///< True once the reliability is resolved.
  double value = 0.0;       ///< Resolved reliability (clamped to bounds).
  bool exact = false;       ///< Value from closed form / factoring, not MC.
  int64_t trials = 0;       ///< MC trials spent so far (0 for exact values).
  /// Integer reach count over the first `trials` trials of the shard
  /// schedule. While `trials` is short of the service's convergence
  /// target the entry is a resumable partial MC state (has_value stays
  /// false); any later refinement — this request's or another's — picks
  /// up at the next shard, so partial work is shared across handles.
  int64_t tally = 0;
};

/// Monotonic counters; `entries` is the current live total. The snapshot
/// satisfies `insertions - evictions - invalidations == entries` because
/// Stats() holds every shard lock at once (see Stats()).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;       ///< Capacity-driven LRU drops.
  uint64_t invalidations = 0;   ///< Entries dropped by Erase/InvalidateKeys/Clear.
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Configuration for ReliabilityCache.
struct ReliabilityCacheOptions {
  /// Total entry budget across all shards (>= 1). Each shard holds
  /// ceil(capacity / shards) entries and evicts its own LRU tail.
  size_t capacity = 1 << 16;
  /// Number of independent shards (clamped to [1, capacity]).
  int shards = 16;
};

/// Sharded LRU cache. Shard = canonical hash, so isomorphic candidates
/// always land on the same shard; each shard has its own mutex, LRU list,
/// and capacity slice, so pool threads resolving different candidates
/// rarely contend.
class ReliabilityCache {
 public:
  explicit ReliabilityCache(ReliabilityCacheOptions options = {});

  /// Returns the entry for `key` (touching its LRU position) or nullopt.
  /// Counts one hit or miss.
  std::optional<CacheEntry> Get(const CanonicalKey& key);

  /// Inserts or overwrites the entry for `key` and marks it most
  /// recently used; evicts the shard's LRU tail beyond capacity.
  void Put(const CanonicalKey& key, const CacheEntry& entry);

  /// Removes the entry for `key` if present; returns whether one was
  /// removed. Counts one invalidation when it was. Never counts a
  /// hit/miss — invalidation is bookkeeping, not a lookup.
  bool Erase(const CanonicalKey& key);

  /// Batch Erase: removes every present key and returns how many entries
  /// were dropped. The ingest layer calls this with exactly the canonical
  /// keys an applied EvidenceDelta orphaned, so the rest of the cache
  /// stays warm across updates (the alternative — Clear() — discards
  /// every unaffected answer's bounds and values too).
  size_t InvalidateKeys(const std::vector<CanonicalKey>& keys);

  /// Race-free aggregated snapshot: all shard locks are held at once (the
  /// only multi-shard lock site, so lock order is trivially consistent),
  /// making the cross-shard totals a true point-in-time state — under
  /// concurrent mutation, `insertions - evictions - invalidations ==
  /// entries` still holds in the returned value.
  CacheStats Stats() const;

  /// Drops every entry (monotonic counters are kept; the dropped entries
  /// count as invalidations).
  void Clear();

  /// Point-in-time copy of every entry, as (canonical repr, entry)
  /// pairs — the storage layer's checkpoint export. Order is
  /// shard-ascending, LRU-oldest first within a shard, so feeding the
  /// pairs back through Restore() in order reproduces the recency order
  /// (most recently used ends up at the front again). Bounds-only and
  /// partial-MC entries are exported too: every CacheEntry field is a
  /// pure function of the canonical key (the bit-identity contract), so
  /// a restored partial state resumes exactly where the original left
  /// off — and the bounds-only entries are what lets a warm boot keep
  /// pruning without re-resolving, preserving the pre-kill hit rate.
  std::vector<std::pair<std::string, CacheEntry>> Export() const;

  /// Re-inserts exported entries (hashes are recomputed from the reprs —
  /// a canonical hash is a pure function of the repr). Counts as normal
  /// insertions; capacity eviction applies as usual.
  void Restore(const std::vector<std::pair<std::string, CacheEntry>>& entries);

  const ReliabilityCacheOptions& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    /// Most recent at front. Stores (repr, entry).
    std::list<std::pair<std::string, CacheEntry>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, CacheEntry>>::iterator>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  Shard& ShardFor(const CanonicalKey& key);

  ReliabilityCacheOptions options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace biorank::serve

#endif  // BIORANK_SERVE_RELIABILITY_CACHE_H_
