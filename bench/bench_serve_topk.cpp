// Serving-shaped hot path on the Table 1 workload: batched top-k
// reliability ranking of the 20 scenario-1 query graphs through the
// api::Server front door (canonical keys -> sharded reliability cache ->
// deterministic bounds -> top-k pruning -> exact/MC only where
// needed). Reports the cache hit rate and the fraction of fresh
// candidates the bounds pruned, and checks that served output is
// bit-identical to a cache-off single-thread reference server — the
// acceptance gates of the serve layer.
//
// BENCH_serve_topk.json metrics: cache_hit_rate (> 0.5 expected on this
// workload), pruned_fraction (> 0.3 expected), deterministic_output,
// and obs_overhead_ratio — the same cache-off workload through a bare
// (registry-free) RankingService vs one recording into a registry, so
// the cost of the metrics hot path stays measured (report-only; the
// zero-perturbation *output* contract is gated, here and in the tests).

#include <algorithm>
#include <iostream>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "integrate/scenario_harness.h"
#include "obs/metrics.h"
#include "serve/ranking_service.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

/// A Wheatstone-bridge query graph (the canonical irreducible residue):
/// per-target reduction cannot collapse it, so serving it exercises the
/// factoring and Monte Carlo resolution phases the Table-1 workload
/// never reaches (its per-target subgraphs all reduce completely).
QueryGraph MakeBridge(double base) {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId x = b.Node(1.0);
  NodeId y = b.Node(1.0);
  NodeId t = b.Node(1.0);
  b.Edge(s, x, base);
  b.Edge(s, y, base + 0.10);
  b.Edge(x, y, 0.5);
  b.Edge(x, t, base + 0.20);
  b.Edge(y, t, base + 0.15);
  return std::move(b).Build({t});
}

}  // namespace

int main() {
  const int k = 10;
  // At least 3 passes regardless of BIORANK_REPS: the > 0.5 hit-rate
  // gate needs two warm passes of margin (at exactly 2 passes the
  // cross-request rate sits on the floor), and a third pass costs
  // milliseconds on this workload.
  const int passes = std::max(3, bench::Repetitions(3));
  std::cout << "=== Serve top-" << k
            << ": scenario-1 workload through the ranking service ("
            << passes << " passes) ===\n\n";

  api::Server server;
  Result<std::vector<ScenarioQuery>> queries =
      server.harness().BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  // Reference outputs: a cache-off, inline single-thread server. The
  // serving contract says the cached, pooled server must reproduce these
  // bit-identically on every pass.
  api::ServerOptions reference_options;
  reference_options.ranking.enable_cache = false;
  reference_options.ranking.num_threads = 1;
  api::Server reference(reference_options);
  std::vector<std::vector<std::pair<NodeId, double>>> expected;
  for (const ScenarioQuery& query : queries.value()) {
    api::Result<api::QueryResponse> r = reference.RankGraph(query.graph, k);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    expected.push_back(api::RankingFingerprint(r.value()));
  }

  bool deterministic = true;
  serve::RequestStats total;
  TextTable table({"pass", "hit rate", "pruned", "bound=", "exact", "MC",
                   "wall s"});
  CsvWriter csv({"pass", "hit_rate", "pruned_fraction", "bound_exact",
                 "exact", "mc", "wall_s"});
  bench::JsonReport report("serve_topk");
  bench::WallTimer serve_timer;
  for (int pass = 0; pass < passes; ++pass) {
    serve::RequestStats pass_stats;
    bench::WallTimer pass_timer;
    for (size_t i = 0; i < queries.value().size(); ++i) {
      api::Result<api::QueryResponse> r =
          server.RankGraph(queries.value()[i].graph, k);
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        return 1;
      }
      pass_stats.Add(r.value().stats);
      if (api::RankingFingerprint(r.value()) != expected[i]) deterministic = false;
    }
    double pass_s = pass_timer.Seconds();
    std::vector<std::string> cells = {
        std::to_string(pass), FormatDouble(pass_stats.CacheHitRate(), 3),
        FormatDouble(pass_stats.PrunedFraction(), 3),
        std::to_string(pass_stats.bound_exact),
        std::to_string(pass_stats.exact),
        std::to_string(pass_stats.monte_carlo), FormatDouble(pass_s, 3)};
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"pass", pass},
                   {"hit_rate", pass_stats.CacheHitRate()},
                   {"pruned_fraction", pass_stats.PrunedFraction()},
                   {"bound_exact", pass_stats.bound_exact},
                   {"exact", pass_stats.exact},
                   {"mc", pass_stats.monte_carlo},
                   {"wall_s", pass_s}});
    total.Add(pass_stats);
  }
  double serve_s = serve_timer.Seconds();
  table.Print(std::cout);

  // Irreducible-residue mini-workload: six bridge graphs served twice,
  // once resolving by exact factoring (default options) and once with
  // factoring disabled so the seeded Monte Carlo path runs — the two
  // resolution phases the Table-1 workload never reaches. The MC run is
  // checked bit-identical against its own cache-off single-thread
  // reference.
  // The factoring pass reuses the cache-off reference server (factoring
  // is forced either way on a fresh bridge; a fifth server would only
  // regenerate the synthetic world for six RankGraph calls).
  api::Server& exact_server = reference;
  api::ServerOptions mc_options;
  mc_options.ranking.exact_max_edges = 0;
  api::Server mc_server(mc_options);
  api::ServerOptions mc_reference_options = mc_options;
  mc_reference_options.ranking.enable_cache = false;
  mc_reference_options.ranking.num_threads = 1;
  api::Server mc_reference(mc_reference_options);
  int irreducible_exact = 0;
  int irreducible_mc = 0;
  for (int i = 0; i < 6; ++i) {
    QueryGraph bridge = MakeBridge(0.30 + 0.05 * i);
    api::Result<api::QueryResponse> by_factoring =
        exact_server.RankGraph(bridge, 1);
    api::Result<api::QueryResponse> by_mc = mc_server.RankGraph(bridge, 1);
    api::Result<api::QueryResponse> by_mc_ref = mc_reference.RankGraph(bridge, 1);
    if (!by_factoring.ok() || !by_mc.ok() || !by_mc_ref.ok()) {
      std::cerr << "irreducible workload failed\n";
      return 1;
    }
    irreducible_exact += by_factoring.value().stats.exact;
    irreducible_mc += by_mc.value().stats.monte_carlo;
    if (api::RankingFingerprint(by_mc.value()) != api::RankingFingerprint(by_mc_ref.value())) {
      deterministic = false;
    }
  }
  bool irreducible_covered = irreducible_exact > 0 && irreducible_mc > 0;
  std::cout << "\nIrreducible residues: " << irreducible_exact
            << " factoring and " << irreducible_mc
            << " MC resolutions exercised.\n";

  // Observability overhead A/B: the identical cache-off single-thread
  // workload through a bare RankingService (registry = nullptr — the
  // metrics-free configuration) and through one recording into a live
  // registry. Min-of-reps per side keeps this container's scheduling
  // noise out of the ratio; the ratio itself stays report-only (a hard
  // gate on a timing ratio is flaky on shared 1-core CI hosts), but the
  // two sides' outputs are gated bit-identical — recording metrics must
  // never perturb a ranking.
  serve::RankingServiceOptions bare_options;
  bare_options.enable_cache = false;
  bare_options.num_threads = 1;
  serve::RankingService bare_service(bare_options);
  obs::Registry ab_registry;
  serve::RankingServiceOptions observed_options = bare_options;
  observed_options.registry = &ab_registry;
  serve::RankingService observed_service(observed_options);
  const int ab_reps = std::max(3, bench::Repetitions(3));
  double bare_s = 0.0;
  double observed_s = 0.0;
  for (int rep = 0; rep < ab_reps; ++rep) {
    double bare_pass = 0.0;
    double observed_pass = 0.0;
    for (const ScenarioQuery& query : queries.value()) {
      bench::WallTimer bare_timer;
      Result<serve::TopKResult> by_bare = bare_service.RankTopK(query.graph, k);
      bare_pass += bare_timer.Seconds();
      bench::WallTimer observed_timer;
      Result<serve::TopKResult> by_observed =
          observed_service.RankTopK(query.graph, k);
      observed_pass += observed_timer.Seconds();
      if (!by_bare.ok() || !by_observed.ok()) {
        std::cerr << "obs A/B workload failed\n";
        return 1;
      }
      const std::vector<serve::RankedCandidate>& bt = by_bare.value().top;
      const std::vector<serve::RankedCandidate>& ot = by_observed.value().top;
      if (bt.size() != ot.size()) deterministic = false;
      for (size_t j = 0; j < bt.size() && j < ot.size(); ++j) {
        if (bt[j].node != ot[j].node ||
            bt[j].reliability != ot[j].reliability) {
          deterministic = false;
        }
      }
    }
    bare_s = rep == 0 ? bare_pass : std::min(bare_s, bare_pass);
    observed_s = rep == 0 ? observed_pass : std::min(observed_s, observed_pass);
  }
  const double obs_overhead_ratio = observed_s / std::max(bare_s, 1e-9);
  std::cout << "Observability overhead: bare "
            << FormatDouble(bare_s * 1e3, 3) << " ms vs recorded "
            << FormatDouble(observed_s * 1e3, 3) << " ms per pass ("
            << FormatDouble((obs_overhead_ratio - 1.0) * 100.0, 2)
            << "% overhead, outputs bit-identical).\n";

  serve::CacheStats cache = server.Stats().cache;
  double hit_rate = total.CacheHitRate();
  double pruned_fraction = total.PrunedFraction();
  std::cout << "\nAggregate: " << total.candidates << " candidates, "
            << "hit rate " << FormatDouble(hit_rate, 3)
            << ", pruned fraction " << FormatDouble(pruned_fraction, 3)
            << ", " << total.monte_carlo << " MC resolutions ("
            << total.mc_trials << " trials), " << cache.entries
            << " cache entries.\n"
            << "Output " << (deterministic ? "bit-identical" : "DIVERGED")
            << " vs the cache-off single-thread reference.\n";
  bench::MaybeWriteCsv(csv, "serve_topk");

  report.SetWallTime(serve_s);
  report.SetMetric("k", k);
  report.SetMetric("passes", passes);
  report.SetMetric("graphs", static_cast<int64_t>(queries.value().size()));
  report.SetMetric("candidates", total.candidates);
  // Request-level rate: request-local duplicates (answers sharing one
  // canonical resolution) count as hits. cache_only_hit_rate is the
  // underlying store's rate — cross-request reuse only.
  report.SetMetric("cache_hit_rate", hit_rate);
  report.SetMetric("cache_only_hit_rate", cache.HitRate());
  report.SetMetric("pruned_fraction", pruned_fraction);
  report.SetMetric("bound_exact", total.bound_exact);
  report.SetMetric("exact_resolutions", total.exact);
  report.SetMetric("mc_resolutions", total.monte_carlo);
  report.SetMetric("mc_trials", total.mc_trials);
  report.SetMetric("cache_entries", static_cast<int64_t>(cache.entries));
  report.SetMetric("cache_evictions", static_cast<int64_t>(cache.evictions));
  report.SetMetric("irreducible_exact_resolutions", irreducible_exact);
  report.SetMetric("irreducible_mc_resolutions", irreducible_mc);
  report.SetMetric("deterministic_output", deterministic);
  report.SetMetric("obs_overhead_ratio", obs_overhead_ratio);
  report.SetMetric("obs_ab_reps", ab_reps);
  Status write_status = report.Write();

  bool pass_gates = hit_rate > 0.5 && pruned_fraction > 0.3;
  if (!pass_gates) {
    std::cerr << "serve gates FAILED: need cache_hit_rate > 0.5 and "
                 "pruned_fraction > 0.3\n";
  }
  if (!irreducible_covered) {
    std::cerr << "irreducible workload FAILED to exercise factoring + MC\n";
  }
  return deterministic && pass_gates && irreducible_covered &&
                 write_status.ok()
             ? 0
             : 1;
}
