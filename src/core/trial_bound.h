// The Appendix A trial-count bound n(epsilon, delta), derived from
// Bennett's inequality: how many Monte Carlo trials guarantee relative
// error epsilon with confidence 1 - delta (Theorem 3.1).

#ifndef BIORANK_CORE_TRIAL_BOUND_H_
#define BIORANK_CORE_TRIAL_BOUND_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace biorank {

/// Theorem 3.1: the number of independent Monte Carlo trials that
/// guarantees two nodes whose true reliabilities differ by at least
/// `epsilon` are ranked in the correct order with probability >= 1 - delta:
///
///   n = ceil( (1 + eps)^3 / (eps^2 * (1 + eps/3)) * ln(1 / delta) )
///
/// Derived in the paper's Appendix A from Bennett's inequality. With
/// epsilon = 0.02 and delta = 0.05 this evaluates to 7,896, which the
/// paper rounds up to "10,000 trials should be enough".
///
/// Requires epsilon in (0, 1] and delta in (0, 1).
Result<int64_t> RequiredMcTrials(double epsilon, double delta);

/// Splits a Monte Carlo trial budget into fixed-size shards: full shards
/// of `shard_trials` followed by one remainder shard. The schedule is a
/// pure function of (trials, shard_trials) — never of thread count — so a
/// sharded simulation where shard i draws from RNG stream (seed, i)
/// produces bit-identical counts on 1 thread and on N threads. Requires
/// trials >= 1 and shard_trials >= 1.
Result<std::vector<int64_t>> PlanTrialShards(int64_t trials,
                                             int64_t shard_trials);

}  // namespace biorank

#endif  // BIORANK_CORE_TRIAL_BOUND_H_
