#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace biorank {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::AddSeparator() { rows_.push_back({kSeparatorMarker}); }

void TextTable::Print(std::ostream& os) const {
  size_t columns = headers_.size();
  for (const auto& row : rows_) {
    if (!(row.size() == 1 && row[0] == kSeparatorMarker)) {
      columns = std::max(columns, row.size());
    }
  }
  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = std::max(widths[c], headers_[c].size());
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_rule = [&]() {
    for (size_t c = 0; c < columns; ++c) {
      os << std::string(widths[c] + 2, '-');
      if (c + 1 < columns) os << "+";
    }
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << PadRight(cell, widths[c]) << " ";
      if (c + 1 < columns) os << "|";
    }
    os << "\n";
  };

  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
}

std::string TextTable::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace biorank
