#include "core/trial_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace biorank {
namespace {

TEST(TrialBoundFormulaTest, MatchesAppendixAClosedForm) {
  for (double eps : {0.01, 0.02, 0.05, 0.1, 0.5}) {
    for (double delta : {0.01, 0.05, 0.2}) {
      double expected = std::ceil(std::pow(1.0 + eps, 3) /
                                  (eps * eps * (1.0 + eps / 3.0)) *
                                  std::log(1.0 / delta));
      Result<int64_t> n = RequiredMcTrials(eps, delta);
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(n.value(), static_cast<int64_t>(expected));
    }
  }
}

TEST(TrialBoundFormulaTest, LargeEpsilonNeedsFewTrials) {
  Result<int64_t> n = RequiredMcTrials(0.5, 0.05);
  ASSERT_TRUE(n.ok());
  EXPECT_LT(n.value(), 50);
}

TEST(TrialShardPlanTest, SplitsIntoFullShardsPlusRemainder) {
  Result<std::vector<int64_t>> plan = PlanTrialShards(2600, 512);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(plan.value()[i], 512);
  EXPECT_EQ(plan.value()[5], 40);
}

TEST(TrialShardPlanTest, ExactMultipleHasNoRemainderShard) {
  Result<std::vector<int64_t>> plan = PlanTrialShards(1024, 512);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value(), (std::vector<int64_t>{512, 512}));
}

TEST(TrialShardPlanTest, FewerTrialsThanShardSizeGiveOneShard) {
  Result<std::vector<int64_t>> plan = PlanTrialShards(7, 512);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value(), (std::vector<int64_t>{7}));
}

TEST(TrialShardPlanTest, ShardsAlwaysSumToTrials) {
  for (int64_t trials : {1, 7, 511, 512, 513, 9999, 100000}) {
    Result<std::vector<int64_t>> plan = PlanTrialShards(trials, 512);
    ASSERT_TRUE(plan.ok());
    int64_t sum = 0;
    for (int64_t shard : plan.value()) sum += shard;
    EXPECT_EQ(sum, trials);
  }
}

TEST(TrialShardPlanTest, RejectsBadArguments) {
  EXPECT_FALSE(PlanTrialShards(0, 512).ok());
  EXPECT_FALSE(PlanTrialShards(-1, 512).ok());
  EXPECT_FALSE(PlanTrialShards(100, 0).ok());
  EXPECT_FALSE(PlanTrialShards(100, -5).ok());
}

// Empirical validation of Theorem 3.1: with n = RequiredMcTrials(eps,
// delta) Bernoulli samples per node, two nodes whose true reliabilities
// differ by eps are misranked with frequency at most delta. The bound is
// conservative, so we verify the guarantee direction only.
TEST(TrialBoundEmpiricalTest, MisrankingFrequencyIsWithinDelta) {
  const double eps = 0.2;
  const double delta = 0.1;
  Result<int64_t> trials_needed = RequiredMcTrials(eps, delta);
  ASSERT_TRUE(trials_needed.ok());
  const int64_t n = trials_needed.value();

  const double r_hi = 0.55;
  const double r_lo = r_hi - eps;
  Rng rng(7777);
  const int repetitions = 400;
  int misranked = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    int64_t hits_hi = 0, hits_lo = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(r_hi)) ++hits_hi;
      if (rng.NextBernoulli(r_lo)) ++hits_lo;
    }
    if (hits_lo >= hits_hi) ++misranked;
  }
  double frequency = static_cast<double>(misranked) / repetitions;
  EXPECT_LE(frequency, delta);
}

// Sanity direction: far fewer trials than the bound demands do produce
// misrankings at the same eps (i.e. the bound is not vacuous).
TEST(TrialBoundEmpiricalTest, TooFewTrialsDoMisrank) {
  const double eps = 0.05;
  const double r_hi = 0.5;
  const double r_lo = r_hi - eps;
  Rng rng(8888);
  const int repetitions = 300;
  const int64_t tiny_n = 10;
  int misranked = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    int64_t hits_hi = 0, hits_lo = 0;
    for (int64_t i = 0; i < tiny_n; ++i) {
      if (rng.NextBernoulli(r_hi)) ++hits_hi;
      if (rng.NextBernoulli(r_lo)) ++hits_lo;
    }
    if (hits_lo >= hits_hi) ++misranked;
  }
  EXPECT_GT(misranked, 0);
}

}  // namespace
}  // namespace biorank
