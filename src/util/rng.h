// Deterministic SplitMix64-seeded PRNG wrapper so every experiment
// and test is reproducible from a single seed.

#ifndef BIORANK_UTIL_RNG_H_
#define BIORANK_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace biorank {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and as a cheap stand-alone generator.
uint64_t SplitMix64Next(uint64_t& state);

/// Stateless hash of (seed, stream) to an independent child seed: two
/// SplitMix64 rounds with the stream index injected between them. This is
/// what makes sharded Monte Carlo deterministic regardless of thread
/// count — shard i always draws from stream (seed, i) no matter which
/// worker runs it, unlike `Rng::Split()` whose children depend on how many
/// splits preceded them.
uint64_t DeriveStreamSeed(uint64_t seed, uint64_t stream);

/// Deterministic, seedable pseudo-random number generator.
///
/// Implementation: xoshiro256++ (Blackman & Vigna), seeded from a single
/// 64-bit seed via SplitMix64. Monte Carlo reliability estimation
/// (Algorithm 3.1 of the paper) consumes on the order of |N|+|E| uniform
/// draws per trial and 1e4 trials per query, so the generator must be fast;
/// xoshiro256++ is roughly 3x faster than std::mt19937_64 while passing
/// BigCrush. All experiments in this repository pass explicit seeds so that
/// every table and figure regenerates bit-identically.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds give equal
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1). Uses the top 53 bits of NextUint64().
  double NextDouble();

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double NextUniform(double lo, double hi);

  /// Standard normal draw (Box-Muller, one value per call with caching).
  double NextGaussian();

  /// Normal draw with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Exponentially distributed draw with the given rate (lambda > 0).
  double NextExponential(double rate);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns an independent child generator. Deterministic: the child seed
  /// is derived from this generator's stream, so fan-out (e.g. one Rng per
  /// Monte Carlo worker) stays reproducible.
  Rng Split();

  /// Generator for the `stream`-th parallel shard of a computation rooted
  /// at `seed` (see DeriveStreamSeed). Streams are mutually independent
  /// and depend only on (seed, stream), never on thread scheduling.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    return Rng(DeriveStreamSeed(seed, stream));
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace biorank

#endif  // BIORANK_UTIL_RNG_H_
