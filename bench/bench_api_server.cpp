// Mixed multi-session workload through the api::Server front door: the
// 20 Table-1 proteins served as interleaved one-shot batches (RunBatch
// fanning across the shared pool), live sessions taking evidence deltas,
// and post-update session queries — all sharing one canonical
// reliability cache. Gates the two front-door contracts:
//
//  * RunBatch output is bit-identical to serial single-request execution
//    (checked against a serial 1-thread server and a 4-way-capped
//    server — "at any thread count"), and live sessions stay
//    bit-identical to from-scratch rebuilds of their updated graphs;
//  * the mixed workload keeps riding the shared cache across phases
//    (mixed_hit_rate > 0.5 — batches re-resolve nothing that sessions
//    or earlier batches already resolved, deltas invalidate selectively).
//
// BENCH_api_server.json metrics: deterministic_batch,
// session_rebuild_identical, mixed_hit_rate (> 0.5 gate), per-phase
// latencies, session/eviction counters.

#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/query_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

/// One update phase's delta for a live session: reweights ~2% of the
/// session graph's evidence edges and revises ~1% of its tuple
/// probabilities — deterministic in (session index, phase), touching
/// well under 10% of tuples so the shared cache stays mostly warm.
ingest::EvidenceDelta BuildDelta(const QueryGraph& graph,
                                 uint64_t session_index, uint64_t phase) {
  Rng rng = Rng::ForStream(20260726, session_index * 1000 + phase);
  ingest::EvidenceDelta delta;
  std::vector<EdgeId> edges;
  for (EdgeId e : graph.graph.AliveEdges()) {
    if (graph.graph.edge(e).from != graph.source) edges.push_back(e);
  }
  int reweights = std::max<int>(1, static_cast<int>(edges.size()) / 50);
  rng.Shuffle(edges);
  for (int i = 0; i < reweights && i < static_cast<int>(edges.size()); ++i) {
    double q = graph.graph.edge(edges[static_cast<size_t>(i)]).q;
    delta.reweight_edges.push_back(
        {edges[static_cast<size_t>(i)],
         std::min(1.0, std::max(0.05, q * rng.NextUniform(0.9, 1.1)))});
  }
  std::vector<NodeId> nodes = graph.graph.AliveNodes();
  rng.Shuffle(nodes);
  int revisions = std::max<int>(1, static_cast<int>(nodes.size()) / 100);
  int revised = 0;
  for (NodeId n : nodes) {
    if (revised >= revisions) break;
    if (n == graph.source) continue;
    double p = graph.graph.node(n).p;
    delta.revise_node_probs.push_back(
        {n, std::min(1.0, std::max(0.05, p * rng.NextUniform(0.95, 1.05)))});
    ++revised;
  }
  return delta;
}

}  // namespace

int main() {
  const int k = 10;
  const int phases = std::max(2, bench::Repetitions(3));
  std::cout << "=== api::Server mixed workload: batches + live sessions + "
               "deltas over the Table-1 graphs ("
            << phases << " phases, top-" << k << ") ===\n\n";

  api::Server server;
  std::vector<api::QueryRequest> requests;
  for (const ScenarioCase& spec :
       BuildScenarioCases(server.universe(), ScenarioId::kScenario1WellKnown)) {
    requests.push_back(api::MakeProteinFunctionRequest(spec.gene_symbol, k));
  }

  // Serial reference: the same requests, one at a time, on a fresh
  // 1-thread server. Every batched response must match bit for bit.
  api::ServerOptions serial_options;
  serial_options.ranking.num_threads = 1;
  api::Server serial(serial_options);
  std::vector<std::vector<std::pair<NodeId, double>>> expected;
  for (const api::QueryRequest& request : requests) {
    api::Result<api::QueryResponse> response = serial.Query(request);
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    expected.push_back(api::RankingFingerprint(response.value()));
  }

  // Live sessions: one per protein, sharing the main server's cache.
  std::vector<api::SessionId> sessions;
  for (const api::QueryRequest& request : requests) {
    api::QueryRequest open = request;
    open.options.top_k = 0;
    api::Result<api::SessionInfo> session = server.OpenSession(open);
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    sessions.push_back(session.value().id);
  }

  bench::WallTimer workload_timer;
  bool deterministic_batch = true;
  serve::RequestStats mixed;
  double batch_s_total = 0.0;
  double update_ms_total = 0.0;
  double queue_s_total = 0.0;
  int updates = 0;
  TextTable table({"phase", "batch s", "batch hit", "update ms", "query s",
                   "session hit"});
  CsvWriter csv({"phase", "batch_s", "batch_hit_rate", "update_ms_mean",
                 "query_s", "session_hit_rate"});
  bench::JsonReport report("api_server");

  for (int phase = 0; phase < phases; ++phase) {
    // Batch pass: 20 independent one-shot requests across the pool.
    bench::WallTimer batch_timer;
    api::Result<std::vector<api::QueryResponse>> batch =
        server.RunBatch(requests);
    double batch_s = batch_timer.Seconds();
    batch_s_total += batch_s;
    if (!batch.ok()) {
      std::cerr << batch.status() << "\n";
      return 1;
    }
    serve::RequestStats batch_stats;
    for (size_t i = 0; i < batch.value().size(); ++i) {
      batch_stats.Add(batch.value()[i].stats);
      queue_s_total += batch.value()[i].timing.queue_s;
      if (api::RankingFingerprint(batch.value()[i]) != expected[i]) {
        deterministic_batch = false;
      }
    }
    mixed.Add(batch_stats);

    // Delta pass: one evidence update per live session.
    double phase_update_ms = 0.0;
    for (size_t i = 0; i < sessions.size(); ++i) {
      api::Result<QueryGraph> snapshot = server.SessionSnapshot(sessions[i]);
      if (!snapshot.ok()) {
        std::cerr << snapshot.status() << "\n";
        return 1;
      }
      ingest::EvidenceDelta delta = BuildDelta(
          snapshot.value(), i, static_cast<uint64_t>(phase));
      bench::WallTimer update_timer;
      api::Result<ingest::ApplyReport> applied =
          server.ApplyDelta(sessions[i], delta);
      phase_update_ms += update_timer.Seconds() * 1e3;
      ++updates;
      if (!applied.ok()) {
        std::cerr << applied.status() << "\n";
        return 1;
      }
    }
    update_ms_total += phase_update_ms;

    // Session query pass: the post-update live rankings.
    serve::RequestStats session_stats;
    bench::WallTimer query_timer;
    for (api::SessionId id : sessions) {
      api::Result<api::QueryResponse> response = server.QuerySession(id, k);
      if (!response.ok()) {
        std::cerr << response.status() << "\n";
        return 1;
      }
      session_stats.Add(response.value().stats);
    }
    double query_s = query_timer.Seconds();
    mixed.Add(session_stats);

    double update_ms_mean =
        phase_update_ms / static_cast<double>(sessions.size());
    std::vector<std::string> cells = {
        std::to_string(phase), FormatDouble(batch_s, 3),
        FormatDouble(batch_stats.CacheHitRate(), 3),
        FormatDouble(update_ms_mean, 3), FormatDouble(query_s, 3),
        FormatDouble(session_stats.CacheHitRate(), 3)};
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"phase", phase},
                   {"batch_s", batch_s},
                   {"batch_hit_rate", batch_stats.CacheHitRate()},
                   {"update_ms_mean", update_ms_mean},
                   {"query_s", query_s},
                   {"session_hit_rate", session_stats.CacheHitRate()}});
  }
  double workload_s = workload_timer.Seconds();
  table.Print(std::cout);

  // "At any thread count": the same batch on a 4-way-capped fresh server
  // must reproduce the serial rankings too.
  api::ServerOptions quad_options;
  quad_options.ranking.num_threads = 4;
  api::Server quad(quad_options);
  api::Result<std::vector<api::QueryResponse>> quad_batch =
      quad.RunBatch(requests);
  if (!quad_batch.ok()) {
    std::cerr << quad_batch.status() << "\n";
    return 1;
  }
  for (size_t i = 0; i < quad_batch.value().size(); ++i) {
    if (api::RankingFingerprint(quad_batch.value()[i]) != expected[i]) {
      deterministic_batch = false;
    }
  }

  // Live sessions vs from-scratch rebuilds of their updated graphs.
  bool session_rebuild_identical = true;
  api::ServerOptions cold_options;
  cold_options.ranking.enable_cache = false;
  cold_options.ranking.num_threads = 1;
  api::Server cold(cold_options);
  for (api::SessionId id : sessions) {
    api::Result<QueryGraph> snapshot = server.SessionSnapshot(id);
    api::Result<api::QueryResponse> incremental = server.QuerySession(id, k);
    if (!snapshot.ok() || !incremental.ok()) {
      std::cerr << "session readback failed\n";
      return 1;
    }
    api::Result<api::QueryResponse> rebuilt =
        cold.RankGraph(snapshot.value(), k);
    if (!rebuilt.ok()) {
      std::cerr << rebuilt.status() << "\n";
      return 1;
    }
    if (api::RankingFingerprint(incremental.value()) != api::RankingFingerprint(rebuilt.value())) {
      session_rebuild_identical = false;
    }
  }

  // Anytime pass: the canonical irreducible residue (the Wheatstone
  // bridge) served bounds-first through RankGraph on an MC-forced
  // server, then refined to convergence in fixed-budget increments.
  // Measures the new PhaseTiming fields — queue_s (admission wait,
  // aggregated above across the whole mix) and refine_s (incremental MC
  // time) — and checks the fully refined ranking lands bit-identically
  // on an independent server's blocking fingerprint. (The protein mix
  // cannot drive this loop: its residues are bound-exact, so an anytime
  // protein query converges at the bounds pass with zero increments.)
  double anytime_refine_s = 0.0;
  int anytime_increments = 0;
  bool anytime_identical = true;
  {
    QueryGraph bridge = MakeFig4bWheatstoneBridge();
    api::ServerOptions fresh_options;
    fresh_options.ranking.exact_max_edges = 0;  // Bridge must MC-refine.
    api::Server fresh(fresh_options);
    api::QueryOptions anytime_options;
    anytime_options.mode = api::QueryMode::kAnytime;
    api::Result<api::QueryResponse> first =
        fresh.RankGraph(bridge, anytime_options);
    if (!first.ok()) {
      std::cerr << first.status() << "\n";
      return 1;
    }
    queue_s_total += first.value().timing.queue_s;
    anytime_refine_s += first.value().timing.refine_s;
    api::RefinementHandle handle = first.value().refinement;
    std::vector<std::pair<NodeId, double>> final_ranking =
        api::RankingFingerprint(first.value());
    while (handle.valid()) {
      api::QueryOptions step;
      step.mc_trial_budget = 2048;
      api::Result<api::QueryResponse> refined = fresh.Refine(handle, step);
      if (!refined.ok()) {
        std::cerr << refined.status() << "\n";
        return 1;
      }
      ++anytime_increments;
      anytime_refine_s += refined.value().timing.refine_s;
      queue_s_total += refined.value().timing.queue_s;
      handle = refined.value().refinement;
      final_ranking = api::RankingFingerprint(refined.value());
    }
    api::Server reference(fresh_options);
    api::Result<api::QueryResponse> blocking = reference.RankGraph(bridge, 0);
    if (!blocking.ok()) {
      std::cerr << blocking.status() << "\n";
      return 1;
    }
    anytime_identical =
        final_ranking == api::RankingFingerprint(blocking.value());
  }

  // Tracing on vs. off must be bit-identical (the obs layer's
  // zero-perturbation contract): re-serve the first request with a
  // caller trace attached and compare against the serial fingerprint.
  bool tracing_identical = true;
  {
    obs::Trace trace(1);
    api::QueryRequest traced = requests[0];
    traced.options.trace = &trace;
    api::Result<api::QueryResponse> response = server.Query(traced);
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    tracing_identical =
        api::RankingFingerprint(response.value()) == expected[0] &&
        trace.SpanCount() > 0;
  }

  // Idle eviction: retire every session through the registry's sweep
  // (each CloseSession/EvictIdleSessions path is exercised).
  if (!server.CloseSession(sessions[0]).ok()) {
    std::cerr << "close failed\n";
    return 1;
  }
  size_t evicted = server.EvictIdleSessions(0);

  api::ServerStats stats = server.Stats();
  double mixed_hit_rate = mixed.CacheHitRate();
  double update_ms_mean =
      updates == 0 ? 0.0 : update_ms_total / static_cast<double>(updates);
  // The in-phase request counts `mixed` actually aggregated (the
  // rebuild-check session queries below the phase loop are not part of
  // the measured mix).
  const size_t mixed_batch_requests = requests.size() * phases;
  const size_t mixed_session_queries = sessions.size() * phases;
  std::cout << "\nAggregate: mixed hit rate " << FormatDouble(mixed_hit_rate, 3)
            << " over " << mixed_batch_requests << " batched requests + "
            << mixed_session_queries << " session queries, "
            << stats.deltas_applied << " deltas (mean "
            << FormatDouble(update_ms_mean, 3) << " ms), " << evicted
            << " sessions idle-evicted at shutdown.\n"
            << "RunBatch " << (deterministic_batch ? "bit-identical" : "DIVERGED")
            << " vs serial execution (1-thread and 4-way servers); sessions "
            << (session_rebuild_identical ? "bit-identical" : "DIVERGED")
            << " vs from-scratch rebuilds.\n"
            << "Anytime: refined to the blocking ranking in "
            << anytime_increments << " increments ("
            << FormatDouble(anytime_refine_s, 3) << " s refining), "
            << (anytime_identical ? "bit-identical" : "DIVERGED")
            << "; admission queue wait " << FormatDouble(queue_s_total, 4)
            << " s across the mix.\n";
  bench::MaybeWriteCsv(csv, "api_server");

  report.SetWallTime(workload_s);
  report.SetMetric("k", k);
  report.SetMetric("phases", phases);
  report.SetMetric("graphs", static_cast<int64_t>(requests.size()));
  report.SetMetric("batches", static_cast<int64_t>(stats.batches));
  report.SetMetric("batch_requests", static_cast<int64_t>(stats.batch_requests));
  report.SetMetric("session_queries",
                   static_cast<int64_t>(stats.session_queries));
  report.SetMetric("deltas", static_cast<int64_t>(stats.deltas_applied));
  report.SetMetric("sessions_opened",
                   static_cast<int64_t>(stats.sessions_opened));
  report.SetMetric("sessions_evicted",
                   static_cast<int64_t>(stats.sessions_evicted));
  report.SetMetric("mixed_hit_rate", mixed_hit_rate);
  report.SetMetric("batch_s_mean", batch_s_total / phases);
  report.SetMetric("update_ms_mean", update_ms_mean);
  report.SetMetric("cache_entries", static_cast<int64_t>(stats.cache.entries));
  report.SetMetric("cache_invalidations",
                   static_cast<int64_t>(stats.cache.invalidations));
  report.SetMetric("queue_s_total", queue_s_total);
  report.SetMetric("anytime_refine_s", anytime_refine_s);
  report.SetMetric("anytime_increments", anytime_increments);
  report.SetMetric("deterministic_batch", deterministic_batch);
  report.SetMetric("session_rebuild_identical", session_rebuild_identical);
  report.SetMetric("anytime_identical", anytime_identical);
  report.SetMetric("tracing_identical", tracing_identical);

  // The served latency distribution, read back from the shared
  // biorank_api_query_seconds histogram — the same numbers a Prometheus
  // scrape of this server would report.
  obs::Snapshot metrics_snapshot = server.MetricsSnapshot();
  report.SetMetric("metrics_exposed",
                   static_cast<int64_t>(metrics_snapshot.MetricCount()));
  for (const obs::HistogramSnapshot& h : metrics_snapshot.histograms) {
    if (h.name == "biorank_api_query_seconds") {
      report.SetMetric("hist_queries", static_cast<int64_t>(h.count));
      report.SetMetric("hist_p50_ms", h.Quantile(0.5) * 1e3);
      report.SetMetric("hist_p99_ms", h.Quantile(0.99) * 1e3);
      report.SetMetric("hist_p999_ms", h.Quantile(0.999) * 1e3);
    }
  }
  Status metrics_status =
      bench::WriteMetricsDump("api_server", server.MetricsText());
  Status write_status = report.Write();

  bool hit_gate = mixed_hit_rate > 0.5;
  if (!hit_gate) {
    std::cerr << "api gate FAILED: need mixed_hit_rate > 0.5\n";
  }
  if (!deterministic_batch) {
    std::cerr << "api gate FAILED: RunBatch diverged from serial execution\n";
  }
  if (!session_rebuild_identical) {
    std::cerr << "api gate FAILED: session output diverged from rebuild\n";
  }
  if (!anytime_identical) {
    std::cerr << "api gate FAILED: refined anytime ranking diverged from "
                 "the blocking answer\n";
  }
  if (!tracing_identical) {
    std::cerr << "api gate FAILED: tracing perturbed the ranking\n";
  }
  return deterministic_batch && session_rebuild_identical && hit_gate &&
                 anytime_identical && tracing_identical &&
                 write_status.ok() && metrics_status.ok()
             ? 0
             : 1;
}
