// Simulated Entrez Gene wrapper: gene records keyed by symbol, with
// status-derived probabilities (Figure 1 pipeline).

#ifndef BIORANK_SOURCES_ENTREZ_GENE_H_
#define BIORANK_SOURCES_ENTREZ_GENE_H_

#include <vector>

#include "datagen/evidence_model.h"
#include "datagen/protein_universe.h"
#include "schema/transforms.h"
#include "sources/data_source.h"

namespace biorank {

/// One EntrezGene annotation row, EntrezGene(idEG, StatusCode, idGO): gene
/// `gene_id` is annotated with GO term `go_index` at curation status
/// `status`. Each row becomes one node of the query graph with
/// pr = GeneStatusToPr(status).
struct GeneAnnotation {
  int gene_id = 0;
  GeneStatus status = GeneStatus::kInferred;
  int go_index = 0;
};

/// Knobs for the simulated curated annotation tables.
struct EntrezGeneOptions {
  /// Fraction of a protein's well-known functions that actually have a
  /// curated row (curation lags the literature; the rest surface only
  /// through family transfer).
  double curated_coverage = 0.70;
  /// Probability that a true-but-uncurated function shows up as a
  /// computational prediction.
  double predicted_leak_probability = 0.7;
  /// Spurious (false) annotations per gene.
  int min_spurious = 1;
  int max_spurious = 2;
  /// Fraction of spurious rows carrying a deceptively high status code
  /// (curation disagreements) — strong single-path noise that counting
  /// measures shrug off but probabilistic scores must rank.
  double spurious_strong_fraction = 0.6;
};

/// Simulated EntrezGene: the curated annotation database. Gene ids
/// coincide with protein indices (one gene per protein). Holds curated
/// rows for curated functions, Predicted/Model/Inferred rows for leaked
/// true functions and noise — and deliberately nothing for recently
/// published functions (they have not propagated into curation yet;
/// that is the premise of scenario 2).
class EntrezGeneSource : public DataSource {
 public:
  EntrezGeneSource(const ProteinUniverse& universe,
                   const EvidenceModel& evidence,
                   const EntrezGeneOptions& options = {});

  std::string name() const override { return "EntrezGene"; }
  int entity_set_count() const override { return 2; }
  int relationship_count() const override { return 3; }

  /// Annotation rows of one gene; empty for out-of-range ids.
  const std::vector<GeneAnnotation>& AnnotationsFor(int gene_id) const;

  int total_annotations() const { return total_; }

 private:
  std::vector<std::vector<GeneAnnotation>> annotations_;
  std::vector<GeneAnnotation> empty_;
  int total_ = 0;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_ENTREZ_GENE_H_
