#include "sources/entrez_gene.h"

#include <set>

#include "util/rng.h"

namespace biorank {

EntrezGeneSource::EntrezGeneSource(const ProteinUniverse& universe,
                                   const EvidenceModel& evidence,
                                   const EntrezGeneOptions& options) {
  Rng rng(universe.options().seed ^ 0xE6E5EULL);
  annotations_.resize(universe.num_proteins());
  for (int i = 0; i < universe.num_proteins(); ++i) {
    const Protein& protein = universe.protein(i);
    std::set<int> recorded;

    // Hypothetical proteins are "of unknown function": curation holds
    // nothing for them (scenario 3's premise).
    if (protein.study_level == StudyLevel::kHypothetical) continue;

    // Curated rows at mixed statuses; coverage is incomplete, and
    // less-studied background proteins get lower statuses.
    bool background = protein.study_level == StudyLevel::kBackground;
    for (int go : protein.curated_functions) {
      if (!rng.NextBernoulli(options.curated_coverage)) continue;
      GeneStatus status = background
                              ? evidence.SampleBackgroundStatus(rng)
                              : evidence.SampleCuratedStatus(rng);
      annotations_[i].push_back(GeneAnnotation{i, status, go});
      recorded.insert(go);
    }
    // True-but-uncurated functions leak as computational predictions —
    // except recently published ones, which no curated source holds yet.
    std::set<int> recent(protein.recent_functions.begin(),
                         protein.recent_functions.end());
    for (int go : protein.true_functions) {
      if (recorded.count(go) > 0 || recent.count(go) > 0) continue;
      if (rng.NextBernoulli(options.predicted_leak_probability)) {
        annotations_[i].push_back(
            GeneAnnotation{i, evidence.SamplePredictedStatus(rng), go});
        recorded.insert(go);
      }
    }
    // Spurious low-status rows.
    int spurious = static_cast<int>(
        rng.NextInt(options.min_spurious, options.max_spurious));
    for (int s = 0; s < spurious; ++s) {
      int go = static_cast<int>(rng.NextBounded(universe.ontology().size()));
      if (recorded.count(go) > 0) continue;
      GeneStatus status;
      if (rng.NextBernoulli(options.spurious_strong_fraction)) {
        double u = rng.NextDouble();
        status = u < 0.25   ? GeneStatus::kReviewed
                 : u < 0.65 ? GeneStatus::kValidated
                            : GeneStatus::kProvisional;
      } else {
        status = rng.NextBernoulli(0.5) ? GeneStatus::kModel
                                        : GeneStatus::kInferred;
      }
      annotations_[i].push_back(GeneAnnotation{i, status, go});
      recorded.insert(go);
    }
    total_ += static_cast<int>(annotations_[i].size());
  }
}

const std::vector<GeneAnnotation>& EntrezGeneSource::AnnotationsFor(
    int gene_id) const {
  if (gene_id < 0 || gene_id >= static_cast<int>(annotations_.size())) {
    return empty_;
  }
  return annotations_[gene_id];
}

}  // namespace biorank
