// Closed-form expected average precision of a uniformly random
// ranking - the baseline floor in the quality figures.

#ifndef BIORANK_EVAL_RANDOM_AP_H_
#define BIORANK_EVAL_RANDOM_AP_H_

#include "util/status.h"

namespace biorank {

/// Definition 4.1: the expected average precision of an arbitrarily
/// (uniformly randomly) ordered list of n items of which k are relevant:
///
///   APrand(k, n) = sum_{i=1..n} [(k-1)(i-1) + (n-1)] / [i (n-1) n]
///
/// This is the "Random" baseline bar of Figures 5 and 6, and equals
/// ExpectedApWithTies on a single all-tied group. Requires 1 <= k <= n.
Result<double> RandomAveragePrecision(int k, int n);

}  // namespace biorank

#endif  // BIORANK_EVAL_RANDOM_AP_H_
