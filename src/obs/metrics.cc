#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <thread>

namespace biorank::obs {

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// fetch_add for doubles via CAS on the bit pattern; C++17-portable and
/// TSan-clean (every access is an atomic RMW on the same object).
void AtomicAddDouble(std::atomic<uint64_t>& bits, double delta) {
  uint64_t old_bits = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      old_bits, DoubleToBits(BitsToDouble(old_bits) + delta),
      std::memory_order_relaxed)) {
  }
}

}  // namespace

int ThisThreadSlot() {
  // Hash the thread id once per thread; threads beyond kWriteSlots
  // share slots (still atomic, just occasionally contended).
  static thread_local const int slot = static_cast<int>(
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      static_cast<size_t>(kWriteSlots));
  return slot;
}

Histogram::Histogram(HistogramOptions options) {
  if (options.buckets < 1) options.buckets = 1;
  if (!(options.min_bound > 0.0)) options.min_bound = 1e-6;
  bounds_.reserve(static_cast<size_t>(options.buckets));
  double bound = options.min_bound;
  for (int i = 0; i < options.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= 2.0;
  }
  for (Slot& slot : slots_) {
    slot.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  // First bucket whose upper bound admits the value; +Inf bucket at
  // bounds_.size() when none does. Linear scan: the ladder is ~28
  // doubles in one cacheline pair, and latencies cluster low.
  size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
  Slot& slot = slots_[static_cast<size_t>(ThisThreadSlot())];
  slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(slot.sum_bits, value < 0.0 ? 0.0 : value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    for (const std::atomic<uint64_t>& c : slot.counts) {
      total += c.load(std::memory_order_acquire);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    total += BitsToDouble(slot.sum_bits.load(std::memory_order_acquire));
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const Slot& slot : slots_) {
    for (size_t i = 0; i < merged.size(); ++i) {
      merged[i] += slot.counts[i].load(std::memory_order_acquire);
    }
  }
  return merged;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based), then walk the ladder.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: report the last finite bound (documented floor).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double upper = bounds[i];
    const double lower = i == 0 ? upper / 2.0 : bounds[i - 1];
    if (in_bucket == 0) return upper;
    // Log-linear interpolation inside the ~2x bucket.
    const double frac =
        static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
    return lower * std::pow(upper / lower, frac);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(gauges_.find(name) == gauges_.end() &&
         histograms_.find(name) == histograms_.end());
  CounterEntry& entry = counters_[name];
  if (!entry.metric) {
    entry.help = help;
    entry.metric = std::make_unique<Counter>();
  }
  return entry.metric.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.find(name) == counters_.end() &&
         histograms_.find(name) == histograms_.end());
  GaugeEntry& entry = gauges_[name];
  if (!entry.metric) {
    entry.help = help;
    entry.metric = std::make_unique<Gauge>();
  }
  return entry.metric.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.find(name) == counters_.end() &&
         gauges_.find(name) == gauges_.end());
  HistogramEntry& entry = histograms_[name];
  if (!entry.metric) {
    entry.help = help;
    entry.metric = std::make_unique<Histogram>(options);
  }
  return entry.metric.get();
}

uint64_t Registry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_collector_token_++;
  collectors_.emplace(token, std::move(fn));
  return token;
}

void Registry::RemoveCollector(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(token);
}

Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    snapshot.counters.push_back({name, entry.help, entry.metric->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    snapshot.gauges.push_back(
        {name, entry.help, static_cast<double>(entry.metric->Value())});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.help = entry.help;
    h.bounds = entry.metric->bounds();
    h.counts = entry.metric->BucketCounts();
    h.count = 0;
    for (uint64_t c : h.counts) h.count += c;
    h.sum = entry.metric->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  for (const auto& [token, collect] : collectors_) collect(snapshot);
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::stable_sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::stable_sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::stable_sort(snapshot.histograms.begin(), snapshot.histograms.end(),
                   by_name);
  return snapshot;
}

}  // namespace biorank::obs
