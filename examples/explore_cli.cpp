// Interactive-style CLI over the BioRank pipeline: run an exploratory
// query for a protein, rank its candidate functions with a chosen method,
// and print the top answers with their strongest evidence paths
// (provenance).
//
// Usage:
//   ./build/examples/explore_cli [gene_symbol] [method] [top_n]
// With no arguments it picks the first well-studied protein and
// reliability ranking.

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/explanation.h"
#include "core/ranking.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

Result<RankingMethod> ParseMethod(const std::string& name) {
  for (RankingMethod method : AllRankingMethods()) {
    if (name == RankingMethodName(method)) return method;
  }
  return Status::InvalidArgument(
      "unknown method '" + name + "' (use Rel, Prop, Diff, InEdge, PathC)");
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioHarness harness;

  std::string symbol;
  if (argc > 1) {
    symbol = argv[1];
  } else {
    symbol = harness.universe()
                 .protein(harness.universe().well_studied()[0])
                 .gene_symbol;
    std::cout << "(no gene symbol given; using " << symbol << ")\n";
  }
  RankingMethod method = RankingMethod::kReliability;
  if (argc > 2) {
    Result<RankingMethod> parsed = ParseMethod(argv[2]);
    if (!parsed.ok()) {
      std::cerr << parsed.status() << "\n";
      return 2;
    }
    method = parsed.value();
  }
  int top_n = argc > 3 ? std::atoi(argv[3]) : 8;

  Result<ExploratoryQueryResult> run =
      harness.mediator().Run(MakeProteinFunctionQuery(symbol));
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  const QueryGraph& graph = run.value().query_graph;
  std::cout << "Query (EntrezProtein.name = \"" << symbol << "\", AmiGO): "
            << graph.graph.num_nodes() << " nodes, "
            << graph.graph.num_edges() << " edges, "
            << graph.answers.size() << " candidate functions.\n\n";

  Result<std::vector<RankedAnswer>> ranked =
      harness.ranker().Rank(graph, method);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }

  std::cout << "Top " << top_n << " functions by "
            << RankingMethodName(method) << ":\n";
  for (int i = 0; i < top_n && i < static_cast<int>(ranked.value().size());
       ++i) {
    const RankedAnswer& answer = ranked.value()[i];
    std::cout << " "
              << PadLeft(FormatRankInterval(answer.rank_lo, answer.rank_hi),
                         5)
              << "  " << graph.graph.node(answer.node).label << "  (score "
              << FormatCompact(answer.score, 4) << ")\n";
    ExplanationOptions explain;
    explain.max_paths = 2;
    Result<std::vector<EvidencePath>> paths =
        ExplainAnswer(graph, answer.node, explain);
    if (paths.ok()) {
      for (const EvidencePath& path : paths.value()) {
        std::cout << "        " << FormatEvidencePath(graph, path) << "\n";
      }
    }
  }
  return 0;
}
