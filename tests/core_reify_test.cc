#include "core/reify.h"

#include <gtest/gtest.h>

#include "core/reliability_exact.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

TEST(ReifyTest, CertainNodesStaySingle) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReifiedGraph reified = ReifyNodeFailures(g);
  EXPECT_EQ(reified.query_graph.graph.num_nodes(), 2);
  EXPECT_EQ(reified.query_graph.graph.num_edges(), 1);
  EXPECT_EQ(reified.in_node[t], reified.out_node[t]);
}

TEST(ReifyTest, UncertainNodeSplitsIntoPair) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.6, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReifiedGraph reified = ReifyNodeFailures(g);
  // s stays single; t splits: 3 nodes, 2 edges.
  EXPECT_EQ(reified.query_graph.graph.num_nodes(), 3);
  EXPECT_EQ(reified.query_graph.graph.num_edges(), 2);
  EXPECT_NE(reified.in_node[t], reified.out_node[t]);
  // All reified node probabilities are 1.
  for (NodeId i : reified.query_graph.graph.AliveNodes()) {
    EXPECT_DOUBLE_EQ(reified.query_graph.graph.node(i).p, 1.0);
  }
}

TEST(ReifyTest, SplitEdgeCarriesNodeProbability) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.6, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReifiedGraph reified = ReifyNodeFailures(g);
  std::vector<EdgeId> in =
      reified.query_graph.graph.InEdges(reified.out_node[t]);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_DOUBLE_EQ(reified.query_graph.graph.edge(in[0]).q, 0.6);
}

TEST(ReifyTest, AnswersMapToOutSide) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.6, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  ReifiedGraph reified = ReifyNodeFailures(g);
  ASSERT_EQ(reified.query_graph.answers.size(), 1u);
  EXPECT_EQ(reified.query_graph.answers[0], reified.out_node[t]);
  EXPECT_TRUE(reified.query_graph.Validate().ok());
}

TEST(ReifyTest, EdgesRewireThroughSplitNodes) {
  QueryGraphBuilder b;
  NodeId mid = b.Node(0.5, "mid");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), mid, 0.7);
  b.Edge(mid, t, 0.9);
  QueryGraph g = std::move(b).Build({t});
  ReifiedGraph reified = ReifyNodeFailures(g);
  const ProbabilisticEntityGraph& rg = reified.query_graph.graph;
  // In-edge of mid lands on mid/in; out-edge of mid leaves from mid/out.
  std::vector<EdgeId> into_mid_in = rg.InEdges(reified.in_node[mid]);
  ASSERT_EQ(into_mid_in.size(), 1u);
  EXPECT_DOUBLE_EQ(rg.edge(into_mid_in[0]).q, 0.7);
  std::vector<EdgeId> from_mid_out = rg.OutEdges(reified.out_node[mid]);
  ASSERT_EQ(from_mid_out.size(), 1u);
  EXPECT_DOUBLE_EQ(rg.edge(from_mid_out[0]).q, 0.9);
}

TEST(ReifyTest, PreservesReliabilityOnRandomGraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    testing::RandomDagOptions options;
    options.layers = 2;
    options.nodes_per_layer = 2;
    options.answers = 1;
    options.edge_density = 0.6;
    QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
    Result<double> original =
        ExactReliabilityBruteForce(g, g.answers[0], 22);
    ASSERT_TRUE(original.ok()) << original.status();
    ReifiedGraph reified = ReifyNodeFailures(g);
    Result<double> after = ExactReliabilityBruteForce(
        reified.query_graph, reified.query_graph.answers[0], 25);
    ASSERT_TRUE(after.ok()) << after.status();
    EXPECT_NEAR(original.value(), after.value(), 1e-12)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace biorank
