// Crash-safe file helpers shared by the CSV writer and the storage
// snapshot writer: write-to-temp + fsync + atomic rename, plus a
// whole-file reader.

#ifndef BIORANK_UTIL_FILE_H_
#define BIORANK_UTIL_FILE_H_

#include <string>

#include "util/status.h"

namespace biorank::util {

/// Writes `contents` to `path` atomically: the bytes land in a temp file
/// in the same directory (`<path>.tmp.<pid>`), are fsynced, and the temp
/// file is renamed over `path`; the directory is fsynced afterwards so
/// the rename itself survives a crash. Readers of `path` therefore see
/// either the old file or the complete new one, never a torn prefix.
///
/// Returns kInvalidArgument when the destination directory is missing or
/// unwritable, kInternal on write/fsync/rename failures.
Status AtomicFileWrite(const std::string& path, const std::string& contents);

/// Reads the whole file at `path` into a string. Returns kNotFound when
/// the file does not exist, kInternal on read errors.
Result<std::string> ReadFileToString(const std::string& path);

/// Creates `path` as a directory (one level; parents must exist). OK if
/// it already exists and is a directory; kInvalidArgument otherwise.
Status EnsureDir(const std::string& path);

}  // namespace biorank::util

#endif  // BIORANK_UTIL_FILE_H_
