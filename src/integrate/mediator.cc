#include "integrate/mediator.h"

#include <algorithm>

#include "schema/transforms.h"

namespace biorank {

ProbabilisticMetrics MakeDefaultBioRankMetrics() {
  ProbabilisticMetrics metrics;
  // Entity-set confidences ps.
  metrics.SetSourceConfidence("Query", 1.0);
  metrics.SetSourceConfidence("EntrezProtein", 0.95);
  metrics.SetSourceConfidence("EntrezGene", 0.90);
  metrics.SetSourceConfidence("AmiGO", 0.90);
  metrics.SetSourceConfidence("GO", 1.0);
  metrics.SetSourceConfidence("PfamDomain", 0.75);
  metrics.SetSourceConfidence("TigrFamModel", 0.85);
  metrics.SetSourceConfidence("PIRSF", 0.85);  // "more accurate than Pfam".
  metrics.SetSourceConfidence("SuperFamily", 0.70);
  metrics.SetSourceConfidence("CDD", 0.65);
  metrics.SetSourceConfidence("UniProt", 0.90);
  metrics.SetSourceConfidence("PDB", 1.0);

  // Relationship confidences qs. BLAST ignores amino-acid adjacency, so
  // NCBIBlast1 sits below the profile-HMM relationships (Section 2).
  metrics.SetRelationshipConfidence("Match", 1.0);
  metrics.SetRelationshipConfidence("NCBIBlast1", 0.65);
  metrics.SetRelationshipConfidence("NCBIBlast2", 1.0);  // Foreign key.
  metrics.SetRelationshipConfidence("EntrezGene1", 0.95);
  metrics.SetRelationshipConfidence("EGann", 1.0);       // Row containment.
  metrics.SetRelationshipConfidence("EGann2GO", 1.0);    // Foreign key.
  metrics.SetRelationshipConfidence("AmiGO1", 0.95);
  metrics.SetRelationshipConfidence("AGann2GO", 1.0);    // Foreign key.
  metrics.SetRelationshipConfidence("Pfam1", 0.80);
  metrics.SetRelationshipConfidence("Pfam2GO", 0.75);
  metrics.SetRelationshipConfidence("TigrFam1", 0.90);
  metrics.SetRelationshipConfidence("TigrFam2GO", 0.85);
  metrics.SetRelationshipConfidence("PIRSF1", 0.80);
  metrics.SetRelationshipConfidence("PIRSF2GO", 0.85);
  metrics.SetRelationshipConfidence("SuperFamily1", 0.70);
  metrics.SetRelationshipConfidence("SuperFamily2GO", 0.70);
  metrics.SetRelationshipConfidence("CDD1", 0.70);
  metrics.SetRelationshipConfidence("CDD2GO", 0.65);
  metrics.SetRelationshipConfidence("UniProt1", 0.95);
  metrics.SetRelationshipConfidence("UPann2GO", 1.0);    // Foreign key.
  metrics.SetRelationshipConfidence("PDB1", 0.90);
  return metrics;
}

namespace {

/// Builds one query graph; wraps the mutable crawl state.
class CrawlContext {
 public:
  CrawlContext(const SourceRegistry& sources,
               const ProbabilisticMetrics& metrics)
      : sources_(sources), metrics_(metrics) {
    result_.query_graph.source =
        result_.query_graph.graph.AddNode(1.0, "query", "Query");
  }

  /// Node for a record key, created on first sight. `pr` only applies at
  /// creation; later arrivals of the same record reuse the node.
  NodeId GetOrCreateNode(const std::string& key,
                         const std::string& entity_set, double pr,
                         const std::string& label) {
    auto it = node_by_key_.find(key);
    if (it != node_by_key_.end()) return it->second;
    double p = metrics_.NodeProbability(entity_set, pr);
    NodeId id = result_.query_graph.graph.AddNode(p, label, entity_set);
    node_by_key_.emplace(key, id);
    return id;
  }

  void AddEdge(NodeId from, NodeId to, const std::string& relationship,
               double qr) {
    double q = metrics_.EdgeProbability(relationship, qr);
    result_.query_graph.graph.AddEdge(from, to, q).value();
  }

  /// GO-term answer node (entity set "GO", pr = 1: vocabulary entries are
  /// certain; annotation confidence lives on the annotation records).
  NodeId GoNode(int go_index) {
    const GoTerm& term = sources_.universe().ontology().term(go_index);
    NodeId id = GetOrCreateNode("GO:" + std::to_string(go_index), "GO", 1.0,
                                term.id);
    result_.go_node.emplace(go_index, id);
    return id;
  }

  bool HasNode(const std::string& key) const {
    return node_by_key_.count(key) > 0;
  }

  NodeId source() const { return result_.query_graph.source; }

  ExploratoryQueryResult Finish() {
    // Deterministic answer order: ascending GO ontology index.
    std::vector<std::pair<int, NodeId>> answers(result_.go_node.begin(),
                                                result_.go_node.end());
    std::sort(answers.begin(), answers.end());
    for (const auto& [go, node] : answers) {
      result_.query_graph.answers.push_back(node);
    }
    return std::move(result_);
  }

  const SourceRegistry& sources() const { return sources_; }

 private:
  const SourceRegistry& sources_;
  const ProbabilisticMetrics& metrics_;
  ExploratoryQueryResult result_;
  std::unordered_map<std::string, NodeId> node_by_key_;
};

/// EntrezProtein record node.
NodeId ProteinNode(CrawlContext& ctx, const ProteinRecord& record) {
  return ctx.GetOrCreateNode("EP:" + std::to_string(record.protein_index),
                             "EntrezProtein", 1.0, record.name);
}

/// Expands one protein node into its gene record and that gene's curated
/// annotations (the EntrezGene and AmiGO routes of Figure 1). Applied to
/// matched proteins and to BLAST neighbours alike; the caller supplies
/// the protein -> gene relationship (EntrezGene1 for the matched protein,
/// NCBIBlast2 — a certain foreign key — for BLAST hits). Curated routes
/// therefore run query -> protein -> gene -> annotation -> GO: one hop
/// longer than the profile-database routes, which is what makes diffusion
/// favour fresh profile evidence (the paper's ABCC8 observation).
void ExpandAnnotations(CrawlContext& ctx, int protein_index,
                       NodeId protein_node,
                       const std::string& gene_relationship) {
  const GoOntology& ontology = ctx.sources().universe().ontology();
  NodeId gene_node = ctx.GetOrCreateNode(
      "Gene:" + std::to_string(protein_index), "EntrezGene", 1.0,
      "gene:" + std::to_string(protein_index));
  ctx.AddEdge(protein_node, gene_node, gene_relationship, 1.0);

  // EntrezGene annotation rows: pr from the StatusCode table.
  for (const GeneAnnotation& ann :
       ctx.sources().entrez_gene().AnnotationsFor(protein_index)) {
    std::string key = "EGann:" + std::to_string(ann.gene_id) + ":" +
                      std::to_string(ann.go_index);
    NodeId ann_node = ctx.GetOrCreateNode(
        key, "EntrezGene", GeneStatusToPr(ann.status),
        "EG:" + ontology.term(ann.go_index).id + ":" +
            GeneStatusToString(ann.status));
    ctx.AddEdge(gene_node, ann_node, "EGann", 1.0);
    ctx.AddEdge(ann_node, ctx.GoNode(ann.go_index), "EGann2GO", 1.0);
  }
  // AmiGO annotation rows: pr from the EvidenceCode table.
  for (const GoAnnotation& ann :
       ctx.sources().amigo().AnnotationsFor(protein_index)) {
    std::string key = "AGann:" + std::to_string(ann.gene_id) + ":" +
                      std::to_string(ann.go_index);
    NodeId ann_node = ctx.GetOrCreateNode(
        key, "AmiGO", EvidenceCodeToPr(ann.evidence),
        "AG:" + ontology.term(ann.go_index).id + ":" +
            EvidenceCodeToString(ann.evidence));
    ctx.AddEdge(gene_node, ann_node, "AmiGO1", 1.0);
    ctx.AddEdge(ann_node, ctx.GoNode(ann.go_index), "AGann2GO", 1.0);
  }
}

/// Expands a matched protein through a profile database (Pfam, TIGRFAM,
/// or one of the minor profile sources).
void ExpandProfiles(CrawlContext& ctx, int protein_index, NodeId protein_node,
                    const ProfileDatabase& db, const std::string& entity_set,
                    const std::string& hit_relationship,
                    const std::string& go_relationship,
                    const std::string& key_prefix) {
  for (const ProfileHit& hit : db.HitsFor(protein_index)) {
    NodeId profile_node = ctx.GetOrCreateNode(
        key_prefix + std::to_string(hit.profile_id), entity_set, 1.0,
        db.ProfileName(hit.profile_id));
    ctx.AddEdge(protein_node, profile_node, hit_relationship,
                EValueToQr(hit.e_value));
    double mapping_qr = db.MappingQr(hit.profile_id);
    for (int go : db.GoTermsFor(hit.profile_id)) {
      ctx.AddEdge(profile_node, ctx.GoNode(go), go_relationship, mapping_qr);
    }
  }
}

}  // namespace

Mediator::Mediator(const SourceRegistry& sources, MediatorOptions options)
    : sources_(sources), options_(std::move(options)) {}

Result<ExploratoryQueryResult> Mediator::Run(
    const ExploratoryQuery& query) const {
  if (query.entity_set != "EntrezProtein" || query.attribute != "name") {
    return Status::Unimplemented(
        "mediator: only (EntrezProtein.name = value) queries are wired up");
  }
  if (query.output_sets != std::vector<std::string>{"AmiGO"}) {
    return Status::Unimplemented(
        "mediator: only the AmiGO output set is wired up");
  }

  CrawlContext ctx(sources_, options_.metrics);

  // 1. Match the input entity set.
  std::vector<ProteinRecord> matches =
      sources_.entrez_protein().Lookup(query.value);
  if (matches.empty()) {
    return Status::NotFound("no EntrezProtein record matches '" +
                            query.value + "'");
  }

  for (const ProteinRecord& match : matches) {
    NodeId matched_node = ProteinNode(ctx, match);
    ctx.AddEdge(ctx.source(), matched_node, "Match", 1.0);

    // 2. BLAST neighbourhood: similar sequences are EntrezProtein records
    // again (NCBIBlast1 carries the e-value, NCBIBlast2 the certain FK).
    for (const BlastHit& hit :
         sources_.ncbi_blast().Similar(match.seq_id)) {
      const ProteinRecord* neighbour =
          sources_.entrez_protein().BySeqId(hit.seq2);
      if (neighbour == nullptr) continue;
      NodeId neighbour_node = ProteinNode(ctx, *neighbour);
      ctx.AddEdge(matched_node, neighbour_node, "NCBIBlast1",
                  EValueToQr(hit.e_value));
      ExpandAnnotations(ctx, neighbour->protein_index, neighbour_node,
                        "NCBIBlast2");
    }

    // 3. The matched protein's own gene record and curated annotations.
    ExpandAnnotations(ctx, match.protein_index, matched_node,
                      "EntrezGene1");

    // 4. Profile databases take the query sequence directly.
    ExpandProfiles(ctx, match.protein_index, matched_node,
                   sources_.pfam().db(), "PfamDomain", "Pfam1", "Pfam2GO",
                   "Pfam:");
    ExpandProfiles(ctx, match.protein_index, matched_node,
                   sources_.tigrfam().db(), "TigrFamModel", "TigrFam1",
                   "TigrFam2GO", "Tigr:");

    if (options_.include_minor_sources) {
      ExpandProfiles(ctx, match.protein_index, matched_node,
                     sources_.pirsf().db(), "PIRSF", "PIRSF1", "PIRSF2GO",
                     "PIRSF:");
      ExpandProfiles(ctx, match.protein_index, matched_node,
                     sources_.superfamily().db(), "SuperFamily",
                     "SuperFamily1", "SuperFamily2GO", "SSF:");
      ExpandProfiles(ctx, match.protein_index, matched_node,
                     sources_.cdd().db(), "CDD", "CDD1", "CDD2GO", "CDD:");
      // UniProt: per-protein annotation rows like EntrezGene's.
      for (const UniProtAnnotation& ann :
           sources_.uniprot().AnnotationsFor(match.protein_index)) {
        std::string key = "UPann:" + std::to_string(match.protein_index) +
                          ":" + std::to_string(ann.go_index);
        NodeId ann_node = ctx.GetOrCreateNode(
            key, "UniProt", ann.reviewed ? 0.95 : 0.5,
            "UP:" + std::to_string(ann.go_index));
        ctx.AddEdge(matched_node, ann_node, "UniProt1", 1.0);
        ctx.AddEdge(ann_node, ctx.GoNode(ann.go_index), "UPann2GO", 1.0);
      }
      // PDB structures: terminal records (no outgoing relationships).
      for (const std::string& pdb_id :
           sources_.pdb().StructuresFor(match.protein_index)) {
        NodeId structure = ctx.GetOrCreateNode("PDB:" + pdb_id, "PDB", 1.0,
                                               pdb_id);
        ctx.AddEdge(matched_node, structure, "PDB1", 1.0);
      }
    }
  }

  ExploratoryQueryResult result = ctx.Finish();
  result.matched_proteins = static_cast<int>(matches.size());
  BIORANK_RETURN_IF_ERROR(result.query_graph.Validate());
  return result;
}

Result<RankedExploratoryResult> Mediator::RunRanked(
    const ExploratoryQuery& query, int top_k,
    serve::RankingService& service) const {
  Result<ExploratoryQueryResult> run = Run(query);
  if (!run.ok()) return run.status();
  RankedExploratoryResult ranked;
  ranked.result = std::move(run.value());
  int answer_count =
      static_cast<int>(ranked.result.query_graph.answers.size());
  if (answer_count == 0) return ranked;  // Nothing to rank.
  int k = top_k > 0 ? std::min(top_k, answer_count) : answer_count;
  Result<serve::TopKResult> top =
      service.RankTopK(ranked.result.query_graph, k);
  if (!top.ok()) return top.status();
  ranked.ranked = std::move(top.value());
  return ranked;
}

Result<Mediator::LiveExploratoryQuery> Mediator::ServeLive(
    const ExploratoryQuery& query, serve::RankingService& service) const {
  Result<ExploratoryQueryResult> run = Run(query);
  if (!run.ok()) return run.status();
  LiveExploratoryQuery live;
  live.go_node = std::move(run.value().go_node);
  live.matched_proteins = run.value().matched_proteins;
  const QueryGraph& graph = run.value().query_graph;
  live.answer_labels.reserve(graph.answers.size());
  for (NodeId answer : graph.answers) {
    live.answer_labels.emplace(answer, graph.graph.node(answer).label);
  }
  live.applier = std::make_unique<ingest::UpdateApplier>(
      std::move(run.value().query_graph), &service);
  return live;
}

Result<ingest::ApplyReport> Mediator::ApplyDelta(
    LiveExploratoryQuery& live, const ingest::EvidenceDelta& delta) const {
  if (live.applier == nullptr) {
    return Status::InvalidArgument("mediator: live query has no applier");
  }
  return live.applier->ApplyDelta(delta, &options_.metrics);
}

}  // namespace biorank
