#include "util/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

namespace biorank::util {
namespace {

std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status ErrnoStatus(StatusCode code, const std::string& what,
                   const std::string& path) {
  return Status(code, what + " " + path + ": " + std::strerror(errno));
}

// fsync the directory entry so a rename survives a crash. Best-effort:
// some filesystems refuse O_DIRECTORY fsync; that is not a data loss.
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status AtomicFileWrite(const std::string& path, const std::string& contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    // Matches the historical CsvWriter contract: an unopenable
    // destination is a caller error, not an I/O fault.
    return ErrnoStatus(StatusCode::kInvalidArgument,
                       "cannot open file for writing:", path);
  }
  const char* data = contents.data();
  size_t remaining = contents.size();
  while (remaining > 0) {
    ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus(StatusCode::kInternal, "write failed:", path);
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus(StatusCode::kInternal, "fsync failed:", path);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus(StatusCode::kInternal, "close failed:", path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus(StatusCode::kInternal, "rename failed:", path);
  }
  SyncDir(DirOf(path));
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return ErrnoStatus(StatusCode::kInternal, "cannot open:", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus(StatusCode::kInternal, "read failed:", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
  if (errno == EEXIST) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      return Status::OK();
    }
    return Status::InvalidArgument("not a directory: " + path);
  }
  return ErrnoStatus(StatusCode::kInvalidArgument, "cannot create dir:",
                     path);
}

}  // namespace biorank::util
