// Probability metrics attached to schema elements (Section 2): how
// each source's scores and statuses are converted into node and edge
// probabilities.

#ifndef BIORANK_SCHEMA_METRICS_H_
#define BIORANK_SCHEMA_METRICS_H_

#include <map>
#include <string>

#include "schema/er_schema.h"
#include "util/status.h"

namespace biorank {

/// The four probabilistic metrics of Section 2 glued together:
/// set-level confidences ps (per entity set) and qs (per relationship) are
/// user-tunable parameters stored here; record-level pr and qr come from
/// the attribute transforms and are passed in at graph-construction time.
/// Node and edge probabilities are their products:
///   p(i)   = ps(i) * pr(i)
///   q(i,j) = qs(i,j) * qr(i,j)
class ProbabilisticMetrics {
 public:
  ProbabilisticMetrics() = default;

  /// Seeds ps/qs from the defaults recorded in the schema definitions.
  static ProbabilisticMetrics FromSchema(const ErSchema& schema);

  /// Overrides the set-level confidence of one entity set ("biologists
  /// generally have more confidence in some sources than others").
  Status SetSourceConfidence(const std::string& entity_set, double ps);

  /// Overrides the set-level confidence of one relationship.
  Status SetRelationshipConfidence(const std::string& relationship,
                                   double qs);

  /// Whether a set-level confidence was ever registered for the entity
  /// set. The ingest layer validates EvidenceDelta source-prior revisions
  /// against this: revising a source the schema does not know is a typo,
  /// not an update.
  bool HasSourceConfidence(const std::string& entity_set) const;

  /// ps of an entity set; 1.0 if never registered.
  double SourceConfidence(const std::string& entity_set) const;

  /// qs of a relationship; 1.0 if never registered.
  double RelationshipConfidence(const std::string& relationship) const;

  /// Final node probability p = ps * pr (pr clamped to [0,1]).
  double NodeProbability(const std::string& entity_set, double pr) const;

  /// Final edge probability q = qs * qr (qr clamped to [0,1]).
  double EdgeProbability(const std::string& relationship, double qr) const;

 private:
  std::map<std::string, double> ps_;
  std::map<std::string, double> qs_;
};

}  // namespace biorank

#endif  // BIORANK_SCHEMA_METRICS_H_
