// The five relevance functions of Section 3 (Rel, Prop, Diff,
// InEdge, PathC) behind a single Ranker facade that scores and sorts
// answer nodes, producing the rankings evaluated in Figure 5.

#ifndef BIORANK_CORE_RANKING_H_
#define BIORANK_CORE_RANKING_H_

#include <string>
#include <vector>

#include "core/diffusion.h"
#include "core/propagation.h"
#include "core/query_graph.h"
#include "core/reliability_mc.h"
#include "util/status.h"

namespace biorank {

/// The five relevance functions of Section 3.
enum class RankingMethod {
  kReliability,  ///< Network reliability (possible-worlds semantics).
  kPropagation,  ///< Local independent-OR propagation.
  kDiffusion,    ///< Additive diffusion with flow thresholds.
  kInEdge,       ///< Number of incoming edges (deterministic).
  kPathCount,    ///< Number of source->target paths (deterministic).
};

/// Short display name matching the paper's figures:
/// "Rel", "Prop", "Diff", "InEdge", "PathC".
const char* RankingMethodName(RankingMethod method);

/// All five methods in the paper's figure order.
std::vector<RankingMethod> AllRankingMethods();

/// One ranked answer. Ties are reported as 1-based inclusive rank
/// intervals exactly like the paper's Tables 2 and 3 (e.g. a function tied
/// across positions 21-22 gets rank_lo = 21, rank_hi = 22).
struct RankedAnswer {
  NodeId node = kInvalidNode;
  double score = 0.0;
  int rank_lo = 0;
  int rank_hi = 0;
};

/// Sorts `answers` by descending score and assigns tie-aware rank
/// intervals. Scores within `tie_epsilon` of each other (chained) share a
/// tie group. Order within a group is by NodeId for determinism; the tied
/// AP evaluation treats group order as uniformly random regardless.
std::vector<RankedAnswer> RankAnswers(const std::vector<NodeId>& answers,
                                      const std::vector<double>& scores,
                                      double tie_epsilon = 1e-9);

/// How the Ranker computes reliability scores.
enum class ReliabilityEngine {
  /// Closed form for every answer when possible, otherwise Monte Carlo
  /// for all of them (the paper's observation: individual target
  /// subgraphs usually reduce completely even when the full graph
  /// doesn't).
  kAuto,
  kMonteCarlo,   ///< Algorithm 3.1 with McOptions.
  kClosedForm,   ///< Reductions only; fails on irreducible targets.
  kExact,        ///< Factoring; fails on overly complex graphs.
};

/// Configuration for the Ranker facade.
struct RankerOptions {
  McOptions mc;
  PropagationOptions propagation;
  DiffusionOptions diffusion;
  ReliabilityEngine reliability_engine = ReliabilityEngine::kAuto;
  /// Apply the Section 3.1 reduction rules before Monte Carlo reliability
  /// (the paper's fastest configuration, "R&M2").
  bool reduce_before_mc = true;
  double tie_epsilon = 1e-9;
};

/// Facade that evaluates any of the five relevance functions on a query
/// graph and returns scored, tie-aware ranked answers (Definition 2.4).
///
///   Ranker ranker;
///   auto ranked = ranker.Rank(query_graph, RankingMethod::kReliability);
class Ranker {
 public:
  explicit Ranker(RankerOptions options = {});

  /// Scores every node; the answer set is scored like any other node.
  /// The returned vector is indexed by NodeId.
  Result<std::vector<double>> ScoreAllNodes(const QueryGraph& query_graph,
                                            RankingMethod method) const;

  /// Ranks the query graph's answer set under `method`.
  Result<std::vector<RankedAnswer>> Rank(const QueryGraph& query_graph,
                                         RankingMethod method) const;

  const RankerOptions& options() const { return options_; }

 private:
  Result<std::vector<double>> ReliabilityScores(
      const QueryGraph& query_graph) const;

  RankerOptions options_;
};

}  // namespace biorank

#endif  // BIORANK_CORE_RANKING_H_
