#include "shard/transport.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace biorank::shard {

InProcessTransport::InProcessTransport(uint32_t num_shards,
                                       api::ServerOptions options) {
  num_shards = std::max<uint32_t>(1, num_shards);
  servers_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    servers_.push_back(std::make_unique<api::Server>(options));
  }
  calls_ = std::make_unique<std::atomic<uint64_t>[]>(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) calls_[s].store(0);
}

uint32_t InProcessTransport::shard_count() const {
  return static_cast<uint32_t>(servers_.size());
}

api::Server& InProcessTransport::server(uint32_t shard) {
  return *servers_.at(shard);
}

void InProcessTransport::InjectFault(uint32_t shard, Status fault) {
  std::lock_guard<std::mutex> lock(faults_mu_);
  if (fault.ok()) {
    faults_.erase(shard);
  } else {
    faults_[shard] = std::move(fault);
  }
}

uint64_t InProcessTransport::calls(uint32_t shard) const {
  return shard < servers_.size()
             ? calls_[shard].load(std::memory_order_relaxed)
             : 0;
}

Result<ShardReply> InProcessTransport::Call(uint32_t shard,
                                            const ShardQuery& query) {
  if (shard >= servers_.size()) {
    return Status::InvalidArgument(
        "shard: transport has no shard " + std::to_string(shard) + " (" +
        std::to_string(servers_.size()) + " configured)");
  }
  calls_[shard].fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(faults_mu_);
    auto it = faults_.find(shard);
    if (it != faults_.end()) return it->second;
  }
  if (query.graph == nullptr) {
    return Status::InvalidArgument("shard: query carries no graph");
  }
  // The RPC span attaches to the router's trace by explicit parent
  // index (scatter workers run on pool threads with no inherited
  // binding); the shard server's own spans then nest under it through
  // the thread-local binding SpanScope establishes. Only top_k and the
  // trace cross the seam — shards serve blocking top-k rankings, and
  // the other knobs stay router-enforced (see ShardQuery).
  obs::SpanScope rpc(query.options.trace, "shard.rpc", query.trace_parent);
  rpc.Counter("shard", static_cast<int64_t>(shard));
  api::QueryOptions shard_options;
  shard_options.top_k = query.options.top_k;
  shard_options.trace = query.options.trace;
  Result<api::QueryResponse> response = servers_[shard]->RankGraph(
      *query.graph, query.answers, shard_options);
  if (!response.ok()) return response.status();
  ShardReply reply;
  reply.stats = response.value().stats;
  reply.top.reserve(response.value().top.size());
  for (const api::RankedAnswer& answer : response.value().top) {
    serve::RankedCandidate candidate;
    candidate.node = answer.node;
    candidate.reliability = answer.reliability;
    candidate.lower = answer.lower;
    candidate.upper = answer.upper;
    candidate.exact = answer.exact;
    candidate.resolution = answer.resolution;
    reply.top.push_back(candidate);
  }
  return reply;
}

}  // namespace biorank::shard
