#include "eval/perturbation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "util/stats.h"

namespace biorank {
namespace {

TEST(LogOddsTest, RoundTrips) {
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(InverseLogOdds(LogOdds(p)), p, 1e-12);
  }
}

TEST(LogOddsTest, HalfMapsToZero) {
  EXPECT_NEAR(LogOdds(0.5), 0.0, 1e-12);
  EXPECT_NEAR(InverseLogOdds(0.0), 0.5, 1e-12);
}

TEST(PerturbTest, ZeroSigmaIsNearIdentity) {
  Rng rng(1);
  PerturbationOptions options;
  options.sigma = 0.0;
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(PerturbProbabilityLogOdds(p, options, rng), p, 1e-9);
  }
}

TEST(PerturbTest, OutputStaysInUnitInterval) {
  Rng rng(2);
  PerturbationOptions options;
  options.sigma = 3.0;
  for (int i = 0; i < 10000; ++i) {
    double p = rng.NextDouble();
    double perturbed = PerturbProbabilityLogOdds(p, options, rng);
    EXPECT_GT(perturbed, 0.0);
    EXPECT_LT(perturbed, 1.0);
  }
}

TEST(PerturbTest, BoundaryProbabilitiesStayFinite) {
  Rng rng(3);
  PerturbationOptions options;
  options.sigma = 1.0;
  for (int i = 0; i < 1000; ++i) {
    double lo = PerturbProbabilityLogOdds(0.0, options, rng);
    double hi = PerturbProbabilityLogOdds(1.0, options, rng);
    EXPECT_TRUE(std::isfinite(lo));
    EXPECT_TRUE(std::isfinite(hi));
    EXPECT_GT(hi, 0.5);  // 1.0 stays high after clamping + noise (mostly).
  }
}

TEST(PerturbTest, NoiseIsCenteredInLogOddsSpace) {
  Rng rng(4);
  PerturbationOptions options;
  options.sigma = 1.0;
  RunningStats log_odds_delta;
  const double p = 0.3;
  for (int i = 0; i < 50000; ++i) {
    double perturbed = PerturbProbabilityLogOdds(p, options, rng);
    log_odds_delta.Add(LogOdds(perturbed) - LogOdds(p));
  }
  EXPECT_NEAR(log_odds_delta.mean(), 0.0, 0.02);
  EXPECT_NEAR(log_odds_delta.stddev(), 1.0, 0.02);
}

TEST(PerturbTest, LargerSigmaSpreadsMore) {
  PerturbationOptions narrow;
  narrow.sigma = 0.5;
  PerturbationOptions wide;
  wide.sigma = 3.0;
  Rng rng_narrow(5), rng_wide(5);
  RunningStats spread_narrow, spread_wide;
  for (int i = 0; i < 20000; ++i) {
    spread_narrow.Add(PerturbProbabilityLogOdds(0.5, narrow, rng_narrow));
    spread_wide.Add(PerturbProbabilityLogOdds(0.5, wide, rng_wide));
  }
  EXPECT_LT(spread_narrow.stddev(), spread_wide.stddev());
}

TEST(PerturbGraphTest, SourceIsSkippedByDefault) {
  QueryGraph g = MakeFig4aSerialParallel();
  Rng rng(6);
  PerturbationOptions options;
  options.sigma = 2.0;
  PerturbQueryGraph(g, options, rng);
  EXPECT_DOUBLE_EQ(g.graph.node(g.source).p, 1.0);
}

TEST(PerturbGraphTest, EdgesAndNodesChange) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Rng rng(7);
  PerturbationOptions options;
  options.sigma = 1.0;
  PerturbQueryGraph(g, options, rng);
  bool some_edge_moved = false;
  for (EdgeId e : g.graph.AliveEdges()) {
    if (std::abs(g.graph.edge(e).q - 0.5) > 1e-6) some_edge_moved = true;
    EXPECT_GT(g.graph.edge(e).q, 0.0);
    EXPECT_LT(g.graph.edge(e).q, 1.0);
  }
  EXPECT_TRUE(some_edge_moved);
}

TEST(PerturbGraphTest, DeterministicGivenSeed) {
  QueryGraph g1 = MakeFig4bWheatstoneBridge();
  QueryGraph g2 = MakeFig4bWheatstoneBridge();
  PerturbationOptions options;
  options.sigma = 1.5;
  Rng rng1(99), rng2(99);
  PerturbQueryGraph(g1, options, rng1);
  PerturbQueryGraph(g2, options, rng2);
  for (EdgeId e : g1.graph.AliveEdges()) {
    EXPECT_DOUBLE_EQ(g1.graph.edge(e).q, g2.graph.edge(e).q);
  }
}

TEST(PerturbedCopyTest, LeavesTheOriginalUntouched) {
  QueryGraph original = MakeFig4bWheatstoneBridge();
  PerturbationOptions options;
  options.sigma = 2.0;
  QueryGraph copy = PerturbedCopy(original, options, 11, 0);
  for (EdgeId e : original.graph.AliveEdges()) {
    EXPECT_DOUBLE_EQ(original.graph.edge(e).q, 0.5);
  }
  bool moved = false;
  for (EdgeId e : copy.graph.AliveEdges()) {
    if (std::abs(copy.graph.edge(e).q - 0.5) > 1e-6) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(PerturbedCopyTest, RepIndexSelectsTheStream) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  PerturbationOptions options;
  QueryGraph rep0a = PerturbedCopy(g, options, 123, 0);
  QueryGraph rep0b = PerturbedCopy(g, options, 123, 0);
  QueryGraph rep1 = PerturbedCopy(g, options, 123, 1);
  bool identical_across_reps = true;
  for (EdgeId e : g.graph.AliveEdges()) {
    // Same (seed, rep) reproduces exactly; different rep diverges.
    EXPECT_DOUBLE_EQ(rep0a.graph.edge(e).q, rep0b.graph.edge(e).q);
    if (rep0a.graph.edge(e).q != rep1.graph.edge(e).q) {
      identical_across_reps = false;
    }
  }
  EXPECT_FALSE(identical_across_reps);
}

}  // namespace
}  // namespace biorank
