// The mixed query/update workload of the ingest layer: the 20 Table-1
// scenario graphs stood up as live api::Server sessions (all sharing the
// server's canonical reliability cache), then alternating phases of
// evidence deltas (each touching <= 10% of a graph's tuples) and top-k
// query passes through the session API.
//
// What the serving story claims — and this bench gates — is that an
// update does NOT cost the reliability cache: only the dirtied answers'
// keys leave, so the post-update query pass still hits for every clean
// answer (preserved_hit_rate > 0.5; ~0.7 on this workload, whose hub
// evidence — protein->gene edges shared by many answers — makes small
// deltas dirty disproportionately many answers),
// and the incrementally maintained output stays bit-identical to a
// from-scratch rebuild of the updated graph (cache on or off, 1 or 4
// threads).
//
// BENCH_ingest_updates.json metrics: preserved_hit_rate (> 0.5 gate),
// deterministic_output, touched_fraction_max (<= 0.10 workload sanity),
// update_latency_ms_mean / _max, invalidated_entries.

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

/// One update phase's delta for a live graph: reweights ~3% of evidence
/// edges, revises ~1% of tuple probabilities, retracts one evidence
/// edge, and files one fresh annotation path — all deterministic in
/// (graph, phase) and together touching well under 10% of the graph's
/// tuples.
struct BuiltDelta {
  ingest::EvidenceDelta delta;
  int touched_tuples = 0;  ///< Distinct nodes + edges the delta touches.
};

BuiltDelta BuildDelta(const QueryGraph& graph, uint64_t graph_index,
                      uint64_t phase) {
  Rng rng = Rng::ForStream(20260726, graph_index * 1000 + phase);
  BuiltDelta built;
  ingest::EvidenceDelta& delta = built.delta;
  // Update only evidence tuples: the source's Match out-edges are the
  // query itself (touching one dirties every answer at once, which is a
  // re-query, not an update).
  std::vector<EdgeId> edges;
  for (EdgeId e : graph.graph.AliveEdges()) {
    if (graph.graph.edge(e).from != graph.source) edges.push_back(e);
  }
  std::vector<NodeId> nodes = graph.graph.AliveNodes();

  int reweights = std::max<int>(1, static_cast<int>(edges.size()) * 3 / 100);
  rng.Shuffle(edges);
  for (int i = 0; i < reweights && i < static_cast<int>(edges.size()); ++i) {
    double q = graph.graph.edge(edges[static_cast<size_t>(i)]).q;
    double revised =
        std::min(1.0, std::max(0.05, q * rng.NextUniform(0.85, 1.15)));
    delta.reweight_edges.push_back({edges[static_cast<size_t>(i)], revised});
  }
  // One retraction, from the tail of the shuffle so it never collides
  // with a reweight of the same edge.
  if (edges.size() > static_cast<size_t>(reweights) + 1) {
    delta.remove_edges.push_back({edges.back()});
  }

  int revisions = std::max<int>(1, static_cast<int>(nodes.size()) / 100);
  rng.Shuffle(nodes);
  int revised_nodes = 0;
  for (NodeId n : nodes) {
    if (revised_nodes >= revisions) break;
    if (n == graph.source) continue;
    double p = graph.graph.node(n).p;
    delta.revise_node_probs.push_back(
        {n, std::min(1.0, std::max(0.05, p * rng.NextUniform(0.9, 1.1)))});
    ++revised_nodes;
  }

  // One fresh annotation: a new evidence tuple linking the query to a
  // random answer.
  if (!graph.answers.empty()) {
    delta.add_nodes.push_back({rng.NextUniform(0.5, 0.95), "fresh", ""});
    NodeId target = graph.answers[static_cast<size_t>(
        rng.NextBounded(graph.answers.size()))];
    delta.add_edges.push_back({graph.source,
                               ingest::EvidenceDelta::NewNodeRef(0),
                               rng.NextUniform(0.4, 0.9)});
    delta.add_edges.push_back({ingest::EvidenceDelta::NewNodeRef(0), target,
                               rng.NextUniform(0.4, 0.9)});
  }

  built.touched_tuples = static_cast<int>(
      delta.reweight_edges.size() + delta.remove_edges.size() +
      delta.revise_node_probs.size() + delta.add_nodes.size() +
      delta.add_edges.size());
  return built;
}

}  // namespace

int main() {
  const int k = 10;
  // Each phase is one delta per graph followed by one query pass; at
  // least 2 phases so the gate sees a steady state, not a lucky warm-up.
  const int phases = std::max(2, bench::Repetitions(3));
  std::cout << "=== Ingest updates: scenario-1 live graphs, " << phases
            << " update/query phases (top-" << k << ") ===\n\n";

  api::Server server;
  bench::WallTimer total_timer;
  std::vector<api::SessionId> live;
  for (const ScenarioCase& spec :
       BuildScenarioCases(server.universe(), ScenarioId::kScenario1WellKnown)) {
    api::Result<api::SessionInfo> session = server.OpenSession(
        api::MakeProteinFunctionRequest(spec.gene_symbol));
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    live.push_back(session.value().id);
  }

  // Warm pass: resolve and cache every answer's canonical key.
  for (api::SessionId id : live) {
    api::Result<api::QueryResponse> r = server.QuerySession(id, k);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
  }

  TextTable table({"phase", "preserved hit", "dirty", "clean", "stale keys",
                   "invalidated", "update ms", "query s"});
  CsvWriter csv({"phase", "preserved_hit_rate", "dirty", "clean",
                 "stale_keys", "invalidated", "update_ms", "query_s"});
  bench::JsonReport report("ingest_updates");

  serve::RequestStats preserved_total;
  double update_ms_total = 0.0;
  double update_ms_max = 0.0;
  int updates = 0;
  double touched_fraction_max = 0.0;
  int64_t dirty_total = 0;
  int64_t clean_total = 0;
  int64_t stale_total = 0;
  int64_t invalidated_total = 0;

  for (int phase = 0; phase < phases; ++phase) {
    // Update phase: one delta per live graph.
    int dirty = 0;
    int clean = 0;
    int64_t stale = 0;
    int64_t invalidated = 0;
    double phase_update_ms = 0.0;
    for (size_t i = 0; i < live.size(); ++i) {
      api::Result<QueryGraph> snapshot_result = server.SessionSnapshot(live[i]);
      if (!snapshot_result.ok()) {
        std::cerr << snapshot_result.status() << "\n";
        return 1;
      }
      QueryGraph snapshot = std::move(snapshot_result.value());
      BuiltDelta built = BuildDelta(snapshot, i, static_cast<uint64_t>(phase));
      int tuples =
          snapshot.graph.num_nodes() + snapshot.graph.num_edges();
      touched_fraction_max =
          std::max(touched_fraction_max,
                   static_cast<double>(built.touched_tuples) / tuples);
      bench::WallTimer update_timer;
      Result<ingest::ApplyReport> applied =
          server.ApplyDelta(live[i], built.delta);
      double ms = update_timer.Seconds() * 1e3;
      if (!applied.ok()) {
        std::cerr << "phase " << phase << " graph " << i << ": "
                  << applied.status() << "\n";
        return 1;
      }
      phase_update_ms += ms;
      update_ms_total += ms;
      update_ms_max = std::max(update_ms_max, ms);
      ++updates;
      dirty += applied.value().dirty_answers;
      clean += applied.value().clean_answers;
      stale += static_cast<int64_t>(applied.value().stale_keys);
      invalidated += static_cast<int64_t>(applied.value().invalidated_entries);
    }
    dirty_total += dirty;
    clean_total += clean;
    stale_total += stale;
    invalidated_total += invalidated;

    // Query phase: the preserved-hit-rate measurement. Every clean
    // answer should ride its surviving cache entry.
    serve::RequestStats pass_stats;
    bench::WallTimer query_timer;
    for (api::SessionId id : live) {
      api::Result<api::QueryResponse> r = server.QuerySession(id, k);
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        return 1;
      }
      pass_stats.Add(r.value().stats);
    }
    double query_s = query_timer.Seconds();
    preserved_total.Add(pass_stats);

    double mean_update_ms = phase_update_ms / static_cast<double>(live.size());
    std::vector<std::string> cells = {
        std::to_string(phase),
        FormatDouble(pass_stats.CacheHitRate(), 3),
        std::to_string(dirty),
        std::to_string(clean),
        std::to_string(stale),
        std::to_string(invalidated),
        FormatDouble(mean_update_ms, 3),
        FormatDouble(query_s, 3)};
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"phase", phase},
                   {"preserved_hit_rate", pass_stats.CacheHitRate()},
                   {"dirty", dirty},
                   {"clean", clean},
                   {"stale_keys", stale},
                   {"invalidated", invalidated},
                   {"update_ms_mean", mean_update_ms},
                   {"query_s", query_s}});
  }
  table.Print(std::cout);

  // Bit-identity: the final live rankings against from-scratch rebuilds
  // of the updated graphs — a cache-off single-thread reference and a
  // cache-on 4-thread reference (the "any thread count, cache on or
  // off" acceptance clause).
  bool deterministic = true;
  api::ServerOptions cold_options;
  cold_options.ranking.enable_cache = false;
  cold_options.ranking.num_threads = 1;
  api::Server cold(cold_options);
  api::ServerOptions warm_options;
  warm_options.ranking.num_threads = 4;
  api::Server warm(warm_options);
  for (api::SessionId id : live) {
    api::Result<QueryGraph> updated = server.SessionSnapshot(id);
    api::Result<api::QueryResponse> incremental = server.QuerySession(id, k);
    if (!updated.ok() || !incremental.ok()) {
      std::cerr << "session readback failed\n";
      return 1;
    }
    api::Result<api::QueryResponse> cold_rebuild =
        cold.RankGraph(updated.value(), k);
    api::Result<api::QueryResponse> warm_rebuild =
        warm.RankGraph(updated.value(), k);
    if (!cold_rebuild.ok() || !warm_rebuild.ok()) {
      std::cerr << "rebuild reference failed\n";
      return 1;
    }
    if (api::RankingFingerprint(incremental.value()) != api::RankingFingerprint(cold_rebuild.value()) ||
        api::RankingFingerprint(incremental.value()) != api::RankingFingerprint(warm_rebuild.value())) {
      deterministic = false;
    }
  }

  double wall_s = total_timer.Seconds();
  double preserved_hit_rate = preserved_total.CacheHitRate();
  double update_ms_mean =
      updates == 0 ? 0.0 : update_ms_total / static_cast<double>(updates);
  serve::CacheStats cache = server.Stats().cache;

  std::cout << "\nAggregate: preserved hit rate "
            << FormatDouble(preserved_hit_rate, 3) << " over " << phases
            << " post-update passes, " << updates << " deltas (mean "
            << FormatDouble(update_ms_mean, 3) << " ms, max "
            << FormatDouble(update_ms_max, 3) << " ms), "
            << invalidated_total << " cache entries invalidated ("
            << cache.entries << " live).\n"
            << "Max touched-tuple fraction "
            << FormatDouble(touched_fraction_max, 4) << " (workload cap 0.10).\n"
            << "Output " << (deterministic ? "bit-identical" : "DIVERGED")
            << " vs from-scratch rebuilds (cache off/1 thread and cache "
               "on/4 threads).\n";
  bench::MaybeWriteCsv(csv, "ingest_updates");

  report.SetWallTime(wall_s);
  report.SetMetric("k", k);
  report.SetMetric("phases", phases);
  report.SetMetric("graphs", static_cast<int64_t>(live.size()));
  report.SetMetric("updates", updates);
  report.SetMetric("preserved_hit_rate", preserved_hit_rate);
  report.SetMetric("touched_fraction_max", touched_fraction_max);
  report.SetMetric("update_latency_ms_mean", update_ms_mean);
  report.SetMetric("update_latency_ms_max", update_ms_max);
  report.SetMetric("dirty_answers", dirty_total);
  report.SetMetric("clean_answers", clean_total);
  report.SetMetric("stale_keys", stale_total);
  report.SetMetric("invalidated_entries", invalidated_total);
  report.SetMetric("cache_entries", static_cast<int64_t>(cache.entries));
  report.SetMetric("cache_invalidations",
                   static_cast<int64_t>(cache.invalidations));
  report.SetMetric("deterministic_output", deterministic);
  Status write_status = report.Write();

  bool workload_ok = touched_fraction_max <= 0.10;
  bool pass_gate = preserved_hit_rate > 0.5;
  if (!workload_ok) {
    std::cerr << "ingest workload FAILED: deltas touched more than 10% of "
                 "tuples\n";
  }
  if (!pass_gate) {
    std::cerr << "ingest gate FAILED: need preserved_hit_rate > 0.5\n";
  }
  return deterministic && pass_gate && workload_ok && write_status.ok() ? 0
                                                                        : 1;
}
