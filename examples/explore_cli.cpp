// Interactive-style CLI over the BioRank front door: run an exploratory
// query for a protein through api::Server, rank its candidate functions,
// and print the top answers with their strongest evidence paths
// (provenance). Reliability ranking rides the serving layer (canonical
// cache + bounds-driven pruning); the other relevance functions are
// scored offline via the server's evaluation harness.
//
// Usage:
//   ./build/examples/explore_cli [gene_symbol] [method] [top_n]
//   ./build/examples/explore_cli --metrics [gene_symbol]
//   ./build/examples/explore_cli --storage-dir DIR [--checkpoint] [args...]
// With no arguments it picks the first well-studied protein and
// reliability ranking. --metrics serves one query and dumps the
// server's Prometheus metrics instead of the ranking.
//
// --storage-dir makes the server durable over DIR: the boot warm-loads
// the newest snapshot plus the WAL tail (the recovery line says what it
// found), reliability queries run through a live *session* (logged to
// the WAL, so a later boot rebuilds it), and --checkpoint writes a
// versioned snapshot before exit. Kill the process between runs and the
// next run picks up where this one left off — see docs/quickstart
// section 7 for the round trip.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/server.h"
#include "core/explanation.h"
#include "core/ranking.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

Result<RankingMethod> ParseMethod(const std::string& name) {
  for (RankingMethod method : AllRankingMethods()) {
    if (name == RankingMethodName(method)) return method;
  }
  return Status::InvalidArgument(
      "unknown method '" + name + "' (use Rel, Prop, Diff, InEdge, PathC)");
}

void PrintEvidence(const QueryGraph& graph, NodeId answer) {
  ExplanationOptions explain;
  explain.max_paths = 2;
  Result<std::vector<EvidencePath>> paths =
      ExplainAnswer(graph, answer, explain);
  if (!paths.ok()) return;
  for (const EvidencePath& path : paths.value()) {
    std::cout << "        " << FormatEvidencePath(graph, path) << "\n";
  }
}

/// Writes a checkpoint (when asked to) and reports what it captured.
int MaybeCheckpoint(api::Server& server, bool requested) {
  if (!requested) return 0;
  api::Result<api::CheckpointReport> report = server.Checkpoint();
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  std::cout << "\n(checkpoint @ LSN " << report.value().wal_lsn << ": "
            << report.value().bytes << " bytes, " << report.value().sessions
            << " sessions, " << report.value().cache_entries
            << " cache entries -> " << report.value().path << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics = false;
  bool checkpoint = false;
  std::string storage_dir;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--checkpoint") {
      checkpoint = true;
    } else if (arg == "--storage-dir") {
      if (i + 1 >= argc) {
        std::cerr << "--storage-dir needs a directory\n";
        return 2;
      }
      storage_dir = argv[++i];
    } else {
      positional.push_back(arg);
    }
  }
  if (checkpoint && storage_dir.empty()) {
    std::cerr << "--checkpoint needs --storage-dir\n";
    return 2;
  }

  api::ServerOptions server_options;
  server_options.storage_dir = storage_dir;
  api::Server server(server_options);
  if (!storage_dir.empty()) {
    if (!server.storage_status().ok()) {
      std::cerr << "storage boot failed: " << server.storage_status() << "\n";
      return 1;
    }
    const storage::RecoveryReport& boot = server.recovery_report();
    std::cout << "(durable over " << storage_dir << ": "
              << boot.sessions_recovered << " sessions recovered, "
              << boot.replayed_records << " WAL records replayed, "
              << boot.cache_entries_restored << " cache entries restored)\n";
  }

  if (metrics) {
    // Serve one real query so the scrape shows live numbers, then dump
    // the full registry in Prometheus exposition format.
    std::string symbol = !positional.empty()
                             ? positional[0]
                             : server.universe()
                                   .protein(server.universe()
                                                .well_studied()[0])
                                   .gene_symbol;
    api::Result<api::QueryResponse> response =
        server.Query(api::MakeProteinFunctionRequest(symbol, 8));
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    std::cout << server.MetricsText();
    return MaybeCheckpoint(server, checkpoint);
  }

  std::string symbol;
  if (!positional.empty()) {
    symbol = positional[0];
  } else {
    symbol = server.universe()
                 .protein(server.universe().well_studied()[0])
                 .gene_symbol;
    std::cout << "(no gene symbol given; using " << symbol << ")\n";
  }
  RankingMethod method = RankingMethod::kReliability;
  if (positional.size() > 1) {
    Result<RankingMethod> parsed = ParseMethod(positional[1]);
    if (!parsed.ok()) {
      std::cerr << parsed.status() << "\n";
      return 2;
    }
    method = parsed.value();
  }
  int top_n = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 8;

  if (method == RankingMethod::kReliability) {
    // The served path: typed request in, typed response out. A durable
    // server serves through a live session instead, so the query lands
    // in the WAL and the next boot over the same directory rebuilds it.
    api::Result<api::QueryResponse> response =
        Status::Internal("unserved");
    QueryGraph session_graph;
    if (server.durable()) {
      api::Result<api::SessionInfo> session =
          server.OpenSession(api::MakeProteinFunctionRequest(symbol, top_n));
      if (!session.ok()) {
        std::cerr << session.status() << "\n";
        return 1;
      }
      std::cout << "(live session " << session.value().id << ")\n";
      response = server.QuerySession(session.value().id, top_n);
      api::Result<QueryGraph> snapshot =
          server.SessionSnapshot(session.value().id);
      if (snapshot.ok()) session_graph = std::move(snapshot.value());
    } else {
      response = server.Query(api::MakeProteinFunctionRequest(symbol, top_n));
    }
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    const api::QueryResponse& r = response.value();
    const QueryGraph& graph =
        server.durable() ? session_graph : r.result.query_graph;
    std::cout << "Query (EntrezProtein.name = \"" << symbol << "\", AmiGO): "
              << graph.graph.num_nodes() << " nodes, "
              << graph.graph.num_edges() << " edges, "
              << graph.answers.size() << " candidate functions.\n\n";
    std::cout << "Top " << top_n << " functions by served reliability ("
              << FormatCompact(r.timing.rank_s * 1e3, 3) << " ms, "
              << r.stats.cache_hits << " cache hits, " << r.stats.pruned
              << " pruned):\n";
    for (size_t i = 0; i < r.top.size(); ++i) {
      const api::RankedAnswer& answer = r.top[i];
      std::cout << " " << PadLeft(std::to_string(i + 1), 5) << "  "
                << answer.label << "  (r " << FormatCompact(answer.reliability, 4)
                << " in [" << FormatCompact(answer.lower, 4) << ", "
                << FormatCompact(answer.upper, 4) << "])\n";
      PrintEvidence(graph, answer.node);
    }
    return MaybeCheckpoint(server, checkpoint);
  }

  // Offline methods: materialize the graph through the facade, score
  // with the harness's Ranker.
  api::QueryRequest graph_only = api::MakeProteinFunctionRequest(symbol);
  graph_only.options.rank = false;
  api::Result<api::QueryResponse> run = server.Query(graph_only);
  if (!run.ok()) {
    std::cerr << run.status() << "\n";
    return 1;
  }
  const QueryGraph& graph = run.value().result.query_graph;
  std::cout << "Query (EntrezProtein.name = \"" << symbol << "\", AmiGO): "
            << graph.graph.num_nodes() << " nodes, "
            << graph.graph.num_edges() << " edges, "
            << graph.answers.size() << " candidate functions.\n\n";

  Result<std::vector<RankedAnswer>> ranked =
      server.harness().ranker().Rank(graph, method);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }
  std::cout << "Top " << top_n << " functions by "
            << RankingMethodName(method) << ":\n";
  for (int i = 0; i < top_n && i < static_cast<int>(ranked.value().size());
       ++i) {
    const RankedAnswer& answer = ranked.value()[i];
    std::cout << " "
              << PadLeft(FormatRankInterval(answer.rank_lo, answer.rank_hi),
                         5)
              << "  " << graph.graph.node(answer.node).label << "  (score "
              << FormatCompact(answer.score, 4) << ")\n";
    PrintEvidence(graph, answer.node);
  }
  return MaybeCheckpoint(server, checkpoint);
}
